// Table 3: comparison of prior datasets with the SAP Cloud Infrastructure
// dataset.  Prior-work rows are the published qualitative facts; the SAP
// row is derived live from the simulated dataset (metrics present, scale,
// duration, sampling) to confirm our reproduction covers the same axes.

#include <iostream>
#include <string>

#include "analysis/render.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Table 3 — dataset comparison",
        "the SAP dataset is the only public one with VM workloads (up to "
        "12 TB memory per VM), lifetimes min-years, 30s-300s sampling");

    sim_engine& engine = benchutil::shared_engine();
    const metric_store& store = engine.store();

    // derive the SAP row from the reproduced dataset
    const auto has = [&](metric_resource r) {
        for (const metric_def& def : store.registry().all()) {
            if (def.resource == r && !store.select(def.name).empty()) return "yes";
        }
        return "no";
    };
    const std::string scale = std::to_string(engine.infrastructure().node_count()) +
                              " nodes, " +
                              std::to_string(engine.vms().size()) + " VMs";

    table_printer table({"Dataset", "CPU", "Mem", "Net", "Disk", "GPU", "VMs",
                         "Lifetime", "Scale", "Duration", "Sampling", "Public"});
    table.add_row({"Google [39]", "yes", "yes", "no", "no", "no", "no",
                   "sec-days", "672,074 jobs", "29 days", "5 min", "yes"});
    table.add_row({"Alibaba [1]", "yes", "yes", "yes", "no", "yes", "no",
                   "min-days", "~4k nodes", "8 days", "n/a", "yes"});
    table.add_row({"Philly [13]", "yes", "yes", "yes", "no", "yes", "no",
                   "min-weeks", "117,325 jobs", "75 days", "1 min", "yes"});
    table.add_row({"Atlas [3]", "yes", "yes", "no", "no", "yes", "no", "n/a",
                   "96,260 jobs", "90-1,800 days", "1 min", "yes"});
    table.add_row({"MIT [29]", "yes", "yes", "no", "no", "yes", "no",
                   "min-days", "441-9k nodes", "90-180+ days", "n/a", "yes"});
    table.add_row({"Azure [27]", "yes", "yes", "yes", "yes", "no", "yes",
                   "min-weeks", ">1M VMs", "14 days", "5 min", "no"});
    table.add_row({"SAP (reproduced)", has(metric_resource::cpu),
                   has(metric_resource::memory), has(metric_resource::network),
                   has(metric_resource::storage), "no", "yes", "min-years",
                   scale, "30 days", "30s-300s", "yes"});
    std::cout << table.to_string();
    return 0;
}
