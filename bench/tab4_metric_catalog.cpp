// Table 4: metric details for vROps and OpenStack Compute — dumped from
// the metric registry, with live series counts from the simulated region.

#include <iostream>

#include "analysis/render.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Table 4 — metric catalog (vROps + OpenStack Compute exporters)",
        "14 metrics across CPU/memory/network/storage at compute-host, VM "
        "and region level");

    sim_engine& engine = benchutil::shared_engine();
    const metric_store& store = engine.store();

    table_printer table({"metric", "subsystem", "resource", "unit", "series",
                         "description"});
    for (const metric_def& def : store.registry().all()) {
        table.add_row({def.name, std::string(to_string(def.subsystem)),
                       std::string(to_string(def.resource)),
                       std::string(to_string(def.unit)),
                       std::to_string(store.select(def.name).size()),
                       def.description});
    }
    std::cout << table.to_string();
    std::cout << "\ntotal series: " << store.series_count()
              << ", total samples ingested: " << store.total_samples() << "\n";
    return 0;
}
