#pragma once

// Shared harness for the figure/table bench binaries.
//
// Every bench binary simulates the studied region (once per process; the
// engine is cached) and prints the paper artifact it regenerates next to
// the published statistic.  Scale/seed come from the environment:
//
//   SCI_SCALE  linear fleet scale (default 0.1 — ~180 nodes, ~4,800 VMs;
//              1.0 reproduces the full 1,800-node / 48,000-VM region)
//   SCI_SEED   master seed (default 42)

#include <string_view>

#include "core/engine.hpp"

namespace sci::benchutil {

/// Scale from SCI_SCALE (default 0.1).
double env_scale();

/// Seed from SCI_SEED (default 42).
std::uint64_t env_seed();

/// Default engine config honoring the environment overrides.
engine_config default_config();

/// The shared, fully simulated engine (constructed and run on first use).
sim_engine& shared_engine();

/// Print the standard bench banner.
void print_header(std::string_view artifact, std::string_view paper_claim);

/// Record one perf measurement into the run's JSON summary.  Results are
/// flushed to SCI_BENCH_JSON (default "BENCH_engine.json") at process
/// exit, as `{"benchmarks": [{"name", "wall_ms", "samples_per_s",
/// "peak_rss_mib"}, ...]}` — peak RSS (VmHWM) is stamped automatically at
/// record time
/// — the perf trajectory future PRs diff against.  An existing summary
/// is merged into (same-name entries replaced, others preserved, stale
/// duplicates collapsed — see bench_json.hpp), so multiple bench binaries
/// can contribute to one file and re-runs are idempotent.
void record_bench(std::string_view name, double wall_ms, double samples_per_s);

}  // namespace sci::benchutil
