// Figure 7: daily average percentage of free CPU resources per node within
// a (highly imbalanced) building block — the intra-BB imbalance the
// two-layer Nova+DRS design cannot see.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 7 — daily avg % free CPU per node within one building block",
        "within a BB some nodes heavily utilized (max CPU utilization up to "
        "99%) while others keep significant free resources");

    sim_engine& engine = benchutil::shared_engine();
    const fleet& f = engine.infrastructure();
    const dc_id dc = f.dcs().front().id;
    const bb_id bb = most_imbalanced_bb(engine.store(), f, dc);
    std::cout << "selected building block: " << f.get(bb).name << " ("
              << f.get(bb).nodes.size() << " nodes)\n\n";

    const heatmap hm = fig7_free_cpu_intra_bb(engine.store(), f, bb);
    std::cout << render_heatmap_ascii(hm) << "\n";
    std::cout << "most-free node mean:  " << format_double(hm.column_mean(0))
              << "% free\n";
    std::cout << "least-free node mean: "
              << format_double(hm.column_mean(hm.columns.size() - 1))
              << "% free\n";
    std::cout << "max intra-BB node utilization (daily mean): "
              << format_double(100.0 - hm.min_value()) << "%\n";
    // the paper's "up to 99%" is a peak utilization, not a daily mean
    double peak_util = 0.0;
    const std::vector<std::pair<std::string, std::string>> bb_filter{
        {"bb", f.get(bb).name}};
    for (series_id id : engine.store().select(
             metric_names::host_cpu_core_utilization, bb_filter)) {
        const running_stats agg = engine.store().window_aggregate(id);
        if (!agg.empty()) peak_util = std::max(peak_util, agg.max());
    }
    std::cout << "max intra-BB node utilization (peak sample): "
              << format_double(peak_util) << "% (paper: up to 99%)\n";

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/fig07.csv");
    write_heatmap_csv(csv, hm);
    std::ofstream svg("bench_results/fig07.svg");
    svg_options svg_opts;
    svg_opts.title = "Figure 7 - % free CPU per node within one BB";
    svg_opts.x_label = "nodes";
    svg_opts.y_label = "day";
    write_heatmap_svg(svg, hm, svg_opts);
    std::cout << "wrote bench_results/fig07.csv, bench_results/fig07.svg\n";
    return 0;
}
