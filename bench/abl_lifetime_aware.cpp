// Ablation: lifetime-aware vs. lifetime-agnostic placement — Section 7:
// "Placement strategies that incorporate workload lifetime can reduce
// migrations and mitigate resource fragmentation."
//
// Lifetime-aware mode packs VMs with expected lifetime < 7 days so churn
// stays concentrated instead of punching holes across the whole fleet.

#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"

namespace {

struct outcome {
    double mean_intra_bb_stddev = 0.0;
    std::uint64_t migrations = 0;
    std::uint64_t forced_fits = 0;
    std::uint64_t failures = 0;
};

outcome run(bool lifetime_aware) {
    sci::engine_config config = sci::benchutil::default_config();
    config.scenario.scale = std::min(config.scenario.scale, 0.05);
    config.lifetime_aware = lifetime_aware;
    // pronounced churn so the effect is visible in 30 days
    config.population.daily_churn_fraction = 0.05;
    sci::sim_engine engine(config);
    engine.run();
    outcome out;
    out.mean_intra_bb_stddev =
        sci::intra_bb_imbalance(engine.store(), engine.infrastructure())
            .mean_intra_bb_stddev_pct;
    out.migrations = engine.stats().drs_migrations;
    out.forced_fits = engine.stats().forced_fits;
    out.failures = engine.stats().placement_failures;
    return out;
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — lifetime-aware vs. lifetime-agnostic placement",
        "long-lived VMs occupy resources for extended periods; packing "
        "short-lived VMs reduces migrations and fragmentation (Section 7)");

    const outcome agnostic = run(false);
    const outcome aware = run(true);

    table_printer table({"policy", "mean intra-BB stddev %", "drs migrations",
                         "forced fits", "failures"});
    table.add_row({"lifetime-agnostic", format_double(agnostic.mean_intra_bb_stddev),
                   std::to_string(agnostic.migrations),
                   std::to_string(agnostic.forced_fits),
                   std::to_string(agnostic.failures)});
    table.add_row({"lifetime-aware", format_double(aware.mean_intra_bb_stddev),
                   std::to_string(aware.migrations),
                   std::to_string(aware.forced_fits),
                   std::to_string(aware.failures)});
    std::cout << table.to_string();
    std::cout << "\nhypothesis under test (Section 7): packing short-lived "
                 "VMs contains churn-driven fragmentation.  Note the "
                 "trade-off columns — concentrating churn can also raise "
                 "NoValidHost under pack pressure.\n";
    return 0;
}
