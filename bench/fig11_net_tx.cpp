// Figure 11: daily average percentage of free network TX bandwidth per
// node within a single data center (200 Gbps NICs).

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 11 — daily avg % free network TX bandwidth per node",
        "network load notably below the 200 Gbps NIC capacity; network is "
        "currently not a relevant scheduling dimension");

    sim_engine& engine = benchutil::shared_engine();
    const fleet& f = engine.infrastructure();
    const dc_id dc = f.dcs().front().id;
    const heatmap hm = fig11_free_net_tx(engine.store(), f, dc);

    std::cout << render_heatmap_ascii(hm) << "\n";
    std::cout << "least-free TX cell: " << format_double(hm.min_value())
              << "% free (paper: clearly below capacity everywhere)\n";

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/fig11.csv");
    write_heatmap_csv(csv, hm);
    std::ofstream svg("bench_results/fig11.svg");
    svg_options svg_opts;
    svg_opts.title = "Figure 11 - % free network TX bandwidth per node";
    svg_opts.x_label = "nodes";
    svg_opts.y_label = "day";
    write_heatmap_svg(svg, hm, svg_opts);
    std::cout << "wrote bench_results/fig11.csv, bench_results/fig11.svg\n";
    return 0;
}
