// Microbenchmark (google-benchmark): telemetry store ingest + compaction +
// query throughput.  The production pipeline sustains samples from 1,800
// nodes and 48,000 VMs every 30–300 s (Section 4); the store's streaming
// day/hour compaction is what keeps that tractable.

#include <benchmark/benchmark.h>

#include "telemetry/store.hpp"

namespace {

void bm_append(benchmark::State& state) {
    using namespace sci;
    metric_store store(metric_registry::standard_catalog());
    const int series_count = static_cast<int>(state.range(0));
    std::vector<series_id> ids;
    ids.reserve(static_cast<std::size_t>(series_count));
    for (int i = 0; i < series_count; ++i) {
        ids.push_back(store.open_series(
            metric_names::host_cpu_core_utilization,
            label_set{{"node", "node-" + std::to_string(i)}}));
    }
    sim_time t = 0;
    for (auto _ : state) {
        for (series_id id : ids) {
            store.append(id, t, 42.0);
        }
        t = (t + 300) % observation_window;
    }
    state.SetItemsProcessed(state.iterations() * series_count);
}

void bm_append_hourly_metric(benchmark::State& state) {
    using namespace sci;
    metric_store store(metric_registry::standard_catalog());
    const series_id id = store.open_series(metric_names::host_cpu_ready,
                                           label_set{{"node", "n"}});
    sim_time t = 0;
    for (auto _ : state) {
        store.append(id, t, 100.0);
        t = (t + 300) % observation_window;
    }
    state.SetItemsProcessed(state.iterations());
}

void bm_open_series(benchmark::State& state) {
    using namespace sci;
    metric_store store(metric_registry::standard_catalog());
    int i = 0;
    for (auto _ : state) {
        auto id = store.open_series(
            metric_names::vm_cpu_usage_ratio,
            label_set{{"vm", "vm-" + std::to_string(i++)}});
        benchmark::DoNotOptimize(id);
    }
    state.SetItemsProcessed(state.iterations());
}

void bm_select(benchmark::State& state) {
    using namespace sci;
    metric_store store(metric_registry::standard_catalog());
    const int series_count = static_cast<int>(state.range(0));
    for (int i = 0; i < series_count; ++i) {
        store.open_series(metric_names::host_cpu_core_utilization,
                          label_set{{"node", "node-" + std::to_string(i)},
                                    {"dc", i % 2 == 0 ? "dc-a" : "dc-b"}});
    }
    const std::vector<std::pair<std::string, std::string>> filter{{"dc", "dc-a"}};
    for (auto _ : state) {
        auto result =
            store.select(metric_names::host_cpu_core_utilization, filter);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() * series_count);
}

}  // namespace

BENCHMARK(bm_append)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(bm_append_hourly_metric);
BENCHMARK(bm_open_series);
BENCHMARK(bm_select)->Arg(1000)->Arg(10000);

BENCHMARK_MAIN();
