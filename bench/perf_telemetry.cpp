// Microbenchmark (google-benchmark): telemetry store ingest + compaction +
// query throughput.  The production pipeline sustains samples from 1,800
// nodes and 48,000 VMs every 30–300 s (Section 4); the store's streaming
// day/hour compaction is what keeps that tractable.
//
// bm_scrape_column mirrors the engine's scrape pipeline shape in
// isolation: demand evaluation fanned over a worker pool (Arg = threads;
// 0 = serial) into a column buffer, then appended serially in VM order.

#include <benchmark/benchmark.h>

#include <vector>

#include "simcore/thread_pool.hpp"
#include "telemetry/store.hpp"
#include "workload/behavior.hpp"

namespace {

void bm_append(benchmark::State& state) {
    using namespace sci;
    metric_store store(metric_registry::standard_catalog());
    const int series_count = static_cast<int>(state.range(0));
    std::vector<series_id> ids;
    ids.reserve(static_cast<std::size_t>(series_count));
    for (int i = 0; i < series_count; ++i) {
        ids.push_back(store.open_series(
            metric_names::host_cpu_core_utilization,
            label_set{{"node", "node-" + std::to_string(i)}}));
    }
    sim_time t = 0;
    for (auto _ : state) {
        for (series_id id : ids) {
            store.append(id, t, 42.0);
        }
        t = (t + 300) % observation_window;
    }
    state.SetItemsProcessed(state.iterations() * series_count);
}

void bm_append_hourly_metric(benchmark::State& state) {
    using namespace sci;
    metric_store store(metric_registry::standard_catalog());
    const series_id id = store.open_series(metric_names::host_cpu_ready,
                                           label_set{{"node", "n"}});
    sim_time t = 0;
    for (auto _ : state) {
        store.append(id, t, 100.0);
        t = (t + 300) % observation_window;
    }
    state.SetItemsProcessed(state.iterations());
}

void bm_open_series(benchmark::State& state) {
    using namespace sci;
    metric_store store(metric_registry::standard_catalog());
    int i = 0;
    for (auto _ : state) {
        auto id = store.open_series(
            metric_names::vm_cpu_usage_ratio,
            label_set{{"vm", "vm-" + std::to_string(i++)}});
        benchmark::DoNotOptimize(id);
    }
    state.SetItemsProcessed(state.iterations());
}

void bm_select(benchmark::State& state) {
    using namespace sci;
    metric_store store(metric_registry::standard_catalog());
    const int series_count = static_cast<int>(state.range(0));
    for (int i = 0; i < series_count; ++i) {
        store.open_series(metric_names::host_cpu_core_utilization,
                          label_set{{"node", "node-" + std::to_string(i)},
                                    {"dc", i % 2 == 0 ? "dc-a" : "dc-b"}});
    }
    const std::vector<std::pair<std::string, std::string>> filter{{"dc", "dc-a"}};
    for (auto _ : state) {
        auto result =
            store.select(metric_names::host_cpu_core_utilization, filter);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() * series_count);
}

void bm_scrape_column(benchmark::State& state) {
    using namespace sci;
    constexpr std::size_t vm_count = 4096;
    constexpr unsigned shard_count = 16;  // fixed, as in sim_engine::scrape
    const auto threads = static_cast<unsigned>(state.range(0));
    thread_pool pool(threads);

    // synthetic behaviors: the same pure per-instant math the engine runs
    std::vector<vm_behavior> behaviors(vm_count);
    for (std::size_t i = 0; i < vm_count; ++i) {
        behaviors[i].seed = splitmix64(i + 1);
        behaviors[i].cpu_mean_ratio = 0.2 + 0.5 * static_cast<double>(i % 7) / 7.0;
        behaviors[i].diurnal_amplitude = 0.4;
        behaviors[i].bursty = i % 9 == 0;
    }
    metric_store store(metric_registry::standard_catalog());
    std::vector<series_id> ids;
    ids.reserve(vm_count);
    for (std::size_t i = 0; i < vm_count; ++i) {
        ids.push_back(store.open_series(
            metric_names::vm_cpu_usage_ratio,
            label_set{{"vm", "vm-" + std::to_string(i)}}));
    }
    std::vector<double> column(vm_count);

    sim_time t = 0;
    for (auto _ : state) {
        pool.parallel_for(
            0, shard_count, [&](unsigned, std::size_t s_begin, std::size_t s_end) {
                for (std::size_t s = s_begin; s < s_end; ++s) {
                    const auto [lo, hi] = thread_pool::shard(
                        0, vm_count, static_cast<unsigned>(s), shard_count);
                    for (std::size_t i = lo; i < hi; ++i) {
                        column[i] = behaviors[i].cpu_ratio_at(t);
                    }
                }
            });
        for (std::size_t i = 0; i < vm_count; ++i) {
            store.append(ids[i], t, column[i]);
        }
        t = (t + 300) % observation_window;
    }
    state.SetItemsProcessed(state.iterations() * vm_count);
}

}  // namespace

BENCHMARK(bm_append)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(bm_scrape_column)->Arg(0)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(bm_append_hourly_metric);
BENCHMARK(bm_open_series);
BENCHMARK(bm_select)->Arg(1000)->Arg(10000);

BENCHMARK_MAIN();
