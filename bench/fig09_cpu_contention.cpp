// Figure 9: aggregated CPU contention over all nodes within the region
// (daily mean / p95 / max over nodes).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 9 — CPU contention over all nodes",
        "daily mean and 95th percentile below 5%; max contention of various "
        "nodes 10–30%, with several nodes exceeding 40%; persistent over "
        "the period (no weekday effect in the max)");

    sim_engine& engine = benchutil::shared_engine();
    const auto by_day = fig9_contention_by_day(engine.store());

    table_printer table({"day", "mean %", "p95 %", "max %"});
    double worst_mean = 0.0, worst_p95 = 0.0, worst_max = 0.0;
    for (const contention_day& d : by_day) {
        table.add_row({std::to_string(d.day), format_double(d.mean_pct),
                       format_double(d.p95_pct), format_double(d.max_pct)});
        worst_mean = std::max(worst_mean, d.mean_pct);
        worst_p95 = std::max(worst_p95, d.p95_pct);
        worst_max = std::max(worst_max, d.max_pct);
    }
    std::cout << table.to_string();
    std::cout << "\nworst daily mean " << format_double(worst_mean)
              << "% (paper <5%), worst p95 " << format_double(worst_p95)
              << "% (paper <5%), worst max " << format_double(worst_max)
              << "% (paper: >40% on several nodes)\n";

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/fig09.csv");
    csv << "day,mean_pct,p95_pct,max_pct\n";
    for (const contention_day& d : by_day) {
        csv << d.day << "," << d.mean_pct << "," << d.p95_pct << ","
            << d.max_pct << "\n";
    }
    svg_series mean_line{"daily mean", {}}, p95_line{"p95", {}}, max_line{"max", {}};
    for (const contention_day& d : by_day) {
        mean_line.values.push_back(d.mean_pct);
        p95_line.values.push_back(d.p95_pct);
        max_line.values.push_back(d.max_pct);
    }
    std::ofstream svg("bench_results/fig09.svg");
    svg_options svg_opts;
    svg_opts.title = "Figure 9 - CPU contention over all nodes";
    svg_opts.x_label = "day";
    svg_opts.y_label = "contention %";
    write_line_chart_svg(svg, {mean_line, p95_line, max_line}, svg_opts);
    std::cout << "wrote bench_results/fig09.csv, bench_results/fig09.svg\n";
    return 0;
}
