// Ablation: vanilla Nova vs. contention-aware scheduling — Section 7:
// "Enhancements to the initial placement capabilities could ... involve
// incorporating both current and historic utilization data, for example
// the contention metrics."
//
// The contention-aware pipeline adds a ContentionFilter (reject BBs whose
// observed contention exceeds a threshold) and a ContentionWeigher
// (prefer calm BBs), fed by the exporters' EWMA.

#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"

namespace {

struct outcome {
    double worst_mean = 0.0;
    double worst_p95 = 0.0;
    double worst_max = 0.0;
    std::uint64_t failures = 0;
};

outcome run(bool aware) {
    sci::engine_config config = sci::benchutil::default_config();
    config.scenario.scale = std::min(config.scenario.scale, 0.05);
    config.contention_aware = aware;
    sci::sim_engine engine(config);
    engine.run();
    outcome out;
    for (const auto& day : sci::fig9_contention_by_day(engine.store())) {
        out.worst_mean = std::max(out.worst_mean, day.mean_pct);
        out.worst_p95 = std::max(out.worst_p95, day.p95_pct);
        out.worst_max = std::max(out.worst_max, day.max_pct);
    }
    out.failures = engine.stats().placement_failures;
    return out;
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — vanilla Nova vs. contention-aware scheduler",
        "feeding observed contention into placement should reduce the "
        "contention envelope (Section 7 guidance)");

    const outcome vanilla = run(false);
    const outcome aware = run(true);

    table_printer table({"scheduler", "worst daily mean %", "worst p95 %",
                         "worst max %", "failures"});
    table.add_row({"vanilla Nova", format_double(vanilla.worst_mean),
                   format_double(vanilla.worst_p95),
                   format_double(vanilla.worst_max),
                   std::to_string(vanilla.failures)});
    table.add_row({"contention-aware", format_double(aware.worst_mean),
                   format_double(aware.worst_p95),
                   format_double(aware.worst_max),
                   std::to_string(aware.failures)});
    std::cout << table.to_string();
    std::cout << "\nexpected: contention-aware placement lowers the mean/p95 "
                 "contention envelope\n";
    return 0;
}
