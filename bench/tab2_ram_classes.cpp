// Table 2: average VM classification by memory resources.

#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Table 2 — VM classification by RAM",
        "Small (<=2 GiB): 991; Medium (2-64]: 41,395; Large (64-128]: 787; "
        "Extra Large (>128): 2,184");

    sim_engine& engine = benchutil::shared_engine();
    const auto rows = table2_ram_classes(engine.vms(), engine.catalog());

    const double paper[] = {991, 41395, 787, 2184};
    const double scale = benchutil::env_scale();
    table_printer table(
        {"Category", "RAM (GiB)", "measured avg VMs", "paper (scaled)"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        table.add_row({rows[i].category, rows[i].bounds,
                       format_count(rows[i].average_vms),
                       format_count(paper[i] * scale)});
    }
    std::cout << table.to_string();
    return 0;
}
