// Figure 6: daily average percentage of free CPU resources per building
// block in a single data center.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 6 — daily avg % free CPU per building block, one DC",
        "different utilization levels across BBs; bin-packed (HANA) BBs "
        "clearly separated from load-balanced general-purpose BBs");

    sim_engine& engine = benchutil::shared_engine();
    const fleet& f = engine.infrastructure();
    const dc_id dc = f.dcs().front().id;
    const heatmap hm = fig6_free_cpu_per_bb(engine.store(), f, dc);

    std::cout << render_heatmap_ascii(hm) << "\n";
    table_printer table({"building block", "mean % free CPU"});
    for (std::size_t c = 0; c < hm.columns.size(); ++c) {
        table.add_row({hm.columns[c], format_double(hm.column_mean(c))});
    }
    std::cout << table.to_string();

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/fig06.csv");
    write_heatmap_csv(csv, hm);
    std::ofstream svg("bench_results/fig06.svg");
    svg_options svg_opts;
    svg_opts.title = "Figure 6 - daily avg % free CPU per building block";
    svg_opts.x_label = "building blocks";
    svg_opts.y_label = "day";
    write_heatmap_svg(svg, hm, svg_opts);
    std::cout << "wrote bench_results/fig06.csv, bench_results/fig06.svg\n";
    return 0;
}
