// Microbenchmark (google-benchmark): batched HA recovery — how fast the
// event loop re-places a detection epoch's crash victims through the
// speculate/commit pipeline at a given crash rate and thread count.
//
// bm_ha_recovery args are {crash_rate_milli_per_day, threads}: host
// crashes mass-kill residents, each epoch's victims drain as one batch,
// threads = 0 commits each victim inline (serial reference), N speculates
// the batch on the pool.  Output is bit-identical either way (the commit
// revalidates exactly), so the axis measures pure speedup.  wall_ms is
// the engine's own recovery_placement_wall_ms — the restart drains only
// (speculation + commit + claim + retry bookkeeping), excluding the rest
// of the event loop — and `run_ms` on the counter is the whole run() for
// context.  Results are recorded into BENCH_engine.json (see
// benchutil::record_bench) next to the churn trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>
#include <string>

#include "common.hpp"
#include "core/engine.hpp"

namespace {

void bm_ha_recovery(benchmark::State& state) {
    const double crash_rate = static_cast<double>(state.range(0)) / 1000.0;
    const auto threads = static_cast<unsigned>(state.range(1));
    double best_ms = std::numeric_limits<double>::infinity();
    double restarts_per_s = 0.0;
    for (auto _ : state) {
        sci::engine_config config;
        config.scenario.scale = 0.05;
        config.scenario.seed = 42;
        config.sampling_interval = 3600;
        config.fault.host_crash_rate_per_day = crash_rate;
        config.threads = threads;
        sci::sim_engine engine(config);
        const auto begin = std::chrono::steady_clock::now();
        engine.run();
        const double run_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - begin)
                                  .count();
        const sci::run_stats& stats = engine.stats();
        const double drain_ms = stats.recovery_placement_wall_ms;
        // placement attempts committed through the drains
        const auto restarts = stats.recovery_speculative_placements +
                              stats.recovery_speculation_misses;
        if (drain_ms < best_ms) {
            best_ms = drain_ms;
            restarts_per_s =
                static_cast<double>(restarts) / (drain_ms / 1000.0);
        }
        benchmark::DoNotOptimize(stats.ha_restarts);
        state.counters["run_ms"] = run_ms;
        state.counters["drain_ms"] = drain_ms;
        state.counters["restarts"] = static_cast<double>(restarts);
        state.counters["restarts/s"] = restarts_per_s;
        state.counters["batches"] = static_cast<double>(stats.recovery_batches);
        state.counters["spec_committed"] =
            static_cast<double>(stats.recovery_speculative_placements);
        state.counters["spec_invalidated"] =
            static_cast<double>(stats.recovery_speculation_invalidated);
    }
    sci::benchutil::record_bench("bm_ha_recovery/crash=" +
                                     std::to_string(state.range(0)) +
                                     "m/threads=" + std::to_string(threads),
                                 best_ms, restarts_per_s);
}

}  // namespace

BENCHMARK(bm_ha_recovery)
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({500, 4})
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({2000, 4})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
