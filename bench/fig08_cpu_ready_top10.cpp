// Figure 8: aggregated CPU ready time of the 10 nodes with the highest CPU
// ready time across the region (hourly series over the 30-day window).

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 8 — CPU ready time, top-10 nodes region-wide",
        "multiple spikes over the month (outliers up to ~30 min); various "
        "hypervisors exceed the 30 s baseline several times; weekday effect");

    sim_engine& engine = benchutil::shared_engine();
    const auto series = fig8_top_ready_nodes(engine.store(), 10);

    table_printer table({"node", "total ready (min)", "peak hourly mean (s)",
                         "hours > 30 s baseline"});
    for (const ready_time_series& s : series) {
        int above_baseline = 0;
        for (double v : s.hourly_ms) {
            if (!std::isnan(v) && v > 30'000.0) ++above_baseline;
        }
        table.add_row({s.node, format_double(s.total_ready_ms / 60'000.0),
                       format_double(s.peak_ready_ms / 1'000.0),
                       std::to_string(above_baseline)});
    }
    std::cout << table.to_string();

    // weekday effect: mean ready time weekdays vs weekends over the top-10
    double weekday_sum = 0.0, weekend_sum = 0.0;
    int weekday_n = 0, weekend_n = 0;
    for (const ready_time_series& s : series) {
        for (std::size_t h = 0; h < s.hourly_ms.size(); ++h) {
            if (std::isnan(s.hourly_ms[h])) continue;
            const sim_time t = static_cast<sim_time>(h) * seconds_per_hour;
            if (is_weekend(t)) {
                weekend_sum += s.hourly_ms[h];
                ++weekend_n;
            } else {
                weekday_sum += s.hourly_ms[h];
                ++weekday_n;
            }
        }
    }
    if (weekday_n > 0 && weekend_n > 0) {
        std::cout << "\nmean hourly ready: weekdays "
                  << format_double(weekday_sum / weekday_n / 1000.0)
                  << " s vs weekends "
                  << format_double(weekend_sum / weekend_n / 1000.0)
                  << " s (paper: less contention on weekends)\n";
    }

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/fig08.csv");
    write_ready_series_csv(csv, series);
    std::vector<svg_series> lines;
    for (const ready_time_series& s : series) {
        svg_series line;
        line.label = s.node;
        line.values.reserve(s.hourly_ms.size());
        for (double v : s.hourly_ms) line.values.push_back(v / 1000.0);
        lines.push_back(std::move(line));
    }
    std::ofstream svg("bench_results/fig08.svg");
    svg_options svg_opts;
    svg_opts.title = "Figure 8 - CPU ready time, top-10 nodes";
    svg_opts.x_label = "hour of observation window";
    svg_opts.y_label = "ready seconds";
    write_line_chart_svg(svg, lines, svg_opts);
    std::cout << "wrote bench_results/fig08.csv, bench_results/fig08.svg\n";
    return 0;
}
