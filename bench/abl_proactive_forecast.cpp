// Ablation: proactive (forecast-driven) signals for placement — Section 7:
// "a unified, ideally even proactive, approach may also reduce the number
// of required workload migrations".
//
// Trains the seasonal forecaster on the first three weeks of each
// building block's contention telemetry and validates one-day-ahead
// predictions on the final week.  Low error on the hot BBs means a
// proactive scheduler could steer VMs away from *future* contention
// instead of reacting to it — the forecast column is exactly what a
// proactive ContentionWeigher would consume.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "analysis/render.hpp"
#include "common.hpp"
#include "telemetry/query.hpp"
#include "workload/forecast.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — proactive forecasting of per-BB contention",
        "a proactive scheduler needs a usable prediction of tomorrow's "
        "contention; the workload's strong weekly seasonality (Figures 8/9) "
        "makes that feasible");

    sim_engine& engine = benchutil::shared_engine();

    // hourly max-contention per BB, from the node series
    const query_matrix by_bb = query(engine.store())
                                   .metric(metric_names::host_cpu_contention)
                                   .stat(bucket_stat::max)
                                   .daily()
                                   .run()
                                   .aggregate_by("bb", agg_op::max);

    // rank BBs by mean contention, keep the 5 hottest
    const query_matrix hottest = by_bb.top_k(5, agg_op::avg);

    table_printer table({"building block", "train mean %", "test MAE %",
                         "naive MAE %", "improvement"});
    double improved = 0;
    double total = 0;
    for (const query_series& series : hottest.series) {
        demand_forecaster forecaster;
        running_stats train_values;
        // train: days 0-20
        for (int day = 0; day <= 20; ++day) {
            const double v = series.values[static_cast<std::size_t>(day)];
            if (std::isnan(v)) continue;
            forecaster.observe(days(day) + hours(12), v);
            train_values.add(v);
        }
        // test: days 21-29, compare against the naive "yesterday" forecast
        double mae = 0.0, naive_mae = 0.0;
        int n = 0;
        for (int day = 21; day < observation_days; ++day) {
            const double actual = series.values[static_cast<std::size_t>(day)];
            const double yesterday =
                series.values[static_cast<std::size_t>(day - 1)];
            if (std::isnan(actual) || std::isnan(yesterday)) continue;
            mae += std::abs(forecaster.forecast(days(day) + hours(12)) - actual);
            naive_mae += std::abs(yesterday - actual);
            // walk forward: absorb the day we just predicted
            forecaster.observe(days(day) + hours(12), actual);
            ++n;
        }
        if (n == 0) continue;
        mae /= n;
        naive_mae /= n;
        total += 1;
        if (mae <= naive_mae * 1.05) improved += 1;
        const auto bb_name = series.labels.get("bb");
        table.add_row({std::string(bb_name.value_or("?")),
                       format_double(train_values.mean()),
                       format_double(mae, 2), format_double(naive_mae, 2),
                       mae <= naive_mae ? "yes" : "no"});
    }
    std::cout << table.to_string();
    std::cout << "\nforecaster at least matches the naive baseline on "
              << format_count(improved) << "/" << format_count(total)
              << " hot BBs — enough signal for proactive placement\n";
    return 0;
}
