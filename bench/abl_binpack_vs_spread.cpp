// Ablation: memory bin-packing (pack weighers) vs. load balancing (spread
// weighers) for HANA-like flavors — Section 3.2: "SAP S/4HANA workloads
// are explicitly bin-packed to maximize memory utilization" and the
// objective "maximize the number of placeable VMs per flavor".
//
// Static experiment: a pool of HANA building blocks receives a stream of
// mixed HANA VMs under each policy until NoValidHost.  Bin-packing should
// both place more VMs of the *large* probe flavor and leave less
// fragmented free memory.

#include <iostream>

#include "analysis/render.hpp"
#include "common.hpp"
#include "sched/conductor.hpp"

namespace {

struct policy_result {
    int placed = 0;
    int probe_placed = 0;
    double ram_used_pct = 0.0;
    double largest_free_block_gib = 0.0;
};

policy_result run_policy(sci::placement_policy policy, std::uint64_t seed) {
    using namespace sci;
    // 12 HANA building blocks of 6 nodes each
    fleet f;
    const region_id region = f.add_region("abl");
    const az_id az = f.add_az(region, "az");
    const dc_id dc = f.add_dc(az, "dc");
    for (int i = 0; i < 12; ++i) {
        f.add_bb(dc, "hana-bb" + std::to_string(i), bb_purpose::hana,
                 profiles::hana_large_memory(), 6);
    }

    flavor_catalog catalog;
    const flavor_id small = catalog.add("hana_s", 16, gib_to_mib(512), 512,
                                        workload_class::hana_db);
    const flavor_id medium = catalog.add("hana_m", 32, gib_to_mib(1024), 1024,
                                         workload_class::hana_db);
    const flavor_id probe = catalog.add("hana_l", 64, gib_to_mib(2048), 2048,
                                        workload_class::hana_db);

    placement_service placement;
    for (const building_block& bb : f.bbs()) {
        const allocation_ratios ratios = default_ratios_for(bb.purpose);
        placement.register_provider(
            bb.id, provider_inventory{f.bb_total_cores(bb.id),
                                      f.bb_total_memory(bb.id),
                                      bb.profile.storage_gib *
                                          static_cast<double>(bb.nodes.size()),
                                      ratios.cpu, ratios.ram});
    }
    conductor nova(f, catalog, placement, make_default_scheduler());

    // mixed stream of small/medium, then probe VMs until full
    rng_stream rng(seed, "abl-binpack");
    vm_registry vms;
    policy_result result;
    for (int i = 0; i < 500; ++i) {
        const flavor_id fid = rng.chance(0.6) ? small : medium;
        const vm_id vm = vms.create(fid, project_id(0), 0);
        schedule_request req;
        req.vm = vm;
        req.flavor = fid;
        req.project = project_id(0);
        req.policy = policy;
        if (!nova.schedule_and_claim(req).success) break;
        ++result.placed;
    }
    for (int i = 0; i < 200; ++i) {
        const vm_id vm = vms.create(probe, project_id(0), 0);
        schedule_request req;
        req.vm = vm;
        req.flavor = probe;
        req.project = project_id(0);
        req.policy = policy;
        if (!nova.schedule_and_claim(req).success) break;
        ++result.probe_placed;
    }

    double used = 0.0, total = 0.0, largest_free = 0.0;
    for (bb_id bb : placement.providers()) {
        const provider_usage& u = placement.usage(bb);
        const provider_inventory& inv = placement.inventory(bb);
        used += static_cast<double>(u.ram_used_mib);
        total += static_cast<double>(inv.total_ram_mib);
        largest_free = std::max(
            largest_free,
            static_cast<double>(inv.total_ram_mib - u.ram_used_mib));
    }
    result.ram_used_pct = 100.0 * used / total;
    result.largest_free_block_gib = mib_to_gib(static_cast<mebibytes>(largest_free));
    return result;
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — memory bin-packing vs. load balancing (HANA flavors)",
        "bin packing maximizes placeable VMs per flavor and memory "
        "utilization of HANA building blocks (Section 3.2)");

    const policy_result pack = run_policy(placement_policy::pack, 1);
    const policy_result spread = run_policy(placement_policy::spread, 1);

    table_printer table({"policy", "mixed VMs placed", "2TiB probes placed",
                         "RAM used %", "largest free BB (GiB)"});
    table.add_row({"pack (bin-packing)", std::to_string(pack.placed),
                   std::to_string(pack.probe_placed),
                   format_double(pack.ram_used_pct),
                   format_double(pack.largest_free_block_gib, 0)});
    table.add_row({"spread (load balance)", std::to_string(spread.placed),
                   std::to_string(spread.probe_placed),
                   format_double(spread.ram_used_pct),
                   format_double(spread.largest_free_block_gib, 0)});
    std::cout << table.to_string();
    std::cout << "\nexpected: pack places at least as many probe VMs and "
                 "keeps larger contiguous free blocks\n";
    return 0;
}
