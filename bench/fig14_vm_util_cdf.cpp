// Figure 14: cumulative distribution of average VM utilization ratio per
// resource (CPU and memory), with the under/optimal/over classification of
// Section 5.5 (thresholds 70% and 85%).

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "common.hpp"

namespace {

void print_cdf_row(const char* label, const sci::vm_utilization_cdf& cdf) {
    std::cout << label << " (" << cdf.classes.vm_count << " VMs):\n";
    std::cout << "  CDF grid: ";
    for (double x : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95}) {
        std::cout << "P(u<=" << x << ")=" << sci::format_double(cdf.cdf(x) * 100.0)
                  << "%  ";
    }
    std::cout << "\n  classes: " << sci::format_double(cdf.classes.under_pct)
              << "% under (<70%), " << sci::format_double(cdf.classes.optimal_pct)
              << "% optimal (70-85%), " << sci::format_double(cdf.classes.over_pct)
              << "% over (>85%)\n";
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 14 — CDF of average VM utilization ratio (CPU, memory)",
        "CPU: most VMs overprovisioned, >80% of VMs use <70%; memory: ~38% "
        "under, ~10% optimal, large share (>50%) consuming >85%");

    sim_engine& engine = benchutil::shared_engine();
    const vm_utilization_cdf cpu = fig14a_cpu_utilization(engine.store());
    const vm_utilization_cdf mem = fig14b_memory_utilization(engine.store());

    print_cdf_row("Fig 14a CPU utilization   ", cpu);
    print_cdf_row("Fig 14b memory utilization", mem);

    std::filesystem::create_directories("bench_results");
    {
        std::ofstream csv("bench_results/fig14a.csv");
        write_cdf_csv(csv, cpu);
    }
    {
        std::ofstream csv("bench_results/fig14b.csv");
        write_cdf_csv(csv, mem);
    }
    {
        std::ofstream svg("bench_results/fig14a.svg");
        svg_options svg_opts;
        svg_opts.title = "Figure 14a - CDF of average VM CPU utilization";
        svg_opts.x_label = "utilization ratio";
        svg_opts.y_label = "CDF";
        write_cdf_svg(svg, cpu, svg_opts);
    }
    {
        std::ofstream svg("bench_results/fig14b.svg");
        svg_options svg_opts;
        svg_opts.title = "Figure 14b - CDF of average VM memory utilization";
        svg_opts.x_label = "utilization ratio";
        svg_opts.y_label = "CDF";
        write_cdf_svg(svg, mem, svg_opts);
    }
    std::cout << "wrote bench_results/fig14{a,b}.{csv,svg}\n";
    return 0;
}
