// Figure 5: daily average percentage of free CPU resources per node within
// a single data center (heatmap, columns sorted most -> least free).

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 5 — daily avg % free CPU per node, one DC",
        "some nodes <20% free while others >90% free on the same day; "
        "imbalance persists over the whole 30-day window");

    sim_engine& engine = benchutil::shared_engine();
    const fleet& f = engine.infrastructure();
    const dc_id dc = f.dcs().front().id;
    const heatmap hm = fig5_free_cpu_per_node(engine.store(), f, dc);

    std::cout << render_heatmap_ascii(hm) << "\n";
    std::cout << "columns (nodes): " << hm.columns.size()
              << ", days: " << hm.days << "\n";
    std::cout << "most-free column mean:  " << format_double(hm.column_mean(0))
              << "% free\n";
    std::cout << "least-free column mean: "
              << format_double(hm.column_mean(hm.columns.size() - 1))
              << "% free\n";
    std::cout << "min cell " << format_double(hm.min_value()) << "% / max cell "
              << format_double(hm.max_value()) << "% free\n";
    std::cout << "missing cells (hosts added/removed): "
              << format_double(hm.missing_fraction() * 100.0) << "%\n";

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/fig05.csv");
    write_heatmap_csv(csv, hm);
    std::ofstream svg("bench_results/fig05.svg");
    svg_options svg_opts;
    svg_opts.title = "Figure 5 - daily avg % free CPU per node";
    svg_opts.x_label = "nodes (most to least free)";
    svg_opts.y_label = "day";
    write_heatmap_svg(svg, hm, svg_opts);
    std::cout << "wrote bench_results/fig05.csv, bench_results/fig05.svg\n";
    return 0;
}
