// Perf: checkpoint & what-if forking (sci::snapshot).
//
// Measures the four snapshot primitives (capture, serialize, restore,
// fork) and the workflow they enable: a two-arm policy ablation that
// forks one shared prefix instead of simulating it twice, plus
// concurrent read-only what-if placement queries against one hot
// snapshot.
//
// SCI_BENCH_DAYS caps the simulated window for CI smoke runs; capped
// runs are never recorded into BENCH_engine.json — a short window would
// corrupt the perf trajectory future PRs diff against.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common.hpp"
#include "simcore/thread_pool.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/whatif.hpp"

namespace {

int env_bench_days() {
    const char* v = std::getenv("SCI_BENCH_DAYS");
    if (v == nullptr) return 0;
    const int days = std::atoi(v);
    return days > 0 ? days : 0;
}

double ms_since(std::chrono::steady_clock::time_point begin) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Perf — snapshot capture/restore/fork & what-if queries",
        "a checkpoint makes N-arm ablations pay the shared prefix once "
        "and serves concurrent read-only placement what-ifs");

    engine_config config = benchutil::default_config();
    config.scenario.scale = 0.25;  // the ablation acceptance point
    const int cap_days = env_bench_days();
    const int window_days = cap_days > 0 ? cap_days : 30;
    const sim_time window_end = days(window_days);
    // fork point at 95% of the window: the what-if is "from here, what
    // if the policy changed" — the prefix is the shared, forkable part
    const sim_time fork_at = window_end / 20 * 19;

    // Untimed warmup: the first large run of the process pays allocator
    // arena growth and page faults that neither measured path should own.
    {
        sim_engine warmup(config);
        warmup.setup();
        warmup.run_until(fork_at);
    }

    // --- shared prefix (timed from construction: the fork path owns its
    // one setup, exactly as each run-twice arm owns one) -------------------
    auto begin = std::chrono::steady_clock::now();
    sim_engine base(config);
    base.setup();
    base.run_until(fork_at);
    const double prefix_ms = ms_since(begin);

    // --- primitive costs ---------------------------------------------------
    begin = std::chrono::steady_clock::now();
    snapshot::engine_state state = snapshot::capture(base);
    const double capture_ms = ms_since(begin);

    begin = std::chrono::steady_clock::now();
    const std::vector<std::byte> bytes = snapshot::serialize(state);
    const double serialize_ms = ms_since(begin);

    begin = std::chrono::steady_clock::now();
    std::unique_ptr<sim_engine> restored =
        snapshot::restore(snapshot::deserialize(bytes));
    const double restore_ms = ms_since(begin);
    restored.reset();

    const snapshot::shared_snapshot shared = snapshot::share(std::move(state));
    begin = std::chrono::steady_clock::now();
    std::unique_ptr<sim_engine> probe = snapshot::fork(shared);
    const double fork_ms = ms_since(begin);
    probe.reset();

    std::printf("prefix (%d%% of %d days): %.1f ms\n", 95, window_days,
                prefix_ms);
    std::printf("capture: %.1f ms   serialize: %.1f ms (%.1f MiB)   "
                "restore: %.1f ms   fork: %.1f ms\n",
                capture_ms, serialize_ms,
                static_cast<double>(bytes.size()) / (1024.0 * 1024.0),
                restore_ms, fork_ms);

    // --- two-arm ablation: fork-once vs run-twice --------------------------
    // Arms: DRS stays on vs DRS off for the remaining 5% of the window.
    begin = std::chrono::steady_clock::now();
    std::uint64_t fork_migrations[2] = {0, 0};
    for (int arm = 0; arm < 2; ++arm) {
        std::unique_ptr<sim_engine> fork_arm = snapshot::fork(shared);
        fork_arm->set_drs_enabled(arm == 0);
        fork_arm->run_until(window_end);
        fork_migrations[arm] = fork_arm->stats().drs_migrations;
    }
    const double fork_path_ms = ms_since(begin) + prefix_ms + capture_ms;

    begin = std::chrono::steady_clock::now();
    std::uint64_t twice_migrations[2] = {0, 0};
    for (int arm = 0; arm < 2; ++arm) {
        sim_engine engine(config);
        engine.setup();
        engine.run_until(fork_at);
        engine.set_drs_enabled(arm == 0);
        engine.run_until(window_end);
        twice_migrations[arm] = engine.stats().drs_migrations;
    }
    const double run_twice_ms = ms_since(begin);

    const bool arms_match = fork_migrations[0] == twice_migrations[0] &&
                            fork_migrations[1] == twice_migrations[1];
    std::printf("2-arm DRS ablation: fork-once %.1f ms vs run-twice %.1f ms "
                "(%.0f%%, arms %s)\n",
                fork_path_ms, run_twice_ms, 100.0 * fork_path_ms / run_twice_ms,
                arms_match ? "identical" : "DIVERGED");

    // --- concurrent what-if queries ----------------------------------------
    std::unique_ptr<sim_engine> hot = snapshot::fork(shared);
    const snapshot::whatif_planner planner(*hot);
    std::vector<snapshot::whatif_query> queries;
    const auto records = hot->vms().all();
    constexpr std::size_t query_count = 2000;
    for (std::size_t i = 0; i < query_count; ++i) {
        snapshot::whatif_query q;
        q.flavor = records[i % records.size()].flavor;
        q.policy =
            i % 2 == 0 ? placement_policy::spread : placement_policy::pack;
        queries.push_back(q);
    }
    constexpr std::size_t batches = 4;
    std::vector<snapshot::whatif_result> results(batches);
    thread_pool pool(batches);
    begin = std::chrono::steady_clock::now();
    pool.run_tasks(batches,
                   [&](std::size_t i) { results[i] = planner.plan(queries); });
    const double whatif_ms = ms_since(begin);
    const double whatif_qps =
        static_cast<double>(query_count * batches) / (whatif_ms / 1000.0);
    std::printf("%zu concurrent what-if batches x %zu queries: %.1f ms "
                "(%.0f queries/s, %zu placed per batch)\n",
                batches, query_count, whatif_ms, whatif_qps,
                results[0].placed);

    if (cap_days == 0) {
        const double mib = static_cast<double>(bytes.size()) /
                           (1024.0 * 1024.0);
        benchutil::record_bench("snapshot_capture/scale=0.25", capture_ms, 0.0);
        benchutil::record_bench("snapshot_serialize/scale=0.25", serialize_ms,
                                mib);
        benchutil::record_bench("snapshot_restore/scale=0.25", restore_ms, 0.0);
        benchutil::record_bench("snapshot_fork/scale=0.25", fork_ms, 0.0);
        benchutil::record_bench("snapshot_fork_ablation_2arm/scale=0.25",
                                fork_path_ms,
                                run_twice_ms / fork_path_ms);  // speedup
        benchutil::record_bench("snapshot_run_twice_2arm/scale=0.25",
                                run_twice_ms, 0.0);
        benchutil::record_bench("snapshot_whatif_concurrent4/scale=0.25",
                                whatif_ms, whatif_qps);
    }
    return arms_match ? 0 : 1;
}
