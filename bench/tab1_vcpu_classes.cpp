// Table 1: average VM classification by number of vCPUs.  The published
// counts refer to the full 48,000-VM region; at SCI_SCALE < 1 the measured
// counts are compared against proportionally scaled paper numbers.

#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Table 1 — VM classification by vCPU count",
        "Small (<=4): 28,446; Medium (<=16): 14,340; Large (<=64): 1,831; "
        "Extra Large (>64): 738");

    sim_engine& engine = benchutil::shared_engine();
    const auto rows = table1_vcpu_classes(engine.vms(), engine.catalog());

    const double paper[] = {28446, 14340, 1831, 738};
    const double scale = benchutil::env_scale();
    table_printer table(
        {"Category", "vCPU (Cores)", "measured avg VMs", "paper (scaled)"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        table.add_row({rows[i].category, rows[i].bounds,
                       format_count(rows[i].average_vms),
                       format_count(paper[i] * scale)});
    }
    std::cout << table.to_string();
    return 0;
}
