// Ablation: the cross-building-block rebalancer — Section 3.1
// ("fragmentation and imbalances can also occur across building blocks,
// requiring manual intervention or external rebalancers") and Section 7
// ("Continuous migration mechanisms across BBs are required").
//
// Controlled experiment: a group of identical general-purpose BBs starts
// deliberately imbalanced (all load packed onto the first BBs, the state a
// fleet reaches after months of bin-packing and churn).  The rebalancer
// then runs pass after pass; the table shows the reserved-RAM spread
// shrinking and the migration bill for each pass.

#include <algorithm>
#include <iostream>
#include <limits>
#include <map>

#include "analysis/render.hpp"
#include "common.hpp"
#include "rebalancer/cross_bb.hpp"
#include "sched/conductor.hpp"

namespace {

double ram_spread(const sci::placement_service& placement) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (sci::bb_id bb : placement.providers()) {
        const double ratio =
            static_cast<double>(placement.usage(bb).ram_used_mib) /
            static_cast<double>(placement.inventory(bb).total_ram_mib);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    return hi - lo;
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — cross-BB rebalancer healing a fragmented fleet",
        "imbalance across building blocks requires an external rebalancer; "
        "continuous cross-BB migration maintains balance (Sections 3.1, 7)");

    // six identical 4-node general BBs
    fleet f;
    const region_id region = f.add_region("r");
    const dc_id dc = f.add_dc(f.add_az(region, "az"), "dc");
    for (int i = 0; i < 6; ++i) {
        f.add_bb(dc, "gen-" + std::to_string(i), bb_purpose::general,
                 profiles::general_purpose(), 4);
    }
    flavor_catalog catalog;
    const flavor_id fid = catalog.add("g_c4_m32", 4, gib_to_mib(32), 100.0,
                                      workload_class::general_purpose);
    placement_service placement;
    for (const building_block& bb : f.bbs()) {
        const allocation_ratios ratios = default_ratios_for(bb.purpose);
        placement.register_provider(
            bb.id, provider_inventory{f.bb_total_cores(bb.id),
                                      f.bb_total_memory(bb.id), 1e6,
                                      ratios.cpu, ratios.ram});
    }

    // imbalanced start: 180 VMs crammed into the first two BBs
    vm_registry vms;
    std::map<bb_id, std::vector<vm_id>> residents;
    for (int i = 0; i < 180; ++i) {
        const bb_id target(i < 110 ? 0 : 1);
        const vm_id vm = vms.create(fid, project_id(0), 0);
        placement.claim(vm, target, catalog.get(fid));
        residents[target].push_back(vm);
    }

    cross_bb_config config;
    config.target_ram_spread = 0.05;
    config.max_moves_per_pass = 8;
    const cross_bb_rebalancer rebalancer(f, catalog, config);

    cross_bb_inputs inputs;
    inputs.vms_of_bb = [&](bb_id bb) { return residents[bb]; };
    inputs.flavor_of = [&](vm_id vm) -> const flavor& {
        return catalog.get(vms.get(vm).flavor);
    };
    inputs.resident_mib = [&](vm_id vm) -> mebibytes {
        return catalog.get(vms.get(vm).flavor).ram_mib * 3 / 4;
    };
    inputs.dirty_rate = [](vm_id) { return 60.0; };

    table_printer table({"pass", "RAM spread before", "moves",
                         "migration time (s)", "worst downtime (ms)"});
    int pass = 0;
    while (pass < 20) {
        const double spread_before = ram_spread(placement);
        const auto moves = rebalancer.plan(placement, inputs);
        if (moves.empty()) {
            table.add_row({std::to_string(pass),
                           format_double(spread_before * 100.0) + "%", "0", "-",
                           "-"});
            break;
        }
        double seconds = 0.0, worst_downtime = 0.0;
        for (const cross_bb_move& m : moves) {
            placement.move(m.vm, m.to, catalog.get(vms.get(m.vm).flavor));
            std::erase(residents[m.from], m.vm);
            residents[m.to].push_back(m.vm);
            seconds += m.estimate.total_seconds;
            worst_downtime = std::max(worst_downtime, m.estimate.downtime_ms);
        }
        table.add_row({std::to_string(pass),
                       format_double(spread_before * 100.0) + "%",
                       std::to_string(moves.size()), format_double(seconds, 1),
                       format_double(worst_downtime, 1)});
        ++pass;
    }
    std::cout << table.to_string();
    std::cout << "\nfinal RAM spread: " << format_double(ram_spread(placement) * 100.0)
              << "% (target " << format_double(config.target_ram_spread * 100.0)
              << "%)\nexpected: the spread converges under the target within "
                 "a few passes, each costing bounded migration time\n";
    return 0;
}
