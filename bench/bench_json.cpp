#include "bench_json.hpp"

#include <algorithm>
#include <cstdio>

namespace sci::benchutil {

namespace {

/// Overwrite-or-append one entry, keyed by name.  Overwriting in place
/// keeps the file ordering stable, so re-running a bench binary produces
/// a byte-identical summary instead of a reshuffled one.
void upsert(std::vector<bench_entry>& entries, const bench_entry& fresh) {
    const auto it = std::find_if(
        entries.begin(), entries.end(),
        [&](const bench_entry& e) { return e.name == fresh.name; });
    if (it != entries.end()) {
        *it = fresh;
    } else {
        entries.push_back(fresh);
    }
}

}  // namespace

std::vector<bench_entry> parse_bench_json(std::string_view text) {
    std::vector<bench_entry> entries;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos) eol = text.size();
        const std::string line(text.substr(pos, eol - pos));
        pos = eol + 1;
        char name[256];
        bench_entry e;
        const int got_fields = std::sscanf(
            line.c_str(),
            " {\"name\": \"%255[^\"]\", \"wall_ms\": %lf, "
            "\"samples_per_s\": %lf, \"peak_rss_mib\": %lf",
            name, &e.wall_ms, &e.samples_per_s, &e.peak_rss_mib);
        // 3 fields = a pre-RSS writer's line; keep peak_rss_mib at 0
        if (got_fields >= 3) {
            e.name = name;
            upsert(entries, e);  // duplicate keys collapse, last wins
        }
    }
    return entries;
}

void merge_bench_entries(std::vector<bench_entry>& existing,
                         const std::vector<bench_entry>& fresh) {
    for (const bench_entry& e : fresh) upsert(existing, e);
}

std::string render_bench_json(const std::vector<bench_entry>& entries) {
    std::string out = "{\n  \"benchmarks\": [\n";
    char line[512];
    for (std::size_t i = 0; i < entries.size(); ++i) {
        std::snprintf(line, sizeof line,
                      "    {\"name\": \"%s\", \"wall_ms\": %.3f, "
                      "\"samples_per_s\": %.0f, \"peak_rss_mib\": %.1f}%s\n",
                      entries[i].name.c_str(), entries[i].wall_ms,
                      entries[i].samples_per_s, entries[i].peak_rss_mib,
                      i + 1 < entries.size() ? "," : "");
        out += line;
    }
    out += "  ]\n}\n";
    return out;
}

double process_peak_rss_mib() {
    std::FILE* status = std::fopen("/proc/self/status", "r");
    if (status == nullptr) return 0.0;
    double kib = 0.0;
    char line[256];
    while (std::fgets(line, sizeof line, status) != nullptr) {
        if (std::sscanf(line, "VmHWM: %lf kB", &kib) == 1) break;
    }
    std::fclose(status);
    return kib / 1024.0;
}

}  // namespace sci::benchutil
