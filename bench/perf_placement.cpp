// Microbenchmark (google-benchmark): the speculative parallel initial
// placement — how fast place_initial_population fills the fleet at a
// given scale and thread count.
//
// bm_place_initial args are {scale_permille, threads}: threads = 0 runs
// the batched pipeline inline (serial — this axis isolates the zero-copy
// scheduler fast path), N speculates batches on the pool.  Output is
// bit-identical either way (commit_speculation revalidates exactly), so
// the axis measures pure speedup.  wall_ms is the engine's own
// initial_placement_wall_ms — placement only, excluding fleet/workload
// construction and telemetry priming — and `setup_ms` on the counter is
// the whole setup() for context.  Results are recorded into
// BENCH_engine.json (see benchutil::record_bench) next to the perf_engine
// trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>
#include <string>

#include "common.hpp"
#include "core/engine.hpp"

namespace {

void bm_place_initial(benchmark::State& state) {
    const double scale = static_cast<double>(state.range(0)) / 1000.0;
    const auto threads = static_cast<unsigned>(state.range(1));
    double best_ms = std::numeric_limits<double>::infinity();
    double placements_per_s = 0.0;
    for (auto _ : state) {
        sci::engine_config config;
        config.scenario.scale = scale;
        config.scenario.seed = 42;
        config.threads = threads;
        sci::sim_engine engine(config);
        const auto begin = std::chrono::steady_clock::now();
        engine.setup();  // places the whole initial population
        const double setup_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - begin)
                .count();
        const double place_ms = engine.stats().initial_placement_wall_ms;
        if (place_ms < best_ms) {
            best_ms = place_ms;
            placements_per_s =
                static_cast<double>(engine.stats().placements) /
                (place_ms / 1000.0);
        }
        benchmark::DoNotOptimize(engine.stats().placements);
        state.counters["setup_ms"] = setup_ms;
        state.counters["placements"] =
            static_cast<double>(engine.stats().placements);
        state.counters["place_ms"] = place_ms;
        state.counters["placements/s"] = placements_per_s;
        state.counters["spec_committed"] =
            static_cast<double>(engine.stats().speculative_placements);
        state.counters["spec_misses"] =
            static_cast<double>(engine.stats().speculation_misses);
    }
    sci::benchutil::record_bench("bm_place_initial/scale=" +
                                     std::to_string(state.range(0)) +
                                     "m/threads=" + std::to_string(threads),
                                 best_ms, placements_per_s);
}

}  // namespace

BENCHMARK(bm_place_initial)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({100, 4})
    ->Args({250, 0})
    ->Args({250, 1})
    ->Args({250, 4})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
