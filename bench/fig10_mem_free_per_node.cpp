// Figure 10: daily average percentage of free memory resources per node
// within a single data center.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 10 — daily avg % free memory per node, one DC",
        "bimodal: many nodes with plenty of free memory, roughly as many "
        "with <20% free (almost fully utilized); slow growth on some nodes; "
        "abrupt shifts from migrations/terminations");

    sim_engine& engine = benchutil::shared_engine();
    const fleet& f = engine.infrastructure();
    const dc_id dc = f.dcs().front().id;
    const heatmap hm = fig10_free_memory_per_node(engine.store(), f, dc);

    std::cout << render_heatmap_ascii(hm) << "\n";
    // bimodality check: share of node-days in the <20% free band vs >60%
    std::size_t full = 0, empty = 0, present = 0;
    for (int day = 0; day < hm.days; ++day) {
        for (std::size_t c = 0; c < hm.columns.size(); ++c) {
            const double v = hm.cell(day, c);
            if (heatmap::missing(v)) continue;
            ++present;
            if (v < 20.0) ++full;
            if (v > 60.0) ++empty;
        }
    }
    if (present > 0) {
        std::cout << "node-days with <20% free memory: "
                  << format_double(100.0 * full / present)
                  << "%  (paper: roughly half of nodes)\n";
        std::cout << "node-days with >60% free memory: "
                  << format_double(100.0 * empty / present) << "%\n";
    }

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/fig10.csv");
    write_heatmap_csv(csv, hm);
    std::ofstream svg("bench_results/fig10.svg");
    svg_options svg_opts;
    svg_opts.title = "Figure 10 - daily avg % free memory per node";
    svg_opts.x_label = "nodes";
    svg_opts.y_label = "day";
    write_heatmap_svg(svg, hm, svg_opts);
    std::cout << "wrote bench_results/fig10.csv, bench_results/fig10.svg\n";
    return 0;
}
