// Microbenchmark (google-benchmark): multi-region scale-out throughput —
// how the region_set's two-level scheduling behaves as regions multiply
// on one shared pool.
//
// bm_region_grid args are {regions, threads}: each region is the
// scale-0.05 reference fleet of bm_full_window/scale=50m, so
// regions=1/threads=0 is directly comparable to that baseline — the
// region_set wrapper must not tax a solo region.  threads = 0 runs the
// whole grid serially on the caller (regions back to back); with workers
// the regions fan out as coarse tasks and a lone region still uses the
// idle workers for its scrape shards.
//
// Every full-window result is recorded into BENCH_engine.json (peak RSS
// stamped by benchutil::record_bench) so future PRs can track the
// trajectory.  SCI_BENCH_DAYS caps the window for CI smoke runs; capped
// runs are never recorded.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <limits>
#include <string>

#include "common.hpp"
#include "multiregion/region_set.hpp"

namespace {

int env_bench_days() {
    const char* v = std::getenv("SCI_BENCH_DAYS");
    if (v == nullptr) return 0;
    const int days = std::atoi(v);
    return days > 0 ? days : 0;
}

void bm_region_grid(benchmark::State& state) {
    const auto regions = static_cast<std::size_t>(state.range(0));
    const auto threads = static_cast<unsigned>(state.range(1));
    const int cap_days = env_bench_days();
    double best_ms = std::numeric_limits<double>::infinity();
    double samples_per_s = 0.0;
    for (auto _ : state) {
        sci::engine_config base;
        base.scenario.scale = 0.05;
        base.scenario.seed = 42;
        sci::region_set set(sci::make_region_specs(base, regions), threads);
        const auto begin = std::chrono::steady_clock::now();
        if (cap_days > 0) {
            set.setup();
            set.run_until(sci::days(cap_days));
        } else {
            set.run();
        }
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - begin)
                              .count();
        std::uint64_t samples = 0;
        for (std::size_t r = 0; r < set.region_count(); ++r) {
            samples += set.region(r).store().total_samples();
        }
        if (ms < best_ms) {
            best_ms = ms;
            samples_per_s = static_cast<double>(samples) / (ms / 1000.0);
        }
        benchmark::DoNotOptimize(set.merged_stats().scrapes);
        state.counters["placements"] =
            static_cast<double>(set.merged_stats().placements);
        state.counters["samples"] = static_cast<double>(samples);
        state.counters["samples/s"] = samples_per_s;
    }
    if (cap_days == 0) {
        sci::benchutil::record_bench(
            "bm_region_grid/regions=" + std::to_string(regions) +
                "/scale=50m/threads=" + std::to_string(threads),
            best_ms, samples_per_s);
    }
}

}  // namespace

BENCHMARK(bm_region_grid)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
