// Figure 12: daily average percentage of free network RX bandwidth per
// node within a single data center (200 Gbps NICs).

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 12 — daily avg % free network RX bandwidth per node",
        "as with TX, received traffic stays notably below 200 Gbps");

    sim_engine& engine = benchutil::shared_engine();
    const fleet& f = engine.infrastructure();
    const dc_id dc = f.dcs().front().id;
    const heatmap hm = fig12_free_net_rx(engine.store(), f, dc);

    std::cout << render_heatmap_ascii(hm) << "\n";
    std::cout << "least-free RX cell: " << format_double(hm.min_value())
              << "% free (paper: clearly below capacity everywhere)\n";

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/fig12.csv");
    write_heatmap_csv(csv, hm);
    std::ofstream svg("bench_results/fig12.svg");
    svg_options svg_opts;
    svg_opts.title = "Figure 12 - % free network RX bandwidth per node";
    svg_opts.x_label = "nodes";
    svg_opts.y_label = "day";
    write_heatmap_svg(svg, hm, svg_opts);
    std::cout << "wrote bench_results/fig12.csv, bench_results/fig12.svg\n";
    return 0;
}
