// Microbenchmark (google-benchmark): end-to-end engine throughput — how
// fast the simulator plays the 30-day window at a given fleet scale, and
// the cost of the individual hot paths (placement, scrape).
//
// Full-scale reference: the paper's region (1,800 nodes / 48,000 VMs at
// 300 s scrape cadence) plays in a few minutes on a laptop.

#include <benchmark/benchmark.h>

#include "core/engine.hpp"

namespace {

void bm_full_window(benchmark::State& state) {
    const double scale = static_cast<double>(state.range(0)) / 1000.0;
    for (auto _ : state) {
        sci::engine_config config;
        config.scenario.scale = scale;
        config.scenario.seed = 42;
        sci::sim_engine engine(config);
        engine.run();
        benchmark::DoNotOptimize(engine.stats().scrapes);
        state.counters["placements"] =
            static_cast<double>(engine.stats().placements);
        state.counters["samples"] =
            static_cast<double>(engine.store().total_samples());
    }
}

void bm_initial_placement(benchmark::State& state) {
    const double scale = static_cast<double>(state.range(0)) / 1000.0;
    for (auto _ : state) {
        sci::engine_config config;
        config.scenario.scale = scale;
        config.scenario.seed = 42;
        sci::sim_engine engine(config);
        engine.setup();  // includes placing the whole initial population
        benchmark::DoNotOptimize(engine.stats().placements);
    }
}

void bm_single_day(benchmark::State& state) {
    // setup once, then play single days incrementally
    sci::engine_config config;
    config.scenario.scale = 0.05;
    config.scenario.seed = 42;
    sci::sim_engine engine(config);
    engine.setup();
    sci::sim_time until = 0;
    for (auto _ : state) {
        until += sci::days(1);
        if (until > sci::observation_window) {
            state.SkipWithError("window exhausted");
            break;
        }
        engine.run_until(until);
        benchmark::DoNotOptimize(engine.stats().scrapes);
    }
}

}  // namespace

BENCHMARK(bm_full_window)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_initial_placement)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_single_day)->Unit(benchmark::kMillisecond)->Iterations(25);

BENCHMARK_MAIN();
