// Microbenchmark (google-benchmark): end-to-end engine throughput — how
// fast the simulator plays the 30-day window at a given fleet scale, the
// scaling of the thread-pooled scrape pipeline, and the cost of the
// individual hot paths (placement, scrape).
//
// bm_full_window args are {scale_permille, threads}: threads = 0 runs the
// serial fallback, N runs the pool.  Output is bit-identical either way
// (fixed-shard demand reduction), so the axis measures pure speedup.
// Every full-window result is also recorded into BENCH_engine.json (see
// benchutil::record_bench) so future PRs can track the trajectory.
//
// Full-scale reference: the paper's region (1,800 nodes / 48,000 VMs at
// 300 s scrape cadence) plays in a few minutes on a laptop.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <limits>
#include <string>

#include "common.hpp"
#include "core/engine.hpp"

namespace {

/// CI smoke hook: SCI_BENCH_DAYS caps the simulated window (0 / unset =
/// the full 30 days).  Capped runs exercise the same code path at full
/// fleet scale but are never recorded into BENCH_engine.json — a short
/// window would corrupt the perf trajectory future PRs diff against.
int env_bench_days() {
    const char* v = std::getenv("SCI_BENCH_DAYS");
    if (v == nullptr) return 0;
    const int days = std::atoi(v);
    return days > 0 ? days : 0;
}

void bm_full_window(benchmark::State& state) {
    const double scale = static_cast<double>(state.range(0)) / 1000.0;
    const auto threads = static_cast<unsigned>(state.range(1));
    const int cap_days = env_bench_days();
    double best_ms = std::numeric_limits<double>::infinity();
    double samples_per_s = 0.0;
    for (auto _ : state) {
        sci::engine_config config;
        config.scenario.scale = scale;
        config.scenario.seed = 42;
        config.threads = threads;
        sci::sim_engine engine(config);
        const auto begin = std::chrono::steady_clock::now();
        if (cap_days > 0) {
            engine.setup();
            engine.run_until(sci::days(cap_days));
        } else {
            engine.run();
        }
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - begin)
                .count();
        if (ms < best_ms) {
            best_ms = ms;
            samples_per_s =
                static_cast<double>(engine.store().total_samples()) /
                (ms / 1000.0);
        }
        benchmark::DoNotOptimize(engine.stats().scrapes);
        state.counters["placements"] =
            static_cast<double>(engine.stats().placements);
        state.counters["samples"] =
            static_cast<double>(engine.store().total_samples());
        state.counters["samples/s"] = samples_per_s;
    }
    if (cap_days == 0) {
        sci::benchutil::record_bench("bm_full_window/scale=" +
                                         std::to_string(state.range(0)) +
                                         "m/threads=" + std::to_string(threads),
                                     best_ms, samples_per_s);
    }
}

void bm_initial_placement(benchmark::State& state) {
    const double scale = static_cast<double>(state.range(0)) / 1000.0;
    for (auto _ : state) {
        sci::engine_config config;
        config.scenario.scale = scale;
        config.scenario.seed = 42;
        sci::sim_engine engine(config);
        engine.setup();  // includes placing the whole initial population
        benchmark::DoNotOptimize(engine.stats().placements);
    }
}

void bm_single_day(benchmark::State& state) {
    // setup once, then play single days incrementally
    const auto threads = static_cast<unsigned>(state.range(0));
    sci::engine_config config;
    config.scenario.scale = 0.05;
    config.scenario.seed = 42;
    config.threads = threads;
    sci::sim_engine engine(config);
    engine.setup();
    sci::sim_time until = 0;
    for (auto _ : state) {
        until += sci::days(1);
        if (until > sci::observation_window) {
            state.SkipWithError("window exhausted");
            break;
        }
        engine.run_until(until);
        benchmark::DoNotOptimize(engine.stats().scrapes);
    }
}

}  // namespace

BENCHMARK(bm_full_window)
    ->Args({25, 0})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({50, 4})
    ->Args({100, 0})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);
// Full scale: the paper's 1,800-node / 48,000-VM region end to end —
// ~1e9 samples in one 30-day pass, so a single timed iteration.  The
// sparse-aggregate store keeps this in bounded memory without keep_raw.
BENCHMARK(bm_full_window)
    ->Args({1000, 0})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(bm_initial_placement)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_single_day)
    ->Arg(0)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(25);

BENCHMARK_MAIN();
