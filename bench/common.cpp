#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace sci::benchutil {

namespace {

struct bench_result {
    std::string name;
    double wall_ms;
    double samples_per_s;
};

std::vector<bench_result>& bench_results() {
    static std::vector<bench_result> results;
    return results;
}

/// Entries already in the summary file (written by another bench binary
/// of the same run).  The format is our own, so a line scan suffices.
std::vector<bench_result> read_existing(const char* path) {
    std::vector<bench_result> existing;
    std::FILE* in = std::fopen(path, "r");
    if (in == nullptr) return existing;
    char line[512];
    while (std::fgets(line, sizeof line, in) != nullptr) {
        char name[256];
        double wall = 0.0;
        double rate = 0.0;
        if (std::sscanf(line,
                        " {\"name\": \"%255[^\"]\", \"wall_ms\": %lf, "
                        "\"samples_per_s\": %lf",
                        name, &wall, &rate) == 3) {
            existing.push_back(bench_result{name, wall, rate});
        }
    }
    std::fclose(in);
    return existing;
}

void write_bench_json() {
    if (bench_results().empty()) return;
    const char* path = std::getenv("SCI_BENCH_JSON");
    if (path == nullptr || *path == '\0') path = "BENCH_engine.json";
    // merge with what other binaries wrote: same-name entries are
    // replaced by this process's measurement, the rest are preserved
    std::vector<bench_result> results = read_existing(path);
    for (const bench_result& fresh : bench_results()) {
        const auto it = std::find_if(
            results.begin(), results.end(),
            [&](const bench_result& r) { return r.name == fresh.name; });
        if (it != results.end()) {
            *it = fresh;
        } else {
            results.push_back(fresh);
        }
    }
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "record_bench: cannot write %s\n", path);
        return;
    }
    std::fprintf(out, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"wall_ms\": %.3f, "
                     "\"samples_per_s\": %.0f}%s\n",
                     results[i].name.c_str(), results[i].wall_ms,
                     results[i].samples_per_s,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("[bench] wrote %zu result(s) to %s\n", results.size(), path);
}

}  // namespace

void record_bench(std::string_view name, double wall_ms, double samples_per_s) {
    if (bench_results().empty()) std::atexit(write_bench_json);
    bench_results().push_back(
        bench_result{std::string(name), wall_ms, samples_per_s});
}

double env_scale() {
    const char* v = std::getenv("SCI_SCALE");
    if (v == nullptr) return 0.1;
    const double s = std::atof(v);
    return s > 0.0 ? s : 0.1;
}

std::uint64_t env_seed() {
    const char* v = std::getenv("SCI_SEED");
    if (v == nullptr) return 42;
    return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
}

engine_config default_config() {
    engine_config config;
    config.scenario.scale = env_scale();
    config.scenario.seed = env_seed();
    return config;
}

sim_engine& shared_engine() {
    static std::unique_ptr<sim_engine> engine = [] {
        auto e = std::make_unique<sim_engine>(default_config());
        std::printf("[setup] simulating region at scale %.3f (%zu nodes, %d VMs, seed %llu) ...\n",
                    env_scale(), e->infrastructure().node_count(),
                    e->scn().target_vm_population,
                    static_cast<unsigned long long>(env_seed()));
        std::fflush(stdout);
        e->run();
        std::printf("[setup] done: %llu placements, %llu scrapes\n\n",
                    static_cast<unsigned long long>(e->stats().placements),
                    static_cast<unsigned long long>(e->stats().scrapes));
        return e;
    }();
    return *engine;
}

void print_header(std::string_view artifact, std::string_view paper_claim) {
    std::printf("================================================================\n");
    std::printf("%.*s\n", static_cast<int>(artifact.size()), artifact.data());
    std::printf("paper: %.*s\n", static_cast<int>(paper_claim.size()),
                paper_claim.data());
    std::printf("================================================================\n");
}

}  // namespace sci::benchutil
