#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>

namespace sci::benchutil {

double env_scale() {
    const char* v = std::getenv("SCI_SCALE");
    if (v == nullptr) return 0.1;
    const double s = std::atof(v);
    return s > 0.0 ? s : 0.1;
}

std::uint64_t env_seed() {
    const char* v = std::getenv("SCI_SEED");
    if (v == nullptr) return 42;
    return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
}

engine_config default_config() {
    engine_config config;
    config.scenario.scale = env_scale();
    config.scenario.seed = env_seed();
    return config;
}

sim_engine& shared_engine() {
    static std::unique_ptr<sim_engine> engine = [] {
        auto e = std::make_unique<sim_engine>(default_config());
        std::printf("[setup] simulating region at scale %.3f (%zu nodes, %d VMs, seed %llu) ...\n",
                    env_scale(), e->infrastructure().node_count(),
                    e->scn().target_vm_population,
                    static_cast<unsigned long long>(env_seed()));
        std::fflush(stdout);
        e->run();
        std::printf("[setup] done: %llu placements, %llu scrapes\n\n",
                    static_cast<unsigned long long>(e->stats().placements),
                    static_cast<unsigned long long>(e->stats().scrapes));
        return e;
    }();
    return *engine;
}

void print_header(std::string_view artifact, std::string_view paper_claim) {
    std::printf("================================================================\n");
    std::printf("%.*s\n", static_cast<int>(artifact.size()), artifact.data());
    std::printf("paper: %.*s\n", static_cast<int>(paper_claim.size()),
                paper_claim.data());
    std::printf("================================================================\n");
}

}  // namespace sci::benchutil
