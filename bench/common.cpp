#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"

namespace sci::benchutil {

namespace {

std::vector<bench_entry>& bench_results() {
    static std::vector<bench_entry> results;
    return results;
}

/// Entries already in the summary file (written by another bench binary
/// of the same run, or by a previous run).
std::vector<bench_entry> read_existing(const char* path) {
    std::FILE* in = std::fopen(path, "r");
    if (in == nullptr) return {};
    std::string text;
    char chunk[4096];
    std::size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof chunk, in)) > 0) {
        text.append(chunk, got);
    }
    std::fclose(in);
    return parse_bench_json(text);
}

void write_bench_json() {
    if (bench_results().empty()) return;
    const char* path = std::getenv("SCI_BENCH_JSON");
    if (path == nullptr || *path == '\0') path = "BENCH_engine.json";
    // merge with what other binaries wrote: dedupe by name (parse already
    // collapses duplicates a pre-dedupe writer left behind), same-name
    // entries replaced by this process's measurement, the rest preserved
    // in file order — so re-running the same binary is idempotent.
    std::vector<bench_entry> results = read_existing(path);
    merge_bench_entries(results, bench_results());
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "record_bench: cannot write %s\n", path);
        return;
    }
    const std::string text = render_bench_json(results);
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    std::printf("[bench] wrote %zu result(s) to %s\n", results.size(), path);
}

}  // namespace

void record_bench(std::string_view name, double wall_ms, double samples_per_s) {
    if (bench_results().empty()) std::atexit(write_bench_json);
    // peak RSS is stamped at record time, so every bench entry carries the
    // process high-water mark its measurement actually ran under
    bench_results().push_back(bench_entry{std::string(name), wall_ms,
                                          samples_per_s,
                                          process_peak_rss_mib()});
}

double env_scale() {
    const char* v = std::getenv("SCI_SCALE");
    if (v == nullptr) return 0.1;
    const double s = std::atof(v);
    return s > 0.0 ? s : 0.1;
}

std::uint64_t env_seed() {
    const char* v = std::getenv("SCI_SEED");
    if (v == nullptr) return 42;
    return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
}

engine_config default_config() {
    engine_config config;
    config.scenario.scale = env_scale();
    config.scenario.seed = env_seed();
    return config;
}

sim_engine& shared_engine() {
    static std::unique_ptr<sim_engine> engine = [] {
        auto e = std::make_unique<sim_engine>(default_config());
        std::printf("[setup] simulating region at scale %.3f (%zu nodes, %d VMs, seed %llu) ...\n",
                    env_scale(), e->infrastructure().node_count(),
                    e->scn().target_vm_population,
                    static_cast<unsigned long long>(env_seed()));
        std::fflush(stdout);
        e->run();
        std::printf("[setup] done: %llu placements, %llu scrapes\n\n",
                    static_cast<unsigned long long>(e->stats().placements),
                    static_cast<unsigned long long>(e->stats().scrapes));
        return e;
    }();
    return *engine;
}

void print_header(std::string_view artifact, std::string_view paper_claim) {
    std::printf("================================================================\n");
    std::printf("%.*s\n", static_cast<int>(artifact.size()), artifact.data());
    std::printf("paper: %.*s\n", static_cast<int>(paper_claim.size()),
                paper_claim.data());
    std::printf("================================================================\n");
}

}  // namespace sci::benchutil
