// Ablation: vCPU:pCPU overcommit factor sweep — Section 7: "the
// overcommit factor should be reconsidered ... a more dynamic and
// workload-based approach ... might help to mitigate these problems".
//
// Sweeps the general-purpose allocation ratio and reports how contention,
// ready time and placement failures trade off against packing density.
//
// Two sweeps run side by side.  The fork sweep (sci::snapshot) pays the
// initial population once, forks per ratio and rewrites the allocation
// ratio in place — the paper's "dynamic ... approach": retuning a live
// region, so the initial placement is shared and only the churn window
// diverges.  The legacy sweep builds a full engine per ratio with the
// override applied from the start (initial placement included), which is
// the historical from-scratch experiment; its rows differ where initial
// placement reacts to the ratio.

#include <chrono>
#include <iostream>
#include <memory>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"
#include "snapshot/snapshot.hpp"

namespace {

constexpr double ratios[] = {1.5, 2.0, 3.0, 4.0, 6.0};

sci::engine_config sweep_config() {
    sci::engine_config config = sci::benchutil::default_config();
    config.scenario.scale = std::min(config.scenario.scale, 0.04);
    return config;
}

struct outcome {
    std::uint64_t placed = 0;
    std::uint64_t failures = 0;
    double worst_mean = 0.0;
    double worst_max = 0.0;
    double peak_ready_ms = 0.0;
};

outcome measure(const sci::sim_engine& engine) {
    outcome out;
    out.placed = engine.stats().placements;
    out.failures = engine.stats().placement_failures;
    for (const auto& day : sci::fig9_contention_by_day(engine.store())) {
        out.worst_mean = std::max(out.worst_mean, day.mean_pct);
        out.worst_max = std::max(out.worst_max, day.max_pct);
    }
    for (const auto& s : sci::fig8_top_ready_nodes(engine.store(), 1)) {
        out.peak_ready_ms = std::max(out.peak_ready_ms, s.peak_ready_ms);
    }
    return out;
}

double ms_since(std::chrono::steady_clock::time_point begin) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — overcommit factor sweep (general-purpose BBs)",
        "higher vCPU:pCPU ratios pack more VMs but increase CPU contention "
        "and ready time; low ratios waste capacity via NoValidHost");

    table_printer table({"cpu ratio", "arms", "placed", "failures",
                         "worst mean cont %", "worst max cont %",
                         "peak ready (s)"});
    const auto row = [&](double ratio, const char* arms, const outcome& o) {
        table.add_row({format_double(ratio), arms, std::to_string(o.placed),
                       std::to_string(o.failures),
                       format_double(o.worst_mean), format_double(o.worst_max),
                       format_double(o.peak_ready_ms / 1000.0)});
    };

    // untimed warmup: the process's first full window pays allocator
    // growth and page faults that neither sweep should own
    {
        sim_engine warmup(sweep_config());
        warmup.run();
    }

    // fork sweep: one shared prefix, one fork + in-place retune per ratio
    auto begin = std::chrono::steady_clock::now();
    snapshot::shared_snapshot base;
    {
        sim_engine prefix(sweep_config());
        prefix.setup();
        prefix.run_until(0);  // initial scrape; arms diverge after it
        base = snapshot::share(snapshot::capture(prefix));
    }
    for (const double ratio : ratios) {
        std::unique_ptr<sim_engine> engine = snapshot::fork(base);
        engine->set_gp_cpu_allocation_ratio(ratio);
        engine->run();
        row(ratio, "fork", measure(*engine));
    }
    const double fork_ms = ms_since(begin);

    // legacy sweep: a full engine per ratio, override active from setup
    begin = std::chrono::steady_clock::now();
    for (const double ratio : ratios) {
        engine_config config = sweep_config();
        config.gp_cpu_allocation_ratio_override = ratio;
        sim_engine engine(config);
        engine.run();
        row(ratio, "legacy", measure(engine));
    }
    const double legacy_ms = ms_since(begin);

    std::cout << table.to_string();
    std::cout << "\nfork-from-snapshot sweep (" << std::size(ratios)
              << " arms): " << format_double(fork_ms)
              << " ms vs legacy run-per-arm " << format_double(legacy_ms)
              << " ms (" << format_double(legacy_ms / fork_ms) << "x)\n";
    std::cout << "expected: failures fall and contention rises as the ratio "
                 "grows — the overcommit trade-off (fork arms share the "
                 "default-ratio initial placement; legacy arms re-place "
                 "from scratch)\n";
    // second column records the fork-over-legacy arm-setup speedup
    benchutil::record_bench("abl_overcommit_sweep/fork_arms=5", fork_ms,
                            legacy_ms / fork_ms);
    benchutil::record_bench("abl_overcommit_sweep/legacy_arms=5", legacy_ms,
                            0.0);
    return 0;
}
