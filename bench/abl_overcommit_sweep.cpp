// Ablation: vCPU:pCPU overcommit factor sweep — Section 7: "the
// overcommit factor should be reconsidered ... a more dynamic and
// workload-based approach ... might help to mitigate these problems".
//
// Sweeps the general-purpose allocation ratio and reports how contention,
// ready time and placement failures trade off against packing density.

#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — overcommit factor sweep (general-purpose BBs)",
        "higher vCPU:pCPU ratios pack more VMs but increase CPU contention "
        "and ready time; low ratios waste capacity via NoValidHost");

    table_printer table({"cpu ratio", "placed", "failures", "worst mean cont %",
                         "worst max cont %", "peak ready (s)"});
    for (const double ratio : {1.5, 2.0, 3.0, 4.0, 6.0}) {
        engine_config config = benchutil::default_config();
        config.scenario.scale = std::min(config.scenario.scale, 0.04);
        config.gp_cpu_allocation_ratio_override = ratio;
        sim_engine engine(config);
        engine.run();

        double worst_mean = 0.0, worst_max = 0.0;
        for (const auto& day : fig9_contention_by_day(engine.store())) {
            worst_mean = std::max(worst_mean, day.mean_pct);
            worst_max = std::max(worst_max, day.max_pct);
        }
        double peak_ready_ms = 0.0;
        for (const auto& s : fig8_top_ready_nodes(engine.store(), 1)) {
            peak_ready_ms = std::max(peak_ready_ms, s.peak_ready_ms);
        }
        table.add_row({format_double(ratio),
                       std::to_string(engine.stats().placements),
                       std::to_string(engine.stats().placement_failures),
                       format_double(worst_mean), format_double(worst_max),
                       format_double(peak_ready_ms / 1000.0)});
    }
    std::cout << table.to_string();
    std::cout << "\nexpected: failures fall and contention rises as the "
                 "ratio grows — the overcommit trade-off\n";
    return 0;
}
