#pragma once

// BENCH_engine.json parse/merge/render, factored out of the bench harness
// so the merge semantics are testable without running a benchmark binary.
//
// The file is the repo's perf trajectory: every bench binary of a run
// contributes its measurements, and future PRs diff the merged summary.
// Merging therefore has to be idempotent — re-running the same binary
// (or a binary whose file already holds duplicate keys from an earlier,
// buggier writer) must converge to exactly one entry per benchmark name,
// with the freshest measurement winning.

#include <string>
#include <string_view>
#include <vector>

namespace sci::benchutil {

struct bench_entry {
    std::string name;
    double wall_ms = 0.0;
    double samples_per_s = 0.0;
    /// Peak resident set (VmHWM) of the process when the measurement was
    /// recorded, in MiB; 0 when unavailable (non-Linux).
    double peak_rss_mib = 0.0;
};

/// Parse a summary previously written by render_bench_json.  The format is
/// our own, so a tolerant line scan suffices; malformed lines are skipped.
/// Duplicate names are collapsed on the spot (last occurrence wins), so a
/// file polluted by pre-dedupe writers heals on the first re-merge.
std::vector<bench_entry> parse_bench_json(std::string_view text);

/// Merge fresh measurements into an existing entry list, keyed by name:
/// an existing entry with the same name is overwritten in place (keeping
/// the file's ordering stable across re-runs), new names append.  Fresh
/// entries that repeat a name also collapse to the last measurement.
void merge_bench_entries(std::vector<bench_entry>& existing,
                         const std::vector<bench_entry>& fresh);

/// Render the `{"benchmarks": [...]}` document parse_bench_json reads.
std::string render_bench_json(const std::vector<bench_entry>& entries);

/// Peak resident set size of this process in MiB, read from Linux
/// /proc/self/status (VmHWM).  Returns 0.0 where the file or the field
/// does not exist, so callers can record it unconditionally.
double process_peak_rss_mib();

}  // namespace sci::benchutil
