// Table 5 (Appendix D): hypervisor and VM counts per data center.  Builds
// the full global fleet from the published counts and verifies the
// constructed topology matches (building-block partitioning is synthetic,
// so per-DC node totals may differ by a handful of leftover nodes that do
// not fill a minimum-size building block).

#include <iostream>

#include "analysis/render.hpp"
#include "core/scenario.hpp"

int main() {
    using namespace sci;
    std::cout << "Table 5 — data center overview (29 DCs, 15+1 regions)\n\n";

    const scenario global = make_global_scenario();
    const fleet& f = global.infrastructure;

    table_printer table({"Region", "DC", "paper hypervisors",
                         "built hypervisors", "built BBs", "paper VMs"});
    std::size_t spec_index = 0;
    long total_paper_nodes = 0, total_built_nodes = 0, total_vms = 0;
    for (const dc_spec& spec : table5_datacenters()) {
        const datacenter& dc = f.dcs()[spec_index++];
        const std::size_t built = f.nodes_of_dc(dc.id).size();
        table.add_row({std::to_string(spec.region_id), spec.dc_name,
                       std::to_string(spec.hypervisors), std::to_string(built),
                       std::to_string(dc.bbs.size()),
                       std::to_string(spec.vms)});
        total_paper_nodes += spec.hypervisors;
        total_built_nodes += static_cast<long>(built);
        total_vms += spec.vms;
    }
    std::cout << table.to_string();
    std::cout << "\ntotals: paper " << total_paper_nodes
              << " hypervisors / built " << total_built_nodes << " ("
              << f.bb_count() << " building blocks), " << total_vms
              << " VMs across " << f.dc_count() << " DCs in "
              << f.region_count() << " regions\n";
    std::cout << "(paper Section 3: >6,000 hypervisors and >200,000 active "
                 "VMs platform-wide; the studied region is region 9)\n";
    return 0;
}
