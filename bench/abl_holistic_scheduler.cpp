// Ablation: two-layer (Nova -> building block, DRS -> node) vs. holistic
// node-level scheduling — Section 7: "A holistic scheduler that assigns
// VMs directly to individual hosts might be capable of improving resource
// utilization and reduce fragmentation."

#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"

namespace {

struct outcome {
    sci::imbalance_summary imbalance;
    std::uint64_t forced_fits = 0;
    std::uint64_t failures = 0;
    std::uint64_t migrations = 0;
};

outcome run(bool holistic) {
    sci::engine_config config = sci::benchutil::default_config();
    config.scenario.scale = std::min(config.scenario.scale, 0.05);
    config.holistic = holistic;
    sci::sim_engine engine(config);
    engine.run();
    outcome out;
    out.imbalance = sci::intra_bb_imbalance(engine.store(), engine.infrastructure());
    out.forced_fits = engine.stats().forced_fits;
    out.failures = engine.stats().placement_failures;
    out.migrations = engine.stats().drs_migrations;
    return out;
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — two-layer Nova+DRS vs. holistic node-level scheduler",
        "independent scheduling across layers causes local optimization but "
        "global inefficiency; holistic node assignment should reduce "
        "fragmentation and forced fits (Section 7)");

    const outcome layered = run(false);
    const outcome holistic = run(true);

    table_printer table({"scheduler", "mean intra-BB stddev %",
                         "max intra-BB spread %", "forced fits", "failures",
                         "drs migrations"});
    const auto row = [&](const char* label, const outcome& o) {
        table.add_row({label, format_double(o.imbalance.mean_intra_bb_stddev_pct),
                       format_double(o.imbalance.max_intra_bb_spread_pct),
                       std::to_string(o.forced_fits), std::to_string(o.failures),
                       std::to_string(o.migrations)});
    };
    row("two-layer (Nova+DRS)", layered);
    row("holistic (node-level)", holistic);
    std::cout << table.to_string();
    std::cout << "\nexpected: holistic placement avoids the intra-BB "
                 "fragmentation blind spot (fewer forced fits)\n";
    return 0;
}
