// Streaming vs materialize-then-write dataset export: wall clock, row
// throughput, and — the point of the exercise — peak RSS.
//
// The materialized reference keeps every raw sample of the 30-day window
// resident until export_dataset walks the store; the streaming writer
// receives each finished day as the engine seals it, so raw residency
// never exceeds the compaction horizon (one open day).
//
// Both runs share one process and Linux VmHWM is monotone, so the order
// is load-bearing: the streamed run goes FIRST.  Its recorded peak cannot
// be inflated by the reference run, and the reference entry's peak is at
// least the true materialized footprint — a lower streamed number in
// BENCH_engine.json is a real bound, not a measurement artifact.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/engine.hpp"
#include "data/dataset.hpp"
#include "data/streaming_writer.hpp"

namespace {

struct export_run {
    double wall_ms = 0.0;
    std::uint64_t rows = 0;
    double peak_rss_mib = 0.0;
};

/// Simulate the full window with keep_raw and export it; streamed runs
/// flush day-sealed raw blocks as the window advances, the reference run
/// materializes everything and exports at the end.
export_run run_mode(bool streamed, const std::filesystem::path& dir) {
    sci::engine_config config;
    config.scenario.scale = sci::benchutil::env_scale();
    config.scenario.seed = 42;
    config.store.keep_raw = true;
    sci::sim_engine engine(config);
    std::filesystem::remove_all(dir);

    const auto begin = std::chrono::steady_clock::now();
    sci::dataset_export_report report;
    if (streamed) {
        sci::streaming_dataset_writer writer(engine.store(), dir);
        engine.enable_raw_streaming(writer.sink());
        engine.run();
        report = writer.finish();
    } else {
        engine.run();
        report = sci::export_dataset(engine.store(), dir);
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - begin)
                               .count();

    export_run result;
    result.wall_ms = wall_ms;
    result.rows = report.raw_rows + report.daily_rows;
    // stamp before the next mode runs: VmHWM only ever grows
    result.peak_rss_mib = sci::benchutil::process_peak_rss_mib();
    const int permille = static_cast<int>(config.scenario.scale * 1000.0 + 0.5);
    sci::benchutil::record_bench(
        "bm_export_window/scale=" + std::to_string(permille) + "m/mode=" +
            (streamed ? "streamed" : "materialized"),
        wall_ms, static_cast<double>(result.rows) / (wall_ms / 1000.0));
    std::printf("  %-12s  %10.0f ms  %12llu rows  peak RSS %8.1f MiB\n",
                streamed ? "streamed" : "materialized", wall_ms,
                static_cast<unsigned long long>(result.rows),
                result.peak_rss_mib);
    std::fflush(stdout);
    return result;
}

}  // namespace

int main() {
    sci::benchutil::print_header(
        "perf_export — streaming vs materialized raw export (keep_raw)",
        "full 30-day window exported in bounded memory");

    const auto base = std::filesystem::temp_directory_path() / "sci_perf_export";
    const export_run streamed = run_mode(true, base / "streamed");
    const export_run materialized = run_mode(false, base / "materialized");
    std::filesystem::remove_all(base);

    std::printf("\n  streamed peak / materialized peak = %.2f\n",
                streamed.peak_rss_mib / materialized.peak_rss_mib);
    if (streamed.peak_rss_mib >= materialized.peak_rss_mib) {
        std::printf(
            "  WARNING: streaming export did not lower peak RSS — the "
            "seal-and-free path regressed\n");
        return 1;
    }
    return 0;
}
