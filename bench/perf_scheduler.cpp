// Microbenchmark (google-benchmark): Nova filter/weigher pipeline
// throughput as a function of fleet size — the paper's Section 2.2 notes
// the scheduler must scan "the list of all hypervisors" per request, so
// per-request cost scales with the provider count.

#include <benchmark/benchmark.h>

#include "sched/scheduler.hpp"
#include "simcore/rng.hpp"

namespace {

std::vector<sci::host_state> make_hosts(int n, std::uint64_t seed) {
    using namespace sci;
    rng_stream rng(seed, "perf-sched");
    std::vector<host_state> hosts;
    hosts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        host_state h;
        h.bb = bb_id(i);
        h.az = az_id(static_cast<std::int32_t>(i % 2));
        h.dc = dc_id(static_cast<std::int32_t>(i % 2));
        h.purpose = i % 5 == 0 ? bb_purpose::hana : bb_purpose::general;
        h.node_count = 8;
        h.total_pcpus = 8 * 96;
        h.total_ram_mib = 8 * gib_to_mib(1024);
        h.total_disk_gib = 8 * 7680.0;
        h.cpu_allocation_ratio = 4.0;
        h.ram_allocation_ratio = 1.0;
        h.vcpus_used =
            static_cast<core_count>(rng.uniform(0.0, h.vcpu_capacity()));
        h.ram_used_mib =
            static_cast<mebibytes>(rng.uniform(0.0, h.ram_capacity_mib()));
        h.instances = static_cast<int>(rng.uniform_int(0, 400));
        hosts.push_back(h);
    }
    return hosts;
}

void bm_select_destinations(benchmark::State& state) {
    using namespace sci;
    const auto hosts = make_hosts(static_cast<int>(state.range(0)), 42);
    const filter_scheduler scheduler = make_default_scheduler();

    flavor f{.id = flavor_id(0),
             .name = "g_c4_m32",
             .vcpus = 4,
             .ram_mib = gib_to_mib(32),
             .disk_gib = 100.0,
             .wclass = workload_class::general_purpose};
    schedule_request request;
    request.vm = vm_id(0);
    request.flavor = f.id;
    request.project = project_id(0);
    const request_context ctx{request, f};

    for (auto _ : state) {
        auto result = scheduler.select_destinations(ctx, hosts, 5);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(hosts.size()));
}

void bm_score_hosts(benchmark::State& state) {
    using namespace sci;
    const auto hosts = make_hosts(static_cast<int>(state.range(0)), 7);
    const auto weighers = make_spread_weighers();

    flavor f{.id = flavor_id(0),
             .name = "g_c4_m32",
             .vcpus = 4,
             .ram_mib = gib_to_mib(32),
             .disk_gib = 100.0,
             .wclass = workload_class::general_purpose};
    schedule_request request;
    request.vm = vm_id(0);
    request.flavor = f.id;
    request.project = project_id(0);
    const request_context ctx{request, f};

    for (auto _ : state) {
        auto scores = score_hosts(hosts, ctx, weighers);
        benchmark::DoNotOptimize(scores);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(hosts.size()));
}

}  // namespace

BENCHMARK(bm_select_destinations)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(bm_score_hosts)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

BENCHMARK_MAIN();
