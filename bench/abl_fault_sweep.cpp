// Ablation: fault-injection sweep — how much failure the two-layer
// scheduler absorbs.  The paper's production fleet sees hypervisor
// failures and transient claim races that the published dataset only
// shows as NoValidHost events and re-placements; sci::fault makes the
// cause injectable.  Sweeping the host crash rate shows HA restart load,
// downtime (MTTR), scheduler pressure (NoValidHost, claim retries) and
// wasted migration work growing with the failure rate.

#include <chrono>
#include <iostream>

#include "analysis/render.hpp"
#include "common.hpp"
#include "fault/fault.hpp"

namespace {

struct outcome {
    sci::run_stats stats;
    std::uint64_t claim_failures = 0;
    std::uint64_t abandoned = 0;
    double mttr_s = 0.0;
    double wall_ms = 0.0;
    std::uint64_t samples = 0;
};

outcome run(double crash_rate_per_day) {
    sci::engine_config config = sci::benchutil::default_config();
    config.scenario.scale = std::min(config.scenario.scale, 0.05);
    config.fault.host_crash_rate_per_day = crash_rate_per_day;
    if (crash_rate_per_day > 0.0) {
        config.fault.claim_failure_probability = 0.05;
        config.fault.migration_abort_probability = 0.03;
        config.fault.degraded_node_fraction = 0.05;
    }
    const auto begin = std::chrono::steady_clock::now();
    sci::sim_engine engine(config);
    engine.run();
    outcome out;
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - begin)
                      .count();
    out.stats = engine.stats();
    out.claim_failures = engine.transient_claim_failures();
    if (engine.ha() != nullptr) {
        out.abandoned = engine.ha()->abandoned_vms();
        out.mttr_s = engine.ha()->mttr();
    }
    out.samples = engine.store().total_samples();
    return out;
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — fault injection sweep (sci::fault)",
        "production fleets lose hypervisors; HA re-placement exercises the "
        "scheduler's greedy-retry design and NoValidHost handling "
        "(Sections 3.1, 4)");

    const double rates[] = {0.0, 0.002, 0.01};
    table_printer table({"crash rate /node/day", "crashes", "victims",
                         "HA restarts", "abandoned", "MTTR s", "NoValidHost",
                         "claim fails", "mig aborts", "wasted mig s"});
    double total_wall_ms = 0.0;
    std::uint64_t total_samples = 0;
    for (const double rate : rates) {
        const outcome o = run(rate);
        total_wall_ms += o.wall_ms;
        total_samples += o.samples;
        table.add_row({format_double(rate, 3), std::to_string(o.stats.host_crashes),
                       std::to_string(o.stats.crash_victims),
                       std::to_string(o.stats.ha_restarts),
                       std::to_string(o.abandoned), format_double(o.mttr_s, 1),
                       std::to_string(o.stats.placement_failures),
                       std::to_string(o.claim_failures),
                       std::to_string(o.stats.migration_aborts),
                       format_double(o.stats.wasted_migration_seconds, 0)});
    }
    std::cout << table.to_string();
    std::cout << "\nexpected: restart load, NoValidHost and wasted migration "
                 "work grow with the crash rate; the zero row reproduces the "
                 "fault-free run\n";
    benchutil::record_bench(
        "abl_fault_sweep/rates=3", total_wall_ms,
        static_cast<double>(total_samples) / (total_wall_ms / 1000.0));
    return 0;
}
