// Ablation: live-migration cost across the flavor catalog — Section 3.2
// ("Avoiding migration of heavy VMs"): migrating memory-heavy VMs causes
// overhead and performance degradation; the cost model quantifies it and
// shows where the "never migrate" threshold comes from.

#include <iostream>

#include "analysis/render.hpp"
#include "common.hpp"
#include "drs/migration.hpp"
#include "infra/flavor.hpp"
#include "simcore/time.hpp"
#include "workload/flavor_mix.hpp"

int main() {
    using namespace sci;
    std::cout << "Ablation — live-migration cost per flavor (pre-copy model)\n"
              << "paper: migration of memory-heavy VMs should be avoided "
                 "(Section 3.2); the dedicated 10 Gbps migration link is the "
                 "bottleneck\n\n";

    flavor_catalog catalog;
    flavor_mix::standard(catalog);
    const migration_cost_config config;

    table_printer table({"flavor", "RAM", "busy dirty rate (MiB/s)", "rounds",
                         "duration", "downtime (ms)", "converges"});
    for (const flavor& f : catalog.all()) {
        // a busy VM: 60% of its vCPUs active
        const double active_cores = 0.6 * static_cast<double>(f.vcpus);
        const double dirty = estimate_dirty_rate(
            active_cores, f.wclass == workload_class::hana_db);
        // resident memory: 85% of the flavor for HANA, 60% otherwise
        const auto resident = static_cast<mebibytes>(
            (f.wclass == workload_class::hana_db ? 0.85 : 0.60) *
            static_cast<double>(f.ram_mib));
        const migration_estimate est =
            estimate_live_migration(resident, dirty, config);
        table.add_row(
            {f.name, format_double(mib_to_gib(f.ram_mib), 0) + " GiB",
             format_double(dirty, 0),
             std::to_string(est.precopy_rounds),
             format_duration(static_cast<sim_duration>(est.total_seconds)),
             format_double(est.downtime_ms, 1),
             est.converges ? "yes" : "NO"});
    }
    std::cout << table.to_string();
    std::cout << "\nexpected: small flavors migrate in seconds with "
                 "sub-second downtime; busy multi-TB HANA databases do not "
                 "converge — exactly why the fleet avoids migrating them\n";
    return 0;
}
