// Figure 15: VM lifetime per flavor grouped by vCPU and RAM class
// (flavors with >= 30 instances; lifetimes from minutes to years).

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"
#include "simcore/time.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 15 — VM lifetime per flavor (vCPU class x RAM class)",
        "lifetimes range from a few minutes to multiple years; "
        "memory-intensive flavors long-lived; no consistent size->lifetime "
        "correlation");

    sim_engine& engine = benchutil::shared_engine();
    const auto rows =
        fig15_lifetime_per_flavor(engine.vms(), engine.catalog(), 30);

    table_printer table({"flavor", "vCPU class", "RAM class", "n", "median",
                         "mean", "min", "max"});
    double global_min = 1e18, global_max = 0.0;
    for (const lifetime_row& r : rows) {
        table.add_row(
            {r.flavor_name + " (" + std::to_string(r.instances) + ")",
             r.vcpu_class_name, r.ram_class_name, std::to_string(r.instances),
             format_duration(static_cast<sim_duration>(r.median_days * 86400.0)),
             format_duration(static_cast<sim_duration>(r.mean_days * 86400.0)),
             format_duration(static_cast<sim_duration>(r.min_days * 86400.0)),
             format_duration(static_cast<sim_duration>(r.max_days * 86400.0))});
        global_min = std::min(global_min, r.min_days);
        global_max = std::max(global_max, r.max_days);
    }
    std::cout << table.to_string();
    std::cout << "\nlifetime range across flavors: "
              << format_duration(static_cast<sim_duration>(global_min * 86400.0))
              << " to "
              << format_duration(static_cast<sim_duration>(global_max * 86400.0))
              << " (paper: minutes to multiple years)\n";

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/fig15.csv");
    csv << "flavor,vcpus,ram_gib,vcpu_class,ram_class,instances,median_days,"
           "mean_days,min_days,max_days\n";
    for (const lifetime_row& r : rows) {
        csv << r.flavor_name << "," << r.vcpus << "," << mib_to_gib(r.ram_mib)
            << "," << r.vcpu_class_name << "," << r.ram_class_name << ","
            << r.instances << "," << r.median_days << "," << r.mean_days << ","
            << r.min_days << "," << r.max_days << "\n";
    }
    std::cout << "wrote bench_results/fig15.csv\n";
    return 0;
}
