// Figure 13: daily average percentage of free local storage per node
// within a single data center.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Figure 13 — daily avg % free local storage per node",
        "uneven distribution: 18% of hosts with >90% free storage, 7% using "
        "more than 30% (i.e. <70% free)");

    sim_engine& engine = benchutil::shared_engine();
    const fleet& f = engine.infrastructure();
    const dc_id dc = f.dcs().front().id;
    const heatmap hm = fig13_free_storage(engine.store(), f, dc);

    std::cout << render_heatmap_ascii(hm) << "\n";
    std::size_t very_free = 0, heavy = 0, total = 0;
    for (std::size_t c = 0; c < hm.columns.size(); ++c) {
        const double mean_free = hm.column_mean(c);
        if (heatmap::missing(mean_free)) continue;
        ++total;
        if (mean_free > 90.0) ++very_free;
        if (mean_free < 70.0) ++heavy;
    }
    if (total > 0) {
        std::cout << "hosts with >90% free storage: "
                  << format_double(100.0 * very_free / total)
                  << "% (paper: 18%)\n";
        std::cout << "hosts using >30% of storage:  "
                  << format_double(100.0 * heavy / total) << "% (paper: 7%)\n";
    }

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/fig13.csv");
    write_heatmap_csv(csv, hm);
    std::ofstream svg("bench_results/fig13.svg");
    svg_options svg_opts;
    svg_opts.title = "Figure 13 - % free local storage per node";
    svg_opts.x_label = "nodes";
    svg_opts.y_label = "day";
    write_heatmap_svg(svg, hm, svg_opts);
    std::cout << "wrote bench_results/fig13.csv, bench_results/fig13.svg\n";
    return 0;
}
