// Microbenchmark (google-benchmark): batched churn-arrival placement —
// how fast the event loop drains in-window arrivals through the
// speculate/commit pipeline at a given churn rate and thread count.
//
// bm_churn_placement args are {churn_permille, threads}: the run uses an
// hourly scrape interval so batches group several arrivals, threads = 0
// commits each batch inline (serial reference), N speculates batches on
// the pool.  Output is bit-identical either way (commit_speculation
// revalidates exactly), so the axis measures pure speedup.  wall_ms is
// the engine's own churn_placement_wall_ms — the drain only (speculation
// + commit + claim), excluding the rest of the event loop — and `run_ms`
// on the counter is the whole run() for context.  Results are recorded
// into BENCH_engine.json (see benchutil::record_bench) next to the
// perf_engine trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>
#include <string>

#include "common.hpp"
#include "core/engine.hpp"

namespace {

void bm_churn_placement(benchmark::State& state) {
    const double churn = static_cast<double>(state.range(0)) / 1000.0;
    const auto threads = static_cast<unsigned>(state.range(1));
    double best_ms = std::numeric_limits<double>::infinity();
    double arrivals_per_s = 0.0;
    for (auto _ : state) {
        sci::engine_config config;
        config.scenario.scale = 0.05;
        config.scenario.seed = 42;
        config.sampling_interval = 3600;
        config.population.daily_churn_fraction = churn;
        config.threads = threads;
        sci::sim_engine engine(config);
        const auto begin = std::chrono::steady_clock::now();
        engine.run();
        const double run_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - begin)
                                  .count();
        const sci::run_stats& stats = engine.stats();
        const double drain_ms = stats.churn_placement_wall_ms;
        const auto arrivals = stats.window_speculative_placements +
                              stats.window_speculation_misses;
        if (drain_ms < best_ms) {
            best_ms = drain_ms;
            arrivals_per_s =
                static_cast<double>(arrivals) / (drain_ms / 1000.0);
        }
        benchmark::DoNotOptimize(stats.placements);
        state.counters["run_ms"] = run_ms;
        state.counters["drain_ms"] = drain_ms;
        state.counters["arrivals"] = static_cast<double>(arrivals);
        state.counters["arrivals/s"] = arrivals_per_s;
        state.counters["batches"] = static_cast<double>(stats.window_batches);
        state.counters["spec_committed"] =
            static_cast<double>(stats.window_speculative_placements);
        state.counters["spec_invalidated"] =
            static_cast<double>(stats.window_speculation_invalidated);
    }
    sci::benchutil::record_bench("bm_churn_placement/churn=" +
                                     std::to_string(state.range(0)) +
                                     "m/threads=" + std::to_string(threads),
                                 best_ms, arrivals_per_s);
}

}  // namespace

BENCHMARK(bm_churn_placement)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({50, 4})
    ->Args({150, 0})
    ->Args({150, 1})
    ->Args({150, 4})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
