// Ablation: DRS on vs. off — Section 3.1: DRS "triggers automatic
// migrations of VMs from over-utilized to less utilized hosts".  With DRS
// disabled, intra-BB imbalance and node-level contention should rise.
//
// Both arms fork one shared snapshot taken right after the initial
// placement settles (sci::snapshot): the population build and first
// scrape are paid once instead of per arm.  The legacy run-per-arm path
// is kept and timed so the recorded arm-setup speedup stays honest.

#include <chrono>
#include <iostream>
#include <memory>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"
#include "snapshot/snapshot.hpp"

namespace {

struct outcome {
    sci::imbalance_summary imbalance;
    double worst_contention = 0.0;
    std::uint64_t migrations = 0;
};

sci::engine_config arm_config() {
    sci::engine_config config = sci::benchutil::default_config();
    config.scenario.scale = std::min(config.scenario.scale, 0.05);
    return config;
}

outcome measure(sci::sim_engine& engine) {
    outcome out;
    out.imbalance =
        sci::intra_bb_imbalance(engine.store(), engine.infrastructure());
    for (const auto& day : sci::fig9_contention_by_day(engine.store())) {
        out.worst_contention = std::max(out.worst_contention, day.max_pct);
    }
    out.migrations = engine.stats().drs_migrations;
    return out;
}

outcome run_legacy(bool drs_enabled) {
    sci::engine_config config = arm_config();
    config.drs.enabled = drs_enabled;
    sci::sim_engine engine(config);
    engine.run();
    return measure(engine);
}

outcome run_fork(const sci::snapshot::shared_snapshot& base,
                 bool drs_enabled) {
    std::unique_ptr<sci::sim_engine> engine = sci::snapshot::fork(base);
    engine->set_drs_enabled(drs_enabled);
    engine->run();
    return measure(*engine);
}

double ms_since(std::chrono::steady_clock::time_point begin) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — DRS rebalancing on vs. off",
        "DRS keeps vSphere clusters balanced; without it, fragmentation and "
        "imbalanced resource distribution arise within clusters (Section 3.1)");

    // untimed warmup: the process's first full window pays allocator
    // growth and page faults that neither path should own
    {
        sim_engine warmup(arm_config());
        warmup.run();
    }

    // fork path: one shared prefix (setup + first scrape), two forks
    auto begin = std::chrono::steady_clock::now();
    snapshot::shared_snapshot base;
    {
        sim_engine prefix(arm_config());
        prefix.setup();
        prefix.run_until(0);  // initial scrape: the arms diverge after it
        base = snapshot::share(snapshot::capture(prefix));
    }
    const outcome on = run_fork(base, true);
    const outcome off = run_fork(base, false);
    const double fork_ms = ms_since(begin);

    // legacy path: full engine per arm (the pre-snapshot behaviour)
    begin = std::chrono::steady_clock::now();
    const outcome legacy_on = run_legacy(true);
    const outcome legacy_off = run_legacy(false);
    const double legacy_ms = ms_since(begin);

    table_printer table({"DRS", "arms", "migrations", "mean intra-BB stddev %",
                         "max intra-BB spread %", "max node util %",
                         "worst contention %"});
    const auto row = [&](const char* label, const char* arms,
                         const outcome& o) {
        table.add_row({label, arms, std::to_string(o.migrations),
                       format_double(o.imbalance.mean_intra_bb_stddev_pct),
                       format_double(o.imbalance.max_intra_bb_spread_pct),
                       format_double(o.imbalance.max_node_util_pct),
                       format_double(o.worst_contention)});
    };
    row("on", "fork", on);
    row("off", "fork", off);
    row("on", "legacy", legacy_on);
    row("off", "legacy", legacy_off);
    std::cout << table.to_string();
    std::cout << "\nfork-from-snapshot arms: " << format_double(fork_ms)
              << " ms vs legacy run-per-arm " << format_double(legacy_ms)
              << " ms (" << format_double(legacy_ms / fork_ms) << "x)\n";
    std::cout << "expected: DRS-off shows higher intra-BB imbalance, and "
                 "fork/legacy arms agree\n";
    const bool arms_agree = on.migrations == legacy_on.migrations &&
                            off.migrations == legacy_off.migrations;
    if (!arms_agree) std::cout << "WARNING: fork and legacy arms diverged\n";
    // second column records the fork-over-legacy arm-setup speedup
    benchutil::record_bench("abl_drs_onoff/fork_arms=2", fork_ms,
                            legacy_ms / fork_ms);
    benchutil::record_bench("abl_drs_onoff/legacy_arms=2", legacy_ms, 0.0);
    return arms_agree ? 0 : 1;
}
