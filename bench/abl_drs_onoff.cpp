// Ablation: DRS on vs. off — Section 3.1: DRS "triggers automatic
// migrations of VMs from over-utilized to less utilized hosts".  With DRS
// disabled, intra-BB imbalance and node-level contention should rise.

#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"

namespace {

struct outcome {
    sci::imbalance_summary imbalance;
    double worst_contention = 0.0;
    std::uint64_t migrations = 0;
};

outcome run(bool drs_enabled) {
    sci::engine_config config = sci::benchutil::default_config();
    config.scenario.scale = std::min(config.scenario.scale, 0.05);
    config.drs.enabled = drs_enabled;
    sci::sim_engine engine(config);
    engine.run();
    outcome out;
    out.imbalance = sci::intra_bb_imbalance(engine.store(), engine.infrastructure());
    for (const auto& day : sci::fig9_contention_by_day(engine.store())) {
        out.worst_contention = std::max(out.worst_contention, day.max_pct);
    }
    out.migrations = engine.stats().drs_migrations;
    return out;
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — DRS rebalancing on vs. off",
        "DRS keeps vSphere clusters balanced; without it, fragmentation and "
        "imbalanced resource distribution arise within clusters (Section 3.1)");

    const outcome on = run(true);
    const outcome off = run(false);

    table_printer table({"DRS", "migrations", "mean intra-BB stddev %",
                         "max intra-BB spread %", "max node util %",
                         "worst contention %"});
    const auto row = [&](const char* label, const outcome& o) {
        table.add_row({label, std::to_string(o.migrations),
                       format_double(o.imbalance.mean_intra_bb_stddev_pct),
                       format_double(o.imbalance.max_intra_bb_spread_pct),
                       format_double(o.imbalance.max_node_util_pct),
                       format_double(o.worst_contention)});
    };
    row("on", on);
    row("off", off);
    std::cout << table.to_string();
    std::cout << "\nexpected: DRS-off shows higher intra-BB imbalance\n";
    return 0;
}
