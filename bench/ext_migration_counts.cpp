// Extension (paper §8 outlook): "we plan to add additional metrics such
// as performance of VMs and hypervisors, and the number of VM
// migrations."  The event log already records every migration, so this
// bench produces the future-work figure ahead of the authors: daily
// creations, deletions and migrations, plus the migration cost bill.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/render.hpp"
#include "common.hpp"

int main() {
    using namespace sci;
    benchutil::print_header(
        "Extension — daily scheduling events & migration counts (paper §8)",
        "the paper plans to publish VM migration counts as a future metric; "
        "the reproduced dataset already carries them in events.csv");

    sim_engine& engine = benchutil::shared_engine();
    const event_log& log = engine.events();

    const auto creates = log.daily_counts(lifecycle_event_kind::create);
    const auto removes = log.daily_counts(lifecycle_event_kind::remove);
    const auto migrations = log.daily_counts(lifecycle_event_kind::migrate);
    const auto evacuations = log.daily_counts(lifecycle_event_kind::evacuate);
    const auto resizes = log.daily_counts(lifecycle_event_kind::resize);

    table_printer table({"day", "creates", "deletes", "migrations",
                         "evacuations", "resizes"});
    int total_migrations = 0;
    for (int day = 0; day < observation_days; ++day) {
        const auto idx = static_cast<std::size_t>(day);
        table.add_row({std::to_string(day), std::to_string(creates[idx]),
                       std::to_string(removes[idx]),
                       std::to_string(migrations[idx]),
                       std::to_string(evacuations[idx]),
                       std::to_string(resizes[idx])});
        total_migrations += migrations[idx];
    }
    std::cout << table.to_string();

    const run_stats& stats = engine.stats();
    std::cout << "\nwindow totals: "
              << log.count(lifecycle_event_kind::create) << " creates, "
              << log.count(lifecycle_event_kind::remove) << " deletes, "
              << total_migrations << " migrations, "
              << log.count(lifecycle_event_kind::evacuate)
              << " evacuations, " << log.count(lifecycle_event_kind::resize)
              << " resizes; estimated migration wall-clock "
              << format_double(stats.migration_seconds, 0)
              << " s, worst stop-and-copy downtime "
              << format_double(stats.max_migration_downtime_ms, 1) << " ms\n";

    std::filesystem::create_directories("bench_results");
    std::ofstream csv("bench_results/ext_migrations.csv");
    csv << "day,creates,deletes,migrations,evacuations,resizes\n";
    for (int day = 0; day < observation_days; ++day) {
        const auto idx = static_cast<std::size_t>(day);
        csv << day << "," << creates[idx] << "," << removes[idx] << ","
            << migrations[idx] << "," << evacuations[idx] << ","
            << resizes[idx] << "\n";
    }
    std::cout << "wrote bench_results/ext_migrations.csv\n";
    return 0;
}
