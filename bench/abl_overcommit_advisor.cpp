// Ablation: the workload-based overcommit advisor (Section 7: "A more
// dynamic and workload-based approach to determine the overcommit factor
// ... might help").  Runs the region with the static default ratio, asks
// the advisor for a data-driven ratio, re-runs with it, and compares.

#include <iostream>
#include <limits>

#include "analysis/advisor.hpp"
#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"

namespace {

struct outcome {
    double worst_mean = 0.0;
    double worst_max = 0.0;
    std::uint64_t failures = 0;
    std::uint64_t placements = 0;
};

outcome measure(const sci::sim_engine& engine) {
    outcome out;
    for (const auto& day : sci::fig9_contention_by_day(engine.store())) {
        out.worst_mean = std::max(out.worst_mean, day.mean_pct);
        out.worst_max = std::max(out.worst_max, day.max_pct);
    }
    out.failures = engine.stats().placement_failures;
    out.placements = engine.stats().placements;
    return out;
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — static vs. advisor-recommended overcommit factor",
        "a workload-based overcommit factor mitigates contention without "
        "wasting capacity (Section 7)");

    engine_config config = benchutil::default_config();
    config.scenario.scale = std::min(config.scenario.scale, 0.05);

    std::cout << "pass 1: static default ratio ...\n";
    sim_engine baseline(config);
    baseline.run();
    const outcome before = measure(baseline);

    // advisor pass: recommendations from the observed month
    const auto recs = recommend_cpu_overcommit(
        baseline.store(), baseline.infrastructure(), baseline.placement(), {});
    // conservative global choice: the *minimum* general-BB recommendation
    // (one hot BB must cap the fleet-wide ratio; the engine only supports a
    // global override)
    double general_min = std::numeric_limits<double>::infinity();
    int general_n = 0;
    table_printer rec_table({"building block", "purpose", "current", "p95 util %",
                             "max contention %", "recommended"});
    for (const overcommit_recommendation& r : recs) {
        rec_table.add_row({r.bb_name, std::string(to_string(r.purpose)),
                           format_double(r.current_ratio),
                           format_double(r.observed_p95_util_pct),
                           format_double(r.observed_max_contention_pct),
                           format_double(r.recommended_ratio)});
        if (r.purpose == bb_purpose::general) {
            general_min = std::min(general_min, r.recommended_ratio);
            ++general_n;
        }
    }
    std::cout << rec_table.to_string() << "\n";
    if (general_n == 0) {
        std::cout << "no general-purpose recommendations; aborting\n";
        return 0;
    }
    const double recommended = general_min;
    std::cout << "pass 2: advisor ratio " << format_double(recommended)
              << " on general BBs ...\n";
    config.gp_cpu_allocation_ratio_override = recommended;
    sim_engine tuned(config);
    tuned.run();
    const outcome after = measure(tuned);

    table_printer table({"configuration", "worst daily mean %", "worst max %",
                         "failures", "placements"});
    table.add_row({"static 4.0", format_double(before.worst_mean),
                   format_double(before.worst_max),
                   std::to_string(before.failures),
                   std::to_string(before.placements)});
    table.add_row({"advisor " + format_double(recommended),
                   format_double(after.worst_mean),
                   format_double(after.worst_max),
                   std::to_string(after.failures),
                   std::to_string(after.placements)});
    std::cout << "\n" << table.to_string();
    std::cout << "\nexpected: the advisor trades idle overcommit headroom "
                 "against the observed contention envelope\n";
    return 0;
}
