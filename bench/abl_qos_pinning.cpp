// Ablation: CPU-pinning QoS for memory-intensive VMs — the paper's §8
// future work: "CPU-pinning ... ensures reduced latency to
// performance-sensitive VMs by reserving dedicated CPU cores on hosts.
// In our future work, we plan to evaluate OpenStack QoS classes."
//
// Marks the HANA DB flavors as pinned and compares the contention
// envelope on HANA building blocks against the unpinned baseline (shared
// pools shrink, so the *general* pool trade-off is visible too).

#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "common.hpp"

namespace {

struct outcome {
    double hana_worst_max = 0.0;     ///< worst node contention on hana BBs
    double general_worst_max = 0.0;  ///< worst node contention on general BBs
    std::uint64_t failures = 0;
};

outcome run(bool pin_hana) {
    sci::engine_config config = sci::benchutil::default_config();
    config.scenario.scale = std::min(config.scenario.scale, 0.05);
    sci::scenario sc = sci::make_regional_scenario(config.scenario);
    if (pin_hana) {
        for (const sci::flavor& f : sc.catalog.all()) {
            if (f.wclass == sci::workload_class::hana_db) {
                sc.catalog.set_cpu_pinned(f.id, true);
            }
        }
    }
    sci::sim_engine engine(config, std::move(sc));
    engine.run();

    outcome out;
    out.failures = engine.stats().placement_failures;
    // split worst contention by BB purpose
    for (const sci::building_block& bb : engine.infrastructure().bbs()) {
        const std::vector<std::pair<std::string, std::string>> filter{
            {"bb", bb.name}};
        double worst = 0.0;
        for (sci::series_id id : engine.store().select(
                 sci::metric_names::host_cpu_contention, filter)) {
            const sci::running_stats agg = engine.store().window_aggregate(id);
            if (!agg.empty()) worst = std::max(worst, agg.max());
        }
        if (bb.purpose == sci::bb_purpose::hana ||
            bb.purpose == sci::bb_purpose::dedicated_xl) {
            out.hana_worst_max = std::max(out.hana_worst_max, worst);
        } else {
            out.general_worst_max = std::max(out.general_worst_max, worst);
        }
    }
    return out;
}

}  // namespace

int main() {
    using namespace sci;
    benchutil::print_header(
        "Ablation — CPU-pinning QoS for HANA DB flavors (paper §8 future work)",
        "pinning reserves dedicated cores for performance-sensitive VMs, "
        "removing them from CPU contention entirely");

    const outcome unpinned = run(false);
    const outcome pinned = run(true);

    table_printer table({"QoS", "worst HANA-BB contention %",
                         "worst general-BB contention %", "failures"});
    table.add_row({"shared vCPUs (baseline)",
                   format_double(unpinned.hana_worst_max),
                   format_double(unpinned.general_worst_max),
                   std::to_string(unpinned.failures)});
    table.add_row({"HANA DB pinned", format_double(pinned.hana_worst_max),
                   format_double(pinned.general_worst_max),
                   std::to_string(pinned.failures)});
    std::cout << table.to_string();
    std::cout << "\nexpected: pinning eliminates contention on HANA hosts "
                 "(pinned VMs cannot be starved); general BBs are unaffected\n";
    return 0;
}
