// Tests for drs/migration: the iterative pre-copy live-migration model
// behind the "avoid migrating heavy VMs" constraint (Section 3.2).

#include "drs/migration.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

TEST(MigrationModelTest, IdleVmIsOneRoundPlusTinyDowntime) {
    // no dirtying: round 0 moves everything, stop-and-copy is empty
    const migration_estimate est =
        estimate_live_migration(gib_to_mib(16), 0.0);
    EXPECT_TRUE(est.converges);
    EXPECT_EQ(est.precopy_rounds, 1);
    EXPECT_NEAR(est.total_seconds, 16.0 * 1024.0 / 1192.0, 1e-6);
    EXPECT_NEAR(est.downtime_ms, 0.0, 1e-9);
    EXPECT_NEAR(est.transferred_mib, 16.0 * 1024.0, 1e-9);
}

TEST(MigrationModelTest, TinyVmGoesStraightToStopAndCopy) {
    // resident below the stop-and-copy threshold: zero pre-copy rounds
    const migration_estimate est = estimate_live_migration(128, 50.0);
    EXPECT_TRUE(est.converges);
    EXPECT_EQ(est.precopy_rounds, 0);
    EXPECT_NEAR(est.downtime_ms, 128.0 / 1192.0 * 1000.0, 1e-6);
}

TEST(MigrationModelTest, DirtyPagesAddRounds) {
    const migration_estimate clean = estimate_live_migration(gib_to_mib(64), 0.0);
    const migration_estimate busy =
        estimate_live_migration(gib_to_mib(64), 300.0);
    EXPECT_TRUE(busy.converges);
    EXPECT_GT(busy.precopy_rounds, clean.precopy_rounds);
    EXPECT_GT(busy.total_seconds, clean.total_seconds);
    EXPECT_GT(busy.transferred_mib, clean.transferred_mib);
}

TEST(MigrationModelTest, DowntimeBoundedByThreshold) {
    migration_cost_config config;
    const migration_estimate est =
        estimate_live_migration(gib_to_mib(256), 500.0, config);
    ASSERT_TRUE(est.converges);
    // converged stop-and-copy moves at most the threshold
    EXPECT_LE(est.downtime_ms, static_cast<double>(config.stop_and_copy_mib) /
                                       config.bandwidth_mib_per_s * 1000.0 +
                                   1e-6);
}

TEST(MigrationModelTest, DirtyRateAtBandwidthNeverConverges) {
    migration_cost_config config;
    const migration_estimate est = estimate_live_migration(
        gib_to_mib(512), config.bandwidth_mib_per_s, config);
    EXPECT_FALSE(est.converges);
    // full resident set copied while paused: massive downtime
    EXPECT_NEAR(est.downtime_ms,
                512.0 * 1024.0 / config.bandwidth_mib_per_s * 1000.0, 1e-3);
}

TEST(MigrationModelTest, RoundBudgetForcesStopAndCopy) {
    migration_cost_config config;
    config.max_precopy_rounds = 2;
    // high (but converging) dirty rate: after 2 rounds a large set remains
    const migration_estimate est =
        estimate_live_migration(gib_to_mib(128), 800.0, config);
    EXPECT_TRUE(est.converges);
    EXPECT_EQ(est.precopy_rounds, 2);
    EXPECT_GT(est.downtime_ms,
              static_cast<double>(config.stop_and_copy_mib) /
                  config.bandwidth_mib_per_s * 1000.0);
}

TEST(MigrationModelTest, HeavyVmMigrationIsExpensive) {
    // the paper's point: a 12 TB in-memory database is not migratable in
    // any reasonable window
    const double dirty = estimate_dirty_rate(64.0, /*memory_intensive=*/true);
    const migration_estimate est =
        estimate_live_migration(gib_to_mib(12288), dirty);
    EXPECT_FALSE(est.converges);
}

TEST(MigrationModelTest, FasterLinkShortensMigration) {
    migration_cost_config slow;
    slow.bandwidth_mib_per_s = 500.0;
    migration_cost_config fast;
    fast.bandwidth_mib_per_s = 5000.0;
    const migration_estimate a =
        estimate_live_migration(gib_to_mib(64), 100.0, slow);
    const migration_estimate b =
        estimate_live_migration(gib_to_mib(64), 100.0, fast);
    EXPECT_GT(a.total_seconds, b.total_seconds);
    EXPECT_GE(a.downtime_ms, b.downtime_ms);
}

TEST(MigrationModelTest, ZeroMemoryIsFree) {
    const migration_estimate est = estimate_live_migration(0, 100.0);
    EXPECT_TRUE(est.converges);
    EXPECT_DOUBLE_EQ(est.total_seconds, 0.0);
    EXPECT_DOUBLE_EQ(est.downtime_ms, 0.0);
}

TEST(MigrationModelTest, RejectsBadInput) {
    EXPECT_THROW(estimate_live_migration(-1, 0.0), precondition_error);
    EXPECT_THROW(estimate_live_migration(1, -1.0), precondition_error);
    migration_cost_config config;
    config.bandwidth_mib_per_s = 0.0;
    EXPECT_THROW(estimate_live_migration(1, 0.0, config), precondition_error);
}

TEST(DirtyRateTest, ScalesWithCoresAndWorkloadClass) {
    EXPECT_DOUBLE_EQ(estimate_dirty_rate(0.0, false), 0.0);
    EXPECT_GT(estimate_dirty_rate(4.0, false), estimate_dirty_rate(2.0, false));
    EXPECT_GT(estimate_dirty_rate(4.0, true), estimate_dirty_rate(4.0, false));
    EXPECT_THROW(estimate_dirty_rate(-1.0, false), precondition_error);
}

}  // namespace
}  // namespace sci
