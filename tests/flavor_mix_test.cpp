// Tests for workload/flavor_mix: the standard catalog whose sampling
// marginals reproduce Tables 1 and 2 of the paper.

#include "workload/flavor_mix.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "simcore/error.hpp"

namespace sci {
namespace {

TEST(FlavorMixTest, StandardCatalogRegistersFlavors) {
    flavor_catalog catalog;
    const flavor_mix mix = flavor_mix::standard(catalog);
    EXPECT_GE(catalog.size(), 15u);
    EXPECT_EQ(mix.weights().size(), catalog.size());
    // weights sum to ~1
    double total = 0.0;
    for (const flavor_weight& w : mix.weights()) total += w.weight;
    EXPECT_NEAR(total, 1.0, 0.001);
}

TEST(FlavorMixTest, ContainsThePaper12TbFlavor) {
    flavor_catalog catalog;
    flavor_mix::standard(catalog);
    const auto id = catalog.find("hana_c224_m12288");
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(catalog.get(*id).ram_mib, gib_to_mib(12288));  // Table 3: 12 TB max
    EXPECT_TRUE(catalog.get(*id).requires_dedicated_bb());
}

TEST(FlavorMixTest, WorkloadClassesPresent) {
    flavor_catalog catalog;
    flavor_mix::standard(catalog);
    std::map<workload_class, int> classes;
    for (const flavor& f : catalog.all()) ++classes[f.wclass];
    EXPECT_GT(classes[workload_class::general_purpose], 0);
    EXPECT_GT(classes[workload_class::s4hana_app], 0);
    EXPECT_GT(classes[workload_class::hana_db], 0);
}

// Expected-count marginals must reproduce Tables 1 & 2 (exact arithmetic,
// no sampling noise).
TEST(FlavorMixTest, ExpectedCountsReproduceTable1Marginals) {
    flavor_catalog catalog;
    const flavor_mix mix = flavor_mix::standard(catalog);
    std::array<double, 4> by_class{};
    for (const auto& [id, count] : mix.expected_counts(45356.0)) {
        by_class[static_cast<std::size_t>(catalog.get(id).cpu_class())] += count;
    }
    // paper Table 1: 28,446 / 14,340 / 1,831 / 738 (tolerance: our joint
    // cells quantize to 0.01%)
    EXPECT_NEAR(by_class[0], 28446, 300);
    EXPECT_NEAR(by_class[1], 14340, 300);
    EXPECT_NEAR(by_class[2], 1831, 60);
    EXPECT_NEAR(by_class[3], 738, 30);
}

TEST(FlavorMixTest, ExpectedCountsReproduceTable2Marginals) {
    flavor_catalog catalog;
    const flavor_mix mix = flavor_mix::standard(catalog);
    std::array<double, 4> by_class{};
    for (const auto& [id, count] : mix.expected_counts(45357.0)) {
        by_class[static_cast<std::size_t>(catalog.get(id).memory_class())] +=
            count;
    }
    // paper Table 2: 991 / 41,395 / 787 / 2,184
    EXPECT_NEAR(by_class[0], 991, 40);
    EXPECT_NEAR(by_class[1], 41395, 300);
    EXPECT_NEAR(by_class[2], 787, 40);
    EXPECT_NEAR(by_class[3], 2184, 80);
}

TEST(FlavorMixTest, SamplingConvergesToWeights) {
    flavor_catalog catalog;
    const flavor_mix mix = flavor_mix::standard(catalog);
    rng_stream rng(42, "mix-test");
    std::map<std::int32_t, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[mix.sample(rng).value()];
    for (const flavor_weight& w : mix.weights()) {
        const double observed =
            static_cast<double>(counts[w.id.value()]) / static_cast<double>(n);
        EXPECT_NEAR(observed, w.weight, 0.01) << catalog.get(w.id).name;
    }
}

TEST(FlavorMixTest, SamplingIsDeterministic) {
    flavor_catalog catalog;
    const flavor_mix mix = flavor_mix::standard(catalog);
    rng_stream a(7, "s");
    rng_stream b(7, "s");
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(mix.sample(a), mix.sample(b));
    }
}

TEST(FlavorMixTest, CustomWeightsValidated) {
    EXPECT_THROW(flavor_mix({}), precondition_error);
    EXPECT_THROW(flavor_mix({{flavor_id(0), 0.0}}), precondition_error);
    EXPECT_THROW(flavor_mix({{flavor_id(0), -1.0}}), precondition_error);
}

TEST(FlavorMixTest, ExpectedCountsScaleLinearly) {
    flavor_catalog catalog;
    const flavor_mix mix = flavor_mix::standard(catalog);
    const auto at_100 = mix.expected_counts(100.0);
    const auto at_200 = mix.expected_counts(200.0);
    for (std::size_t i = 0; i < at_100.size(); ++i) {
        EXPECT_NEAR(at_200[i].second, 2.0 * at_100[i].second, 1e-9);
    }
}

}  // namespace
}  // namespace sci
