// Determinism guard for the parallel scrape pipeline: the same scenario
// played serially (threads = 0), with one worker, and with four workers
// must produce bit-identical engine stats and telemetry aggregates.  The
// pipeline shards demand by a fixed shard count and reduces in shard
// order, so this holds exactly — not just approximately.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"

namespace sci {
namespace {

std::unique_ptr<sim_engine> run_with_threads(unsigned threads) {
    engine_config config;
    config.scenario.scale = 0.02;  // ~36 nodes, ~960 VMs
    config.scenario.seed = 11;
    config.sampling_interval = 900;
    config.threads = threads;
    auto engine = std::make_unique<sim_engine>(config);
    engine->run();
    return engine;
}

/// The three engines under comparison (expensive; built once).
const std::vector<std::unique_ptr<sim_engine>>& engines() {
    static auto* runs = [] {
        auto* v = new std::vector<std::unique_ptr<sim_engine>>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            v->push_back(run_with_threads(threads));
        }
        return v;
    }();
    return *runs;
}

void expect_stats_equal(const run_stats& a, const run_stats& b) {
    EXPECT_EQ(a.placements, b.placements);
    EXPECT_EQ(a.placement_failures, b.placement_failures);
    EXPECT_EQ(a.scheduler_retries, b.scheduler_retries);
    EXPECT_EQ(a.drs_migrations, b.drs_migrations);
    EXPECT_EQ(a.evacuations, b.evacuations);
    EXPECT_EQ(a.forced_fits, b.forced_fits);
    EXPECT_EQ(a.holistic_claim_rejections, b.holistic_claim_rejections);
    EXPECT_EQ(a.deletions, b.deletions);
    EXPECT_EQ(a.scrapes, b.scrapes);
    EXPECT_EQ(a.cross_bb_moves, b.cross_bb_moves);
    EXPECT_EQ(a.resizes, b.resizes);
    EXPECT_EQ(a.resize_failures, b.resize_failures);
    EXPECT_EQ(a.migration_seconds, b.migration_seconds);  // bitwise: ==
    EXPECT_EQ(a.max_migration_downtime_ms, b.max_migration_downtime_ms);
    EXPECT_EQ(a.speculative_placements, b.speculative_placements);
    EXPECT_EQ(a.speculation_misses, b.speculation_misses);
    EXPECT_EQ(a.window_batches, b.window_batches);
    EXPECT_EQ(a.window_speculations, b.window_speculations);
    EXPECT_EQ(a.window_speculative_placements, b.window_speculative_placements);
    EXPECT_EQ(a.window_speculation_misses, b.window_speculation_misses);
    EXPECT_EQ(a.window_speculation_invalidated, b.window_speculation_invalidated);
    // churn_placement_wall_ms is host timing, deliberately not compared
    // initial_placement_wall_ms is host timing, deliberately not compared
    EXPECT_EQ(a.recovery_batches, b.recovery_batches);
    EXPECT_EQ(a.recovery_speculations, b.recovery_speculations);
    EXPECT_EQ(a.recovery_speculative_placements,
              b.recovery_speculative_placements);
    EXPECT_EQ(a.recovery_speculation_misses, b.recovery_speculation_misses);
    EXPECT_EQ(a.recovery_speculation_invalidated,
              b.recovery_speculation_invalidated);
    EXPECT_EQ(a.recovery_speculation_cancelled,
              b.recovery_speculation_cancelled);
    // recovery_placement_wall_ms is host timing, deliberately not compared
    EXPECT_EQ(a.rebalance_target_speculations, b.rebalance_target_speculations);
    EXPECT_EQ(a.rebalance_targets_used, b.rebalance_targets_used);
    EXPECT_EQ(a.rebalance_target_invalidated, b.rebalance_target_invalidated);
    EXPECT_EQ(a.host_crashes, b.host_crashes);
    EXPECT_EQ(a.crash_victims, b.crash_victims);
    EXPECT_EQ(a.ha_restarts, b.ha_restarts);
    EXPECT_EQ(a.ha_restart_failures, b.ha_restart_failures);
    EXPECT_EQ(a.migration_aborts, b.migration_aborts);
    EXPECT_EQ(a.maintenance_evacuations, b.maintenance_evacuations);
    EXPECT_EQ(a.wasted_migration_seconds, b.wasted_migration_seconds);
}

TEST(ParallelScrapeTest, StatsAreBitIdenticalAcrossThreadCounts) {
    const auto& runs = engines();
    expect_stats_equal(runs[0]->stats(), runs[1]->stats());
    expect_stats_equal(runs[0]->stats(), runs[2]->stats());
}

TEST(ParallelScrapeTest, StoreCountersAreIdenticalAcrossThreadCounts) {
    const auto& runs = engines();
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[0]->store().total_samples(),
                  runs[i]->store().total_samples());
        EXPECT_EQ(runs[0]->store().dropped_samples(),
                  runs[i]->store().dropped_samples());
        EXPECT_EQ(runs[0]->store().series_count(),
                  runs[i]->store().series_count());
    }
}

/// Compare window aggregates of every k-th series of a metric, bitwise.
void expect_series_aggregates_equal(const metric_store& a,
                                    const metric_store& b,
                                    std::string_view metric,
                                    std::size_t stride) {
    const std::vector<series_id> sa = a.select(metric);
    const std::vector<series_id> sb = b.select(metric);
    ASSERT_EQ(sa.size(), sb.size()) << metric;
    ASSERT_FALSE(sa.empty()) << metric;
    for (std::size_t i = 0; i < sa.size(); i += stride) {
        // same open order ⇒ same ids ⇒ same labels
        ASSERT_EQ(a.labels_of(sa[i]), b.labels_of(sb[i])) << metric;
        const running_stats wa = a.window_aggregate(sa[i]);
        const running_stats wb = b.window_aggregate(sb[i]);
        EXPECT_EQ(wa.count(), wb.count()) << metric << " series " << i;
        EXPECT_EQ(wa.mean(), wb.mean()) << metric << " series " << i;
        EXPECT_EQ(wa.max(), wb.max()) << metric << " series " << i;
        EXPECT_EQ(wa.min(), wb.min()) << metric << " series " << i;
    }
}

TEST(ParallelScrapeTest, NodeSeriesAggregatesAreBitIdentical) {
    const auto& runs = engines();
    using namespace metric_names;
    for (std::size_t i = 1; i < runs.size(); ++i) {
        expect_series_aggregates_equal(runs[0]->store(), runs[i]->store(),
                                       host_cpu_core_utilization, 5);
        expect_series_aggregates_equal(runs[0]->store(), runs[i]->store(),
                                       host_cpu_contention, 5);
        expect_series_aggregates_equal(runs[0]->store(), runs[i]->store(),
                                       host_cpu_ready, 5);
        expect_series_aggregates_equal(runs[0]->store(), runs[i]->store(),
                                       host_memory_usage, 5);
    }
}

TEST(ParallelScrapeTest, VmSeriesAggregatesAreBitIdentical) {
    const auto& runs = engines();
    using namespace metric_names;
    for (std::size_t i = 1; i < runs.size(); ++i) {
        expect_series_aggregates_equal(runs[0]->store(), runs[i]->store(),
                                       vm_cpu_usage_ratio, 37);
        expect_series_aggregates_equal(runs[0]->store(), runs[i]->store(),
                                       vm_memory_consumed_ratio, 37);
        expect_series_aggregates_equal(runs[0]->store(), runs[i]->store(),
                                       os_instances_total, 1);
    }
}

TEST(ParallelScrapeTest, VmPlacementsAreIdenticalAcrossThreadCounts) {
    const auto& runs = engines();
    const auto a = runs[0]->vms().all();
    const auto b = runs[2]->vms().all();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].state, b[i].state);
        EXPECT_EQ(a[i].placed_bb, b[i].placed_bb);
        EXPECT_EQ(a[i].placed_node, b[i].placed_node);
        EXPECT_EQ(a[i].migration_count, b[i].migration_count);
    }
}

}  // namespace
}  // namespace sci
