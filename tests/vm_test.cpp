// Tests for infra/vm: VM records, lifecycle semantics, registry queries.

#include "infra/vm.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

TEST(VmRegistryTest, CreateAssignsSequentialIdsAndNames) {
    vm_registry vms;
    const vm_id a = vms.create(flavor_id(0), project_id(1), 100);
    const vm_id b = vms.create(flavor_id(1), project_id(2), 200);
    EXPECT_EQ(a.value(), 0);
    EXPECT_EQ(b.value(), 1);
    EXPECT_NE(vms.get(a).name, vms.get(b).name);
    EXPECT_TRUE(vms.get(a).name.starts_with("vm-"));
    EXPECT_EQ(vms.get(a).state, vm_state::pending);
    EXPECT_EQ(vms.get(a).created_at, 100);
    EXPECT_EQ(vms.size(), 2u);
}

TEST(VmRegistryTest, CreateRejectsInvalidFlavor) {
    vm_registry vms;
    EXPECT_THROW(vms.create(flavor_id(), project_id(0), 0), precondition_error);
}

TEST(VmRegistryTest, GetRejectsUnknownId) {
    vm_registry vms;
    EXPECT_THROW(vms.get(vm_id(0)), precondition_error);
    vms.create(flavor_id(0), project_id(0), 0);
    EXPECT_THROW(vms.get(vm_id(1)), precondition_error);
}

TEST(VmRecordTest, AliveSemantics) {
    vm_record rec{.id = vm_id(0), .flavor = flavor_id(0),
                  .state = vm_state::active, .created_at = 100};
    EXPECT_FALSE(rec.alive_at(99));
    EXPECT_TRUE(rec.alive_at(100));
    EXPECT_TRUE(rec.alive_at(1000000));

    rec.deleted_at = 500;
    EXPECT_TRUE(rec.alive_at(499));
    EXPECT_FALSE(rec.alive_at(500));
    EXPECT_FALSE(rec.alive_at(501));
}

TEST(VmRecordTest, ErrorVmsNeverAlive) {
    vm_record rec{.id = vm_id(0), .flavor = flavor_id(0),
                  .state = vm_state::error, .created_at = 0};
    EXPECT_FALSE(rec.alive_at(10));
}

TEST(VmRecordTest, NegativeCreationTimesSupported) {
    // VMs created years before the observation window (Figure 15)
    vm_record rec{.id = vm_id(0), .flavor = flavor_id(0),
                  .state = vm_state::active, .created_at = -days(700)};
    EXPECT_TRUE(rec.alive_at(0));
    EXPECT_FALSE(rec.alive_at(-days(701)));
    EXPECT_EQ(rec.lifetime(0), days(700));
}

TEST(VmRecordTest, LifetimeUsesDeletionWhenPresent) {
    vm_record rec{.id = vm_id(0), .flavor = flavor_id(0),
                  .state = vm_state::deleted, .created_at = 100};
    rec.deleted_at = 400;
    EXPECT_EQ(rec.lifetime(100000), 300);
}

TEST(VmRecordTest, LifetimeNeverNegative) {
    vm_record rec{.id = vm_id(0), .flavor = flavor_id(0), .created_at = 500};
    EXPECT_EQ(rec.lifetime(100), 0);
}

TEST(VmRegistryTest, CountInState) {
    vm_registry vms;
    const vm_id a = vms.create(flavor_id(0), project_id(0), 0);
    vms.create(flavor_id(0), project_id(0), 0);
    vms.get_mutable(a).state = vm_state::active;
    EXPECT_EQ(vms.count_in_state(vm_state::active), 1u);
    EXPECT_EQ(vms.count_in_state(vm_state::pending), 1u);
    EXPECT_EQ(vms.count_in_state(vm_state::deleted), 0u);
}

TEST(VmRegistryTest, AliveAtFiltersStates) {
    vm_registry vms;
    const vm_id active = vms.create(flavor_id(0), project_id(0), 0);
    const vm_id deleted = vms.create(flavor_id(0), project_id(0), 0);
    const vm_id pending = vms.create(flavor_id(0), project_id(0), 0);
    const vm_id failed = vms.create(flavor_id(0), project_id(0), 0);
    vms.get_mutable(active).state = vm_state::active;
    vms.get_mutable(deleted).state = vm_state::deleted;
    vms.get_mutable(deleted).deleted_at = 50;
    vms.get_mutable(failed).state = vm_state::error;
    (void)pending;

    const auto alive_early = vms.alive_at(10);
    EXPECT_EQ(alive_early.size(), 2u);  // active + not-yet-deleted
    const auto alive_late = vms.alive_at(100);
    ASSERT_EQ(alive_late.size(), 1u);
    EXPECT_EQ(alive_late[0], active);
}

TEST(VmStateTest, ToString) {
    EXPECT_EQ(to_string(vm_state::pending), "pending");
    EXPECT_EQ(to_string(vm_state::active), "active");
    EXPECT_EQ(to_string(vm_state::deleted), "deleted");
    EXPECT_EQ(to_string(vm_state::error), "error");
}

}  // namespace
}  // namespace sci
