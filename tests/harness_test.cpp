// sci::harness acceptance tests:
//   - the scenario DSL round-trips: parse . render is the identity, and
//     every shipped scenario under SCI_SCENARIO_DIR parses with >= 3
//     invariants,
//   - typos are loud: unknown sections/keys/values fail with the line,
//   - every invariant checker demonstrably FAILS on deliberately broken
//     input with a precise message (no vacuously-green physics),
//   - a faulted scenario (crash rate + one AZ outage) runs bit-identical
//     at 0 / 1 / 4 worker threads, and the replay trace machinery tells
//     matched from mismatched.
//
// Registered as a single ctest entry: the cases share three expensive
// engine runs built once.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "harness/harness.hpp"
#include "harness/invariants.hpp"
#include "harness/scenario_dsl.hpp"
#include "simcore/error.hpp"

namespace sci::harness {
namespace {

// --- scenario DSL -------------------------------------------------------

constexpr const char* example_scn = R"(# comment line
[scenario]
name = example
description = an example  # trailing comment

[engine]
scale = 0.02
seed = 7
daily_churn_fraction = 0.05

[fault]
crash_rate_per_day = 0.01
az_outages = 1
az_outage_at = 90000

[invariants]
admission_accounting = true
conservation = true
recovery_p99_seconds = 7200

[replay]
trace = traces/example.trace
)";

TEST(ScenarioDsl, ParsesEverySection) {
    const scenario_spec spec = parse_scenario(example_scn);
    EXPECT_EQ(spec.name, "example");
    EXPECT_EQ(spec.description, "an example");
    EXPECT_DOUBLE_EQ(spec.config.scenario.scale, 0.02);
    EXPECT_EQ(spec.config.scenario.seed, 7u);
    EXPECT_EQ(spec.config.population.seed, 7u);
    EXPECT_DOUBLE_EQ(spec.config.population.daily_churn_fraction, 0.05);
    EXPECT_DOUBLE_EQ(spec.config.fault.host_crash_rate_per_day, 0.01);
    EXPECT_EQ(spec.config.fault.az_outages, 1);
    EXPECT_EQ(spec.config.fault.az_outage_at, 90000);
    EXPECT_TRUE(spec.invariants.admission_accounting);
    EXPECT_FALSE(spec.invariants.no_silent_drops);
    EXPECT_TRUE(spec.invariants.conservation);
    ASSERT_TRUE(spec.invariants.recovery_p99_seconds.has_value());
    EXPECT_DOUBLE_EQ(*spec.invariants.recovery_p99_seconds, 7200.0);
    EXPECT_EQ(spec.invariants.count(), 3);
    EXPECT_EQ(spec.trace, std::filesystem::path("traces/example.trace"));
}

TEST(ScenarioDsl, RenderRoundTripsByteForByte) {
    const scenario_spec spec = parse_scenario(example_scn);
    const std::string canonical = render_scenario(spec);
    const scenario_spec reparsed = parse_scenario(canonical);
    EXPECT_EQ(render_scenario(reparsed), canonical);
    EXPECT_EQ(reparsed.name, spec.name);
    EXPECT_EQ(reparsed.config.fault.az_outages, spec.config.fault.az_outages);
    EXPECT_EQ(reparsed.invariants.count(), spec.invariants.count());
}

TEST(ScenarioDsl, UnknownKeyFailsWithLineNumber) {
    try {
        parse_scenario("[scenario]\nname = x\n\n[engine]\nwarp_speed = 9\n");
        FAIL() << "expected sci::error";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("warp_speed"), std::string::npos)
            << e.what();
    }
}

TEST(ScenarioDsl, UnknownSectionAndBadValueFail) {
    EXPECT_THROW(parse_scenario("[scenario]\nname = x\n[warp]\n"), error);
    EXPECT_THROW(
        parse_scenario("[scenario]\nname = x\n[engine]\nscale = fast\n"),
        error);
    EXPECT_THROW(parse_scenario("[engine]\nscale = 0.1\n"), error);  // no name
    EXPECT_THROW(parse_scenario("[scenario]\nname = x\nstray\n"), error);
}

TEST(ScenarioDsl, ShippedScenariosParseWithRealInvariants) {
    const std::filesystem::path dir = SCI_SCENARIO_DIR;
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".scn") files.push_back(entry.path());
    }
    EXPECT_GE(files.size(), 6u);
    for (const auto& file : files) {
        const scenario_spec spec = load_scenario_file(file);
        EXPECT_FALSE(spec.name.empty()) << file;
        EXPECT_GE(spec.invariants.count(), 3) << file;
        EXPECT_FALSE(spec.trace.empty()) << file;
        // canonical render must reparse to the same canonical text
        const std::string canonical = render_scenario(spec);
        EXPECT_EQ(render_scenario(parse_scenario(canonical)), canonical)
            << file;
    }
}

// --- each checker can actually fail -------------------------------------

lifecycle_event make_event(sim_time t, lifecycle_event_kind kind,
                           std::int32_t vm) {
    lifecycle_event e;
    e.t = t;
    e.kind = kind;
    e.vm = vm_id(vm);
    return e;
}

TEST(Checkers, AdmissionAccountingCatchesPhantomPlacements) {
    run_stats stats;
    stats.placements = 5;
    event_log events;
    for (int i = 0; i < 4; ++i) {
        events.record(make_event(i, lifecycle_event_kind::create, i));
    }
    const invariant_result r = check_admission_accounting(stats, events);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.detail,
              "placements (5) != create events (4) + ha_restart events (0)");
}

TEST(Checkers, AdmissionAccountingCatchesReasonlessRejections) {
    run_stats stats;
    stats.placement_failures = 1;
    event_log events;
    events.record(make_event(0, lifecycle_event_kind::schedule_fail, 0));
    const invariant_result r = check_admission_accounting(stats, events);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.detail, "1 schedule_fail events carry no reason");
}

TEST(Checkers, NoSilentDropsCatchesUnloggedDeletion) {
    vm_record rec;
    rec.id = vm_id(3);
    rec.state = vm_state::deleted;
    event_log events;
    events.record(make_event(0, lifecycle_event_kind::create, 3));
    const std::vector<vm_record> records{rec};
    const invariant_result r = check_no_silent_drops(records, events);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.detail,
              "1 unexplained VM states; first: vm 3 is deleted but has no "
              "remove event");
}

TEST(Checkers, NoSilentDropsIgnoresNotYetAdmittedArrivals) {
    // A pending record with no events at all is a future arrival beyond a
    // truncated window, not a drop.
    vm_record rec;
    rec.id = vm_id(9);
    rec.state = vm_state::pending;
    const std::vector<vm_record> records{rec};
    EXPECT_TRUE(check_no_silent_drops(records, event_log{}).passed);
    // ... but an admitted VM stuck pending without a crash event IS one.
    event_log events;
    events.record(make_event(0, lifecycle_event_kind::create, 9));
    const invariant_result r = check_no_silent_drops(records, events);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.detail,
              "1 unexplained VM states; first: vm 9 is pending but has no "
              "crash event");
}

TEST(Checkers, BoundedFlappingCatchesPingPong) {
    event_log events;
    for (int i = 0; i < 3; ++i) {
        events.record(
            make_event(hours(1) + i, lifecycle_event_kind::migrate, 7));
    }
    const invariant_result r = check_bounded_flapping(events, 2);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.detail, "vm 7 migrated 3 times on day 0 (bound 2)");
    EXPECT_TRUE(check_bounded_flapping(events, 3).passed);
}

TEST(Checkers, MonotoneImbalanceCatchesWorsening) {
    const std::vector<imbalance_sample> samples{
        {hours(1), 0.40, 0.30},
        {hours(2), 0.30, 0.38},
    };
    const invariant_result r = check_monotone_imbalance(samples, 0.05);
    EXPECT_FALSE(r.passed);
    EXPECT_NE(r.detail.find("DRS pass at t=7200"), std::string::npos)
        << r.detail;
    EXPECT_TRUE(check_monotone_imbalance(samples, 0.1).passed);
}

TEST(Checkers, RecoveryTailCatchesSlowP99) {
    // nearest-rank p99 over 10 samples picks the last one: the straggler
    std::vector<double> downtimes(9, 60.0);
    downtimes.push_back(90000.0);
    const invariant_result r = check_recovery_tail(downtimes, 3600.0);
    EXPECT_FALSE(r.passed);
    EXPECT_NE(r.detail.find("90000"), std::string::npos) << r.detail;
    EXPECT_TRUE(check_recovery_tail({}, 3600.0).passed);
}

TEST(Checkers, ConservationCatchesLeakedClaims) {
    conservation_snapshot snap;
    bb_usage_row row;
    row.bb = bb_id(0);
    row.claimed_vcpus = 10;
    row.resident_vcpus = 8;  // two vCPUs leaked
    row.registry_vcpus = 10;
    snap.bbs.push_back(row);
    const invariant_result r = check_conservation(snap);
    EXPECT_FALSE(r.passed);
    EXPECT_NE(r.detail.find("vcpus"), std::string::npos) << r.detail;
}

TEST(Checkers, ConservationCatchesResidentsOnDownedHosts) {
    conservation_snapshot snap;
    snap.down_nodes_with_residents.push_back(node_id(4));
    const invariant_result r = check_conservation(snap);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.detail, "1 downed hosts still carry residents; first: node 4 at t=0");
}

// --- replay: bit-identical at 0 / 1 / 4 threads -------------------------

// One faulted scenario covering crashes, an AZ outage (it begins 25 h in,
// inside the 2-day test window) and every always-on invariant.
scenario_spec test_spec() {
    return parse_scenario(R"([scenario]
name = harness_test
description = crash rate + one AZ outage at small scale

[engine]
scale = 0.02
seed = 11

[fault]
crash_rate_per_day = 0.02
az_outages = 1
az_outage_at = 90000

[invariants]
admission_accounting = true
no_silent_drops = true
conservation = true
recovery_p99_seconds = 14400
)");
}

const std::vector<scenario_outcome>& shared_outcomes() {
    static auto* outcomes = [] {
        auto* out = new std::vector<scenario_outcome>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            run_options options;
            options.days = 2;
            options.threads = threads;
            out->push_back(run_scenario(test_spec(), options));
        }
        return out;
    }();
    return *outcomes;
}

TEST(Replay, BitIdenticalAcrossThreadCounts) {
    const auto& runs = shared_outcomes();
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_GT(runs[0].event_count, 0u);
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].events_hash, runs[0].events_hash) << i;
        EXPECT_EQ(runs[i].stats_hash, runs[0].stats_hash) << i;
        EXPECT_EQ(runs[i].event_count, runs[0].event_count) << i;
    }
}

TEST(Replay, FaultedScenarioSatisfiesItsPhysics) {
    const scenario_outcome& run = shared_outcomes().front();
    EXPECT_EQ(run.invariants.size(), 4u);
    for (const invariant_result& r : run.invariants) {
        EXPECT_TRUE(r.passed) << r.name << ": " << r.detail;
    }
    // the AZ outage actually fired and HA actually recovered someone
    EXPECT_EQ(run.stats.az_outages, 1u);
    EXPECT_GT(run.stats.host_crashes, 0u);
    EXPECT_GT(run.stats.ha_restarts, 0u);
}

TEST(Replay, TraceFileTellsMatchedFromMismatched) {
    const std::filesystem::path trace =
        std::filesystem::path(testing::TempDir()) / "harness_test.trace";
    std::filesystem::remove(trace);
    scenario_spec spec = test_spec();
    spec.trace = trace;

    run_options options;
    options.days = 2;
    options.threads = 0u;
    scenario_outcome missing = run_scenario(spec, options);
    EXPECT_EQ(missing.replay, replay_status::skipped);

    options.record_trace = true;
    scenario_outcome recorded = run_scenario(spec, options);
    EXPECT_EQ(recorded.replay, replay_status::recorded);

    options.record_trace = false;
    scenario_outcome replayed = run_scenario(spec, options);
    EXPECT_EQ(replayed.replay, replay_status::matched);
    EXPECT_TRUE(replayed.passed());

    // corrupt the recorded events hash: the replay must turn red
    auto tampered = read_trace_file(trace);
    ASSERT_TRUE(tampered.has_value());
    tampered->events_hash ^= 1;
    write_trace_file(*tampered, trace);
    scenario_outcome mismatched = run_scenario(spec, options);
    EXPECT_EQ(mismatched.replay, replay_status::mismatched);
    EXPECT_FALSE(mismatched.passed());

    // a trace for a different window is skipped, not compared
    tampered->events_hash ^= 1;
    tampered->days = 1;
    write_trace_file(*tampered, trace);
    scenario_outcome skipped = run_scenario(spec, options);
    EXPECT_EQ(skipped.replay, replay_status::skipped);
    std::filesystem::remove(trace);
}

TEST(Replay, OutcomesJsonIsMachineParseable) {
    const std::string json = outcomes_json(shared_outcomes());
    EXPECT_NE(json.find("\"passed\": true"), std::string::npos) << json;
    EXPECT_NE(json.find("\"name\": \"harness_test\""), std::string::npos);
    EXPECT_NE(json.find("\"invariants\": ["), std::string::npos);
    EXPECT_NE(json.find("\"events_hash\": \""), std::string::npos);
}

}  // namespace
}  // namespace sci::harness
