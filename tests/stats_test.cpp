// Tests for simcore/stats: the accumulators that back telemetry compaction
// and figure aggregation.

#include "simcore/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "simcore/error.hpp"

namespace sci {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
    running_stats s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStatsTest, SingleValue) {
    running_stats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
    running_stats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesDirectAccumulation) {
    std::mt19937_64 gen(7);
    std::uniform_real_distribution<double> dist(-10.0, 10.0);
    running_stats direct, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double v = dist(gen);
        direct.add(v);
        (i % 3 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), direct.count());
    EXPECT_NEAR(a.mean(), direct.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), direct.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), direct.min());
    EXPECT_DOUBLE_EQ(a.max(), direct.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
    running_stats a;
    a.add(1.0);
    a.add(3.0);
    running_stats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    running_stats target;
    target.merge(a);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

// --- P² quantile estimator over several distributions --------------------

struct p2_case {
    const char* name;
    double quantile;
    int samples;
    double tolerance;
};

class P2QuantileTest : public testing::TestWithParam<p2_case> {};

TEST_P(P2QuantileTest, TracksExactQuantileOnUniform) {
    const p2_case& c = GetParam();
    std::mt19937_64 gen(42);
    std::uniform_real_distribution<double> dist(0.0, 100.0);
    p2_quantile sketch(c.quantile);
    std::vector<double> all;
    all.reserve(static_cast<std::size_t>(c.samples));
    for (int i = 0; i < c.samples; ++i) {
        const double v = dist(gen);
        sketch.add(v);
        all.push_back(v);
    }
    const double exact = exact_quantile(all, c.quantile);
    EXPECT_NEAR(sketch.value(), exact, c.tolerance)
        << "case " << c.name;
}

TEST_P(P2QuantileTest, TracksExactQuantileOnLognormal) {
    const p2_case& c = GetParam();
    std::mt19937_64 gen(43);
    std::lognormal_distribution<double> dist(2.0, 0.8);
    p2_quantile sketch(c.quantile);
    std::vector<double> all;
    for (int i = 0; i < c.samples; ++i) {
        const double v = dist(gen);
        sketch.add(v);
        all.push_back(v);
    }
    const double exact = exact_quantile(all, c.quantile);
    // relative tolerance for the skewed distribution
    EXPECT_NEAR(sketch.value(), exact, std::max(c.tolerance, exact * 0.08))
        << "case " << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, P2QuantileTest,
    testing::Values(p2_case{"p50-small", 0.5, 500, 2.5},
                    p2_case{"p50-large", 0.5, 20000, 1.0},
                    p2_case{"p90", 0.9, 20000, 1.5},
                    p2_case{"p95", 0.95, 20000, 1.5},
                    p2_case{"p99", 0.99, 50000, 2.0}));

TEST(P2QuantileTest, ExactForFewSamples) {
    p2_quantile sketch(0.5);
    sketch.add(3.0);
    EXPECT_DOUBLE_EQ(sketch.value(), 3.0);
    sketch.add(1.0);
    EXPECT_DOUBLE_EQ(sketch.value(), 2.0);  // median of {1,3}
    sketch.add(2.0);
    EXPECT_DOUBLE_EQ(sketch.value(), 2.0);
}

TEST(P2QuantileTest, EmptyIsZero) {
    p2_quantile sketch(0.95);
    EXPECT_DOUBLE_EQ(sketch.value(), 0.0);
}

TEST(P2QuantileTest, RejectsBadQuantile) {
    EXPECT_THROW(p2_quantile(0.0), precondition_error);
    EXPECT_THROW(p2_quantile(1.0), precondition_error);
    EXPECT_THROW(p2_quantile(-0.5), precondition_error);
}

// --- histogram -------------------------------------------------------------

TEST(HistogramTest, BinsAndEdges) {
    histogram h(0.0, 100.0, 10);
    EXPECT_EQ(h.bin_count(), 10u);
    EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_upper(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bin_lower(9), 90.0);
    EXPECT_DOUBLE_EQ(h.bin_upper(9), 100.0);
}

TEST(HistogramTest, CountsFallIntoRightBins) {
    histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(0.9);
    h.add(5.5);
    h.add(9.99);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(5), 1u);
    EXPECT_EQ(h.bin(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
    histogram h(0.0, 10.0, 5);
    h.add(-5.0);
    h.add(15.0);
    h.add(10.0);  // hi is exclusive: clamps to last bin
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(4), 2u);
}

TEST(HistogramTest, CdfInterpolates) {
    histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) h.add(i + 0.5);  // one per bin
    EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
    EXPECT_NEAR(h.cdf(5.0), 0.5, 1e-12);
    EXPECT_NEAR(h.cdf(2.5), 0.25, 1e-12);
}

TEST(HistogramTest, EmptyCdfIsZero) {
    histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.cdf(0.5), 0.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
    EXPECT_THROW(histogram(1.0, 1.0, 4), precondition_error);
    EXPECT_THROW(histogram(2.0, 1.0, 4), precondition_error);
    EXPECT_THROW(histogram(0.0, 1.0, 0), precondition_error);
}

// --- exact quantile / empirical cdf ---------------------------------------

TEST(ExactQuantileTest, KnownValues) {
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(exact_quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(exact_quantile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(exact_quantile(v, 0.25), 2.0);
    EXPECT_DOUBLE_EQ(exact_quantile(v, 0.125), 1.5);  // interpolation
}

TEST(ExactQuantileTest, UnsortedInput) {
    const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 3.0);
}

TEST(ExactQuantileTest, Rejections) {
    EXPECT_THROW(exact_quantile({}, 0.5), precondition_error);
    const std::vector<double> v{1.0};
    EXPECT_THROW(exact_quantile(v, -0.1), precondition_error);
    EXPECT_THROW(exact_quantile(v, 1.1), precondition_error);
}

TEST(EmpiricalCdfTest, Basics) {
    const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(empirical_cdf(sorted, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(empirical_cdf(sorted, 1.0), 0.25);
    EXPECT_DOUBLE_EQ(empirical_cdf(sorted, 2.5), 0.5);
    EXPECT_DOUBLE_EQ(empirical_cdf(sorted, 4.0), 1.0);
    EXPECT_DOUBLE_EQ(empirical_cdf({}, 1.0), 0.0);
}

}  // namespace
}  // namespace sci
