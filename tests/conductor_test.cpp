// Tests for sched/conductor: the greedy claim-with-retries orchestration
// (Figure 2) over a real fleet + placement service.

#include "sched/conductor.hpp"

#include <gtest/gtest.h>

#include "workload/calibration.hpp"

namespace sci {
namespace {

struct conductor_fixture {
    fleet f;
    flavor_catalog catalog;
    placement_service placement;
    flavor_id small;
    flavor_id hana;
    flavor_id xl;

    conductor_fixture() {
        const region_id r = f.add_region("r");
        const az_id az = f.add_az(r, "az");
        const dc_id dc = f.add_dc(az, "dc");
        f.add_bb(dc, "gen-0", bb_purpose::general, profiles::general_purpose(), 2);
        f.add_bb(dc, "gen-1", bb_purpose::general, profiles::general_purpose(), 2);
        f.add_bb(dc, "hana-0", bb_purpose::hana, profiles::hana_large_memory(), 2);
        f.add_bb(dc, "xl-0", bb_purpose::dedicated_xl,
                 profiles::hana_extra_large_memory(), 2);

        small = catalog.add("g_c4_m32", 4, gib_to_mib(32), 100.0,
                            workload_class::general_purpose);
        hana = catalog.add("hana_c32_m1024", 32, gib_to_mib(1024), 1024.0,
                           workload_class::hana_db);
        xl = catalog.add("hana_c112_m4096", 112, gib_to_mib(4096), 4096.0,
                         workload_class::hana_db);

        for (const building_block& bb : f.bbs()) {
            const allocation_ratios ratios = default_ratios_for(bb.purpose);
            placement.register_provider(
                bb.id,
                provider_inventory{f.bb_total_cores(bb.id),
                                   f.bb_total_memory(bb.id),
                                   bb.profile.storage_gib *
                                       static_cast<double>(bb.nodes.size()),
                                   ratios.cpu, ratios.ram});
        }
    }

    conductor make_conductor() {
        return conductor(f, catalog, placement, make_default_scheduler());
    }

    schedule_request request(vm_id vm, flavor_id flavor,
                             placement_policy policy = placement_policy::spread) {
        schedule_request r;
        r.vm = vm;
        r.flavor = flavor;
        r.project = project_id(0);
        r.policy = policy;
        return r;
    }
};

TEST(DefaultRatiosTest, PerPurposeValues) {
    namespace cal = calibration;
    EXPECT_DOUBLE_EQ(default_ratios_for(bb_purpose::general).cpu,
                     cal::gp_cpu_allocation_ratio);
    EXPECT_DOUBLE_EQ(default_ratios_for(bb_purpose::general).ram,
                     cal::gp_ram_allocation_ratio);
    EXPECT_DOUBLE_EQ(default_ratios_for(bb_purpose::hana).cpu,
                     cal::hana_cpu_allocation_ratio);
    EXPECT_DOUBLE_EQ(default_ratios_for(bb_purpose::dedicated_xl).ram,
                     cal::hana_ram_allocation_ratio);
}

TEST(ConductorTest, BuildHostStatesMirrorsPlacement) {
    conductor_fixture fx;
    conductor nova = fx.make_conductor();
    const auto states = nova.build_host_states();
    ASSERT_EQ(states.size(), 4u);
    EXPECT_EQ(states[0].bb, bb_id(0));
    EXPECT_EQ(states[0].purpose, bb_purpose::general);
    EXPECT_EQ(states[0].node_count, 2);
    EXPECT_EQ(states[0].total_pcpus, 2 * 96);
    EXPECT_EQ(states[2].purpose, bb_purpose::hana);
    EXPECT_EQ(states[0].instances, 0);

    fx.placement.claim(vm_id(0), bb_id(0), fx.catalog.get(fx.small));
    const auto after = nova.build_host_states();
    EXPECT_EQ(after[0].instances, 1);
    EXPECT_EQ(after[0].vcpus_used, 4);
}

TEST(ConductorTest, PlacesGeneralVmOnGeneralBb) {
    conductor_fixture fx;
    conductor nova = fx.make_conductor();
    const auto outcome =
        nova.schedule_and_claim(fx.request(vm_id(0), fx.small));
    ASSERT_TRUE(outcome.success);
    EXPECT_TRUE(outcome.bb == bb_id(0) || outcome.bb == bb_id(1));
    EXPECT_EQ(outcome.attempts, 1);
    EXPECT_EQ(fx.placement.allocation_of(vm_id(0)), outcome.bb);
    EXPECT_EQ(nova.scheduled_count(), 1u);
}

TEST(ConductorTest, RoutesHanaToHanaBb) {
    conductor_fixture fx;
    conductor nova = fx.make_conductor();
    const auto outcome = nova.schedule_and_claim(
        fx.request(vm_id(0), fx.hana, placement_policy::pack));
    ASSERT_TRUE(outcome.success);
    EXPECT_EQ(outcome.bb, bb_id(2));
}

TEST(ConductorTest, RoutesXlToDedicatedBb) {
    conductor_fixture fx;
    conductor nova = fx.make_conductor();
    const auto outcome = nova.schedule_and_claim(
        fx.request(vm_id(0), fx.xl, placement_policy::pack));
    ASSERT_TRUE(outcome.success);
    EXPECT_EQ(outcome.bb, bb_id(3));
}

TEST(ConductorTest, SpreadAlternatesAcrossGeneralBbs) {
    conductor_fixture fx;
    conductor nova = fx.make_conductor();
    std::array<int, 2> counts{};
    for (int i = 0; i < 20; ++i) {
        const auto outcome =
            nova.schedule_and_claim(fx.request(vm_id(i), fx.small));
        ASSERT_TRUE(outcome.success);
        ++counts[static_cast<std::size_t>(outcome.bb.value())];
    }
    // load balancing: both BBs used
    EXPECT_GT(counts[0], 0);
    EXPECT_GT(counts[1], 0);
}

TEST(ConductorTest, NoValidHostWhenFull) {
    conductor_fixture fx;
    conductor nova = fx.make_conductor();
    // hana BB: 2 nodes x 8 TiB; each hana VM takes 1 TiB -> 16 fit
    int placed = 0;
    for (int i = 0; i < 32; ++i) {
        const auto outcome = nova.schedule_and_claim(
            fx.request(vm_id(i), fx.hana, placement_policy::pack));
        if (!outcome.success) break;
        ++placed;
    }
    EXPECT_EQ(placed, 16);
    EXPECT_EQ(nova.no_valid_host_count(), 1u);
}

TEST(ConductorTest, ContentionFeedReachesHostStates) {
    conductor_fixture fx;
    conductor nova = fx.make_conductor();
    nova.set_contention_feed([](bb_id bb) {
        return bb == bb_id(0) ? 35.0 : 1.0;
    });
    const auto states = nova.build_host_states();
    EXPECT_DOUBLE_EQ(states[0].avg_cpu_contention_pct, 35.0);
    EXPECT_DOUBLE_EQ(states[1].avg_cpu_contention_pct, 1.0);
}

TEST(ConductorTest, ContentionAwarePipelineAvoidsHotBb) {
    conductor_fixture fx;
    auto filters = make_default_filters();
    filters.push_back(std::make_unique<contention_filter>(15.0));
    auto spread = make_spread_weighers();
    spread.push_back({std::make_unique<contention_weigher>(), 0.5});
    conductor nova(fx.f, fx.catalog, fx.placement,
                   filter_scheduler(std::move(filters), std::move(spread),
                                    make_pack_weighers()));
    nova.set_contention_feed([](bb_id bb) {
        return bb == bb_id(0) ? 35.0 : 1.0;  // bb0 over threshold
    });
    for (int i = 0; i < 10; ++i) {
        const auto outcome =
            nova.schedule_and_claim(fx.request(vm_id(i), fx.small));
        ASSERT_TRUE(outcome.success);
        EXPECT_EQ(outcome.bb, bb_id(1));  // hot BB filtered out
    }
}

TEST(ConductorTest, RequestPolicyChangesTarget) {
    conductor_fixture fx;
    conductor nova = fx.make_conductor();
    // pre-load bb0 so pack prefers it and spread avoids it
    for (int i = 100; i < 110; ++i) {
        fx.placement.claim(vm_id(i), bb_id(0), fx.catalog.get(fx.small));
    }
    const auto packed = nova.schedule_and_claim(
        fx.request(vm_id(0), fx.small, placement_policy::pack));
    ASSERT_TRUE(packed.success);
    EXPECT_EQ(packed.bb, bb_id(0));
    const auto spread_out = nova.schedule_and_claim(
        fx.request(vm_id(1), fx.small, placement_policy::spread));
    ASSERT_TRUE(spread_out.success);
    EXPECT_EQ(spread_out.bb, bb_id(1));
}

}  // namespace
}  // namespace sci
