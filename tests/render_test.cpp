// Tests for analysis/render: ASCII heatmaps, CSV writers, table printer.

#include "analysis/render.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "simcore/error.hpp"

namespace sci {
namespace {

heatmap make_heatmap() {
    heatmap hm;
    hm.days = 2;
    hm.columns = {"a", "b", "c"};
    const double nan = std::numeric_limits<double>::quiet_NaN();
    hm.cells = {{100.0, 50.0, 0.0}, {80.0, nan, 20.0}};
    return hm;
}

TEST(RenderHeatmapTest, OneRowPerDayWithPrefix) {
    const std::string out = render_heatmap_ascii(make_heatmap());
    std::istringstream is(out);
    std::string line;
    std::getline(is, line);
    EXPECT_TRUE(line.starts_with("d00 "));
    EXPECT_EQ(line.size(), 4u + 3u);  // prefix + 3 columns
    std::getline(is, line);
    EXPECT_TRUE(line.starts_with("d01 "));
    EXPECT_FALSE(std::getline(is, line));
}

TEST(RenderHeatmapTest, MissingCellsRenderQuestionMark) {
    const std::string out = render_heatmap_ascii(make_heatmap());
    std::istringstream is(out);
    std::string line;
    std::getline(is, line);
    std::getline(is, line);
    EXPECT_EQ(line[4 + 1], '?');  // column b on day 1
}

TEST(RenderHeatmapTest, RampExtremes) {
    render_options options;
    options.ramp = " @";
    const std::string out = render_heatmap_ascii(make_heatmap(), options);
    std::istringstream is(out);
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line[4 + 0], '@');  // 100 -> top of ramp
    EXPECT_EQ(line[4 + 2], ' ');  // 0 -> bottom
}

TEST(RenderHeatmapTest, DownsamplesWideMaps) {
    heatmap hm;
    hm.days = 1;
    hm.cells.emplace_back();
    for (int i = 0; i < 500; ++i) {
        hm.columns.push_back("n" + std::to_string(i));
        hm.cells[0].push_back(50.0);
    }
    render_options options;
    options.max_columns = 40;
    const std::string out = render_heatmap_ascii(hm, options);
    std::istringstream is(out);
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line.size(), 4u + 40u);
}

TEST(RenderHeatmapTest, EmptyHeatmap) {
    EXPECT_EQ(render_heatmap_ascii(heatmap{}), "(empty heatmap)\n");
}

TEST(RenderHeatmapTest, RejectsBadOptions) {
    render_options options;
    options.max_columns = 0;
    EXPECT_THROW(render_heatmap_ascii(make_heatmap(), options),
                 precondition_error);
    options.max_columns = 10;
    options.ramp = "";
    EXPECT_THROW(render_heatmap_ascii(make_heatmap(), options),
                 precondition_error);
}

TEST(HeatmapCsvTest, HeaderRowsAndBlanksForMissing) {
    std::ostringstream os;
    write_heatmap_csv(os, make_heatmap());
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line, "day,a,b,c");
    std::getline(is, line);
    EXPECT_EQ(line, "0,100,50,0");
    std::getline(is, line);
    EXPECT_EQ(line, "1,80,,20");  // NaN -> empty field
}

TEST(CdfCsvTest, GridAndMonotonicity) {
    vm_utilization_cdf cdf;
    cdf.sorted_means = {0.1, 0.4, 0.4, 0.9};
    std::ostringstream os;
    write_cdf_csv(os, cdf, 11);
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line, "utilization,cdf");
    double prev = -1.0;
    int rows = 0;
    while (std::getline(is, line)) {
        const auto comma = line.find(',');
        const double value = std::stod(line.substr(comma + 1));
        EXPECT_GE(value, prev);
        prev = value;
        ++rows;
    }
    EXPECT_EQ(rows, 11);
    EXPECT_DOUBLE_EQ(prev, 1.0);
    EXPECT_THROW(write_cdf_csv(os, cdf, 1), precondition_error);
}

TEST(ReadySeriesCsvTest, OneColumnPerNode) {
    ready_time_series a;
    a.node = "hot";
    a.hourly_ms = {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
    ready_time_series b;
    b.node = "warm";
    b.hourly_ms = {4.0, 5.0, 6.0};
    const std::vector<ready_time_series> series{a, b};
    std::ostringstream os;
    write_ready_series_csv(os, series);
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line, "hour,hot,warm");
    std::getline(is, line);
    EXPECT_EQ(line, "0,1,4");
    std::getline(is, line);
    EXPECT_EQ(line, "1,,5");  // NaN blank
}

TEST(TablePrinterTest, AlignsColumns) {
    table_printer table({"name", "value"});
    table.add_row({"x", "1"});
    table.add_row({"longer-name", "22"});
    const std::string out = table.to_string();
    std::istringstream is(out);
    std::string header, sep, row1, row2;
    std::getline(is, header);
    std::getline(is, sep);
    std::getline(is, row1);
    std::getline(is, row2);
    EXPECT_EQ(header.size(), row1.size());
    EXPECT_EQ(row1.size(), row2.size());
    EXPECT_NE(header.find("name"), std::string::npos);
    EXPECT_NE(row2.find("longer-name"), std::string::npos);
}

TEST(TablePrinterTest, RejectsMismatchedRows) {
    table_printer table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), precondition_error);
    EXPECT_THROW(table_printer({}), precondition_error);
}

TEST(FormatHelpersTest, Rounding) {
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(3.14159), "3.1");
    EXPECT_EQ(format_count(1234.4), "1234");
    EXPECT_EQ(format_count(1234.6), "1235");
}

}  // namespace
}  // namespace sci
