// Tests for core/report: the markdown report generator.

#include "core/report.hpp"

#include <gtest/gtest.h>

namespace sci {
namespace {

sim_engine& shared_report_engine() {
    static sim_engine* engine = [] {
        engine_config config;
        config.scenario.scale = 0.015;
        config.scenario.seed = 99;
        config.sampling_interval = 1800;
        auto* e = new sim_engine(config);
        e->run();
        return e;
    }();
    return *engine;
}

TEST(ReportTest, ContainsEveryPaperArtifactSection) {
    const std::string report = markdown_report(shared_report_engine());
    for (const char* heading :
         {"Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9",
          "Figure 10", "Figure 11", "Figure 12", "Figure 13", "Figure 14",
          "Figure 15", "Tables 1-2", "Scheduling events"}) {
        EXPECT_NE(report.find(heading), std::string::npos) << heading;
    }
}

TEST(ReportTest, ContainsRunStatistics) {
    sim_engine& engine = shared_report_engine();
    const std::string report = markdown_report(engine);
    EXPECT_NE(report.find(std::to_string(engine.stats().placements) +
                          " placements"),
              std::string::npos);
    EXPECT_NE(report.find(std::to_string(engine.stats().scrapes) + " scrapes"),
              std::string::npos);
}

TEST(ReportTest, HeatmapsCanBeDisabled) {
    report_options options;
    options.include_heatmaps = false;
    const std::string without =
        markdown_report(shared_report_engine(), options);
    options.include_heatmaps = true;
    const std::string with = markdown_report(shared_report_engine(), options);
    EXPECT_LT(without.size(), with.size());
    EXPECT_EQ(without.find("```"), std::string::npos);
    EXPECT_NE(with.find("```"), std::string::npos);
}

TEST(ReportTest, CustomTitleUsed) {
    report_options options;
    options.title = "My Custom Reproduction Title";
    options.include_heatmaps = false;
    const std::string report =
        markdown_report(shared_report_engine(), options);
    EXPECT_TRUE(report.starts_with("# My Custom Reproduction Title"));
}

TEST(ReportTest, IsDeterministic) {
    const std::string a = markdown_report(shared_report_engine());
    const std::string b = markdown_report(shared_report_engine());
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sci
