// Tests for sched/weigher: min-max normalization and the pack/spread
// pipelines of Figure 3.

#include "sched/weigher.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simcore/error.hpp"

namespace sci {
namespace {

flavor gp_flavor() {
    return flavor{.id = flavor_id(0), .name = "f", .vcpus = 4,
                  .ram_mib = gib_to_mib(32), .disk_gib = 50.0};
}

host_state make_host(core_count vcpus_used, double ram_used_gib,
                     int instances = 0) {
    host_state h;
    h.bb = bb_id(0);
    h.purpose = bb_purpose::general;
    h.total_pcpus = 96;
    h.total_ram_mib = gib_to_mib(1024);
    h.total_disk_gib = 7680.0;
    h.cpu_allocation_ratio = 4.0;
    h.ram_allocation_ratio = 1.0;
    h.vcpus_used = vcpus_used;
    h.ram_used_mib = gib_to_mib(ram_used_gib);
    h.instances = instances;
    return h;
}

TEST(WeigherRawTest, CpuWeigherPrefersFreeCpu) {
    const flavor f = gp_flavor();
    schedule_request req;
    req.flavor = f.id;
    const request_context ctx{req, f};
    EXPECT_GT(cpu_weigher().raw(make_host(0, 0), ctx),
              cpu_weigher().raw(make_host(100, 0), ctx));
}

TEST(WeigherRawTest, RamWeigherPrefersFreeRam) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    EXPECT_GT(ram_weigher().raw(make_host(0, 0), ctx),
              ram_weigher().raw(make_host(0, 512), ctx));
}

TEST(WeigherRawTest, DiskWeigher) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    host_state a = make_host(0, 0);
    host_state b = make_host(0, 0);
    b.disk_used_gib = 1000.0;
    EXPECT_GT(disk_weigher().raw(a, ctx), disk_weigher().raw(b, ctx));
}

TEST(WeigherRawTest, NumInstancesWeigherPrefersFewer) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    EXPECT_GT(num_instances_weigher().raw(make_host(0, 0, 1), ctx),
              num_instances_weigher().raw(make_host(0, 0, 50), ctx));
}

TEST(WeigherRawTest, ContentionWeigherPrefersCalm) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    host_state calm = make_host(0, 0);
    host_state hot = make_host(0, 0);
    hot.avg_cpu_contention_pct = 30.0;
    EXPECT_GT(contention_weigher().raw(calm, ctx),
              contention_weigher().raw(hot, ctx));
}

TEST(ScoreHostsTest, NormalizesToUnitRange) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(0, 0), make_host(200, 0),
                                  make_host(384, 0)};
    std::vector<weighted_weigher> ws;
    ws.push_back({std::make_unique<cpu_weigher>(), 1.0});
    const std::vector<double> scores = score_hosts(hosts, ctx, ws);
    ASSERT_EQ(scores.size(), 3u);
    EXPECT_DOUBLE_EQ(scores[0], 1.0);  // most free
    EXPECT_DOUBLE_EQ(scores[2], 0.0);  // least free
    EXPECT_GT(scores[1], 0.0);
    EXPECT_LT(scores[1], 1.0);
}

TEST(ScoreHostsTest, TiedHostsContributeZero) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(10, 0), make_host(10, 0)};
    std::vector<weighted_weigher> ws;
    ws.push_back({std::make_unique<cpu_weigher>(), 5.0});
    const std::vector<double> scores = score_hosts(hosts, ctx, ws);
    EXPECT_DOUBLE_EQ(scores[0], 0.0);
    EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

TEST(ScoreHostsTest, NegativeMultiplierInvertsPreference) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(0, 100), make_host(0, 900)};
    std::vector<weighted_weigher> ws;
    ws.push_back({std::make_unique<ram_weigher>(), -1.0});
    const std::vector<double> scores = score_hosts(hosts, ctx, ws);
    EXPECT_LT(scores[0], scores[1]);  // fuller host wins at negative weight
}

TEST(ScoreHostsTest, MultipleWeighersSum) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    // host0: most free CPU; host1: most free RAM
    std::vector<host_state> hosts{make_host(0, 900), make_host(300, 0)};
    std::vector<weighted_weigher> ws;
    ws.push_back({std::make_unique<cpu_weigher>(), 1.0});
    ws.push_back({std::make_unique<ram_weigher>(), 1.0});
    const std::vector<double> scores = score_hosts(hosts, ctx, ws);
    EXPECT_DOUBLE_EQ(scores[0], 1.0);  // 1 (cpu) + 0 (ram)
    EXPECT_DOUBLE_EQ(scores[1], 1.0);  // 0 (cpu) + 1 (ram)
}

TEST(ScoreHostsTest, MultiplierScalesContribution) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(0, 0), make_host(300, 0)};
    std::vector<weighted_weigher> ws;
    ws.push_back({std::make_unique<cpu_weigher>(), 2.5});
    const std::vector<double> scores = score_hosts(hosts, ctx, ws);
    EXPECT_DOUBLE_EQ(scores[0], 2.5);
}

TEST(ScoreHostsTest, EmptyHostsOk) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    std::vector<weighted_weigher> ws;
    ws.push_back({std::make_unique<cpu_weigher>(), 1.0});
    EXPECT_TRUE(score_hosts({}, ctx, ws).empty());
}

TEST(ScoreHostsTest, NullWeigherThrows) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(0, 0)};
    std::vector<weighted_weigher> ws;
    ws.push_back({nullptr, 1.0});
    EXPECT_THROW(score_hosts(hosts, ctx, ws), precondition_error);
}

TEST(PipelinesTest, SpreadPrefersEmptyHost) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(300, 900, 50), make_host(0, 0, 0)};
    const auto ws = make_spread_weighers();
    const std::vector<double> scores = score_hosts(hosts, ctx, ws);
    EXPECT_GT(scores[1], scores[0]);
}

TEST(PipelinesTest, PackPrefersFullHost) {
    const flavor f = gp_flavor();
    schedule_request req;
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(300, 900, 50), make_host(0, 0, 0)};
    const auto ws = make_pack_weighers();
    const std::vector<double> scores = score_hosts(hosts, ctx, ws);
    EXPECT_GT(scores[0], scores[1]);
}

TEST(PipelinesTest, Names) {
    EXPECT_EQ(cpu_weigher().name(), "CPUWeigher");
    EXPECT_EQ(ram_weigher().name(), "RAMWeigher");
    EXPECT_EQ(disk_weigher().name(), "DiskWeigher");
    EXPECT_EQ(num_instances_weigher().name(), "NumInstancesWeigher");
    EXPECT_EQ(contention_weigher().name(), "ContentionWeigher");
}

}  // namespace
}  // namespace sci
