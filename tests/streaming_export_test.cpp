// Streaming dataset export (data/streaming_writer.hpp) and raw-block
// sealing (telemetry/store.hpp).
//
// The invariants: (1) the streaming writer's manifest + daily aggregate
// files are byte-identical to the materialized exporter's across every
// engine config family; (2) streamed raw files carry exactly the
// materialized raw rows (order is the one documented difference); (3)
// sealing actually frees raw blocks — residency shrinks, and a
// full-window streamed run finishes with zero resident raw samples.

#include "data/streaming_writer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "data/dataset.hpp"

namespace sci {
namespace {

std::string read_file(const std::filesystem::path& p) {
    std::ifstream f(p, std::ios::binary);
    EXPECT_TRUE(f.good()) << p;
    std::ostringstream out;
    out << f.rdbuf();
    return out.str();
}

/// Lines of a CSV body, sorted (header excluded) — raw files are compared
/// as unordered row collections.
std::vector<std::string> sorted_body_lines(const std::filesystem::path& p) {
    std::ifstream f(p);
    EXPECT_TRUE(f.good()) << p;
    std::vector<std::string> lines;
    std::string line;
    std::getline(f, line);  // header, checked separately
    while (std::getline(f, line)) lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
}

std::string header_line(const std::filesystem::path& p) {
    std::ifstream f(p);
    std::string line;
    std::getline(f, line);
    return line;
}

class StreamingExportTest : public testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("sci_streaming_test_" + std::to_string(::getpid()) + "_" +
                testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    static engine_config base_config() {
        engine_config config;
        config.scenario.scale = 0.01;  // ~18 nodes: fast full-window runs
        config.scenario.seed = 11;
        config.sampling_interval = 1800;
        return config;
    }

    /// The four config families of the acceptance matrix, shrunk.
    static std::vector<std::pair<std::string, engine_config>> config_matrix() {
        std::vector<std::pair<std::string, engine_config>> out;
        out.emplace_back("default", base_config());

        engine_config faulted = base_config();
        faulted.population.daily_churn_fraction = 0.05;
        faulted.fault.host_crash_rate_per_day = 0.5;
        faulted.fault.crash_repair_time = hours(8);
        faulted.fault.ha_restart_delay = 900;
        faulted.fault.claim_failure_probability = 0.02;
        faulted.fault.maintenance_windows = 2;
        out.emplace_back("faulted", faulted);

        engine_config contention = faulted;
        contention.contention_aware = true;
        out.emplace_back("contention", contention);

        engine_config resize = base_config();
        resize.lifetime_aware = true;
        resize.daily_resize_fraction = 0.02;
        resize.population.daily_churn_fraction = 0.05;
        out.emplace_back("resize", resize);
        return out;
    }

    std::filesystem::path dir_;
};

// (1) Aggregate files: streaming finish() and export_dataset must emit
// byte-identical manifest.csv and <metric>.daily.csv for the same store.
TEST_F(StreamingExportTest, AggregateFilesByteIdenticalAcrossConfigs) {
    for (auto& [name, config] : config_matrix()) {
        sim_engine engine(config);
        engine.run();

        const auto materialized = dir_ / name / "materialized";
        const auto streamed = dir_ / name / "streamed";
        export_dataset(engine.store(), materialized);
        streaming_dataset_writer writer(engine.store(), streamed);
        // no raw kept in this config family: sink never fires, finish()
        // must still produce the full aggregate dataset
        const dataset_export_report report = writer.finish();
        EXPECT_GT(report.daily_rows, 0u) << name;
        EXPECT_EQ(report.raw_rows, 0u) << name;

        std::size_t files = 0;
        for (const auto& entry :
             std::filesystem::directory_iterator(materialized)) {
            const auto file = entry.path().filename();
            EXPECT_EQ(read_file(materialized / file),
                      read_file(streamed / file))
                << name << "/" << file;
            ++files;
        }
        EXPECT_GT(files, 1u) << name;  // manifest + at least one daily
        // and nothing extra on the streamed side
        std::size_t streamed_files = 0;
        for ([[maybe_unused]] const auto& entry :
             std::filesystem::directory_iterator(streamed)) {
            ++streamed_files;
        }
        EXPECT_EQ(files, streamed_files) << name;
    }
}

// (2) + (3) With keep_raw: a run streamed through the day-boundary seal
// produces the same raw rows as a materialized run, and ends with zero
// raw samples resident.
TEST_F(StreamingExportTest, RawRowsMatchMaterializedAndMemoryIsFreed) {
    engine_config config = base_config();
    config.store.keep_raw = true;

    sim_engine materialized_engine(config);
    materialized_engine.run();
    const auto materialized = dir_ / "materialized";
    const dataset_export_report mat_report =
        export_dataset(materialized_engine.store(), materialized);
    EXPECT_GT(mat_report.raw_rows, 0u);
    EXPECT_GT(materialized_engine.store().raw_resident_samples(), 0u);

    sim_engine streamed_engine(config);
    const auto streamed = dir_ / "streamed";
    streaming_dataset_writer writer(streamed_engine.store(), streamed);
    streamed_engine.enable_raw_streaming(writer.sink());
    streamed_engine.run();
    const dataset_export_report stream_report = writer.finish();

    // the bounded-memory invariant: every day was sealed and freed
    EXPECT_EQ(streamed_engine.store().raw_resident_samples(), 0u);
    EXPECT_EQ(streamed_engine.store().raw_sealed_through(),
              streamed_engine.store().config().days - 1);
    EXPECT_EQ(stream_report.raw_rows, mat_report.raw_rows);
    EXPECT_EQ(stream_report.daily_rows, mat_report.daily_rows);

    for (const auto& entry :
         std::filesystem::directory_iterator(materialized)) {
        const auto file = entry.path().filename();
        if (file.string().find(".raw.csv") == std::string::npos) {
            EXPECT_EQ(read_file(materialized / file),
                      read_file(streamed / file))
                << file;
            continue;
        }
        // raw files: identical header, identical row multiset (streaming
        // emits day-major, materialized series-major)
        EXPECT_EQ(header_line(materialized / file),
                  header_line(streamed / file))
            << file;
        EXPECT_EQ(sorted_body_lines(materialized / file),
                  sorted_body_lines(streamed / file))
            << file;
    }
}

// (3) Unit-level sealing: blocks are handed out in ascending (series, day)
// order, freed from memory, and late appends into sealed days drop.
TEST_F(StreamingExportTest, SealFreesBlocksAndDropsLateAppends) {
    metric_store store(metric_registry::standard_catalog(),
                       store_config{.keep_raw = true});
    const series_id cpu = store.open_series(
        metric_names::host_cpu_core_utilization,
        label_set{{"node", "n1"}, {"bb", "bb-0"}, {"dc", "dc-a"}});
    const series_id mem = store.open_series(
        metric_names::host_memory_usage,
        label_set{{"node", "n1"}, {"bb", "bb-0"}, {"dc", "dc-a"}});
    // three days of samples on both series
    for (int day = 0; day < 3; ++day) {
        for (int i = 0; i < 10; ++i) {
            const sim_time t = day * seconds_per_day + i * 300;
            store.append(cpu, t, 10.0 + day);
            store.append(mem, t, 50.0 + day);
        }
    }
    ASSERT_EQ(store.raw_resident_samples(), 60u);

    struct block {
        series_id id;
        int day;
        std::size_t count;
    };
    std::vector<block> blocks;
    store.seal_raw_through(1, [&](series_id id, int day,
                                  std::span<const sample> samples) {
        blocks.push_back({id, day, samples.size()});
    });

    // days 0 and 1 of both series went out, in ascending (series, day)
    ASSERT_EQ(blocks.size(), 4u);
    EXPECT_EQ(blocks[0].day, 0);
    EXPECT_EQ(blocks[1].day, 1);
    EXPECT_EQ(blocks[2].day, 0);
    EXPECT_EQ(blocks[3].day, 1);
    EXPECT_LT(blocks[0].id.value(), blocks[2].id.value());
    for (const block& b : blocks) EXPECT_EQ(b.count, 10u);

    // ...and their memory is actually gone, day 2 still resident
    EXPECT_EQ(store.raw_resident_samples(), 20u);
    EXPECT_EQ(store.raw_sealed_through(), 1);
    EXPECT_EQ(store.raw(cpu).size(), 10u);
    EXPECT_EQ(store.raw(cpu).front().t, 2 * seconds_per_day);

    // a straggler landing in a sealed day is dropped, not resurrected
    const std::uint64_t dropped_before = store.dropped_samples();
    store.append(cpu, seconds_per_day / 2, 99.0);
    EXPECT_EQ(store.raw_resident_samples(), 20u);
    EXPECT_EQ(store.dropped_samples(), dropped_before + 1);

    // sealing without a sink frees the rest silently
    store.seal_raw_through(2);
    EXPECT_EQ(store.raw_resident_samples(), 0u);
}

}  // namespace
}  // namespace sci
