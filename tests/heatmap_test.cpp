// Tests for analysis/heatmap on a hand-built store: values, grouping,
// column sorting, missing cells.

#include "analysis/heatmap.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

/// Store with three nodes in two BBs; node utilizations are constants so
/// expected heatmap cells are exact.
struct heatmap_fixture {
    metric_store store{metric_registry::standard_catalog()};
    series_id n1, n2, n3;

    heatmap_fixture() {
        n1 = open("n1", "bb-a");
        n2 = open("n2", "bb-a");
        n3 = open("n3", "bb-b");
        // day 0: n1=20%, n2=40%, n3=90% utilization; two samples each
        for (sim_time t : {sim_time{100}, sim_time{400}}) {
            store.append(n1, t, 20.0);
            store.append(n2, t, 40.0);
            store.append(n3, t, 90.0);
        }
        // day 1: only n1 reports (n2/n3 are "white")
        store.append(n1, days(1) + 100, 30.0);
    }

    series_id open(const char* node, const char* bb) {
        return store.open_series(
            metric_names::host_cpu_core_utilization,
            label_set{{"node", node}, {"bb", bb}, {"dc", "dc-a"}});
    }
};

TEST(HeatmapBuilderTest, CellsAreTransformedDailyMeans) {
    heatmap_fixture fx;
    const heatmap hm = build_daily_heatmap(
        fx.store, metric_names::host_cpu_core_utilization, {}, "node",
        free_percent_from_util);
    ASSERT_EQ(hm.columns.size(), 3u);
    EXPECT_EQ(hm.days, observation_days);
    // sorted most free first: n1 (80% free), n2 (60%), n3 (10%)
    EXPECT_EQ(hm.columns[0], "n1");
    EXPECT_EQ(hm.columns[1], "n2");
    EXPECT_EQ(hm.columns[2], "n3");
    EXPECT_DOUBLE_EQ(hm.cell(0, 0), 80.0);
    EXPECT_DOUBLE_EQ(hm.cell(0, 1), 60.0);
    EXPECT_DOUBLE_EQ(hm.cell(0, 2), 10.0);
}

TEST(HeatmapBuilderTest, MissingDaysAreNan) {
    heatmap_fixture fx;
    const heatmap hm = build_daily_heatmap(
        fx.store, metric_names::host_cpu_core_utilization, {}, "node",
        free_percent_from_util);
    EXPECT_DOUBLE_EQ(hm.cell(1, 0), 70.0);         // n1 reported on day 1
    EXPECT_TRUE(heatmap::missing(hm.cell(1, 1)));  // n2 white
    EXPECT_TRUE(heatmap::missing(hm.cell(1, 2)));  // n3 white
    EXPECT_TRUE(heatmap::missing(hm.cell(15, 0)));
}

TEST(HeatmapBuilderTest, GroupingByBbMergesNodeSeries) {
    heatmap_fixture fx;
    const heatmap hm = build_daily_heatmap(
        fx.store, metric_names::host_cpu_core_utilization, {}, "bb",
        free_percent_from_util);
    ASSERT_EQ(hm.columns.size(), 2u);
    // bb-a mean util day 0 = (20+40)/2 = 30 -> 70 free; bb-b -> 10 free
    EXPECT_EQ(hm.columns[0], "bb-a");
    EXPECT_DOUBLE_EQ(hm.cell(0, 0), 70.0);
    EXPECT_DOUBLE_EQ(hm.cell(0, 1), 10.0);
}

TEST(HeatmapBuilderTest, LabelFilterRestrictsSeries) {
    heatmap_fixture fx;
    // add a node in another DC
    const series_id other = fx.store.open_series(
        metric_names::host_cpu_core_utilization,
        label_set{{"node", "nx"}, {"bb", "bb-x"}, {"dc", "dc-b"}});
    fx.store.append(other, 100, 50.0);

    const std::vector<std::pair<std::string, std::string>> filter{{"dc", "dc-a"}};
    const heatmap hm = build_daily_heatmap(
        fx.store, metric_names::host_cpu_core_utilization, filter, "node",
        free_percent_from_util);
    EXPECT_EQ(hm.columns.size(), 3u);  // nx excluded
}

TEST(HeatmapBuilderTest, CustomTransformSeesLabels) {
    heatmap_fixture fx;
    const cell_transform transform = [](const running_stats& day,
                                        const label_set& labels) {
        return labels.contains("node", "n3") ? -1.0 : day.mean();
    };
    const heatmap hm = build_daily_heatmap(
        fx.store, metric_names::host_cpu_core_utilization, {}, "node", transform);
    // n3's column (lowest mean -1) is sorted last
    EXPECT_EQ(hm.columns.back(), "n3");
    EXPECT_DOUBLE_EQ(hm.cell(0, 2), -1.0);
}

TEST(HeatmapBuilderTest, EmptyMetricYieldsEmptyHeatmap) {
    metric_store store(metric_registry::standard_catalog());
    const heatmap hm =
        build_daily_heatmap(store, metric_names::host_memory_usage, {}, "node",
                            free_percent_from_util);
    EXPECT_TRUE(hm.columns.empty());
}

TEST(HeatmapBuilderTest, NullTransformThrows) {
    metric_store store(metric_registry::standard_catalog());
    EXPECT_THROW(build_daily_heatmap(store, metric_names::host_memory_usage, {},
                                     "node", cell_transform{}),
                 precondition_error);
}

TEST(HeatmapStatsTest, ColumnMeanSkipsMissing) {
    heatmap_fixture fx;
    const heatmap hm = build_daily_heatmap(
        fx.store, metric_names::host_cpu_core_utilization, {}, "node",
        free_percent_from_util);
    // n1: days 0 and 1 present -> mean of 80 and 70
    EXPECT_DOUBLE_EQ(hm.column_mean(0), 75.0);
    // n2: only day 0
    EXPECT_DOUBLE_EQ(hm.column_mean(1), 60.0);
}

TEST(HeatmapStatsTest, MinMaxAndMissingFraction) {
    heatmap_fixture fx;
    const heatmap hm = build_daily_heatmap(
        fx.store, metric_names::host_cpu_core_utilization, {}, "node",
        free_percent_from_util);
    EXPECT_DOUBLE_EQ(hm.min_value(), 10.0);
    EXPECT_DOUBLE_EQ(hm.max_value(), 80.0);
    // 4 present cells of 90 total
    EXPECT_NEAR(hm.missing_fraction(), (90.0 - 4.0) / 90.0, 1e-12);
}

}  // namespace
}  // namespace sci
