// sci::fault acceptance tests:
//   - the all-zero fault_config is fully inert (no schedule, no events,
//     byte-identical runs to an engine that never heard of faults),
//   - the compiled fault schedule is a pure function of (config, fleet,
//     seed),
//   - a faulted run is bit-identical at 0 / 1 / 4 worker threads (all
//     fault RNG draws happen in the serial event loop),
//   - HA recovery re-places crash victims through the real conductor and
//     accounts downtime.
//
// Registered as a single ctest entry: the cases share five expensive
// engine runs built once.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "fault/fault.hpp"

namespace sci {
namespace {

fault_config test_faults() {
    fault_config fc;
    fc.host_crash_rate_per_day = 0.004;
    fc.claim_failure_probability = 0.05;
    fc.migration_abort_probability = 0.05;
    fc.degraded_node_fraction = 0.10;
    fc.maintenance_windows = 2;
    return fc;
}

engine_config base_config() {
    engine_config config;
    config.scenario.scale = 0.02;  // ~36 nodes, ~960 VMs
    config.scenario.seed = 11;
    config.sampling_interval = 900;
    return config;
}

std::unique_ptr<sim_engine> run_engine(const engine_config& config) {
    auto engine = std::make_unique<sim_engine>(config);
    engine->run();
    return engine;
}

struct shared_runs {
    /// Faulted runs at 0 / 1 / 4 worker threads.
    std::vector<std::unique_ptr<sim_engine>> faulted;
    /// Plain default-config run (the pre-fault baseline).
    std::unique_ptr<sim_engine> plain;
    /// All rates zero but HA policy knobs changed: still !enabled(), must
    /// reproduce the plain run byte-for-byte.
    std::unique_ptr<sim_engine> inert;
};

const shared_runs& runs() {
    static auto* shared = [] {
        auto* r = new shared_runs();
        for (const unsigned threads : {0u, 1u, 4u}) {
            engine_config config = base_config();
            config.threads = threads;
            config.fault = test_faults();
            r->faulted.push_back(run_engine(config));
        }
        r->plain = run_engine(base_config());
        engine_config inert = base_config();
        inert.fault.ha_restart_delay = 999;
        inert.fault.ha_max_restart_attempts = 2;
        inert.fault.degraded_cpu_factor = 0.5;
        r->inert = run_engine(inert);
        return r;
    }();
    return *shared;
}

void expect_stats_equal(const run_stats& a, const run_stats& b) {
    EXPECT_EQ(a.placements, b.placements);
    EXPECT_EQ(a.placement_failures, b.placement_failures);
    EXPECT_EQ(a.scheduler_retries, b.scheduler_retries);
    EXPECT_EQ(a.drs_migrations, b.drs_migrations);
    EXPECT_EQ(a.evacuations, b.evacuations);
    EXPECT_EQ(a.forced_fits, b.forced_fits);
    EXPECT_EQ(a.holistic_claim_rejections, b.holistic_claim_rejections);
    EXPECT_EQ(a.deletions, b.deletions);
    EXPECT_EQ(a.scrapes, b.scrapes);
    EXPECT_EQ(a.resizes, b.resizes);
    EXPECT_EQ(a.resize_failures, b.resize_failures);
    EXPECT_EQ(a.migration_seconds, b.migration_seconds);  // bitwise: ==
    EXPECT_EQ(a.max_migration_downtime_ms, b.max_migration_downtime_ms);
    EXPECT_EQ(a.speculative_placements, b.speculative_placements);
    EXPECT_EQ(a.speculation_misses, b.speculation_misses);
    EXPECT_EQ(a.window_batches, b.window_batches);
    EXPECT_EQ(a.window_speculations, b.window_speculations);
    EXPECT_EQ(a.window_speculative_placements, b.window_speculative_placements);
    EXPECT_EQ(a.window_speculation_misses, b.window_speculation_misses);
    EXPECT_EQ(a.window_speculation_invalidated, b.window_speculation_invalidated);
    // churn_placement_wall_ms is host timing, deliberately not compared
    // initial_placement_wall_ms is host timing, deliberately not compared
    EXPECT_EQ(a.recovery_batches, b.recovery_batches);
    EXPECT_EQ(a.recovery_speculations, b.recovery_speculations);
    EXPECT_EQ(a.recovery_speculative_placements,
              b.recovery_speculative_placements);
    EXPECT_EQ(a.recovery_speculation_misses, b.recovery_speculation_misses);
    EXPECT_EQ(a.recovery_speculation_invalidated,
              b.recovery_speculation_invalidated);
    EXPECT_EQ(a.recovery_speculation_cancelled,
              b.recovery_speculation_cancelled);
    // recovery_placement_wall_ms is host timing, deliberately not compared
    EXPECT_EQ(a.rebalance_target_speculations, b.rebalance_target_speculations);
    EXPECT_EQ(a.rebalance_targets_used, b.rebalance_targets_used);
    EXPECT_EQ(a.rebalance_target_invalidated, b.rebalance_target_invalidated);
    EXPECT_EQ(a.host_crashes, b.host_crashes);
    EXPECT_EQ(a.crash_victims, b.crash_victims);
    EXPECT_EQ(a.ha_restarts, b.ha_restarts);
    EXPECT_EQ(a.ha_restart_failures, b.ha_restart_failures);
    EXPECT_EQ(a.migration_aborts, b.migration_aborts);
    EXPECT_EQ(a.maintenance_evacuations, b.maintenance_evacuations);
    EXPECT_EQ(a.wasted_migration_seconds, b.wasted_migration_seconds);
}

// --- inert defaults ---------------------------------------------------------

TEST(FaultTest, DefaultConfigIsDisabled) {
    EXPECT_FALSE(fault_config{}.enabled());
    EXPECT_TRUE(test_faults().enabled());
    fault_config policy_only;
    policy_only.ha_restart_delay = 999;  // policy knobs alone don't enable
    EXPECT_FALSE(policy_only.enabled());
}

TEST(FaultTest, DisabledConfigCompilesEmptySchedule) {
    const auto& plain = *runs().plain;
    EXPECT_TRUE(compile_fault_schedule(fault_config{}, plain.infrastructure(),
                                       plain.config().scenario.seed)
                    .empty());
}

TEST(FaultTest, PlainRunHasNoFaultFootprint) {
    const auto& plain = *runs().plain;
    EXPECT_EQ(plain.ha(), nullptr);
    EXPECT_EQ(plain.transient_claim_failures(), 0u);
    EXPECT_EQ(plain.stats().host_crashes, 0u);
    EXPECT_EQ(plain.stats().crash_victims, 0u);
    EXPECT_EQ(plain.stats().migration_aborts, 0u);
    EXPECT_EQ(plain.events().count(lifecycle_event_kind::crash), 0u);
    EXPECT_EQ(plain.events().count(lifecycle_event_kind::ha_restart), 0u);
}

TEST(FaultTest, ZeroRatesReproduceThePlainRunExactly) {
    const auto& plain = *runs().plain;
    const auto& inert = *runs().inert;
    expect_stats_equal(plain.stats(), inert.stats());
    EXPECT_EQ(plain.store().total_samples(), inert.store().total_samples());
    EXPECT_EQ(plain.store().series_count(), inert.store().series_count());
    EXPECT_EQ(plain.events().size(), inert.events().size());
    const auto a = plain.vms().all();
    const auto b = inert.vms().all();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].state, b[i].state);
        EXPECT_EQ(a[i].placed_node, b[i].placed_node);
        EXPECT_EQ(a[i].migration_count, b[i].migration_count);
    }
}

// --- schedule compilation ---------------------------------------------------

TEST(FaultTest, ScheduleIsPureInConfigFleetAndSeed) {
    const auto& plain = *runs().plain;
    const fault_config fc = test_faults();
    const auto a = compile_fault_schedule(fc, plain.infrastructure(), 11);
    const auto b = compile_fault_schedule(fc, plain.infrastructure(), 11);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].t, b[i].t);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].node, b[i].node);
        EXPECT_EQ(a[i].cpu_factor, b[i].cpu_factor);
    }
    // a different seed draws a different schedule
    const auto c = compile_fault_schedule(fc, plain.infrastructure(), 12);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i) {
        differs = a[i].t != c[i].t || a[i].node != c[i].node;
    }
    EXPECT_TRUE(differs);
}

TEST(FaultTest, ScheduleIsSortedAndInsideTheWindow) {
    const auto& plain = *runs().plain;
    const auto schedule =
        compile_fault_schedule(test_faults(), plain.infrastructure(), 11);
    ASSERT_FALSE(schedule.empty());
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        EXPECT_GE(schedule[i].t, 0);
        EXPECT_LT(schedule[i].t, observation_window);
        if (i > 0) EXPECT_LE(schedule[i - 1].t, schedule[i].t);
    }
}

// --- thread-count determinism ----------------------------------------------

TEST(FaultTest, FaultedStatsAreBitIdenticalAcrossThreadCounts) {
    const auto& faulted = runs().faulted;
    ASSERT_GT(faulted[0]->stats().host_crashes, 0u);
    expect_stats_equal(faulted[0]->stats(), faulted[1]->stats());
    expect_stats_equal(faulted[0]->stats(), faulted[2]->stats());
    EXPECT_EQ(faulted[0]->transient_claim_failures(),
              faulted[1]->transient_claim_failures());
    EXPECT_EQ(faulted[0]->transient_claim_failures(),
              faulted[2]->transient_claim_failures());
}

TEST(FaultTest, FaultedTelemetryIsBitIdenticalAcrossThreadCounts) {
    const auto& faulted = runs().faulted;
    for (std::size_t i = 1; i < faulted.size(); ++i) {
        EXPECT_EQ(faulted[0]->store().total_samples(),
                  faulted[i]->store().total_samples());
        EXPECT_EQ(faulted[0]->store().series_count(),
                  faulted[i]->store().series_count());
        EXPECT_EQ(faulted[0]->events().size(), faulted[i]->events().size());
    }
    using namespace metric_names;
    for (std::size_t i = 1; i < faulted.size(); ++i) {
        for (const auto metric : {host_cpu_contention, host_cpu_ready}) {
            const std::vector<series_id> sa = faulted[0]->store().select(metric);
            const std::vector<series_id> sb = faulted[i]->store().select(metric);
            ASSERT_EQ(sa.size(), sb.size());
            for (std::size_t k = 0; k < sa.size(); k += 5) {
                const running_stats wa =
                    faulted[0]->store().window_aggregate(sa[k]);
                const running_stats wb =
                    faulted[i]->store().window_aggregate(sb[k]);
                EXPECT_EQ(wa.count(), wb.count());
                EXPECT_EQ(wa.mean(), wb.mean());  // bitwise
                EXPECT_EQ(wa.max(), wb.max());
            }
        }
    }
}

TEST(FaultTest, FaultedDowntimeSamplesAreBitIdenticalAcrossThreadCounts) {
    const auto& faulted = runs().faulted;
    for (std::size_t i = 1; i < faulted.size(); ++i) {
        ASSERT_NE(faulted[0]->ha(), nullptr);
        ASSERT_NE(faulted[i]->ha(), nullptr);
        EXPECT_EQ(faulted[0]->ha()->downtime_samples(),
                  faulted[i]->ha()->downtime_samples());
    }
}

// --- HA recovery behavior ----------------------------------------------------

TEST(FaultTest, CrashVictimsAreAccountedFor) {
    const auto& engine = *runs().faulted[0];
    const ha_controller& ha = *engine.ha();
    const run_stats& stats = engine.stats();
    ASSERT_GT(stats.crash_victims, 0u);
    EXPECT_EQ(ha.crashed_vms(), stats.crash_victims);
    // every victim ends restarted, abandoned, deleted-while-down, or with
    // a restart still pending past the window's end
    EXPECT_EQ(ha.crashed_vms(), ha.restarted_vms() + ha.abandoned_vms() +
                                    ha.cancelled_vms() + ha.pending_count());
    EXPECT_EQ(ha.restarted_vms(), stats.ha_restarts);
    EXPECT_EQ(ha.downtime_samples().size(), stats.ha_restarts);
}

TEST(FaultTest, RestartedVictimsAreActiveOnRealNodes) {
    const auto& engine = *runs().faulted[0];
    std::uint64_t restart_events = 0;
    for (const lifecycle_event& e : engine.events().all()) {
        if (e.kind != lifecycle_event_kind::ha_restart) continue;
        ++restart_events;
        EXPECT_TRUE(e.bb.valid());
        EXPECT_TRUE(e.to.valid());
    }
    EXPECT_EQ(restart_events, engine.stats().ha_restarts);
    EXPECT_EQ(engine.events().count(lifecycle_event_kind::crash),
              engine.stats().crash_victims);
}

TEST(FaultTest, DowntimeIsAtLeastTheDetectionDelay) {
    const auto& engine = *runs().faulted[0];
    const double delay =
        static_cast<double>(engine.config().fault.ha_restart_delay);
    ASSERT_FALSE(engine.ha()->downtime_samples().empty());
    for (const double d : engine.ha()->downtime_samples()) {
        EXPECT_GE(d, delay);
    }
    EXPECT_GE(engine.ha()->mttr(), delay);
}

TEST(FaultTest, ActiveListMatchesRegistryCount) {
    for (const auto* engine :
         {runs().faulted[0].get(), runs().plain.get()}) {
        std::size_t active = 0;
        for (const vm_record& rec : engine->vms().all()) {
            if (rec.state == vm_state::active) ++active;
        }
        EXPECT_EQ(engine->active_vm_count(), active);
    }
}

}  // namespace
}  // namespace sci
