// Tests for analysis/figures on synthetic stores/registries with known
// expected outputs.

#include "analysis/figures.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

// --- Figure 8 / 9 on a synthetic store --------------------------------------

struct contention_fixture {
    metric_store store{metric_registry::standard_catalog()};

    series_id node_series(std::string_view metric, const char* node) {
        return store.open_series(metric,
                                 label_set{{"node", node}, {"bb", "bb"}});
    }
};

TEST(Fig8Test, RanksNodesByTotalReadyTime) {
    contention_fixture fx;
    const series_id hot =
        fx.node_series(metric_names::host_cpu_ready, "hot");
    const series_id warm =
        fx.node_series(metric_names::host_cpu_ready, "warm");
    const series_id cold =
        fx.node_series(metric_names::host_cpu_ready, "cold");
    for (int i = 0; i < 10; ++i) {
        fx.store.append(hot, hours(i), 50'000.0);
        fx.store.append(warm, hours(i), 10'000.0);
        fx.store.append(cold, hours(i), 100.0);
    }
    const auto top2 = fig8_top_ready_nodes(fx.store, 2);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0].node, "hot");
    EXPECT_EQ(top2[1].node, "warm");
    EXPECT_DOUBLE_EQ(top2[0].total_ready_ms, 500'000.0);
    EXPECT_DOUBLE_EQ(top2[0].peak_ready_ms, 50'000.0);
    // hourly series: first 10 hours populated, rest NaN
    EXPECT_EQ(top2[0].hourly_ms.size(),
              static_cast<std::size_t>(observation_days * 24));
    EXPECT_DOUBLE_EQ(top2[0].hourly_ms[3], 50'000.0);
    EXPECT_TRUE(std::isnan(top2[0].hourly_ms[20]));
}

TEST(Fig8Test, FewerNodesThanTopK) {
    contention_fixture fx;
    const series_id only = fx.node_series(metric_names::host_cpu_ready, "n");
    fx.store.append(only, 100, 1.0);
    EXPECT_EQ(fig8_top_ready_nodes(fx.store, 10).size(), 1u);
    EXPECT_THROW(fig8_top_ready_nodes(fx.store, 0), precondition_error);
}

TEST(Fig9Test, DailyDistributionOverNodes) {
    contention_fixture fx;
    // 10 nodes at 2%, one node at 40% (the paper's outlier)
    for (int n = 0; n < 10; ++n) {
        const series_id id = fx.node_series(
            metric_names::host_cpu_contention, ("n" + std::to_string(n)).c_str());
        fx.store.append(id, 100, 2.0);
    }
    const series_id outlier =
        fx.node_series(metric_names::host_cpu_contention, "outlier");
    fx.store.append(outlier, 100, 40.0);

    const auto by_day = fig9_contention_by_day(fx.store);
    ASSERT_EQ(by_day.size(), static_cast<std::size_t>(observation_days));
    const contention_day& d0 = by_day[0];
    EXPECT_NEAR(d0.mean_pct, (10.0 * 2.0 + 40.0) / 11.0, 1e-9);
    EXPECT_DOUBLE_EQ(d0.max_pct, 40.0);
    EXPECT_GT(d0.p95_pct, 2.0);  // outlier pulls the p95 up
    // empty days have zeroed rows
    EXPECT_DOUBLE_EQ(by_day[5].mean_pct, 0.0);
}

// --- Figure 14 ----------------------------------------------------------------

TEST(Fig14Test, CdfAndClassesFromVmSeries) {
    metric_store store{metric_registry::standard_catalog()};
    const double means[] = {0.1, 0.2, 0.3, 0.5, 0.72, 0.8, 0.9, 0.95, 0.6, 0.65};
    int i = 0;
    for (double m : means) {
        const series_id id = store.open_series(
            metric_names::vm_cpu_usage_ratio,
            label_set{{"vm", "vm" + std::to_string(i++)}});
        store.append(id, 100, m);
    }
    const vm_utilization_cdf cdf = fig14a_cpu_utilization(store);
    EXPECT_EQ(cdf.classes.vm_count, 10u);
    EXPECT_DOUBLE_EQ(cdf.classes.under_pct, 60.0);   // 6 of 10 < 0.70
    EXPECT_DOUBLE_EQ(cdf.classes.optimal_pct, 20.0); // 0.72, 0.8
    EXPECT_DOUBLE_EQ(cdf.classes.over_pct, 20.0);    // 0.9, 0.95
    EXPECT_DOUBLE_EQ(cdf.cdf(0.5), 0.4);
    EXPECT_DOUBLE_EQ(cdf.cdf(1.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.cdf(0.0), 0.0);
}

TEST(Fig14Test, EmptyStore) {
    metric_store store{metric_registry::standard_catalog()};
    const vm_utilization_cdf cdf = fig14b_memory_utilization(store);
    EXPECT_EQ(cdf.classes.vm_count, 0u);
    EXPECT_DOUBLE_EQ(cdf.cdf(0.5), 0.0);
}

// --- Tables 1 / 2 ---------------------------------------------------------------

struct classification_fixture {
    flavor_catalog catalog;
    vm_registry vms;
    flavor_id tiny, medium, large, xl;

    classification_fixture() {
        tiny = catalog.add("t", 2, gib_to_mib(2), 10, workload_class::general_purpose);
        medium = catalog.add("m", 8, gib_to_mib(32), 10, workload_class::general_purpose);
        large = catalog.add("l", 32, gib_to_mib(128), 10, workload_class::general_purpose);
        xl = catalog.add("x", 96, gib_to_mib(2048), 10, workload_class::hana_db);
    }

    void add_vm(flavor_id f, sim_time created, std::optional<sim_time> deleted) {
        const vm_id id = vms.create(f, project_id(0), created);
        vm_record& rec = vms.get_mutable(id);
        rec.state = deleted.has_value() ? vm_state::deleted : vm_state::active;
        rec.created_at = created;
        rec.deleted_at = deleted;
    }
};

TEST(Table1Test, AveragesOverWindow) {
    classification_fixture fx;
    // 3 small VMs alive the whole window
    for (int i = 0; i < 3; ++i) fx.add_vm(fx.tiny, -days(10), std::nullopt);
    // a medium VM alive only the first half (15 of 30 days) -> counts 0.5
    fx.add_vm(fx.medium, -days(1), days(15));
    // an error VM never counts
    const vm_id failed = fx.vms.create(fx.large, project_id(0), 0);
    fx.vms.get_mutable(failed).state = vm_state::error;

    const auto rows = table1_vcpu_classes(fx.vms, fx.catalog);
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].category, "Small");
    EXPECT_DOUBLE_EQ(rows[0].average_vms, 3.0);
    EXPECT_DOUBLE_EQ(rows[1].average_vms, 0.5);
    EXPECT_DOUBLE_EQ(rows[2].average_vms, 0.0);
    EXPECT_DOUBLE_EQ(rows[3].average_vms, 0.0);
}

TEST(Table2Test, ClassifiesByRam) {
    classification_fixture fx;
    fx.add_vm(fx.tiny, -days(1), std::nullopt);    // 2 GiB -> Small
    fx.add_vm(fx.medium, -days(1), std::nullopt);  // 32 GiB -> Medium
    fx.add_vm(fx.large, -days(1), std::nullopt);   // 128 GiB -> Large
    fx.add_vm(fx.xl, -days(1), std::nullopt);      // 2 TiB -> XL
    const auto rows = table2_ram_classes(fx.vms, fx.catalog);
    for (const size_class_row& row : rows) {
        EXPECT_DOUBLE_EQ(row.average_vms, 1.0) << row.category;
    }
}

// --- Figure 15 -----------------------------------------------------------------

TEST(Fig15Test, FiltersByMinInstancesAndComputesStats) {
    classification_fixture fx;
    for (int i = 0; i < 40; ++i) {
        // created i days before the window, deleted on day 1:
        // lifetimes 1..40 days
        fx.add_vm(fx.tiny, -days(i), days(1));
    }
    for (int i = 0; i < 5; ++i) fx.add_vm(fx.xl, -days(100), std::nullopt);

    const auto rows = fig15_lifetime_per_flavor(fx.vms, fx.catalog, 30);
    ASSERT_EQ(rows.size(), 1u);  // only the tiny flavor reaches 30 instances
    EXPECT_EQ(rows[0].flavor_name, "t");
    EXPECT_EQ(rows[0].instances, 40u);
    EXPECT_GT(rows[0].max_days, rows[0].min_days);
    EXPECT_GE(rows[0].median_days, rows[0].min_days);
    EXPECT_LE(rows[0].median_days, rows[0].max_days);
}

TEST(Fig15Test, AliveVmsUseAgeAtWindowEnd) {
    classification_fixture fx;
    for (int i = 0; i < 30; ++i) fx.add_vm(fx.medium, -days(70), std::nullopt);
    const auto rows = fig15_lifetime_per_flavor(fx.vms, fx.catalog, 30);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_DOUBLE_EQ(rows[0].mean_days, 100.0);  // 70 before + 30 window days
}

TEST(Fig15Test, SortedBySize) {
    classification_fixture fx;
    for (int i = 0; i < 30; ++i) {
        fx.add_vm(fx.xl, -days(10), std::nullopt);
        fx.add_vm(fx.tiny, -days(10), std::nullopt);
    }
    const auto rows = fig15_lifetime_per_flavor(fx.vms, fx.catalog, 30);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].flavor_name, "t");  // fewest vcpus first
    EXPECT_EQ(rows[1].flavor_name, "x");
}

// --- intra-BB imbalance ----------------------------------------------------------

TEST(ImbalanceTest, DetectsSpreadWithinBb) {
    metric_store store{metric_registry::standard_catalog()};
    fleet f;  // unused by the implementation beyond the signature
    const auto open = [&](const char* node, const char* bb) {
        return store.open_series(metric_names::host_cpu_core_utilization,
                                 label_set{{"node", node}, {"bb", bb}});
    };
    const series_id a = open("a", "bb-0");
    const series_id b = open("b", "bb-0");
    store.append(a, 100, 90.0);
    store.append(a, 200, 99.0);
    store.append(b, 100, 10.0);
    store.append(b, 200, 10.0);

    const imbalance_summary summary = intra_bb_imbalance(store, f);
    EXPECT_NEAR(summary.max_intra_bb_spread_pct, 84.5, 1e-9);  // 94.5 - 10
    EXPECT_DOUBLE_EQ(summary.max_node_util_pct, 99.0);
    EXPECT_GT(summary.mean_intra_bb_stddev_pct, 40.0);
}

TEST(ImbalanceTest, SingleNodeBbsIgnored) {
    metric_store store{metric_registry::standard_catalog()};
    fleet f;
    const series_id a = store.open_series(
        metric_names::host_cpu_core_utilization,
        label_set{{"node", "solo"}, {"bb", "bb-solo"}});
    store.append(a, 100, 95.0);
    const imbalance_summary summary = intra_bb_imbalance(store, f);
    EXPECT_DOUBLE_EQ(summary.max_intra_bb_spread_pct, 0.0);
    EXPECT_DOUBLE_EQ(summary.mean_intra_bb_stddev_pct, 0.0);
}

}  // namespace
}  // namespace sci
