// Tests for rebalancer/cross_bb: the external cross-building-block
// rebalancer of Sections 3.1 / 7.

#include "rebalancer/cross_bb.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "infra/vm.hpp"
#include "sched/conductor.hpp"
#include "simcore/error.hpp"

namespace sci {
namespace {

struct cross_bb_fixture {
    fleet f;
    flavor_catalog catalog;
    placement_service placement;
    flavor_id small;
    flavor_id heavy;
    std::map<bb_id, std::vector<vm_id>> residents;
    vm_registry vms;

    cross_bb_fixture() {
        const region_id r = f.add_region("r");
        const az_id az = f.add_az(r, "az");
        const dc_id dc = f.add_dc(az, "dc");
        for (int i = 0; i < 3; ++i) {
            f.add_bb(dc, "gen-" + std::to_string(i), bb_purpose::general,
                     profiles::general_purpose(), 2);
        }
        small = catalog.add("g_c4_m64", 4, gib_to_mib(64), 100.0,
                            workload_class::general_purpose);
        heavy = catalog.add("hana_c32_m2048", 32, gib_to_mib(2048), 1000.0,
                            workload_class::hana_db);
        for (const building_block& bb : f.bbs()) {
            const allocation_ratios ratios = default_ratios_for(bb.purpose);
            placement.register_provider(
                bb.id,
                provider_inventory{f.bb_total_cores(bb.id),
                                   f.bb_total_memory(bb.id),
                                   bb.profile.storage_gib * 2.0, ratios.cpu,
                                   ratios.ram});
        }
    }

    vm_id put(flavor_id fid, bb_id bb) {
        const vm_id vm = vms.create(fid, project_id(0), 0);
        placement.claim(vm, bb, catalog.get(fid));
        residents[bb].push_back(vm);
        return vm;
    }

    cross_bb_inputs inputs(double dirty_rate = 10.0) {
        cross_bb_inputs in;
        in.vms_of_bb = [this](bb_id bb) { return residents[bb]; };
        in.flavor_of = [this](vm_id vm) -> const flavor& {
            return catalog.get(vms.get(vm).flavor);
        };
        in.resident_mib = [this](vm_id vm) -> mebibytes {
            return catalog.get(vms.get(vm).flavor).ram_mib / 2;
        };
        in.dirty_rate = [dirty_rate](vm_id) { return dirty_rate; };
        return in;
    }
};

TEST(CrossBbRebalancerTest, BalancedGroupPlansNothing) {
    cross_bb_fixture fx;
    for (const building_block& bb : fx.f.bbs()) {
        fx.put(fx.small, bb.id);
    }
    const cross_bb_rebalancer rebalancer(fx.f, fx.catalog, {});
    EXPECT_TRUE(rebalancer.plan(fx.placement, fx.inputs()).empty());
}

TEST(CrossBbRebalancerTest, MovesFromLoadedToEmptyBb) {
    cross_bb_fixture fx;
    // 20 small VMs on bb 0 (20 * 64 GiB = 1.25 TiB of 2 TiB), none elsewhere
    for (int i = 0; i < 20; ++i) fx.put(fx.small, bb_id(0));
    cross_bb_config config;
    config.target_ram_spread = 0.10;
    const cross_bb_rebalancer rebalancer(fx.f, fx.catalog, config);
    const auto moves = rebalancer.plan(fx.placement, fx.inputs());
    ASSERT_FALSE(moves.empty());
    for (const cross_bb_move& m : moves) {
        EXPECT_EQ(m.from, bb_id(0));
        EXPECT_NE(m.to, bb_id(0));
        EXPECT_TRUE(m.estimate.converges);
    }
    EXPECT_LE(moves.size(), static_cast<std::size_t>(config.max_moves_per_pass));
}

TEST(CrossBbRebalancerTest, RespectsTargetSpread) {
    cross_bb_fixture fx;
    for (int i = 0; i < 20; ++i) fx.put(fx.small, bb_id(0));
    cross_bb_config loose;
    loose.target_ram_spread = 0.99;  // anything goes
    const cross_bb_rebalancer rebalancer(fx.f, fx.catalog, loose);
    EXPECT_TRUE(rebalancer.plan(fx.placement, fx.inputs()).empty());
}

TEST(CrossBbRebalancerTest, NeverMovesHeavyVms) {
    cross_bb_fixture fx;
    // a single 2 TiB VM creates the whole imbalance
    fx.put(fx.heavy, bb_id(0));
    cross_bb_config config;
    config.target_ram_spread = 0.05;
    config.heavy_vm_ram_mib = gib_to_mib(1024);
    const cross_bb_rebalancer rebalancer(fx.f, fx.catalog, config);
    EXPECT_TRUE(rebalancer.plan(fx.placement, fx.inputs()).empty());
}

TEST(CrossBbRebalancerTest, VetoesNonConvergingMigrations) {
    cross_bb_fixture fx;
    for (int i = 0; i < 20; ++i) fx.put(fx.small, bb_id(0));
    cross_bb_config config;
    config.target_ram_spread = 0.10;
    const cross_bb_rebalancer rebalancer(fx.f, fx.catalog, config);
    // dirty rate above the migration bandwidth: nothing can move
    const auto moves = rebalancer.plan(
        fx.placement, fx.inputs(config.cost.bandwidth_mib_per_s * 2.0));
    EXPECT_TRUE(moves.empty());
}

TEST(CrossBbRebalancerTest, VetoesExcessiveDowntime) {
    cross_bb_fixture fx;
    for (int i = 0; i < 20; ++i) fx.put(fx.small, bb_id(0));
    cross_bb_config config;
    config.target_ram_spread = 0.10;
    config.max_downtime_ms = 0.0001;  // effectively nothing allowed
    const cross_bb_rebalancer rebalancer(fx.f, fx.catalog, config);
    EXPECT_TRUE(rebalancer.plan(fx.placement, fx.inputs()).empty());
}

TEST(CrossBbRebalancerTest, MoveBudgetRespected) {
    cross_bb_fixture fx;
    for (int i = 0; i < 24; ++i) fx.put(fx.small, bb_id(0));
    cross_bb_config config;
    config.target_ram_spread = 0.01;
    config.max_moves_per_pass = 2;
    const cross_bb_rebalancer rebalancer(fx.f, fx.catalog, config);
    EXPECT_LE(rebalancer.plan(fx.placement, fx.inputs()).size(), 2u);
}

TEST(CrossBbRebalancerTest, PlannedMovesAreDistinctVms) {
    cross_bb_fixture fx;
    for (int i = 0; i < 24; ++i) fx.put(fx.small, bb_id(0));
    cross_bb_config config;
    config.target_ram_spread = 0.01;
    config.max_moves_per_pass = 8;
    const cross_bb_rebalancer rebalancer(fx.f, fx.catalog, config);
    const auto moves = rebalancer.plan(fx.placement, fx.inputs());
    std::set<std::int32_t> seen;
    for (const cross_bb_move& m : moves) {
        EXPECT_TRUE(seen.insert(m.vm.value()).second);
    }
}

TEST(CrossBbRebalancerTest, RequiresAllOracles) {
    cross_bb_fixture fx;
    const cross_bb_rebalancer rebalancer(fx.f, fx.catalog, {});
    cross_bb_inputs incomplete;
    EXPECT_THROW(rebalancer.plan(fx.placement, incomplete), precondition_error);
}

TEST(CrossBbRebalancerTest, ValidatesConfig) {
    cross_bb_fixture fx;
    cross_bb_config bad;
    bad.target_ram_spread = -0.1;
    EXPECT_THROW(cross_bb_rebalancer(fx.f, fx.catalog, bad), precondition_error);
}

}  // namespace
}  // namespace sci
