// Tests for drs: intra-building-block balancing (the VMware DRS model).

#include "drs/drs.hpp"

#include <gtest/gtest.h>

#include <map>

#include "simcore/error.hpp"

namespace sci {
namespace {

struct drs_fixture {
    fleet f;
    bb_id bb;
    flavor_catalog catalog;
    flavor_id small;   // 4 vCPU / 32 GiB
    flavor_id medium;  // 16 vCPU / 128 GiB
    flavor_id heavy;   // 32 vCPU / 2048 GiB (above heavy_vm_ram_mib)
    std::map<vm_id, double> demand;

    explicit drs_fixture(int nodes = 4) {
        const region_id r = f.add_region("r");
        const az_id az = f.add_az(r, "az");
        const dc_id dc = f.add_dc(az, "dc");
        bb = f.add_bb(dc, "bb", bb_purpose::general,
                      profiles::general_purpose(), nodes);
        small = catalog.add("s", 4, gib_to_mib(32), 50.0,
                            workload_class::general_purpose);
        medium = catalog.add("m", 16, gib_to_mib(128), 100.0,
                             workload_class::general_purpose);
        heavy = catalog.add("h", 32, gib_to_mib(2048), 500.0,
                            workload_class::hana_db);
    }

    drs_cluster make_cluster(drs_config config = {}) {
        return drs_cluster(f.get(bb), config);
    }

    vm_cpu_demand_fn demand_fn() {
        return [this](vm_id vm) {
            const auto it = demand.find(vm);
            return it == demand.end() ? 0.0 : it->second;
        };
    }

    vm_flavor_fn flavor_fn(flavor_id fid) {
        return [this, fid](vm_id) -> const flavor& { return catalog.get(fid); };
    }
};

TEST(DrsClusterTest, ConstructionCreatesNodeRuntimes) {
    drs_fixture fx;
    const drs_cluster cluster = fx.make_cluster();
    EXPECT_EQ(cluster.nodes().size(), 4u);
    EXPECT_EQ(cluster.bb(), fx.bb);
    EXPECT_EQ(cluster.migration_count(), 0u);
}

TEST(DrsClusterTest, RejectsEmptyBb) {
    fleet f;
    const region_id r = f.add_region("r");
    const dc_id dc = f.add_dc(f.add_az(r, "az"), "dc");
    const bb_id empty = f.add_bb(dc, "empty", bb_purpose::general,
                                 profiles::general_purpose(), 0);
    EXPECT_THROW(drs_cluster(f.get(empty), {}), precondition_error);
}

TEST(DrsClusterTest, InitialPlacementPicksLeastReservedNode) {
    drs_fixture fx;
    drs_cluster cluster = fx.make_cluster();
    const flavor& small = fx.catalog.get(fx.small);
    // load node 0 heavily
    cluster.place(vm_id(0), fx.catalog.get(fx.medium), cluster.nodes()[0].id());
    const auto target = cluster.initial_placement(small);
    ASSERT_TRUE(target.has_value());
    EXPECT_NE(*target, cluster.nodes()[0].id());
}

TEST(DrsClusterTest, InitialPlacementSkipsNonAcceptingNodes) {
    drs_fixture fx(2);
    drs_cluster cluster = fx.make_cluster();
    cluster.node(cluster.nodes()[0].id()).set_accepting(false);
    const auto target = cluster.initial_placement(fx.catalog.get(fx.small));
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, cluster.nodes()[1].id());
}

TEST(DrsClusterTest, InitialPlacementNulloptWhenNothingFits) {
    drs_fixture fx(2);
    drs_cluster cluster = fx.make_cluster();
    // heavy flavor: 2048 GiB > 1024 GiB node memory
    EXPECT_FALSE(cluster.initial_placement(fx.catalog.get(fx.heavy)).has_value());
}

TEST(DrsClusterTest, PlaceAndRemoveRouteToNode) {
    drs_fixture fx;
    drs_cluster cluster = fx.make_cluster();
    const node_id node = cluster.nodes()[2].id();
    cluster.place(vm_id(7), fx.catalog.get(fx.small), node);
    EXPECT_TRUE(cluster.node(node).hosts(vm_id(7)));
    cluster.remove(vm_id(7), fx.catalog.get(fx.small), node);
    EXPECT_FALSE(cluster.node(node).hosts(vm_id(7)));
}

TEST(DrsClusterTest, NodeLookupThrowsForForeignNode) {
    drs_fixture fx;
    drs_cluster cluster = fx.make_cluster();
    EXPECT_THROW(cluster.node(node_id(9999)), not_found_error);
}

TEST(DrsClusterTest, ImbalanceIsStddevOfUtilization) {
    drs_fixture fx(2);
    drs_cluster cluster = fx.make_cluster();
    const node_id n0 = cluster.nodes()[0].id();
    cluster.place(vm_id(0), fx.catalog.get(fx.small), n0);
    fx.demand[vm_id(0)] = 48.0;  // 50% of one 96-core node
    // utilizations: {0.5, 0.0} -> stddev 0.25
    EXPECT_NEAR(cluster.imbalance(fx.demand_fn()), 0.25, 1e-12);
}

TEST(DrsClusterTest, RebalanceMovesLoadTowardIdleNode) {
    drs_fixture fx(2);
    drs_cluster cluster = fx.make_cluster();
    const node_id n0 = cluster.nodes()[0].id();
    // 8 small VMs, all on node 0, each demanding 8 cores
    for (int i = 0; i < 8; ++i) {
        cluster.place(vm_id(i), fx.catalog.get(fx.small), n0);
        fx.demand[vm_id(i)] = 8.0;
    }
    const double before = cluster.imbalance(fx.demand_fn());
    const auto moves =
        cluster.rebalance(fx.demand_fn(), fx.flavor_fn(fx.small));
    const double after = cluster.imbalance(fx.demand_fn());
    EXPECT_FALSE(moves.empty());
    EXPECT_LT(after, before);
    EXPECT_EQ(cluster.migration_count(), moves.size());
    for (const drs_migration& m : moves) {
        EXPECT_EQ(m.from, n0);
        EXPECT_TRUE(cluster.node(m.to).hosts(m.vm));
        EXPECT_FALSE(cluster.node(m.from).hosts(m.vm));
    }
}

TEST(DrsClusterTest, BalancedClusterNotTouched) {
    drs_fixture fx(2);
    drs_cluster cluster = fx.make_cluster();
    for (int i = 0; i < 2; ++i) {
        cluster.place(vm_id(i), fx.catalog.get(fx.small),
                      cluster.nodes()[static_cast<std::size_t>(i)].id());
        fx.demand[vm_id(i)] = 10.0;
    }
    EXPECT_TRUE(
        cluster.rebalance(fx.demand_fn(), fx.flavor_fn(fx.small)).empty());
}

TEST(DrsClusterTest, DisabledDrsNeverMigrates) {
    drs_fixture fx(2);
    drs_config config;
    config.enabled = false;
    drs_cluster cluster = fx.make_cluster(config);
    const node_id n0 = cluster.nodes()[0].id();
    for (int i = 0; i < 8; ++i) {
        cluster.place(vm_id(i), fx.catalog.get(fx.small), n0);
        fx.demand[vm_id(i)] = 10.0;
    }
    EXPECT_TRUE(
        cluster.rebalance(fx.demand_fn(), fx.flavor_fn(fx.small)).empty());
}

TEST(DrsClusterTest, HeavyVmsAreNeverMigrated) {
    drs_fixture fx(2);
    drs_config config;
    config.heavy_vm_ram_mib = gib_to_mib(1024);
    drs_cluster cluster = fx.make_cluster(config);
    const node_id n0 = cluster.nodes()[0].id();
    // use the medium flavor but mark the limit below it
    config.heavy_vm_ram_mib = gib_to_mib(64);
    drs_cluster strict = fx.make_cluster(config);
    for (int i = 0; i < 6; ++i) {
        strict.place(vm_id(i), fx.catalog.get(fx.medium), n0);
        fx.demand[vm_id(i)] = 12.0;
    }
    EXPECT_TRUE(
        strict.rebalance(fx.demand_fn(), fx.flavor_fn(fx.medium)).empty());
    (void)cluster;
}

TEST(DrsClusterTest, MigrationBudgetRespected) {
    drs_fixture fx(2);
    drs_config config;
    config.max_migrations_per_pass = 1;
    config.imbalance_threshold = 0.0001;
    drs_cluster cluster = fx.make_cluster(config);
    const node_id n0 = cluster.nodes()[0].id();
    for (int i = 0; i < 10; ++i) {
        cluster.place(vm_id(i), fx.catalog.get(fx.small), n0);
        fx.demand[vm_id(i)] = 6.0;
    }
    const auto moves =
        cluster.rebalance(fx.demand_fn(), fx.flavor_fn(fx.small));
    EXPECT_LE(moves.size(), 1u);
}

TEST(DrsClusterTest, RebalanceSkipsNonAcceptingReceivers) {
    drs_fixture fx(2);
    drs_cluster cluster = fx.make_cluster();
    const node_id n0 = cluster.nodes()[0].id();
    cluster.node(cluster.nodes()[1].id()).set_accepting(false);
    for (int i = 0; i < 8; ++i) {
        cluster.place(vm_id(i), fx.catalog.get(fx.small), n0);
        fx.demand[vm_id(i)] = 10.0;
    }
    EXPECT_TRUE(
        cluster.rebalance(fx.demand_fn(), fx.flavor_fn(fx.small)).empty());
}

TEST(DrsClusterTest, RecordAbortChargesWastedPreCopyExactlyOnce) {
    drs_fixture fx(2);
    drs_cluster cluster = fx.make_cluster();
    const node_id n0 = cluster.nodes()[0].id();
    for (int i = 0; i < 8; ++i) {
        cluster.place(vm_id(i), fx.catalog.get(fx.small), n0);
        fx.demand[vm_id(i)] = 8.0;
    }
    const auto moves =
        cluster.rebalance(fx.demand_fn(), fx.flavor_fn(fx.small));
    ASSERT_FALSE(moves.empty());
    cluster.record_abort(moves[0].vm);
    EXPECT_EQ(cluster.abort_count(), 1u);
    EXPECT_EQ(cluster.completed_migration_count(), moves.size() - 1);
    // a re-speculated move that aborts again must not double-bill the
    // wasted pre-copy within the same pass
    EXPECT_THROW(cluster.record_abort(moves[0].vm), precondition_error);
    EXPECT_EQ(cluster.abort_count(), 1u);
    // a fresh pass opens a new dedup window: the same VM may abort again
    const auto again =
        cluster.rebalance(fx.demand_fn(), fx.flavor_fn(fx.small));
    (void)again;
    cluster.record_abort(moves[0].vm);
    EXPECT_EQ(cluster.abort_count(), 2u);
}

TEST(DrsClusterTest, UsageVersionTracksEveryReservationChange) {
    drs_fixture fx(2);
    drs_cluster cluster = fx.make_cluster();
    const node_id n0 = cluster.nodes()[0].id();
    EXPECT_EQ(cluster.usage_version(), 0u);
    cluster.place(vm_id(0), fx.catalog.get(fx.small), n0);
    EXPECT_EQ(cluster.usage_version(), 1u);
    cluster.remove(vm_id(0), fx.catalog.get(fx.small), n0);
    EXPECT_EQ(cluster.usage_version(), 2u);
    // a rebalance-applied migration is one remove + one place
    for (int i = 0; i < 8; ++i) {
        cluster.place(vm_id(i), fx.catalog.get(fx.small), n0);
        fx.demand[vm_id(i)] = 8.0;
    }
    const std::uint64_t before = cluster.usage_version();
    const auto moves =
        cluster.rebalance(fx.demand_fn(), fx.flavor_fn(fx.small));
    ASSERT_FALSE(moves.empty());
    EXPECT_EQ(cluster.usage_version(), before + 2 * moves.size());
}

TEST(DrsClusterTest, SingleNodeClusterNeverRebalances) {
    drs_fixture fx(1);
    drs_cluster cluster = fx.make_cluster();
    cluster.place(vm_id(0), fx.catalog.get(fx.small), cluster.nodes()[0].id());
    fx.demand[vm_id(0)] = 90.0;
    EXPECT_TRUE(
        cluster.rebalance(fx.demand_fn(), fx.flavor_fn(fx.small)).empty());
}

}  // namespace
}  // namespace sci
