// Tests for telemetry/store: streaming day/hour compaction — the Thanos
// equivalent the analyses read from.

#include "telemetry/store.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

metric_store make_store(store_config config = {}) {
    return metric_store(metric_registry::standard_catalog(), config);
}

TEST(MetricStoreTest, OpenSeriesIsIdempotent) {
    metric_store store = make_store();
    const series_id a = store.open_series(metric_names::host_memory_usage,
                                          label_set{{"node", "n1"}});
    const series_id b = store.open_series(metric_names::host_memory_usage,
                                          label_set{{"node", "n1"}});
    EXPECT_EQ(a, b);
    EXPECT_EQ(store.series_count(), 1u);
}

TEST(MetricStoreTest, DifferentLabelsDifferentSeries) {
    metric_store store = make_store();
    const series_id a = store.open_series(metric_names::host_memory_usage,
                                          label_set{{"node", "n1"}});
    const series_id b = store.open_series(metric_names::host_memory_usage,
                                          label_set{{"node", "n2"}});
    EXPECT_NE(a, b);
    EXPECT_EQ(store.series_count(), 2u);
}

TEST(MetricStoreTest, SameLabelsDifferentMetricDifferentSeries) {
    metric_store store = make_store();
    const series_id a = store.open_series(metric_names::host_memory_usage,
                                          label_set{{"node", "n1"}});
    const series_id b = store.open_series(metric_names::host_cpu_contention,
                                          label_set{{"node", "n1"}});
    EXPECT_NE(a, b);
}

TEST(MetricStoreTest, UnknownMetricThrows) {
    metric_store store = make_store();
    EXPECT_THROW(store.open_series("no_such_metric", {}), not_found_error);
}

TEST(MetricStoreTest, FindSeries) {
    metric_store store = make_store();
    const label_set labels{{"node", "n1"}};
    EXPECT_FALSE(
        store.find_series(metric_names::host_memory_usage, labels).has_value());
    const series_id id =
        store.open_series(metric_names::host_memory_usage, labels);
    EXPECT_EQ(store.find_series(metric_names::host_memory_usage, labels), id);
    EXPECT_FALSE(store.find_series("no_such_metric", labels).has_value());
}

TEST(MetricStoreTest, DailyAggregationMatchesBruteForce) {
    metric_store store = make_store();
    const series_id id = store.open_series(metric_names::host_memory_usage,
                                           label_set{{"node", "n1"}});
    running_stats expected_day0, expected_day1;
    for (int i = 0; i < 288; ++i) {  // 300 s cadence over one day
        const double v = 40.0 + static_cast<double>(i % 17);
        store.append(id, i * 300, v);
        expected_day0.add(v);
    }
    for (int i = 0; i < 10; ++i) {
        const double v = 90.0 - i;
        store.append(id, seconds_per_day + i * 300, v);
        expected_day1.add(v);
    }
    const running_stats* day0 = store.daily(id, 0);
    ASSERT_NE(day0, nullptr);
    EXPECT_EQ(day0->count(), expected_day0.count());
    EXPECT_DOUBLE_EQ(day0->mean(), expected_day0.mean());
    EXPECT_DOUBLE_EQ(day0->min(), expected_day0.min());
    EXPECT_DOUBLE_EQ(day0->max(), expected_day0.max());
    const running_stats* day1 = store.daily(id, 1);
    ASSERT_NE(day1, nullptr);
    EXPECT_DOUBLE_EQ(day1->mean(), expected_day1.mean());
}

TEST(MetricStoreTest, EmptyDayIsNull) {
    metric_store store = make_store();
    const series_id id = store.open_series(metric_names::host_memory_usage,
                                           label_set{{"node", "n1"}});
    store.append(id, 100, 1.0);
    EXPECT_NE(store.daily(id, 0), nullptr);
    EXPECT_EQ(store.daily(id, 5), nullptr);  // the heatmaps' white cells
}

TEST(MetricStoreTest, DailyRejectsOutOfRangeDay) {
    metric_store store = make_store();
    const series_id id = store.open_series(metric_names::host_memory_usage,
                                           label_set{{"node", "n1"}});
    EXPECT_THROW(store.daily(id, -1), precondition_error);
    EXPECT_THROW(store.daily(id, observation_days), precondition_error);
}

TEST(MetricStoreTest, SamplesOutsideWindowAreDropped) {
    metric_store store = make_store();
    const series_id id = store.open_series(metric_names::host_memory_usage,
                                           label_set{{"node", "n1"}});
    store.append(id, -100, 1.0);                       // before window
    store.append(id, observation_window, 1.0);         // at/after window end
    store.append(id, observation_window + 500, 1.0);
    EXPECT_EQ(store.dropped_samples(), 3u);
    EXPECT_EQ(store.total_samples(), 3u);
    EXPECT_EQ(store.daily(id, 0), nullptr);
    EXPECT_EQ(store.daily(id, observation_days - 1), nullptr);
}

TEST(MetricStoreTest, HourlyOnlyForFlaggedMetrics) {
    metric_store store = make_store();
    const series_id ready = store.open_series(metric_names::host_cpu_ready,
                                              label_set{{"node", "n1"}});
    const series_id mem = store.open_series(metric_names::host_memory_usage,
                                            label_set{{"node", "n1"}});
    store.append(ready, hours(5) + 10, 1234.0);
    store.append(mem, hours(5) + 10, 50.0);

    const running_stats* agg = store.hourly(ready, 5);
    ASSERT_NE(agg, nullptr);
    EXPECT_DOUBLE_EQ(agg->mean(), 1234.0);
    EXPECT_EQ(store.hourly(ready, 6), nullptr);
    EXPECT_THROW(store.hourly(mem, 5), precondition_error);
}

TEST(MetricStoreTest, HourlyIndexSpansWholeWindow) {
    metric_store store = make_store();
    const series_id ready = store.open_series(metric_names::host_cpu_ready,
                                              label_set{{"node", "n1"}});
    const sim_time last_hour_start = observation_window - seconds_per_hour;
    store.append(ready, last_hour_start + 30, 7.0);
    const running_stats* agg = store.hourly(ready, observation_days * 24 - 1);
    ASSERT_NE(agg, nullptr);
    EXPECT_DOUBLE_EQ(agg->mean(), 7.0);
    EXPECT_THROW(store.hourly(ready, observation_days * 24), precondition_error);
}

TEST(MetricStoreTest, RawRetentionToggle) {
    metric_store no_raw = make_store();
    const series_id a = no_raw.open_series(metric_names::host_memory_usage,
                                           label_set{{"node", "n1"}});
    no_raw.append(a, 100, 1.0);
    EXPECT_TRUE(no_raw.raw(a).empty());

    metric_store with_raw = make_store(store_config{.keep_raw = true});
    const series_id b = with_raw.open_series(metric_names::host_memory_usage,
                                             label_set{{"node", "n1"}});
    with_raw.append(b, 100, 1.0);
    with_raw.append(b, 400, 2.0);
    ASSERT_EQ(with_raw.raw(b).size(), 2u);
    EXPECT_EQ(with_raw.raw(b)[0].t, 100);
    EXPECT_DOUBLE_EQ(with_raw.raw(b)[1].value, 2.0);
}

TEST(MetricStoreTest, SelectFiltersByLabels) {
    metric_store store = make_store();
    store.open_series(metric_names::host_memory_usage,
                      label_set{{"node", "n1"}, {"dc", "dc-a"}});
    store.open_series(metric_names::host_memory_usage,
                      label_set{{"node", "n2"}, {"dc", "dc-b"}});
    store.open_series(metric_names::host_memory_usage,
                      label_set{{"node", "n3"}, {"dc", "dc-a"}});

    EXPECT_EQ(store.select(metric_names::host_memory_usage).size(), 3u);
    const std::vector<std::pair<std::string, std::string>> filter{{"dc", "dc-a"}};
    EXPECT_EQ(store.select(metric_names::host_memory_usage, filter).size(), 2u);
    const std::vector<std::pair<std::string, std::string>> none{{"dc", "dc-x"}};
    EXPECT_TRUE(store.select(metric_names::host_memory_usage, none).empty());
    EXPECT_TRUE(store.select("no_such_metric").empty());
}

TEST(MetricStoreTest, SelectReturnsDeterministicOrder) {
    metric_store store = make_store();
    for (int i = 0; i < 50; ++i) {
        store.open_series(metric_names::host_memory_usage,
                          label_set{{"node", "n" + std::to_string(i)}});
    }
    const auto first = store.select(metric_names::host_memory_usage);
    const auto second = store.select(metric_names::host_memory_usage);
    EXPECT_EQ(first, second);
    EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
}

TEST(MetricStoreTest, WindowAggregateMergesDays) {
    metric_store store = make_store();
    const series_id id = store.open_series(metric_names::host_memory_usage,
                                           label_set{{"node", "n1"}});
    store.append(id, days(0) + 100, 10.0);
    store.append(id, days(3) + 100, 30.0);
    store.append(id, days(29) + 100, 50.0);
    const running_stats total = store.window_aggregate(id);
    EXPECT_EQ(total.count(), 3u);
    EXPECT_DOUBLE_EQ(total.mean(), 30.0);
    EXPECT_DOUBLE_EQ(total.min(), 10.0);
    EXPECT_DOUBLE_EQ(total.max(), 50.0);
}

TEST(MetricStoreTest, MetricAndLabelsOfSeries) {
    metric_store store = make_store();
    const label_set labels{{"vm", "vm-abc"}};
    const series_id id =
        store.open_series(metric_names::vm_cpu_usage_ratio, labels);
    EXPECT_EQ(store.metric_of(id).name, metric_names::vm_cpu_usage_ratio);
    EXPECT_EQ(store.labels_of(id), labels);
}

TEST(MetricStoreTest, AppendRejectsUnknownSeries) {
    metric_store store = make_store();
    EXPECT_THROW(store.append(series_id(0), 0, 1.0), precondition_error);
    EXPECT_THROW(store.append(series_id(), 0, 1.0), precondition_error);
}

TEST(MetricStoreTest, ConfigurableDays) {
    metric_store store = make_store(store_config{.days = 7});
    const series_id id = store.open_series(metric_names::host_memory_usage,
                                           label_set{{"node", "n1"}});
    store.append(id, days(6) + 1, 5.0);
    EXPECT_NE(store.daily(id, 6), nullptr);
    store.append(id, days(7) + 1, 5.0);  // beyond horizon
    EXPECT_EQ(store.dropped_samples(), 1u);
    EXPECT_THROW(store.daily(id, 7), precondition_error);
}

TEST(MetricStoreTest, RejectsNonPositiveDays) {
    EXPECT_THROW(make_store(store_config{.days = 0}), precondition_error);
}

}  // namespace
}  // namespace sci
