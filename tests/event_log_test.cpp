// Tests for infra/event_log: the scheduling-relevant event record of
// Section 4.

#include "infra/event_log.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

lifecycle_event make_event(sim_time t, lifecycle_event_kind kind,
                           std::int32_t vm = 0) {
    return lifecycle_event{.t = t, .kind = kind, .vm = vm_id(vm)};
}

TEST(EventLogTest, StartsEmpty) {
    event_log log;
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.count(lifecycle_event_kind::create), 0u);
}

TEST(EventLogTest, RecordsInOrder) {
    event_log log;
    log.record(make_event(-100, lifecycle_event_kind::create));
    log.record(make_event(0, lifecycle_event_kind::create));
    log.record(make_event(0, lifecycle_event_kind::migrate));
    log.record(make_event(50, lifecycle_event_kind::remove));
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.count(lifecycle_event_kind::create), 2u);
    EXPECT_EQ(log.count(lifecycle_event_kind::migrate), 1u);
    EXPECT_EQ(log.count(lifecycle_event_kind::remove), 1u);
}

TEST(EventLogTest, RejectsOutOfOrderEvents) {
    event_log log;
    log.record(make_event(100, lifecycle_event_kind::create));
    EXPECT_THROW(log.record(make_event(99, lifecycle_event_kind::remove)),
                 precondition_error);
}

TEST(EventLogTest, BetweenIsHalfOpen) {
    event_log log;
    for (sim_time t : {10, 20, 30, 40}) {
        log.record(make_event(t, lifecycle_event_kind::create));
    }
    const auto range = log.between(20, 40);
    ASSERT_EQ(range.size(), 2u);
    EXPECT_EQ(range[0].t, 20);
    EXPECT_EQ(range[1].t, 30);
    EXPECT_EQ(log.between(0, 100).size(), 4u);
    EXPECT_EQ(log.between(41, 100).size(), 0u);
}

TEST(EventLogTest, OfVmFiltersAndKeepsOrder) {
    event_log log;
    log.record(make_event(1, lifecycle_event_kind::create, 7));
    log.record(make_event(2, lifecycle_event_kind::create, 8));
    log.record(make_event(3, lifecycle_event_kind::migrate, 7));
    log.record(make_event(4, lifecycle_event_kind::remove, 7));
    const auto history = log.of_vm(vm_id(7));
    ASSERT_EQ(history.size(), 3u);
    EXPECT_EQ(history[0].kind, lifecycle_event_kind::create);
    EXPECT_EQ(history[1].kind, lifecycle_event_kind::migrate);
    EXPECT_EQ(history[2].kind, lifecycle_event_kind::remove);
}

TEST(EventLogTest, DailyCountsBucketByDay) {
    event_log log;
    log.record(make_event(-100, lifecycle_event_kind::create));  // pre-window
    log.record(make_event(100, lifecycle_event_kind::create));
    log.record(make_event(200, lifecycle_event_kind::create));
    log.record(make_event(days(2) + 5, lifecycle_event_kind::create));
    log.record(make_event(days(2) + 6, lifecycle_event_kind::remove));
    const std::vector<int> creates =
        log.daily_counts(lifecycle_event_kind::create);
    ASSERT_EQ(creates.size(), static_cast<std::size_t>(observation_days));
    EXPECT_EQ(creates[0], 2);  // pre-window event excluded
    EXPECT_EQ(creates[1], 0);
    EXPECT_EQ(creates[2], 1);
    const std::vector<int> removes =
        log.daily_counts(lifecycle_event_kind::remove);
    EXPECT_EQ(removes[2], 1);
    EXPECT_THROW(log.daily_counts(lifecycle_event_kind::create, 0),
                 precondition_error);
}

TEST(EventLogTest, KindNames) {
    EXPECT_EQ(to_string(lifecycle_event_kind::create), "create");
    EXPECT_EQ(to_string(lifecycle_event_kind::schedule_fail), "schedule_fail");
    EXPECT_EQ(to_string(lifecycle_event_kind::migrate), "migrate");
    EXPECT_EQ(to_string(lifecycle_event_kind::evacuate), "evacuate");
    EXPECT_EQ(to_string(lifecycle_event_kind::remove), "delete");
}

}  // namespace
}  // namespace sci
