// Tests for data/dataset: Zenodo-style CSV export/import of the telemetry
// store, including a raw round-trip that must reproduce identical daily
// aggregates.

#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "simcore/error.hpp"

namespace sci {
namespace {

class DatasetTest : public testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("sci_dataset_test_" + std::to_string(::getpid()) + "_" +
                testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    static metric_store make_populated_store(bool keep_raw) {
        metric_store store(metric_registry::standard_catalog(),
                           store_config{.keep_raw = keep_raw});
        const series_id cpu = store.open_series(
            metric_names::host_cpu_core_utilization,
            label_set{{"node", "n1"}, {"bb", "bb-0"}, {"dc", "dc-a"}});
        const series_id mem = store.open_series(
            metric_names::host_memory_usage,
            label_set{{"node", "n1"}, {"bb", "bb-0"}, {"dc", "dc-a"}});
        for (int i = 0; i < 500; ++i) {
            store.append(cpu, i * 300, 30.0 + (i % 13));
            store.append(mem, i * 300, 60.0 + (i % 7));
        }
        return store;
    }

    std::filesystem::path dir_;
};

TEST_F(DatasetTest, ExportCreatesManifestAndDailyFiles) {
    const metric_store store = make_populated_store(false);
    const dataset_export_report report = export_dataset(store, dir_);
    EXPECT_EQ(report.metrics_exported, 2u);
    EXPECT_EQ(report.series_exported, 2u);
    EXPECT_GT(report.daily_rows, 0u);
    EXPECT_EQ(report.raw_rows, 0u);

    EXPECT_TRUE(std::filesystem::exists(dir_ / "manifest.csv"));
    EXPECT_TRUE(std::filesystem::exists(
        dir_ / (std::string(metric_names::host_cpu_core_utilization) +
                ".daily.csv")));
    EXPECT_FALSE(std::filesystem::exists(
        dir_ /
        (std::string(metric_names::host_cpu_core_utilization) + ".raw.csv")));
}

TEST_F(DatasetTest, ManifestListsWholeCatalog) {
    const metric_store store = make_populated_store(false);
    export_dataset(store, dir_);
    const auto manifest = read_manifest(dir_);
    EXPECT_EQ(manifest.size(), store.registry().size());
    std::size_t with_series = 0;
    for (const manifest_entry& e : manifest) {
        if (e.series_count > 0) ++with_series;
    }
    EXPECT_EQ(with_series, 2u);
}

TEST_F(DatasetTest, DailyFileContainsLabelColumnsAndAggregates) {
    const metric_store store = make_populated_store(false);
    export_dataset(store, dir_);
    std::ifstream f(dir_ /
                    (std::string(metric_names::host_memory_usage) + ".daily.csv"));
    std::string header;
    std::getline(f, header);
    EXPECT_EQ(header, "bb,dc,node,day,count,mean,min,max");
    std::string row;
    std::getline(f, row);
    EXPECT_TRUE(row.starts_with("bb-0,dc-a,n1,0,"));
}

TEST_F(DatasetTest, RawExportImportRoundTrip) {
    const metric_store original = make_populated_store(true);
    export_dataset(original, dir_);

    metric_store imported(metric_registry::standard_catalog());
    const auto raw_file =
        dir_ /
        (std::string(metric_names::host_cpu_core_utilization) + ".raw.csv");
    ASSERT_TRUE(std::filesystem::exists(raw_file));
    const std::size_t count = import_raw_metric(
        imported, raw_file, metric_names::host_cpu_core_utilization);
    EXPECT_EQ(count, 500u);

    // the re-ingested store must reproduce identical daily aggregates
    const auto orig_series =
        original.select(metric_names::host_cpu_core_utilization);
    const auto new_series =
        imported.select(metric_names::host_cpu_core_utilization);
    ASSERT_EQ(orig_series.size(), 1u);
    ASSERT_EQ(new_series.size(), 1u);
    EXPECT_EQ(original.labels_of(orig_series[0]),
              imported.labels_of(new_series[0]));
    for (int day = 0; day < observation_days; ++day) {
        const running_stats* a = original.daily(orig_series[0], day);
        const running_stats* b = imported.daily(new_series[0], day);
        ASSERT_EQ(a == nullptr, b == nullptr) << "day " << day;
        if (a == nullptr) continue;
        EXPECT_EQ(a->count(), b->count());
        EXPECT_NEAR(a->mean(), b->mean(), 1e-6);
        EXPECT_NEAR(a->min(), b->min(), 1e-6);
        EXPECT_NEAR(a->max(), b->max(), 1e-6);
    }
}

TEST_F(DatasetTest, RawExportCanBeDisabled) {
    const metric_store store = make_populated_store(true);
    dataset_export_options options;
    options.include_raw = false;
    const auto report = export_dataset(store, dir_, options);
    EXPECT_EQ(report.raw_rows, 0u);
    EXPECT_FALSE(std::filesystem::exists(
        dir_ /
        (std::string(metric_names::host_cpu_core_utilization) + ".raw.csv")));
}

TEST_F(DatasetTest, ReadManifestMissingThrows) {
    EXPECT_THROW(read_manifest(dir_ / "nope"), not_found_error);
}

TEST_F(DatasetTest, ImportMissingFileThrows) {
    metric_store store(metric_registry::standard_catalog());
    EXPECT_THROW(import_raw_metric(store, dir_ / "missing.csv",
                                   metric_names::host_cpu_core_utilization),
                 not_found_error);
}

TEST_F(DatasetTest, ImportDatasetReproducesDailyAggregates) {
    const metric_store original = make_populated_store(false);
    export_dataset(original, dir_);

    const metric_store imported = import_dataset(dir_);
    EXPECT_EQ(imported.series_count(), original.series_count());
    for (std::string_view metric :
         {metric_names::host_cpu_core_utilization,
          metric_names::host_memory_usage}) {
        const auto orig_series = original.select(metric);
        const auto new_series = imported.select(metric);
        ASSERT_EQ(orig_series.size(), new_series.size());
        for (std::size_t i = 0; i < orig_series.size(); ++i) {
            EXPECT_EQ(original.labels_of(orig_series[i]),
                      imported.labels_of(new_series[i]));
            for (int day = 0; day < observation_days; ++day) {
                const running_stats* a = original.daily(orig_series[i], day);
                const running_stats* b = imported.daily(new_series[i], day);
                ASSERT_EQ(a == nullptr, b == nullptr);
                if (a == nullptr) continue;
                EXPECT_EQ(a->count(), b->count());
                EXPECT_NEAR(a->mean(), b->mean(), 1e-5);
                EXPECT_NEAR(a->min(), b->min(), 1e-5);
                EXPECT_NEAR(a->max(), b->max(), 1e-5);
            }
        }
    }
}

TEST_F(DatasetTest, ImportDatasetMissingDirThrows) {
    EXPECT_THROW(import_dataset(dir_ / "nope"), not_found_error);
}

TEST(FromMomentsTest, ReconstructsMoments) {
    const running_stats s = running_stats::from_moments(4, 2.5, 1.0, 4.0);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // documented: not recoverable
    EXPECT_TRUE(running_stats::from_moments(0, 0, 0, 0).empty());
    EXPECT_THROW(running_stats::from_moments(2, 1.0, 5.0, 1.0),
                 precondition_error);
}

TEST(MergeDailyTest, IngestsAggregatesLikeThanosBlocks) {
    metric_store store(metric_registry::standard_catalog());
    const series_id id = store.open_series(metric_names::host_memory_usage,
                                           label_set{{"node", "n"}});
    store.merge_daily(id, 3, running_stats::from_moments(10, 50.0, 40.0, 60.0));
    store.merge_daily(id, 3, running_stats::from_moments(10, 70.0, 65.0, 80.0));
    const running_stats* agg = store.daily(id, 3);
    ASSERT_NE(agg, nullptr);
    EXPECT_EQ(agg->count(), 20u);
    EXPECT_DOUBLE_EQ(agg->mean(), 60.0);
    EXPECT_DOUBLE_EQ(agg->min(), 40.0);
    EXPECT_DOUBLE_EQ(agg->max(), 80.0);
    EXPECT_THROW(store.merge_daily(id, observation_days, {}), precondition_error);
}

TEST_F(DatasetTest, EventsCsvRoundTrip) {
    std::filesystem::create_directories(dir_);
    event_log events;
    events.record(lifecycle_event{.t = -100,
                                  .kind = lifecycle_event_kind::create,
                                  .vm = vm_id(1),
                                  .bb = bb_id(2),
                                  .to = node_id(3)});
    events.record(lifecycle_event{.t = 500,
                                  .kind = lifecycle_event_kind::migrate,
                                  .vm = vm_id(1),
                                  .bb = bb_id(2),
                                  .from = node_id(3),
                                  .to = node_id(4)});
    events.record(lifecycle_event{.t = 900,
                                  .kind = lifecycle_event_kind::remove,
                                  .vm = vm_id(1),
                                  .bb = bb_id(2),
                                  .from = node_id(4)});
    const auto file = dir_ / "events.csv";
    EXPECT_EQ(export_events_csv(events, file), 3u);

    const auto imported = import_events_csv(file);
    ASSERT_EQ(imported.size(), 3u);
    EXPECT_EQ(imported[0].t, -100);
    EXPECT_EQ(imported[0].kind, lifecycle_event_kind::create);
    EXPECT_EQ(imported[1].kind, lifecycle_event_kind::migrate);
    EXPECT_EQ(imported[1].from, node_id(3));
    EXPECT_EQ(imported[1].to, node_id(4));
    EXPECT_EQ(imported[2].kind, lifecycle_event_kind::remove);
    EXPECT_EQ(imported[2].vm, vm_id(1));
}

TEST_F(DatasetTest, ImportEventsMissingFileThrows) {
    EXPECT_THROW(import_events_csv(dir_ / "nope.csv"), not_found_error);
}

TEST_F(DatasetTest, ImportUnknownMetricThrows) {
    const metric_store original = make_populated_store(true);
    export_dataset(original, dir_);
    metric_store store(metric_registry::standard_catalog());
    EXPECT_THROW(
        import_raw_metric(store,
                          dir_ / (std::string(
                                      metric_names::host_cpu_core_utilization) +
                                  ".raw.csv"),
                          "not_a_metric"),
        not_found_error);
}

}  // namespace
}  // namespace sci
