// Calibration regression tests: the reproduced region must keep matching
// the paper's published statistics (the whole point of the repository).
// Each test pins one Section 5 finding with a tolerance band; if a code
// change drifts the workload model, these fail before EXPERIMENTS.md lies.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/figures.hpp"
#include "core/engine.hpp"

namespace sci {
namespace {

/// One shared medium-scale run.  Scale 0.1 (~180 nodes, ~4,800 VMs): the
/// contention outliers of Figure 9 are an extreme-tail statistic and only
/// emerge with enough general-purpose nodes.
sim_engine& calibrated() {
    static sim_engine* engine = [] {
        engine_config config;
        config.scenario.scale = 0.1;
        config.scenario.seed = 42;
        auto* e = new sim_engine(config);
        e->run();
        return e;
    }();
    return *engine;
}

TEST(CalibrationTest, PlacementSucceedsForWholePopulation) {
    sim_engine& e = calibrated();
    const double failure_rate =
        static_cast<double>(e.stats().placement_failures) /
        static_cast<double>(e.stats().placements + e.stats().placement_failures);
    EXPECT_LT(failure_rate, 0.01);
}

// Figure 14a: "over 80% of VMs using less than 70% of the provided
// [CPU] resources"; only a small optimal band and an even smaller over band.
TEST(CalibrationTest, Figure14aCpuUnderutilization) {
    const auto cdf = fig14a_cpu_utilization(calibrated().store());
    EXPECT_GT(cdf.classes.under_pct, 80.0);
    EXPECT_LT(cdf.classes.under_pct, 95.0);
    EXPECT_GT(cdf.classes.optimal_pct, 2.0);
    EXPECT_LT(cdf.classes.optimal_pct, 20.0);
    EXPECT_LT(cdf.classes.over_pct, cdf.classes.optimal_pct);
}

// Figure 14b: ~38% under, ~10% optimal, large share above 85%.
TEST(CalibrationTest, Figure14bMemoryBands) {
    const auto cdf = fig14b_memory_utilization(calibrated().store());
    EXPECT_NEAR(cdf.classes.under_pct, 38.0, 7.0);
    EXPECT_NEAR(cdf.classes.optimal_pct, 10.0, 5.0);
    EXPECT_GT(cdf.classes.over_pct, 45.0);
}

// Figure 9: daily mean below 5%, several nodes above 40% at peak,
// persistent over the whole window.
TEST(CalibrationTest, Figure9ContentionEnvelope) {
    const auto by_day = fig9_contention_by_day(calibrated().store());
    double worst_mean = 0.0, worst_max = 0.0;
    int days_above_20 = 0;
    for (const contention_day& d : by_day) {
        worst_mean = std::max(worst_mean, d.mean_pct);
        worst_max = std::max(worst_max, d.max_pct);
        if (d.max_pct > 20.0) ++days_above_20;
    }
    EXPECT_LT(worst_mean, 5.0);
    EXPECT_GT(worst_max, 40.0);
    EXPECT_LT(worst_max, 75.0);
    EXPECT_GT(days_above_20, observation_days / 2);  // persistent
}

// Figure 8: ready time exceeds the 30 s baseline repeatedly; weekday
// load exceeds weekend load.
TEST(CalibrationTest, Figure8ReadyTimeBaselineAndWeekendEffect) {
    const auto top = fig8_top_ready_nodes(calibrated().store(), 10);
    ASSERT_FALSE(top.empty());
    int hours_above_baseline = 0;
    double weekday_sum = 0.0, weekend_sum = 0.0;
    int weekday_n = 0, weekend_n = 0;
    for (const ready_time_series& s : top) {
        for (std::size_t h = 0; h < s.hourly_ms.size(); ++h) {
            if (std::isnan(s.hourly_ms[h])) continue;
            if (s.hourly_ms[h] > 30'000.0) ++hours_above_baseline;
            const sim_time t = static_cast<sim_time>(h) * seconds_per_hour;
            if (is_weekend(t)) {
                weekend_sum += s.hourly_ms[h];
                ++weekend_n;
            } else {
                weekday_sum += s.hourly_ms[h];
                ++weekday_n;
            }
        }
    }
    EXPECT_GT(hours_above_baseline, 10);
    ASSERT_GT(weekday_n, 0);
    ASSERT_GT(weekend_n, 0);
    EXPECT_GT(weekday_sum / weekday_n, 1.5 * (weekend_sum / weekend_n));
}

// Figure 5: same-day spread across nodes from <20% free to >90% free.
TEST(CalibrationTest, Figure5SameDaySpread) {
    sim_engine& e = calibrated();
    const dc_id dc = e.infrastructure().dcs().front().id;
    const heatmap hm = fig5_free_cpu_per_node(e.store(), e.infrastructure(), dc);
    int days_with_both_extremes = 0;
    for (int day = 0; day < hm.days; ++day) {
        bool low = false, high = false;
        for (std::size_t c = 0; c < hm.columns.size(); ++c) {
            const double v = hm.cell(day, c);
            if (heatmap::missing(v)) continue;
            if (v < 30.0) low = true;
            if (v > 85.0) high = true;
        }
        if (low && high) ++days_with_both_extremes;
    }
    EXPECT_GT(days_with_both_extremes, observation_days / 2);
}

// Figure 10: bimodal memory — a sizable share of node-days nearly full
// (<20% free) while another sizable share is mostly free.
TEST(CalibrationTest, Figure10MemoryBimodality) {
    sim_engine& e = calibrated();
    const dc_id dc = e.infrastructure().dcs().front().id;
    const heatmap hm =
        fig10_free_memory_per_node(e.store(), e.infrastructure(), dc);
    std::size_t nearly_full = 0, mostly_free = 0, present = 0;
    for (int day = 0; day < hm.days; ++day) {
        for (std::size_t c = 0; c < hm.columns.size(); ++c) {
            const double v = hm.cell(day, c);
            if (heatmap::missing(v)) continue;
            ++present;
            if (v < 20.0) ++nearly_full;
            if (v > 60.0) ++mostly_free;
        }
    }
    ASSERT_GT(present, 0u);
    EXPECT_GT(static_cast<double>(nearly_full) / present, 0.10);
    EXPECT_GT(static_cast<double>(mostly_free) / present, 0.15);
}

// Sections 5.3: network clearly below the 200 Gbps NIC everywhere.
TEST(CalibrationTest, NetworkWellBelowCapacity) {
    sim_engine& e = calibrated();
    const dc_id dc = e.infrastructure().dcs().front().id;
    for (const heatmap& hm :
         {fig11_free_net_tx(e.store(), e.infrastructure(), dc),
          fig12_free_net_rx(e.store(), e.infrastructure(), dc)}) {
        EXPECT_GT(hm.min_value(), 50.0);  // never above half the NIC
    }
}

// Tables 1-2: the realized population reproduces the class proportions.
TEST(CalibrationTest, Table1And2Proportions) {
    sim_engine& e = calibrated();
    const auto t1 = table1_vcpu_classes(e.vms(), e.catalog());
    double t1_total = 0.0;
    for (const auto& row : t1) t1_total += row.average_vms;
    ASSERT_GT(t1_total, 0.0);
    // paper: 62.7% / 31.6% / 4.0% / 1.6%.  Tolerances allow the standing
    // population's composition drift: short-lived (small) VMs die faster
    // than churn arrivals replenish them over the 30-day window.
    EXPECT_NEAR(t1[0].average_vms / t1_total, 0.627, 0.05);
    EXPECT_NEAR(t1[1].average_vms / t1_total, 0.316, 0.05);
    EXPECT_NEAR(t1[2].average_vms / t1_total, 0.040, 0.02);
    EXPECT_NEAR(t1[3].average_vms / t1_total, 0.016, 0.01);

    const auto t2 = table2_ram_classes(e.vms(), e.catalog());
    double t2_total = 0.0;
    for (const auto& row : t2) t2_total += row.average_vms;
    // paper: 2.2% / 91.3% / 1.7% / 4.8%
    EXPECT_NEAR(t2[0].average_vms / t2_total, 0.022, 0.01);
    EXPECT_NEAR(t2[1].average_vms / t2_total, 0.913, 0.03);
    // resizes move a few VMs across the 64/128 GiB class boundary
    EXPECT_NEAR(t2[2].average_vms / t2_total, 0.017, 0.012);
    EXPECT_NEAR(t2[3].average_vms / t2_total, 0.048, 0.02);
}

// Figure 15: lifetimes span minutes to years; memory-intensive flavors
// live long; every flavor with >= 30 instances appears.
TEST(CalibrationTest, Figure15LifetimeShape) {
    sim_engine& e = calibrated();
    const auto rows = fig15_lifetime_per_flavor(e.vms(), e.catalog(), 30);
    ASSERT_GE(rows.size(), 8u);
    double global_min = 1e18, global_max = 0.0;
    double hana_median_sum = 0.0, gp_median_sum = 0.0;
    int hana_n = 0, gp_n = 0;
    for (const lifetime_row& row : rows) {
        global_min = std::min(global_min, row.min_days);
        global_max = std::max(global_max, row.max_days);
        if (row.flavor_name.starts_with("hana")) {
            hana_median_sum += row.median_days;
            ++hana_n;
        } else if (row.flavor_name.starts_with("g_")) {
            gp_median_sum += row.median_days;
            ++gp_n;
        }
    }
    EXPECT_LT(global_min, 1.0);     // sub-day lifetimes exist
    EXPECT_GT(global_max, 365.0);   // multi-year lifetimes exist
    if (hana_n > 0 && gp_n > 0) {
        EXPECT_GT(hana_median_sum / hana_n, gp_median_sum / gp_n);
    }
}

// Section 5 heatmaps: hosts added/removed during the window produce
// missing (white) cells.
TEST(CalibrationTest, WhiteCellsFromNodeChurn) {
    sim_engine& e = calibrated();
    double missing = 0.0;
    for (const datacenter& dc : e.infrastructure().dcs()) {
        missing += fig5_free_cpu_per_node(e.store(), e.infrastructure(), dc.id)
                       .missing_fraction();
    }
    EXPECT_GT(missing, 0.0);
}

}  // namespace
}  // namespace sci
