// Merge semantics of the BENCH_engine.json writer (bench/bench_json.hpp):
// re-running a bench binary must be idempotent — one entry per benchmark
// name, freshest measurement wins, file ordering stable — and a summary
// polluted with duplicate keys by a pre-dedupe writer must heal on the
// first re-merge.

#include "bench_json.hpp"

#include <gtest/gtest.h>

namespace sci::benchutil {
namespace {

TEST(BenchJsonTest, RoundTripsEntries) {
    const std::vector<bench_entry> entries = {
        {"bm_a/threads=0", 12.5, 1000.0},
        {"bm_a/threads=4", 3.125, 4000.0},
    };
    const auto parsed = parse_bench_json(render_bench_json(entries));
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].name, "bm_a/threads=0");
    EXPECT_DOUBLE_EQ(parsed[0].wall_ms, 12.5);
    EXPECT_DOUBLE_EQ(parsed[0].samples_per_s, 1000.0);
    EXPECT_EQ(parsed[1].name, "bm_a/threads=4");
}

TEST(BenchJsonTest, MergeReplacesByNameAndAppendsNew) {
    std::vector<bench_entry> existing = {
        {"bm_a", 10.0, 100.0},
        {"bm_b", 20.0, 200.0},
    };
    merge_bench_entries(existing, {{"bm_b", 15.0, 250.0}, {"bm_c", 5.0, 500.0}});
    ASSERT_EQ(existing.size(), 3u);
    EXPECT_EQ(existing[0].name, "bm_a");  // untouched, position stable
    EXPECT_EQ(existing[1].name, "bm_b");  // replaced in place
    EXPECT_DOUBLE_EQ(existing[1].wall_ms, 15.0);
    EXPECT_DOUBLE_EQ(existing[1].samples_per_s, 250.0);
    EXPECT_EQ(existing[2].name, "bm_c");  // appended
}

TEST(BenchJsonTest, RepeatedMergeIsIdempotent) {
    const std::vector<bench_entry> fresh = {{"bm_a", 10.0, 100.0},
                                            {"bm_b", 20.0, 200.0}};
    std::vector<bench_entry> entries;
    merge_bench_entries(entries, fresh);
    const std::string first = render_bench_json(entries);
    // simulate the re-run: parse what we wrote, merge the same results
    auto reparsed = parse_bench_json(first);
    merge_bench_entries(reparsed, fresh);
    EXPECT_EQ(render_bench_json(reparsed), first);
    EXPECT_EQ(reparsed.size(), 2u);
}

TEST(BenchJsonTest, ParseCollapsesStaleDuplicates) {
    // a file a pre-dedupe writer accumulated: same key three times
    const std::vector<bench_entry> polluted = {
        {"bm_a", 10.0, 100.0},
        {"bm_b", 20.0, 200.0},
        {"bm_a", 11.0, 110.0},
        {"bm_a", 12.0, 120.0},
    };
    const auto parsed = parse_bench_json(render_bench_json(polluted));
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].name, "bm_a");
    EXPECT_DOUBLE_EQ(parsed[0].wall_ms, 12.0);  // last occurrence wins
    EXPECT_EQ(parsed[1].name, "bm_b");
}

TEST(BenchJsonTest, FreshDuplicatesCollapseToLastMeasurement) {
    std::vector<bench_entry> entries;
    merge_bench_entries(entries, {{"bm_a", 10.0, 100.0}, {"bm_a", 8.0, 125.0}});
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_DOUBLE_EQ(entries[0].wall_ms, 8.0);
}

TEST(BenchJsonTest, RoundTripsPeakRss) {
    const std::vector<bench_entry> entries = {{"bm_a", 1.0, 2.0, 512.5}};
    const auto parsed = parse_bench_json(render_bench_json(entries));
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_DOUBLE_EQ(parsed[0].peak_rss_mib, 512.5);
}

TEST(BenchJsonTest, ParsesPreRssLinesWithZeroPeak) {
    // summary written before peak_rss_mib existed: still parses, peak = 0
    const auto parsed = parse_bench_json(
        "    {\"name\": \"bm_old\", \"wall_ms\": 1.000, \"samples_per_s\": 2}\n");
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].name, "bm_old");
    EXPECT_DOUBLE_EQ(parsed[0].peak_rss_mib, 0.0);
}

TEST(BenchJsonTest, ProcessPeakRssIsPositiveOnLinux) {
    // /proc/self/status always carries VmHWM on Linux; a test process has
    // touched at least a few MiB by the time this runs
    EXPECT_GT(process_peak_rss_mib(), 0.0);
}

TEST(BenchJsonTest, ParseSkipsMalformedLinesAndEmptyInput) {
    EXPECT_TRUE(parse_bench_json("").empty());
    EXPECT_TRUE(parse_bench_json("{\n  \"benchmarks\": [\n  ]\n}\n").empty());
    const auto parsed = parse_bench_json(
        "garbage line\n"
        "    {\"name\": \"bm_a\", \"wall_ms\": 1.000, \"samples_per_s\": 2}\n"
        "    {\"name\": \"broken\", \"wall_ms\": }\n");
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].name, "bm_a");
}

}  // namespace
}  // namespace sci::benchutil
