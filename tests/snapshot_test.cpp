// Snapshot / restore / fork correctness (src/snapshot/).
//
// The contract under test: capture at an event-time barrier, round-trip
// the state through the versioned byte codec, restore into a fresh
// engine, replay to the end of the window — and the restored run's
// events/stats fingerprints are bit-identical to the uninterrupted run,
// at SCI_THREADS ∈ {0, 1, 4}, for a clean config and for a faulted one
// (crashes, claim races, maintenance, migration aborts).  The mid-batch
// cases prove the hard part is exercised rather than vacuously green:
// the captured state actually holds an open churn speculation batch /
// a pending HA restart group when the snapshot is taken.
//
// The shared runs are expensive, so this binary registers as a single
// ctest entry (same pattern as churn_batch_test / fault_test).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "harness/harness.hpp"
#include "multiregion/region_set.hpp"
#include "simcore/thread_pool.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/whatif.hpp"

namespace sci {
namespace {

using harness::events_fingerprint;
using harness::stats_fingerprint;

constexpr sim_time snap_time = days(5);
constexpr sim_time end_time = days(10);

engine_config base_config(unsigned threads, bool faulted) {
    engine_config config;
    config.scenario.scale = 0.02;  // ~36 nodes, ~960 VMs
    config.scenario.seed = 11;
    // hourly scrapes + dense churn: speculation batches group several
    // arrivals per interval and stay open across intervening events
    config.sampling_interval = 3600;
    config.population.daily_churn_fraction = 0.10;
    config.threads = threads;
    if (faulted) {
        config.fault.host_crash_rate_per_day = 0.2;
        config.fault.claim_failure_probability = 0.02;
        config.fault.migration_abort_probability = 0.05;
        config.fault.maintenance_windows = 2;
    }
    return config;
}

/// One interrupted run + its restored twin: the original engine pauses
/// at snap_time (captured + serialized there), then finishes the
/// window; the twin starts from the decoded bytes and replays the tail.
struct identity_run {
    std::uint64_t events_hash = 0, stats_hash = 0;    // uninterrupted
    std::uint64_t restored_events = 0, restored_stats = 0;
    snapshot::engine_state mid;  // the captured barrier state
};

identity_run run_identity(const engine_config& config) {
    identity_run run;
    sim_engine engine(config);
    engine.setup();
    engine.run_until(snap_time);
    run.mid = snapshot::capture(engine);
    const std::vector<std::byte> bytes = snapshot::serialize(run.mid);
    engine.run_until(end_time);
    run.events_hash = events_fingerprint(engine.events());
    run.stats_hash = stats_fingerprint(engine.stats());

    const std::unique_ptr<sim_engine> restored =
        snapshot::restore(snapshot::deserialize(bytes));
    restored->run_until(end_time);
    run.restored_events = events_fingerprint(restored->events());
    run.restored_stats = stats_fingerprint(restored->stats());
    return run;
}

/// Shared runs at 0/1/4 worker threads (expensive; built once).
std::vector<identity_run>& default_runs() {
    static auto* runs = [] {
        auto* v = new std::vector<identity_run>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            v->push_back(run_identity(base_config(threads, false)));
        }
        return v;
    }();
    return *runs;
}

std::vector<identity_run>& faulted_runs() {
    static auto* runs = [] {
        auto* v = new std::vector<identity_run>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            v->push_back(run_identity(base_config(threads, true)));
        }
        return v;
    }();
    return *runs;
}

TEST(SnapshotTest, RestoredRunIsBitIdenticalAcrossThreadCounts) {
    for (std::size_t i = 0; i < default_runs().size(); ++i) {
        const identity_run& run = default_runs()[i];
        EXPECT_EQ(run.events_hash, run.restored_events) << "threads run " << i;
        EXPECT_EQ(run.stats_hash, run.restored_stats) << "threads run " << i;
        // and the uninterrupted fingerprints agree across thread counts,
        // so the restored ones transitively do too
        EXPECT_EQ(run.events_hash, default_runs()[0].events_hash);
        EXPECT_EQ(run.stats_hash, default_runs()[0].stats_hash);
    }
}

TEST(SnapshotTest, FaultedRestoredRunIsBitIdenticalAcrossThreadCounts) {
    for (std::size_t i = 0; i < faulted_runs().size(); ++i) {
        const identity_run& run = faulted_runs()[i];
        EXPECT_EQ(run.events_hash, run.restored_events) << "threads run " << i;
        EXPECT_EQ(run.stats_hash, run.restored_stats) << "threads run " << i;
        EXPECT_EQ(run.events_hash, faulted_runs()[0].events_hash);
        EXPECT_EQ(run.stats_hash, faulted_runs()[0].stats_hash);
    }
    // the faulted physics actually ran
    EXPECT_NE(faulted_runs()[0].events_hash, default_runs()[0].events_hash);
}

TEST(SnapshotTest, CapturedStateCarriesFaultMachinery) {
    const snapshot::engine_state& mid = faulted_runs()[0].mid;
    EXPECT_TRUE(mid.has_mig_abort_rng);
    EXPECT_TRUE(mid.has_claim_fault_rng);
    EXPECT_FALSE(mid.mig_abort_rng_state.empty());
}

/// Advance a serial engine barrier by barrier until the captured state
/// satisfies `open`, then prove restore-from-that-state is lossless.
void snapshot_mid(const engine_config& config,
                  bool (*open)(const snapshot::engine_state&),
                  const char* what) {
    sim_engine engine(config);
    engine.setup();
    std::optional<snapshot::engine_state> mid;
    for (sim_time t = 1800; t < end_time; t += 1800) {
        engine.run_until(t);
        snapshot::engine_state state = snapshot::capture(engine);
        if (open(state)) {
            mid = std::move(state);
            break;
        }
    }
    ASSERT_TRUE(mid.has_value())
        << "no barrier with " << what << " found before day 10";
    engine.run_until(end_time);
    const std::vector<std::byte> bytes = snapshot::serialize(*mid);
    const snapshot::engine_state decoded = snapshot::deserialize(bytes);
    const std::unique_ptr<sim_engine> restored = snapshot::restore(decoded);
    restored->run_until(end_time);
    EXPECT_EQ(events_fingerprint(engine.events()),
              events_fingerprint(restored->events()))
        << what;
    EXPECT_EQ(stats_fingerprint(engine.stats()),
              stats_fingerprint(restored->stats()))
        << what;
}

TEST(SnapshotTest, MidChurnBatchSnapshotRestoresExactly) {
    // the regression this pins: a snapshot taken while a churn
    // speculation batch is open must re-arm the batch exactly on restore
    snapshot_mid(
        base_config(0, false),
        [](const snapshot::engine_state& s) { return s.window_spec_active; },
        "an open churn speculation batch");
}

TEST(SnapshotTest, MidHaGroupSnapshotRestoresExactly) {
    // same for HA: a pending restart group (crash happened, restarts not
    // yet drained) must survive the round trip
    snapshot_mid(
        base_config(0, true),
        [](const snapshot::engine_state& s) {
            return s.has_ha && !s.ha_groups.empty();
        },
        "a pending HA restart group");
}

TEST(SnapshotTest, TwoRegionSetSnapshotRestoresExactly) {
    const engine_config config = base_config(0, false);
    region_set set(make_region_specs(config, 2), 4u);
    set.run_until(snap_time);
    std::vector<snapshot::engine_state> states = snapshot::capture(set);
    ASSERT_EQ(states.size(), 2u);
    EXPECT_NE(states[0].region, states[1].region);
    // byte round trip per region, as the CLI and harness do
    std::vector<snapshot::engine_state> decoded;
    for (const snapshot::engine_state& state : states) {
        decoded.push_back(snapshot::deserialize(snapshot::serialize(state)));
    }
    set.run_until(end_time);

    const std::unique_ptr<region_set> restored =
        snapshot::restore_regions(decoded, 4u);
    restored->run_until(end_time);
    ASSERT_EQ(restored->region_count(), set.region_count());
    for (std::size_t r = 0; r < set.region_count(); ++r) {
        EXPECT_EQ(events_fingerprint(set.region(r).events()),
                  events_fingerprint(restored->region(r).events()))
            << "region " << r;
        EXPECT_EQ(stats_fingerprint(set.region(r).stats()),
                  stats_fingerprint(restored->region(r).stats()))
            << "region " << r;
    }
}

TEST(SnapshotTest, ForkFromSharedSnapshotMatchesRestore) {
    // N forks share one immutable snapshot: each fork replays the tail
    // independently and lands on the same fingerprints
    const snapshot::shared_snapshot shared =
        snapshot::share(snapshot::engine_state(default_runs()[0].mid));
    std::unique_ptr<sim_engine> fork_a = snapshot::fork(shared);
    std::unique_ptr<sim_engine> fork_b = snapshot::fork(shared);
    fork_a->run_until(end_time);
    fork_b->run_until(end_time);
    EXPECT_EQ(events_fingerprint(fork_a->events()),
              default_runs()[0].events_hash);
    EXPECT_EQ(events_fingerprint(fork_b->events()),
              default_runs()[0].events_hash);
    EXPECT_EQ(stats_fingerprint(fork_a->stats()),
              default_runs()[0].stats_hash);
}

TEST(SnapshotTest, SerializeIsByteStable) {
    // save . load . save is the identity on bytes (canonical encoding)
    const std::vector<std::byte> once =
        snapshot::serialize(default_runs()[0].mid);
    const std::vector<std::byte> twice =
        snapshot::serialize(snapshot::deserialize(once));
    EXPECT_EQ(once, twice);
}

TEST(SnapshotTest, SaveFileLoadFileRoundTrips) {
    const std::filesystem::path file = "snapshot_test_roundtrip.snap";
    snapshot::save_file(default_runs()[0].mid, file);
    const snapshot::engine_state loaded = snapshot::load_file(file);
    EXPECT_EQ(snapshot::serialize(default_runs()[0].mid),
              snapshot::serialize(loaded));
    std::filesystem::remove(file);
}

/// Expect deserialize(bytes) to throw a snapshot_error whose message
/// contains `needle`.
void expect_codec_error(std::vector<std::byte> bytes,
                        const std::string& needle) {
    try {
        snapshot::deserialize(bytes);
        FAIL() << "expected snapshot_error containing '" << needle << "'";
    } catch (const snapshot::snapshot_error& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "got: " << e.what();
    }
}

TEST(SnapshotTest, CorruptedSnapshotFailsWithPreciseError) {
    const std::vector<std::byte> good =
        snapshot::serialize(default_runs()[0].mid);

    // truncated header
    expect_codec_error(
        std::vector<std::byte>(good.begin(), good.begin() + 8), "header");
    // truncated payload
    expect_codec_error(
        std::vector<std::byte>(good.begin(), good.begin() + 64), "payload");
    // bad magic
    {
        std::vector<std::byte> bytes = good;
        bytes[0] = std::byte{0x00};
        expect_codec_error(std::move(bytes), "magic");
    }
    // flipped payload byte -> checksum mismatch
    {
        std::vector<std::byte> bytes = good;
        bytes[bytes.size() / 2] ^= std::byte{0xff};
        expect_codec_error(std::move(bytes), "checksum");
    }
}

TEST(SnapshotTest, FutureVersionSnapshotFailsWithPreciseError) {
    std::vector<std::byte> bytes = snapshot::serialize(default_runs()[0].mid);
    // the format version is the u32 right after the u64 magic
    bytes[8] = std::byte{0xff};
    expect_codec_error(std::move(bytes), "unsupported format version");
}

TEST(SnapshotTest, ConcurrentWhatIfQueriesMatchSerialExecution) {
    // a read-only planner over one hot snapshot: 4 concurrent batches of
    // 500 placement queries each must equal their serial execution
    const std::unique_ptr<sim_engine> engine =
        snapshot::restore(default_runs()[0].mid);
    const snapshot::whatif_planner planner(*engine);
    ASSERT_GT(planner.host_count(), 0u);

    std::vector<snapshot::whatif_query> queries;
    const auto records = engine->vms().all();
    ASSERT_GE(records.size(), 16u);
    for (std::size_t i = 0; i < 500; ++i) {
        snapshot::whatif_query q;
        q.flavor = records[i % records.size()].flavor;
        q.policy = i % 2 == 0 ? placement_policy::spread
                              : placement_policy::pack;
        queries.push_back(q);
    }
    const snapshot::whatif_result serial = planner.plan(queries);
    EXPECT_GT(serial.placed, 0u);
    EXPECT_EQ(serial.landings.size(), queries.size());

    constexpr std::size_t concurrent_queries = 4;
    std::vector<snapshot::whatif_result> results(concurrent_queries);
    thread_pool pool(4);
    pool.run_tasks(concurrent_queries, [&](std::size_t i) {
        results[i] = planner.plan(queries);
    });
    for (std::size_t i = 0; i < concurrent_queries; ++i) {
        EXPECT_EQ(results[i].landings, serial.landings) << "query batch " << i;
        EXPECT_EQ(results[i].placed, serial.placed);
        EXPECT_EQ(results[i].failed, serial.failed);
        // bitwise: the peaks are reductions in a fixed order
        EXPECT_EQ(results[i].peak_cpu_allocation_ratio,
                  serial.peak_cpu_allocation_ratio);
        EXPECT_EQ(results[i].peak_ram_allocation_ratio,
                  serial.peak_ram_allocation_ratio);
    }
}

}  // namespace
}  // namespace sci
