// Tests for analysis/svg: the dependency-free figure renderer.

#include "analysis/svg.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace sci {
namespace {

heatmap make_heatmap() {
    heatmap hm;
    hm.days = 2;
    hm.columns = {"a", "b"};
    hm.cells = {{100.0, 0.0},
                {50.0, std::numeric_limits<double>::quiet_NaN()}};
    return hm;
}

bool is_well_formed_svg(const std::string& svg) {
    return svg.starts_with("<svg") && svg.find("</svg>") != std::string::npos;
}

TEST(ViridisTest, EndpointsAndMonotonicity) {
    EXPECT_EQ(viridis_color(0.0), "#440154");  // dark purple-ish
    EXPECT_EQ(viridis_color(1.0), "#fde725");  // yellow-ish
    // clamped outside [0,1]
    EXPECT_EQ(viridis_color(-5.0), viridis_color(0.0));
    EXPECT_EQ(viridis_color(5.0), viridis_color(1.0));
    // distinct stops
    EXPECT_NE(viridis_color(0.25), viridis_color(0.75));
}

TEST(SeriesColorTest, PaletteCycles) {
    EXPECT_EQ(series_color(0), series_color(10));
    EXPECT_NE(series_color(0), series_color(1));
}

TEST(HeatmapSvgTest, RendersCellsAndSkipsMissing) {
    std::ostringstream os;
    svg_options options;
    options.title = "Figure 5";
    write_heatmap_svg(os, make_heatmap(), options);
    const std::string svg = os.str();
    EXPECT_TRUE(is_well_formed_svg(svg));
    EXPECT_NE(svg.find("Figure 5"), std::string::npos);
    // 3 present cells -> 3 colored rects (+1 background +1 border)
    std::size_t rects = 0;
    for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
         pos = svg.find("<rect", pos + 1)) {
        ++rects;
    }
    EXPECT_EQ(rects, 5u);
    // full cell is yellow (100% -> t=1.0)
    EXPECT_NE(svg.find("#fde725"), std::string::npos);
}

TEST(HeatmapSvgTest, EmptyHeatmapStillValid) {
    std::ostringstream os;
    write_heatmap_svg(os, heatmap{});
    EXPECT_TRUE(is_well_formed_svg(os.str()));
}

TEST(LineChartSvgTest, RendersSeriesWithLegend) {
    std::ostringstream os;
    svg_series a{"node-1", {1.0, 2.0, 3.0, 2.0}};
    svg_series b{"node-2", {0.5, 0.5, 0.5, 0.5}};
    svg_options options;
    options.x_label = "hour";
    options.y_label = "ready ms";
    write_line_chart_svg(os, {a, b}, options);
    const std::string svg = os.str();
    EXPECT_TRUE(is_well_formed_svg(svg));
    EXPECT_NE(svg.find("node-1"), std::string::npos);
    EXPECT_NE(svg.find("node-2"), std::string::npos);
    EXPECT_NE(svg.find("polyline"), std::string::npos);
    EXPECT_NE(svg.find("ready ms"), std::string::npos);
}

TEST(LineChartSvgTest, NanBreaksLineIntoSegments) {
    std::ostringstream os;
    svg_series s{"gap", {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0,
                         4.0}};
    write_line_chart_svg(os, {s});
    const std::string svg = os.str();
    std::size_t polylines = 0;
    for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
         pos = svg.find("<polyline", pos + 1)) {
        ++polylines;
    }
    EXPECT_GE(polylines, 2u);  // the gap splits the line
}

TEST(LineChartSvgTest, EmptyAndConstantInputsAreValid) {
    std::ostringstream os;
    write_line_chart_svg(os, {});
    EXPECT_TRUE(is_well_formed_svg(os.str()));
    std::ostringstream os2;
    write_line_chart_svg(os2, {svg_series{"flat", {5.0, 5.0}}});
    EXPECT_TRUE(is_well_formed_svg(os2.str()));
}

TEST(CdfSvgTest, RendersCurveWithThresholds) {
    vm_utilization_cdf cdf;
    cdf.sorted_means = {0.1, 0.3, 0.6, 0.9};
    std::ostringstream os;
    svg_options options;
    options.title = "Figure 14a";
    write_cdf_svg(os, cdf, options);
    const std::string svg = os.str();
    EXPECT_TRUE(is_well_formed_svg(svg));
    EXPECT_NE(svg.find("70%"), std::string::npos);
    EXPECT_NE(svg.find("85%"), std::string::npos);
    EXPECT_NE(svg.find("polyline"), std::string::npos);
}

TEST(SvgEscapingTest, TitleIsEscaped) {
    std::ostringstream os;
    svg_options options;
    options.title = "a < b & c > \"d\"";
    write_heatmap_svg(os, make_heatmap(), options);
    const std::string svg = os.str();
    EXPECT_NE(svg.find("a &lt; b &amp; c &gt; &quot;d&quot;"),
              std::string::npos);
    EXPECT_EQ(svg.find("a < b &"), std::string::npos);
}

}  // namespace
}  // namespace sci
