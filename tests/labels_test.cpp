// Tests for telemetry/labels: canonical sorted label sets.

#include "telemetry/labels.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sci {
namespace {

TEST(LabelSetTest, EmptyByDefault) {
    label_set ls;
    EXPECT_TRUE(ls.empty());
    EXPECT_EQ(ls.size(), 0u);
    EXPECT_EQ(ls.to_string(), "{}");
}

TEST(LabelSetTest, InitializerListAndGet) {
    const label_set ls{{"node", "n1"}, {"dc", "dc-a"}};
    EXPECT_EQ(ls.size(), 2u);
    ASSERT_TRUE(ls.get("node").has_value());
    EXPECT_EQ(*ls.get("node"), "n1");
    EXPECT_EQ(*ls.get("dc"), "dc-a");
    EXPECT_FALSE(ls.get("missing").has_value());
}

TEST(LabelSetTest, KeysKeptSorted) {
    const label_set ls{{"z", "1"}, {"a", "2"}, {"m", "3"}};
    ASSERT_EQ(ls.pairs().size(), 3u);
    EXPECT_EQ(ls.pairs()[0].first, "a");
    EXPECT_EQ(ls.pairs()[1].first, "m");
    EXPECT_EQ(ls.pairs()[2].first, "z");
}

TEST(LabelSetTest, SetReplacesExistingKey) {
    label_set ls{{"k", "old"}};
    ls.set("k", "new");
    EXPECT_EQ(ls.size(), 1u);
    EXPECT_EQ(*ls.get("k"), "new");
}

TEST(LabelSetTest, InsertionOrderIrrelevantForEquality) {
    const label_set a{{"x", "1"}, {"y", "2"}};
    label_set b;
    b.set("y", "2");
    b.set("x", "1");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(LabelSetTest, DifferentValuesNotEqual) {
    const label_set a{{"x", "1"}};
    const label_set b{{"x", "2"}};
    EXPECT_NE(a, b);
}

TEST(LabelSetTest, Contains) {
    const label_set ls{{"bb", "bb-0"}};
    EXPECT_TRUE(ls.contains("bb", "bb-0"));
    EXPECT_FALSE(ls.contains("bb", "bb-1"));
    EXPECT_FALSE(ls.contains("dc", "bb-0"));
}

TEST(LabelSetTest, ToStringCanonical) {
    const label_set ls{{"b", "2"}, {"a", "1"}};
    EXPECT_EQ(ls.to_string(), "{a=\"1\",b=\"2\"}");
}

TEST(LabelSetTest, HashDistinguishesKeyValueSwaps) {
    // {a="b"} vs {b="a"} must not collide structurally
    const label_set a{{"a", "b"}};
    const label_set b{{"b", "a"}};
    EXPECT_NE(a, b);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(LabelSetTest, UsableInUnorderedContainers) {
    std::unordered_set<label_set> set;
    set.insert(label_set{{"node", "n1"}});
    set.insert(label_set{{"node", "n2"}});
    set.insert(label_set{{"node", "n1"}});  // duplicate
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.contains(label_set{{"node", "n2"}}));
}

}  // namespace
}  // namespace sci
