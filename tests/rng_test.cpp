// Tests for simcore/rng: deterministic named streams and distribution
// helpers.  Determinism is load-bearing — every reproduced figure depends
// on it (DESIGN.md §4).

#include "simcore/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "simcore/error.hpp"

namespace sci {
namespace {

TEST(SplitmixTest, KnownAvalanche) {
    // different inputs must map to different outputs
    std::set<std::uint64_t> outputs;
    for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(splitmix64(i));
    EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Fnv1aTest, DistinctStrings) {
    EXPECT_NE(fnv1a("cpu"), fnv1a("memory"));
    EXPECT_NE(fnv1a("a"), fnv1a("b"));
    EXPECT_EQ(fnv1a("behavior"), fnv1a("behavior"));
}

TEST(DeriveRegionSeedTest, RegionZeroKeepsTheMasterSeed) {
    // a single-region deployment must be bit-identical to a plain engine
    EXPECT_EQ(derive_region_seed(42, 0), 42u);
    EXPECT_EQ(derive_region_seed(0xdeadbeef, 0), 0xdeadbeefull);
}

TEST(DeriveRegionSeedTest, RegionsGetDistinctIndependentSeeds) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t r = 0; r < 64; ++r) {
        seeds.insert(derive_region_seed(42, r));
    }
    EXPECT_EQ(seeds.size(), 64u);
    // derived seeds must also differ across masters and not collide with
    // the other master itself
    EXPECT_NE(derive_region_seed(1, 1), derive_region_seed(2, 1));
    EXPECT_NE(derive_region_seed(1, 1), 2u);
}

TEST(DeriveRegionSeedTest, IsAPureFunction) {
    EXPECT_EQ(derive_region_seed(7, 3), derive_region_seed(7, 3));
}

TEST(RngStreamTest, SameSeedAndNameReproduces) {
    rng_stream a(42, "workload");
    rng_stream b(42, "workload");
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }
}

TEST(RngStreamTest, DifferentNamesAreIndependent) {
    rng_stream a(42, "workload");
    rng_stream b(42, "lifetime");
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(RngStreamTest, DifferentSeedsDiffer) {
    rng_stream a(1, "x");
    rng_stream b(2, "x");
    EXPECT_NE(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(RngStreamTest, ChildIsPureFunctionOfIndex) {
    rng_stream parent(42, "vms");
    rng_stream c1 = parent.child(17);
    // drawing from the parent must not change what child(17) produces
    parent.uniform(0.0, 1.0);
    rng_stream c2 = parent.child(17);
    for (int i = 0; i < 20; ++i) {
        EXPECT_DOUBLE_EQ(c1.uniform(0.0, 1.0), c2.uniform(0.0, 1.0));
    }
}

TEST(RngStreamTest, ChildrenAreIndependent) {
    rng_stream parent(42, "vms");
    rng_stream a = parent.child(0);
    rng_stream b = parent.child(1);
    EXPECT_NE(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(RngStreamTest, UniformBounds) {
    rng_stream rng(7, "bounds");
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(RngStreamTest, UniformIntInclusive) {
    rng_stream rng(7, "ints");
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniform_int(1, 3);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);  // all values reachable
}

TEST(RngStreamTest, ChanceExtremes) {
    rng_stream rng(7, "chance");
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngStreamTest, ChanceApproximatesProbability) {
    rng_stream rng(7, "chance-p");
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.chance(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngStreamTest, ClampedNormalRespectsBounds) {
    rng_stream rng(7, "clamped");
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.clamped_normal(0.5, 10.0, 0.0, 1.0);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(RngStreamTest, NormalMoments) {
    rng_stream rng(7, "normal");
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngStreamTest, ExponentialMean) {
    rng_stream rng(7, "exp");
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.exponential_mean(10.0);
    EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(RngStreamTest, LognormalMedian) {
    rng_stream rng(7, "lognorm");
    std::vector<double> v;
    const int n = 20001;
    v.reserve(n);
    for (int i = 0; i < n; ++i) v.push_back(rng.lognormal(2.0, 0.5));
    std::nth_element(v.begin(), v.begin() + n / 2, v.end());
    EXPECT_NEAR(v[n / 2], std::exp(2.0), 0.15);
}

// --- bounded Pareto property tests over several alphas -------------------

class BoundedParetoTest : public testing::TestWithParam<double> {};

TEST_P(BoundedParetoTest, StaysWithinBounds) {
    rng_stream rng(11, "pareto");
    const double alpha = GetParam();
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.bounded_pareto(alpha, 1.0, 100.0);
        EXPECT_GE(v, 1.0);
        EXPECT_LE(v, 100.0);
    }
}

TEST_P(BoundedParetoTest, HeavierTailForSmallerAlpha) {
    const double alpha = GetParam();
    rng_stream rng(11, "pareto-tail");
    int above_10 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.bounded_pareto(alpha, 1.0, 100.0) > 10.0) ++above_10;
    }
    // tail probability P(X > 10) for truncated pareto; just check monotone
    // sanity: smaller alpha => more mass above 10 than alpha + 1
    rng_stream rng2(11, "pareto-tail2");
    int above_10_heavier_alpha = 0;
    for (int i = 0; i < n; ++i) {
        if (rng2.bounded_pareto(alpha + 1.0, 1.0, 100.0) > 10.0) {
            ++above_10_heavier_alpha;
        }
    }
    EXPECT_GE(above_10, above_10_heavier_alpha);
}

INSTANTIATE_TEST_SUITE_P(Alphas, BoundedParetoTest,
                         testing::Values(0.5, 0.8, 1.2, 2.0, 3.0));

TEST(BoundedParetoTest, RejectsBadArguments) {
    rng_stream rng(1, "bad");
    EXPECT_THROW(rng.bounded_pareto(-1.0, 1.0, 2.0), precondition_error);
    EXPECT_THROW(rng.bounded_pareto(1.0, 0.0, 2.0), precondition_error);
    EXPECT_THROW(rng.bounded_pareto(1.0, 3.0, 2.0), precondition_error);
}

TEST(PickWeightedTest, RespectsWeights) {
    rng_stream rng(13, "weights");
    const std::array<double, 3> weights{1.0, 0.0, 3.0};
    std::array<int, 3> counts{};
    const int n = 40000;
    for (int i = 0; i < n; ++i) ++counts[rng.pick_weighted(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(PickWeightedTest, SingleBucket) {
    rng_stream rng(13, "one");
    const std::array<double, 1> weights{2.5};
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.pick_weighted(weights), 0u);
}

TEST(PickWeightedTest, RejectsBadInput) {
    rng_stream rng(13, "bad");
    EXPECT_THROW(rng.pick_weighted({}), precondition_error);
    const std::array<double, 2> negative{1.0, -1.0};
    EXPECT_THROW(rng.pick_weighted(negative), precondition_error);
    const std::array<double, 2> zeros{0.0, 0.0};
    EXPECT_THROW(rng.pick_weighted(zeros), precondition_error);
}

TEST(RngRegistryTest, HandsOutReproducibleStreams) {
    rng_registry reg(99);
    rng_stream a = reg.stream("foo");
    rng_stream b = reg.stream("foo");
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    EXPECT_EQ(reg.master_seed(), 99u);
}

}  // namespace
}  // namespace sci
