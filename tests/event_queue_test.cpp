// Tests for the discrete-event core.

#include "simcore/event_queue.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "simcore/error.hpp"

namespace sci {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero) {
    event_queue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0);
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.step());
}

TEST(EventQueueTest, ExecutesInTimeOrder) {
    event_queue q;
    std::vector<int> order;
    q.schedule_at(30, [&](sim_time) { order.push_back(3); });
    q.schedule_at(10, [&](sim_time) { order.push_back(1); });
    q.schedule_at(20, [&](sim_time) { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
    event_queue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        q.schedule_at(100, [&order, i](sim_time) { order.push_back(i); });
    }
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbackSeesEventTime) {
    event_queue q;
    sim_time seen = -1;
    q.schedule_at(42, [&](sim_time t) { seen = t; });
    q.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
    event_queue q;
    sim_time seen = -1;
    q.schedule_at(10, [&](sim_time) {
        q.schedule_after(5, [&](sim_time t) { seen = t; });
    });
    q.run();
    EXPECT_EQ(seen, 15);
}

TEST(EventQueueTest, SchedulingInThePastThrows) {
    event_queue q;
    q.schedule_at(10, [](sim_time) {});
    q.step();
    EXPECT_EQ(q.now(), 10);
    EXPECT_THROW(q.schedule_at(5, [](sim_time) {}), precondition_error);
    EXPECT_THROW(q.schedule_after(-1, [](sim_time) {}), precondition_error);
}

TEST(EventQueueTest, NullCallbackThrows) {
    event_queue q;
    EXPECT_THROW(q.schedule_at(1, event_queue::callback{}), precondition_error);
}

TEST(EventQueueTest, CancelPreventsExecution) {
    event_queue q;
    bool fired = false;
    const event_handle h = q.schedule_at(10, [&](sim_time) { fired = true; });
    EXPECT_TRUE(q.cancel(h));
    q.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.executed_count(), 0u);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
    event_queue q;
    const event_handle h = q.schedule_at(10, [](sim_time) {});
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
    event_queue q;
    const event_handle h = q.schedule_at(10, [](sim_time) {});
    q.run();
    EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
    event_queue q;
    const event_handle a = q.schedule_at(1, [](sim_time) {});
    q.schedule_at(2, [](sim_time) {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, RunUntilExecutesInclusiveBoundary) {
    event_queue q;
    std::vector<sim_time> fired;
    q.schedule_at(10, [&](sim_time t) { fired.push_back(t); });
    q.schedule_at(20, [&](sim_time t) { fired.push_back(t); });
    q.schedule_at(21, [&](sim_time t) { fired.push_back(t); });
    q.run_until(20);
    EXPECT_EQ(fired, (std::vector<sim_time>{10, 20}));
    EXPECT_EQ(q.now(), 20);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenQueueDrains) {
    event_queue q;
    q.schedule_at(5, [](sim_time) {});
    q.run_until(100);
    EXPECT_EQ(q.now(), 100);
}

TEST(EventQueueTest, RunUntilPastThrows) {
    event_queue q;
    q.schedule_at(50, [](sim_time) {});
    q.run();
    EXPECT_THROW(q.run_until(10), precondition_error);
}

TEST(EventQueueTest, SelfReschedulingEvent) {
    event_queue q;
    int count = 0;
    std::function<void(sim_time)> tick = [&](sim_time) {
        ++count;
        if (count < 5) q.schedule_after(10, tick);
    };
    q.schedule_at(0, tick);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 40);
}

TEST(EventQueueTest, ExecutedCount) {
    event_queue q;
    for (int i = 0; i < 7; ++i) q.schedule_at(i, [](sim_time) {});
    q.run();
    EXPECT_EQ(q.executed_count(), 7u);
}

TEST(EventQueueTest, CancelFromWithinCallback) {
    event_queue q;
    bool second_fired = false;
    const event_handle second =
        q.schedule_at(20, [&](sim_time) { second_fired = true; });
    q.schedule_at(10, [&](sim_time) { q.cancel(second); });
    q.run();
    EXPECT_FALSE(second_fired);
}

TEST(EventQueueTest, PinnedSeqKeepsTieOrderAcrossReschedules) {
    // A self-rescheduling event in a reserved slot must keep firing at
    // the reserved position among equal-timestamp events: after earlier
    // reservations, before later ones — even on its Nth rescheduling,
    // when a naive schedule_at would have drifted to the end of the tie.
    event_queue q;
    std::vector<int> order;
    q.schedule_at(10, [&](sim_time) { order.push_back(0); });
    q.schedule_at(20, [&](sim_time) { order.push_back(0); });
    const std::uint64_t slot = q.reserve_seq();
    std::function<void(sim_time)> drain = [&](sim_time t) {
        order.push_back(1);
        if (t < 20) q.schedule_at_pinned(t + 10, slot, drain);
    };
    q.schedule_at_pinned(10, slot, drain);
    q.schedule_at(10, [&](sim_time) { order.push_back(2); });
    q.schedule_at(20, [&](sim_time) { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(EventQueueTest, PinnedSeqRequiresReservedSlot) {
    event_queue q;
    EXPECT_THROW(q.schedule_at_pinned(0, 99, [](sim_time) {}),
                 precondition_error);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
    event_queue q;
    sim_time last = -1;
    bool monotone = true;
    for (int i = 999; i >= 0; --i) {
        q.schedule_at(i % 100, [&](sim_time t) {
            if (t < last) monotone = false;
            last = t;
        });
    }
    q.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(q.executed_count(), 1000u);
}

}  // namespace
}  // namespace sci
