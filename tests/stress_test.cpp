// Randomized stress / property tests: invariants must survive arbitrary
// operation sequences and arbitrary seeds.

#include <gtest/gtest.h>

#include <map>

#include "core/engine.hpp"
#include "drs/drs.hpp"
#include "sched/placement.hpp"
#include "simcore/rng.hpp"

namespace sci {
namespace {

// --- placement service under random claim/release/move ----------------------

TEST(PlacementStressTest, RandomOperationsPreserveAccounting) {
    rng_stream rng(2024, "placement-stress");
    placement_service placement;
    flavor_catalog catalog;
    std::vector<flavor_id> flavors;
    flavors.push_back(catalog.add("a", 2, gib_to_mib(8), 10.0,
                                  workload_class::general_purpose));
    flavors.push_back(catalog.add("b", 8, gib_to_mib(64), 50.0,
                                  workload_class::general_purpose));
    flavors.push_back(catalog.add("c", 32, gib_to_mib(256), 200.0,
                                  workload_class::hana_db));
    for (int i = 0; i < 6; ++i) {
        placement.register_provider(
            bb_id(i),
            provider_inventory{192, gib_to_mib(2048), 10000.0, 4.0, 1.0});
    }

    vm_registry vms;
    std::map<vm_id, flavor_id> placed;  // alive allocations
    int claims = 0, releases = 0, moves = 0;
    for (int step = 0; step < 5000; ++step) {
        const double action = rng.uniform(0.0, 1.0);
        if (action < 0.5 || placed.empty()) {
            const flavor_id fid =
                flavors[static_cast<std::size_t>(rng.uniform_int(0, 2))];
            const vm_id vm = vms.create(fid, project_id(0), 0);
            const bb_id bb(static_cast<std::int32_t>(rng.uniform_int(0, 5)));
            try {
                placement.claim(vm, bb, catalog.get(fid));
                placed.emplace(vm, fid);
                ++claims;
            } catch (const capacity_error&) {
            }
        } else if (action < 0.8) {
            auto it = placed.begin();
            std::advance(it, rng.uniform_int(
                                 0, static_cast<std::int64_t>(placed.size()) - 1));
            placement.release(it->first, catalog.get(it->second));
            placed.erase(it);
            ++releases;
        } else {
            auto it = placed.begin();
            std::advance(it, rng.uniform_int(
                                 0, static_cast<std::int64_t>(placed.size()) - 1));
            const bb_id to(static_cast<std::int32_t>(rng.uniform_int(0, 5)));
            try {
                placement.move(it->first, to, catalog.get(it->second));
                ++moves;
            } catch (const capacity_error&) {
            }
        }

        // invariant: per-provider usage equals the sum over live allocations
        if (step % 500 == 0) {
            std::map<bb_id, provider_usage> expected;
            for (const auto& [vm, fid] : placed) {
                const auto bb = placement.allocation_of(vm);
                ASSERT_TRUE(bb.has_value());
                const flavor& f = catalog.get(fid);
                auto& u = expected[*bb];
                u.vcpus_used += f.vcpus;
                u.ram_used_mib += f.ram_mib;
                u.instances += 1;
            }
            for (bb_id bb : placement.providers()) {
                const provider_usage& actual = placement.usage(bb);
                const provider_usage& want = expected[bb];
                ASSERT_EQ(actual.vcpus_used, want.vcpus_used);
                ASSERT_EQ(actual.ram_used_mib, want.ram_used_mib);
                ASSERT_EQ(actual.instances, want.instances);
                // capacity never exceeded
                const provider_inventory& inv = placement.inventory(bb);
                ASSERT_LE(static_cast<double>(actual.vcpus_used),
                          inv.total_pcpus * inv.cpu_allocation_ratio);
                ASSERT_LE(static_cast<double>(actual.ram_used_mib),
                          static_cast<double>(inv.total_ram_mib) *
                              inv.ram_allocation_ratio);
            }
        }
    }
    EXPECT_GT(claims, 100);
    EXPECT_GT(releases, 100);
    EXPECT_GT(moves, 10);
}

// --- DRS cluster under random churn + rebalancing ----------------------------

TEST(DrsStressTest, RandomChurnNeverBreaksReservations) {
    rng_stream rng(7, "drs-stress");
    fleet f;
    const region_id r = f.add_region("r");
    const dc_id dc = f.add_dc(f.add_az(r, "az"), "dc");
    const bb_id bb = f.add_bb(dc, "bb", bb_purpose::general,
                              profiles::general_purpose(), 6);
    flavor_catalog catalog;
    const flavor_id fid = catalog.add("s", 4, gib_to_mib(16), 20.0,
                                      workload_class::general_purpose);
    const flavor& fl = catalog.get(fid);

    drs_cluster cluster(f.get(bb), {});
    std::map<vm_id, node_id> where;
    std::map<vm_id, double> demand;
    vm_registry vms;

    for (int step = 0; step < 2000; ++step) {
        const double action = rng.uniform(0.0, 1.0);
        if (action < 0.5 || where.empty()) {
            const vm_id vm = vms.create(fid, project_id(0), 0);
            const auto target = cluster.initial_placement(fl);
            if (target.has_value()) {
                cluster.place(vm, fl, *target);
                where.emplace(vm, *target);
                demand[vm] = rng.uniform(0.5, 8.0);
            }
        } else if (action < 0.8) {
            auto it = where.begin();
            std::advance(it, rng.uniform_int(
                                 0, static_cast<std::int64_t>(where.size()) - 1));
            cluster.remove(it->first, fl, it->second);
            demand.erase(it->first);
            where.erase(it);
        } else {
            const auto moves = cluster.rebalance(
                [&](vm_id vm) { return demand.count(vm) ? demand[vm] : 0.0; },
                [&](vm_id) -> const flavor& { return fl; });
            for (const drs_migration& m : moves) {
                ASSERT_EQ(where[m.vm], m.from);
                where[m.vm] = m.to;
            }
        }
        if (step % 200 == 0) {
            // invariant: residency matches our shadow map exactly
            std::size_t resident_total = 0;
            for (const node_runtime& nr : cluster.nodes()) {
                resident_total += nr.vm_count();
                ASSERT_EQ(nr.reserved_vcpus(),
                          static_cast<core_count>(nr.vm_count()) * fl.vcpus);
            }
            ASSERT_EQ(resident_total, where.size());
            for (const auto& [vm, node] : where) {
                ASSERT_TRUE(cluster.node(node).hosts(vm));
            }
        }
    }
}

// --- whole-engine determinism & invariants across seeds ----------------------

class EngineSeedSweepTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineSeedSweepTest, InvariantsHoldForAnySeed) {
    engine_config config;
    config.scenario.scale = 0.012;
    config.scenario.seed = GetParam();
    config.sampling_interval = 1800;
    sim_engine engine(config);
    engine.run();

    // conservation between placement and node runtimes
    for (const drs_cluster& cluster : engine.clusters()) {
        core_count vcpus = 0;
        std::size_t count = 0;
        for (const node_runtime& nr : cluster.nodes()) {
            vcpus += nr.reserved_vcpus();
            count += nr.vm_count();
        }
        const provider_usage& usage = engine.placement().usage(cluster.bb());
        EXPECT_EQ(vcpus, usage.vcpus_used);
        EXPECT_EQ(count, static_cast<std::size_t>(usage.instances));
    }
    // every metric value within physical bounds
    for (series_id id :
         engine.store().select(metric_names::host_cpu_contention)) {
        const running_stats agg = engine.store().window_aggregate(id);
        if (agg.empty()) continue;
        EXPECT_GE(agg.min(), 0.0);
        EXPECT_LE(agg.max(), 100.0);
    }
    // event log consistent with stats
    EXPECT_EQ(engine.events().count(lifecycle_event_kind::create),
              engine.stats().placements);
    EXPECT_EQ(engine.events().count(lifecycle_event_kind::remove),
              engine.stats().deletions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeedSweepTest,
                         testing::Values(1, 7, 42, 1234, 987654321));

}  // namespace
}  // namespace sci
