// Tests for simcore/time: calendar math anchored at the paper's
// observation start (2024-07-31 00:00:00 UTC, a Wednesday).

#include "simcore/time.hpp"

#include <gtest/gtest.h>

namespace sci {
namespace {

TEST(TimeTest, DayIndexAtWindowStart) {
    EXPECT_EQ(day_index(0), 0);
    EXPECT_EQ(day_index(1), 0);
    EXPECT_EQ(day_index(seconds_per_day - 1), 0);
    EXPECT_EQ(day_index(seconds_per_day), 1);
}

TEST(TimeTest, DayIndexNegativeUsesFloorDivision) {
    EXPECT_EQ(day_index(-1), -1);
    EXPECT_EQ(day_index(-seconds_per_day), -1);
    EXPECT_EQ(day_index(-seconds_per_day - 1), -2);
}

TEST(TimeTest, SecondOfDayWrapsPositive) {
    EXPECT_EQ(second_of_day(0), 0);
    EXPECT_EQ(second_of_day(61), 61);
    EXPECT_EQ(second_of_day(seconds_per_day + 5), 5);
}

TEST(TimeTest, SecondOfDayNonNegativeForNegativeTimes) {
    EXPECT_EQ(second_of_day(-1), seconds_per_day - 1);
    EXPECT_EQ(second_of_day(-seconds_per_day), 0);
}

TEST(TimeTest, HourOfDay) {
    EXPECT_EQ(hour_of_day(0), 0);
    EXPECT_EQ(hour_of_day(hours(13) + minutes(59)), 13);
    EXPECT_EQ(hour_of_day(seconds_per_day - 1), 23);
}

TEST(TimeTest, ObservationStartIsWednesday) {
    // 2024-07-31 was a Wednesday (dow 2 with Monday = 0)
    EXPECT_EQ(day_of_week(0), 2);
}

TEST(TimeTest, WeekdaysProgress) {
    EXPECT_EQ(day_of_week(days(1)), 3);  // Thursday
    EXPECT_EQ(day_of_week(days(2)), 4);  // Friday
    EXPECT_EQ(day_of_week(days(3)), 5);  // Saturday
    EXPECT_EQ(day_of_week(days(4)), 6);  // Sunday
    EXPECT_EQ(day_of_week(days(5)), 0);  // Monday
    EXPECT_EQ(day_of_week(days(12)), 0); // Monday one week later
}

TEST(TimeTest, WeekendDetection) {
    EXPECT_FALSE(is_weekend(0));
    EXPECT_TRUE(is_weekend(days(3)));
    EXPECT_TRUE(is_weekend(days(4)));
    EXPECT_FALSE(is_weekend(days(5)));
}

TEST(TimeTest, WeekendForNegativeTimes) {
    // 2024-07-28 (3 days before start) was a Sunday
    EXPECT_TRUE(is_weekend(-days(3)));
    // 2024-07-29 Monday
    EXPECT_FALSE(is_weekend(-days(2)));
}

TEST(TimeTest, CalendarDateAtStart) {
    const calendar_date d = to_calendar_date(0);
    EXPECT_EQ(d, (calendar_date{2024, 7, 31}));
}

TEST(TimeTest, CalendarDateCrossesMonthBoundary) {
    EXPECT_EQ(to_calendar_date(days(1)), (calendar_date{2024, 8, 1}));
    EXPECT_EQ(to_calendar_date(days(31)), (calendar_date{2024, 8, 31}));
    EXPECT_EQ(to_calendar_date(days(32)), (calendar_date{2024, 9, 1}));
}

TEST(TimeTest, CalendarDateCrossesYearBoundary) {
    // 2024-07-31 + 154 days = 2025-01-01
    EXPECT_EQ(to_calendar_date(days(154)), (calendar_date{2025, 1, 1}));
}

TEST(TimeTest, CalendarDateBeforeWindow) {
    EXPECT_EQ(to_calendar_date(-days(1)), (calendar_date{2024, 7, 30}));
    EXPECT_EQ(to_calendar_date(-days(31)), (calendar_date{2024, 6, 30}));
    // multiple years back (long-lived VMs of Figure 15)
    EXPECT_EQ(to_calendar_date(-days(366 + 365)), (calendar_date{2022, 7, 31}));
}

TEST(TimeTest, LeapYearHandled) {
    // 2024 is a leap year: 2024-07-31 - 153 days = 2024-02-29
    EXPECT_EQ(to_calendar_date(-days(153)), (calendar_date{2024, 2, 29}));
}

TEST(TimeTest, FormatTimestamp) {
    EXPECT_EQ(format_timestamp(0), "2024-07-31 00:00:00");
    EXPECT_EQ(format_timestamp(hours(9) + minutes(5) + 7), "2024-07-31 09:05:07");
    EXPECT_EQ(format_timestamp(days(1) + 59), "2024-08-01 00:00:59");
}

TEST(TimeTest, FormatDate) {
    EXPECT_EQ(format_date(0), "2024-07-31");
    EXPECT_EQ(format_date(days(29)), "2024-08-29");
}

TEST(TimeTest, FormatDurationPicksUnits) {
    EXPECT_EQ(format_duration(45), "45 s");
    EXPECT_EQ(format_duration(minutes(5)), "5.0 min");
    EXPECT_EQ(format_duration(hours(3)), "3.0 h");
    EXPECT_EQ(format_duration(days(12)), "12.0 d");
    EXPECT_EQ(format_duration(days(730)), "2.0 y");
}

TEST(TimeTest, ObservationWindowIs30Days) {
    EXPECT_EQ(observation_window, 30 * seconds_per_day);
    EXPECT_EQ(observation_days, 30);
}

TEST(TimeTest, DurationHelpers) {
    EXPECT_EQ(minutes(2), 120);
    EXPECT_EQ(hours(2), 7200);
    EXPECT_EQ(days(2), 172800);
}

}  // namespace
}  // namespace sci
