// Determinism guard for batched HA recovery and cross-BB target
// speculation: a mass-crash run re-places each detection epoch's victims
// as one speculated batch and target-speculates every rebalance pass, so
// fixed-seed runs at SCI_THREADS ∈ {0, 1, 4} must produce bit-identical
// placements, stats, reports, and exported datasets — including a
// contention-aware run where scrape epochs gate batch validity.  The
// scenario is tuned (high crash rate, short repair, dense churn, tight
// rebalance spread) so recovery batches span several victim groups and
// rebalance passes plan multiple moves: the straddle/invalidation tests
// prove batches stayed open across second crashes and that the
// shrink-version / usage-version invalidation actually fired, i.e. the
// interesting paths are exercised rather than vacuously green.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "data/dataset.hpp"
#include "fault/ha.hpp"

namespace sci {
namespace {

std::unique_ptr<sim_engine> run_engine(unsigned threads, bool contention) {
    engine_config config;
    config.scenario.scale = 0.02;  // ~36 nodes, ~960 VMs
    config.scenario.seed = 11;
    // hourly scrapes: recovery batches may cover every victim group queued
    // within the scrape interval, so retries and nearby crash epochs
    // coalesce into multi-group batches
    config.sampling_interval = 3600;
    config.population.daily_churn_fraction = 0.10;
    config.threads = threads;
    // mass-crash regime: ~18 host crashes/day on ~36 nodes with quick
    // repair, plus claim races and mid-copy aborts, keeps recovery under
    // genuine NoValidHost pressure (retry groups, abandoned victims)
    config.fault.host_crash_rate_per_day = 0.5;
    config.fault.crash_repair_time = hours(8);
    // slow failure detection coalesces nearby crash epochs into one
    // multi-group batch whose span regularly straddles the next crash
    config.fault.ha_restart_delay = 900;
    config.fault.claim_failure_probability = 0.02;
    config.fault.migration_abort_probability = 0.05;
    config.fault.maintenance_windows = 2;
    // tight spread forces multi-move rebalance passes, so later moves see
    // the usage versions their earlier siblings bumped
    config.cross_bb_interval = 7200;
    config.cross_bb.target_ram_spread = 0.05;
    config.contention_aware = contention;
    auto engine = std::make_unique<sim_engine>(config);
    engine->run();
    return engine;
}

/// Three mass-crash engines at 0/1/4 threads (expensive; built once).
std::vector<std::unique_ptr<sim_engine>>& faulted_runs() {
    static auto* runs = [] {
        auto* v = new std::vector<std::unique_ptr<sim_engine>>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            v->push_back(run_engine(threads, false));
        }
        return v;
    }();
    return *runs;
}

/// Same, contention-aware: scrape epochs gate recovery-batch validity.
std::vector<std::unique_ptr<sim_engine>>& contention_runs() {
    static auto* runs = [] {
        auto* v = new std::vector<std::unique_ptr<sim_engine>>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            v->push_back(run_engine(threads, true));
        }
        return v;
    }();
    return *runs;
}

void expect_stats_equal(const run_stats& a, const run_stats& b) {
    EXPECT_EQ(a.placements, b.placements);
    EXPECT_EQ(a.placement_failures, b.placement_failures);
    EXPECT_EQ(a.scheduler_retries, b.scheduler_retries);
    EXPECT_EQ(a.drs_migrations, b.drs_migrations);
    EXPECT_EQ(a.evacuations, b.evacuations);
    EXPECT_EQ(a.forced_fits, b.forced_fits);
    EXPECT_EQ(a.holistic_claim_rejections, b.holistic_claim_rejections);
    EXPECT_EQ(a.deletions, b.deletions);
    EXPECT_EQ(a.scrapes, b.scrapes);
    EXPECT_EQ(a.cross_bb_moves, b.cross_bb_moves);
    EXPECT_EQ(a.resizes, b.resizes);
    EXPECT_EQ(a.resize_failures, b.resize_failures);
    EXPECT_EQ(a.migration_seconds, b.migration_seconds);  // bitwise: ==
    EXPECT_EQ(a.max_migration_downtime_ms, b.max_migration_downtime_ms);
    EXPECT_EQ(a.speculative_placements, b.speculative_placements);
    EXPECT_EQ(a.speculation_misses, b.speculation_misses);
    EXPECT_EQ(a.window_batches, b.window_batches);
    EXPECT_EQ(a.window_speculations, b.window_speculations);
    EXPECT_EQ(a.window_speculative_placements, b.window_speculative_placements);
    EXPECT_EQ(a.window_speculation_misses, b.window_speculation_misses);
    EXPECT_EQ(a.window_speculation_invalidated, b.window_speculation_invalidated);
    // *_wall_ms are host timing, deliberately not compared
    EXPECT_EQ(a.recovery_batches, b.recovery_batches);
    EXPECT_EQ(a.recovery_speculations, b.recovery_speculations);
    EXPECT_EQ(a.recovery_speculative_placements,
              b.recovery_speculative_placements);
    EXPECT_EQ(a.recovery_speculation_misses, b.recovery_speculation_misses);
    EXPECT_EQ(a.recovery_speculation_invalidated,
              b.recovery_speculation_invalidated);
    EXPECT_EQ(a.recovery_speculation_cancelled,
              b.recovery_speculation_cancelled);
    EXPECT_EQ(a.rebalance_target_speculations, b.rebalance_target_speculations);
    EXPECT_EQ(a.rebalance_targets_used, b.rebalance_targets_used);
    EXPECT_EQ(a.rebalance_target_invalidated, b.rebalance_target_invalidated);
    EXPECT_EQ(a.host_crashes, b.host_crashes);
    EXPECT_EQ(a.crash_victims, b.crash_victims);
    EXPECT_EQ(a.ha_restarts, b.ha_restarts);
    EXPECT_EQ(a.ha_restart_failures, b.ha_restart_failures);
    EXPECT_EQ(a.migration_aborts, b.migration_aborts);
    EXPECT_EQ(a.maintenance_evacuations, b.maintenance_evacuations);
    EXPECT_EQ(a.wasted_migration_seconds, b.wasted_migration_seconds);
}

/// The serial-reference assertion: thread-pool runs compared VM-by-VM
/// against the SCI_THREADS=0 run.
void expect_placements_equal(const sim_engine& serial, const sim_engine& pool) {
    const auto a = serial.vms().all();
    const auto b = pool.vms().all();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].state, b[i].state) << "vm " << i;
        ASSERT_EQ(a[i].placed_bb, b[i].placed_bb) << "vm " << i;
        ASSERT_EQ(a[i].placed_node, b[i].placed_node) << "vm " << i;
        ASSERT_EQ(a[i].migration_count, b[i].migration_count) << "vm " << i;
    }
}

TEST(HaBatchTest, VmPlacementsMatchSerialReference) {
    for (std::size_t i = 1; i < faulted_runs().size(); ++i) {
        expect_placements_equal(*faulted_runs()[0], *faulted_runs()[i]);
    }
}

TEST(HaBatchTest, ContentionVmPlacementsMatchSerialReference) {
    for (std::size_t i = 1; i < contention_runs().size(); ++i) {
        expect_placements_equal(*contention_runs()[0], *contention_runs()[i]);
    }
}

TEST(HaBatchTest, StatsAreBitIdenticalAcrossThreadCounts) {
    for (std::size_t i = 1; i < faulted_runs().size(); ++i) {
        expect_stats_equal(faulted_runs()[0]->stats(), faulted_runs()[i]->stats());
        expect_stats_equal(contention_runs()[0]->stats(),
                           contention_runs()[i]->stats());
    }
}

TEST(HaBatchTest, RecoveryBatchesCommitRestartsSpeculatively) {
    const run_stats& stats = faulted_runs()[0]->stats();
    EXPECT_GT(stats.host_crashes, 0u);
    EXPECT_GT(stats.crash_victims, 0u);
    EXPECT_GT(stats.recovery_batches, 0u);
    EXPECT_GT(stats.recovery_speculations, 0u);
    EXPECT_GT(stats.recovery_speculative_placements, 0u);
    // every speculated victim either commits speculatively, misses,
    // is dropped by an invalidation, or was deleted while down
    EXPECT_EQ(stats.recovery_speculations,
              stats.recovery_speculative_placements +
                  stats.recovery_speculation_misses +
                  stats.recovery_speculation_invalidated +
                  stats.recovery_speculation_cancelled);
    // the span record matches the counters
    const auto& spans = faulted_runs()[0]->recovery_batches();
    ASSERT_EQ(spans.size(), stats.recovery_batches);
    std::uint64_t speculated = 0;
    for (const sim_engine::churn_batch_span& s : spans) {
        EXPECT_LE(s.first, s.last);
        speculated += s.size;
    }
    EXPECT_EQ(speculated, stats.recovery_speculations);
}

TEST(HaBatchTest, ShrinksInvalidateOpenRecoveryBatches) {
    // deletions / further crashes land while recovery batches are open,
    // breaking the monotone-usage precondition: the tail must
    // re-speculate, not commit stale results
    EXPECT_GT(faulted_runs()[0]->stats().recovery_speculation_invalidated, 0u);
    EXPECT_GT(contention_runs()[0]->stats().recovery_speculation_invalidated,
              0u);
}

/// Does any recovery batch (spanning several victim groups: first < last)
/// stay open across an event of `kind`?  The batch is speculated at the
/// drain that opens it, so an event strictly inside (first, last]
/// intervened while the batch was open.
bool any_recovery_batch_straddles(const sim_engine& engine,
                                  lifecycle_event_kind kind) {
    for (const sim_engine::churn_batch_span& s : engine.recovery_batches()) {
        if (s.size < 2 || s.first == s.last) continue;
        for (const lifecycle_event& e : engine.events().between(s.first + 1,
                                                                s.last + 1)) {
            if (e.kind == kind) return true;
        }
    }
    return false;
}

TEST(HaBatchTest, RecoveryBatchStraddlesSecondCrash) {
    // the mass-crash scenario: a batch speculated for one detection epoch
    // stays open while another host crashes (which both enqueues a new
    // victim group and invalidates the open batch's tail)
    EXPECT_TRUE(any_recovery_batch_straddles(*faulted_runs()[0],
                                             lifecycle_event_kind::crash));
}

TEST(HaBatchTest, RebalanceTargetsSpeculatedAndConsumed) {
    const run_stats& stats = faulted_runs()[0]->stats();
    EXPECT_GT(stats.cross_bb_moves, 0u);
    EXPECT_GT(stats.rebalance_target_speculations, 0u);
    EXPECT_GT(stats.rebalance_targets_used, 0u);
    // every speculated target is either consumed by its move or dropped
    // when an earlier commit bumped the destination's usage version
    EXPECT_EQ(stats.rebalance_target_speculations,
              stats.rebalance_targets_used + stats.rebalance_target_invalidated);
    // multi-move passes share destination clusters, so mid-batch commits
    // really do invalidate later targets
    EXPECT_GT(stats.rebalance_target_invalidated, 0u);
}

TEST(HaBatchTest, HaAccountingIsConsistent) {
    const sim_engine& engine = *faulted_runs()[0];
    const run_stats& stats = engine.stats();
    const ha_controller& ha = *engine.ha();
    EXPECT_EQ(stats.crash_victims, ha.crashed_vms());
    EXPECT_EQ(stats.ha_restarts, ha.restarted_vms());
    // the attempt-budget regression guard: attempts are charged once per
    // genuine NoValidHost outcome — a speculation miss falls back to the
    // serial retry rounds of the SAME attempt and never reaches the HA
    // controller, so the two failure counters agree exactly
    EXPECT_EQ(stats.ha_restart_failures, ha.failed_attempts());
    // every crashed VM is restarted, abandoned, deleted while down, or
    // still pending at window end
    EXPECT_EQ(ha.crashed_vms(), ha.restarted_vms() + ha.abandoned_vms() +
                                    ha.cancelled_vms() + ha.pending_count());
    EXPECT_EQ(ha.downtime_samples().size(), ha.restarted_vms());
}

TEST(HaBatchTest, AttemptBudgetIsPerRecoveryAndMissFree) {
    // unit-level regression for the attempt double-count: only
    // on_restart_failure charges the budget, and a fresh crash after a
    // successful restart starts from zero again
    ha_controller ha(/*retry_backoff=*/600, /*max_restart_attempts=*/3);
    const vm_id vm(7);
    ha.on_crash(vm, 1000);
    EXPECT_EQ(ha.attempts_of(vm), 0);
    // two failed attempts grant retries and charge exactly one each
    ASSERT_TRUE(ha.on_restart_failure(vm, 1120).has_value());
    EXPECT_EQ(ha.attempts_of(vm), 1);
    ASSERT_TRUE(ha.on_restart_failure(vm, 1720).has_value());
    EXPECT_EQ(ha.attempts_of(vm), 2);
    // success clears the pending state without touching the budget
    ha.on_restart_success(vm, 2320);
    EXPECT_FALSE(ha.pending(vm));
    EXPECT_EQ(ha.attempts_of(vm), 0);
    EXPECT_EQ(ha.failed_attempts(), 2u);
    // a fresh crash must NOT inherit the previous recovery's attempts:
    // the full budget is available again
    ha.on_crash(vm, 5000);
    EXPECT_EQ(ha.attempts_of(vm), 0);
    ASSERT_TRUE(ha.on_restart_failure(vm, 5120).has_value());
    ASSERT_TRUE(ha.on_restart_failure(vm, 5720).has_value());
    // third failure exhausts the budget: the victim is abandoned
    EXPECT_FALSE(ha.on_restart_failure(vm, 6320).has_value());
    EXPECT_FALSE(ha.pending(vm));
    EXPECT_EQ(ha.abandoned_vms(), 1u);
    EXPECT_EQ(ha.failed_attempts(), 5u);
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t hash_string(const std::string& s) {
    return fnv1a(1469598103934665603ull, s.data(), s.size());
}

TEST(HaBatchTest, ReportHashesAreBitIdentical) {
    const std::uint64_t ref = hash_string(markdown_report(*faulted_runs()[0]));
    const std::uint64_t contention_ref =
        hash_string(markdown_report(*contention_runs()[0]));
    EXPECT_NE(ref, contention_ref);  // the runs differ; only threads must not
    for (std::size_t i = 1; i < faulted_runs().size(); ++i) {
        EXPECT_EQ(ref, hash_string(markdown_report(*faulted_runs()[i])));
        EXPECT_EQ(contention_ref,
                  hash_string(markdown_report(*contention_runs()[i])));
    }
}

/// Export dataset + events CSV and hash every produced file, in sorted
/// filename order, content and name both.
std::uint64_t hash_dataset_export(const sim_engine& engine,
                                  const std::filesystem::path& dir) {
    std::filesystem::remove_all(dir);
    export_dataset(engine.store(), dir);
    export_events_csv(engine.events(), dir / "events.csv");
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    std::uint64_t h = 1469598103934665603ull;
    for (const std::filesystem::path& file : files) {
        const std::string name = file.filename().string();
        h = fnv1a(h, name.data(), name.size());
        std::ifstream in(file, std::ios::binary);
        std::ostringstream body;
        body << in.rdbuf();
        const std::string s = body.str();
        h = fnv1a(h, s.data(), s.size());
    }
    std::filesystem::remove_all(dir);
    return h;
}

TEST(HaBatchTest, DatasetExportsAreBitIdentical) {
    const std::filesystem::path base = "habtest_dataset";
    const std::uint64_t ref =
        hash_dataset_export(*faulted_runs()[0], base / "f0");
    const std::uint64_t contention_ref =
        hash_dataset_export(*contention_runs()[0], base / "c0");
    for (std::size_t i = 1; i < faulted_runs().size(); ++i) {
        EXPECT_EQ(ref, hash_dataset_export(*faulted_runs()[i],
                                           base / ("f" + std::to_string(i))));
        EXPECT_EQ(contention_ref,
                  hash_dataset_export(*contention_runs()[i],
                                      base / ("c" + std::to_string(i))));
    }
    std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace sci
