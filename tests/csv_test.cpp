// Tests for data/csv: escaping, parsing, round-trips.

#include "data/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "simcore/error.hpp"
#include "simcore/rng.hpp"

namespace sci {
namespace {

TEST(CsvEscapeTest, PlainFieldsUntouched) {
    EXPECT_EQ(csv_escape("hello"), "hello");
    EXPECT_EQ(csv_escape(""), "");
    EXPECT_EQ(csv_escape("42.5"), "42.5");
}

TEST(CsvEscapeTest, QuotesFieldsWithSpecials) {
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvParseTest, SimpleFields) {
    EXPECT_EQ(csv_parse_line("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(csv_parse_line("one"), (std::vector<std::string>{"one"}));
}

TEST(CsvParseTest, EmptyFields) {
    EXPECT_EQ(csv_parse_line("a,,c"), (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(csv_parse_line(","), (std::vector<std::string>{"", ""}));
    EXPECT_EQ(csv_parse_line(""), (std::vector<std::string>{""}));
}

TEST(CsvParseTest, QuotedFields) {
    EXPECT_EQ(csv_parse_line("\"a,b\",c"),
              (std::vector<std::string>{"a,b", "c"}));
    EXPECT_EQ(csv_parse_line("\"say \"\"hi\"\"\""),
              (std::vector<std::string>{"say \"hi\""}));
}

TEST(CsvParseTest, ToleratesCr) {
    EXPECT_EQ(csv_parse_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(CsvParseTest, MalformedInputThrows) {
    EXPECT_THROW(csv_parse_line("\"unterminated"), error);
    EXPECT_THROW(csv_parse_line("ab\"cd"), error);
}

TEST(CsvRoundTripTest, EscapeParseIdentity) {
    const std::vector<std::string> nasty{
        "plain", "with,comma", "with \"quotes\"", "", "trailing,",
        "multi\nline", "\"leading quote", "a,b,\"c\",d"};
    std::string line;
    for (std::size_t i = 0; i < nasty.size(); ++i) {
        if (i > 0) line += ",";
        line += csv_escape(nasty[i]);
    }
    EXPECT_EQ(csv_parse_line(line), nasty);
}

TEST(CsvRoundTripTest, RandomizedProperty) {
    rng_stream rng(7, "csv-prop");
    const char alphabet[] = "ab,\"\n xyz0123";
    for (int round = 0; round < 200; ++round) {
        std::vector<std::string> fields;
        const int n = static_cast<int>(rng.uniform_int(1, 6));
        for (int i = 0; i < n; ++i) {
            std::string field;
            const int len = static_cast<int>(rng.uniform_int(0, 12));
            for (int j = 0; j < len; ++j) {
                field += alphabet[rng.uniform_int(0, sizeof alphabet - 2)];
            }
            fields.push_back(std::move(field));
        }
        std::string line;
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (i > 0) line += ",";
            line += csv_escape(fields[i]);
        }
        // skip lines whose fields embed newlines: the writer/reader pair
        // handles them per-row, not via getline
        if (line.find('\n') != std::string::npos) continue;
        EXPECT_EQ(csv_parse_line(line), fields) << "round " << round;
    }
}

TEST(CsvWriterTest, WritesRows) {
    std::ostringstream os;
    csv_writer w(os);
    w.write_row({"h1", "h2"});
    const std::vector<std::string> row{"a,b", "c"};
    w.write_row(row);
    EXPECT_EQ(os.str(), "h1,h2\n\"a,b\",c\n");
    EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvReaderTest, ReadsRowsSkippingBlanks) {
    std::istringstream is("a,b\n\nc,d\n\r\ne,f\n");
    csv_reader r(is);
    std::vector<std::string> fields;
    ASSERT_TRUE(r.next_row(fields));
    EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
    ASSERT_TRUE(r.next_row(fields));
    EXPECT_EQ(fields, (std::vector<std::string>{"c", "d"}));
    ASSERT_TRUE(r.next_row(fields));
    EXPECT_EQ(fields, (std::vector<std::string>{"e", "f"}));
    EXPECT_FALSE(r.next_row(fields));
    EXPECT_EQ(r.rows_read(), 3u);
}

TEST(CsvWriterReaderTest, RoundTripThroughStream) {
    std::stringstream stream;
    csv_writer w(stream);
    const std::vector<std::vector<std::string>> rows{
        {"metric", "value"}, {"vrops_x", "1.5"}, {"with,comma", "\"q\""}};
    for (const auto& row : rows) w.write_row(row);

    csv_reader r(stream);
    std::vector<std::string> fields;
    for (const auto& expected : rows) {
        ASSERT_TRUE(r.next_row(fields));
        EXPECT_EQ(fields, expected);
    }
    EXPECT_FALSE(r.next_row(fields));
}

}  // namespace
}  // namespace sci
