// Tests for workload/population: the standing fleet + churn construction.

#include "workload/population.hpp"

#include <gtest/gtest.h>

#include <set>

#include "simcore/error.hpp"
#include "workload/flavor_mix.hpp"

namespace sci {
namespace {

struct pop_fixture {
    flavor_catalog catalog;
    flavor_mix mix;
    lifetime_model lifetimes{42};

    pop_fixture() : mix(flavor_mix::standard(catalog)) {}

    population build(population_config config) {
        vm_registry registry;
        return build_and_keep(config, registry);
    }

    population build_and_keep(population_config config, vm_registry& registry) {
        return build_population(config, catalog, mix, lifetimes, registry);
    }
};

TEST(PopulationTest, InitialPopulationSize) {
    pop_fixture fx;
    population_config config;
    config.initial_population = 500;
    const population pop = fx.build(config);
    EXPECT_EQ(pop.initial.size(), 500u);
}

TEST(PopulationTest, InitialVmsAliveAtWindowStart) {
    pop_fixture fx;
    population_config config;
    config.initial_population = 500;
    const population pop = fx.build(config);
    for (const vm_plan& plan : pop.initial) {
        EXPECT_LE(plan.created_at, 0);
        if (plan.deleted_at.has_value()) {
            EXPECT_GT(*plan.deleted_at, 0);  // deletions only inside window
            EXPECT_LT(*plan.deleted_at, observation_window);
        }
    }
}

TEST(PopulationTest, RegistryRecordsMatchPlans) {
    pop_fixture fx;
    vm_registry registry;
    population_config config;
    config.initial_population = 100;
    const population pop = fx.build_and_keep(config, registry);
    EXPECT_GE(registry.size(), 100u);
    for (const vm_plan& plan : pop.initial) {
        const vm_record& rec = registry.get(plan.vm);
        EXPECT_EQ(rec.created_at, plan.created_at);
        EXPECT_EQ(rec.state, vm_state::pending);
    }
}

TEST(PopulationTest, ChurnArrivalsInsideWindow) {
    pop_fixture fx;
    population_config config;
    config.initial_population = 1000;
    config.daily_churn_fraction = 0.02;
    const population pop = fx.build(config);
    // expected ~ 1000 * 0.02 * 30 = 600 arrivals
    EXPECT_GT(pop.arrivals.size(), 400u);
    EXPECT_LT(pop.arrivals.size(), 850u);
    sim_time last = -1;
    for (const vm_plan& plan : pop.arrivals) {
        EXPECT_GE(plan.created_at, 0);
        EXPECT_LT(plan.created_at, observation_window);
        EXPECT_GE(plan.created_at, last);  // Poisson stream is ordered
        last = plan.created_at;
        if (plan.deleted_at.has_value()) {
            EXPECT_GT(*plan.deleted_at, plan.created_at);
            EXPECT_LT(*plan.deleted_at, observation_window);
        }
    }
}

TEST(PopulationTest, ZeroChurnMeansNoArrivals) {
    pop_fixture fx;
    population_config config;
    config.initial_population = 100;
    config.daily_churn_fraction = 0.0;
    EXPECT_TRUE(fx.build(config).arrivals.empty());
}

TEST(PopulationTest, DeterministicForSameSeed) {
    pop_fixture fx;
    population_config config;
    config.initial_population = 200;
    config.seed = 99;
    const population a = fx.build(config);
    const population b = fx.build(config);
    ASSERT_EQ(a.initial.size(), b.initial.size());
    for (std::size_t i = 0; i < a.initial.size(); ++i) {
        EXPECT_EQ(a.initial[i].created_at, b.initial[i].created_at);
        EXPECT_EQ(a.initial[i].deleted_at, b.initial[i].deleted_at);
    }
    ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
}

TEST(PopulationTest, DifferentSeedsDiffer) {
    pop_fixture fx;
    population_config config;
    config.initial_population = 200;
    config.seed = 1;
    const population a = fx.build(config);
    config.seed = 2;
    const population b = fx.build(config);
    int same = 0;
    for (std::size_t i = 0; i < a.initial.size(); ++i) {
        if (a.initial[i].created_at == b.initial[i].created_at) ++same;
    }
    EXPECT_LT(same, 50);
}

TEST(PopulationTest, AgesAreResidualLifetimes) {
    pop_fixture fx;
    vm_registry registry;
    population_config config;
    config.initial_population = 2000;
    const population pop = fx.build_and_keep(config, registry);
    // age must never exceed the sampled lifetime: every VM that dies inside
    // the window dies after t = 0
    int long_lived = 0;
    for (const vm_plan& plan : pop.initial) {
        if (-plan.created_at > days(365)) ++long_lived;
    }
    // Figure 15: multi-year VMs exist in a standing population
    EXPECT_GT(long_lived, 0);
}

TEST(PopulationTest, ProjectsSpreadAcrossTenants) {
    pop_fixture fx;
    vm_registry registry;
    population_config config;
    config.initial_population = 2000;
    config.project_count = 50;
    fx.build_and_keep(config, registry);
    std::set<std::int32_t> projects;
    for (const vm_record& rec : registry.all()) {
        ASSERT_GE(rec.project.value(), 0);
        ASSERT_LT(rec.project.value(), 50);
        projects.insert(rec.project.value());
    }
    EXPECT_GT(projects.size(), 10u);  // Zipf-ish but not degenerate
}

TEST(PopulationTest, ValidationErrors) {
    pop_fixture fx;
    population_config config;
    config.initial_population = -1;
    EXPECT_THROW(fx.build(config), precondition_error);
    config.initial_population = 10;
    config.daily_churn_fraction = -0.1;
    EXPECT_THROW(fx.build(config), precondition_error);
    config.daily_churn_fraction = 0.0;
    config.project_count = 0;
    EXPECT_THROW(fx.build(config), precondition_error);
}

}  // namespace
}  // namespace sci
