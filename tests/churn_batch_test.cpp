// Determinism guard for batched churn-arrival placement: the event loop
// drains arrivals through the same speculate/commit pipeline as the
// initial population, so fixed-seed runs at SCI_THREADS ∈ {0, 1, 4} must
// produce bit-identical placements, stats, reports, and exported
// datasets — including a faulted run where crashes, maintenance windows
// and claim races land inside open batches.  The scenario is tuned
// (hourly scrape interval, dense churn) so batches span several distinct
// arrival timestamps: the straddle tests prove that batches stayed open
// across deletions and fault events and that the shrink-version
// invalidation actually fired, i.e. the interesting paths are exercised
// rather than vacuously green.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "data/dataset.hpp"

namespace sci {
namespace {

std::unique_ptr<sim_engine> run_engine(unsigned threads, bool faulted) {
    engine_config config;
    config.scenario.scale = 0.02;  // ~36 nodes, ~960 VMs
    config.scenario.seed = 11;
    // hourly scrapes + ~5x the paper's churn rate: batches group several
    // arrivals per interval and stay open across intervening events
    config.sampling_interval = 3600;
    config.population.daily_churn_fraction = 0.10;
    config.threads = threads;
    if (faulted) {
        config.fault.host_crash_rate_per_day = 0.05;
        config.fault.claim_failure_probability = 0.02;
        config.fault.maintenance_windows = 2;
    }
    auto engine = std::make_unique<sim_engine>(config);
    engine->run();
    return engine;
}

/// Three engines at 0/1/4 threads (expensive; built once).
std::vector<std::unique_ptr<sim_engine>>& default_runs() {
    static auto* runs = [] {
        auto* v = new std::vector<std::unique_ptr<sim_engine>>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            v->push_back(run_engine(threads, false));
        }
        return v;
    }();
    return *runs;
}

/// Same, with crashes / maintenance / claim races injected in-window.
std::vector<std::unique_ptr<sim_engine>>& faulted_runs() {
    static auto* runs = [] {
        auto* v = new std::vector<std::unique_ptr<sim_engine>>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            v->push_back(run_engine(threads, true));
        }
        return v;
    }();
    return *runs;
}

void expect_stats_equal(const run_stats& a, const run_stats& b) {
    EXPECT_EQ(a.placements, b.placements);
    EXPECT_EQ(a.placement_failures, b.placement_failures);
    EXPECT_EQ(a.scheduler_retries, b.scheduler_retries);
    EXPECT_EQ(a.drs_migrations, b.drs_migrations);
    EXPECT_EQ(a.evacuations, b.evacuations);
    EXPECT_EQ(a.forced_fits, b.forced_fits);
    EXPECT_EQ(a.holistic_claim_rejections, b.holistic_claim_rejections);
    EXPECT_EQ(a.deletions, b.deletions);
    EXPECT_EQ(a.scrapes, b.scrapes);
    EXPECT_EQ(a.cross_bb_moves, b.cross_bb_moves);
    EXPECT_EQ(a.resizes, b.resizes);
    EXPECT_EQ(a.resize_failures, b.resize_failures);
    EXPECT_EQ(a.migration_seconds, b.migration_seconds);  // bitwise: ==
    EXPECT_EQ(a.max_migration_downtime_ms, b.max_migration_downtime_ms);
    EXPECT_EQ(a.speculative_placements, b.speculative_placements);
    EXPECT_EQ(a.speculation_misses, b.speculation_misses);
    EXPECT_EQ(a.window_batches, b.window_batches);
    EXPECT_EQ(a.window_speculations, b.window_speculations);
    EXPECT_EQ(a.window_speculative_placements, b.window_speculative_placements);
    EXPECT_EQ(a.window_speculation_misses, b.window_speculation_misses);
    EXPECT_EQ(a.window_speculation_invalidated, b.window_speculation_invalidated);
    // *_wall_ms are host timing, deliberately not compared
    EXPECT_EQ(a.recovery_batches, b.recovery_batches);
    EXPECT_EQ(a.recovery_speculations, b.recovery_speculations);
    EXPECT_EQ(a.recovery_speculative_placements,
              b.recovery_speculative_placements);
    EXPECT_EQ(a.recovery_speculation_misses, b.recovery_speculation_misses);
    EXPECT_EQ(a.recovery_speculation_invalidated,
              b.recovery_speculation_invalidated);
    EXPECT_EQ(a.recovery_speculation_cancelled,
              b.recovery_speculation_cancelled);
    EXPECT_EQ(a.rebalance_target_speculations, b.rebalance_target_speculations);
    EXPECT_EQ(a.rebalance_targets_used, b.rebalance_targets_used);
    EXPECT_EQ(a.rebalance_target_invalidated, b.rebalance_target_invalidated);
    EXPECT_EQ(a.host_crashes, b.host_crashes);
    EXPECT_EQ(a.crash_victims, b.crash_victims);
    EXPECT_EQ(a.ha_restarts, b.ha_restarts);
    EXPECT_EQ(a.ha_restart_failures, b.ha_restart_failures);
    EXPECT_EQ(a.migration_aborts, b.migration_aborts);
    EXPECT_EQ(a.maintenance_evacuations, b.maintenance_evacuations);
    EXPECT_EQ(a.wasted_migration_seconds, b.wasted_migration_seconds);
}

/// The serial-reference assertion: thread-pool runs compared VM-by-VM
/// against the SCI_THREADS=0 run.
void expect_placements_equal(const sim_engine& serial, const sim_engine& pool) {
    const auto a = serial.vms().all();
    const auto b = pool.vms().all();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].state, b[i].state) << "vm " << i;
        ASSERT_EQ(a[i].placed_bb, b[i].placed_bb) << "vm " << i;
        ASSERT_EQ(a[i].placed_node, b[i].placed_node) << "vm " << i;
        ASSERT_EQ(a[i].migration_count, b[i].migration_count) << "vm " << i;
    }
}

TEST(ChurnBatchTest, VmPlacementsMatchSerialReference) {
    for (std::size_t i = 1; i < default_runs().size(); ++i) {
        expect_placements_equal(*default_runs()[0], *default_runs()[i]);
    }
}

TEST(ChurnBatchTest, FaultedVmPlacementsMatchSerialReference) {
    for (std::size_t i = 1; i < faulted_runs().size(); ++i) {
        expect_placements_equal(*faulted_runs()[0], *faulted_runs()[i]);
    }
}

TEST(ChurnBatchTest, StatsAreBitIdenticalAcrossThreadCounts) {
    for (std::size_t i = 1; i < default_runs().size(); ++i) {
        expect_stats_equal(default_runs()[0]->stats(), default_runs()[i]->stats());
        expect_stats_equal(faulted_runs()[0]->stats(), faulted_runs()[i]->stats());
    }
}

TEST(ChurnBatchTest, BatchesCommitArrivalsSpeculatively) {
    const run_stats& stats = default_runs()[0]->stats();
    EXPECT_GT(stats.window_batches, 0u);
    EXPECT_GT(stats.window_speculations, 0u);
    EXPECT_GT(stats.window_speculative_placements, 0u);
    EXPECT_LE(stats.window_speculative_placements, stats.window_speculations);
    // every speculated arrival either commits speculatively, misses, or
    // is dropped by an invalidation
    EXPECT_EQ(stats.window_speculations,
              stats.window_speculative_placements +
                  stats.window_speculation_misses +
                  stats.window_speculation_invalidated);
    // the span record matches the counters
    const auto& spans = default_runs()[0]->churn_batches();
    ASSERT_EQ(spans.size(), stats.window_batches);
    std::uint64_t speculated = 0;
    for (const sim_engine::churn_batch_span& s : spans) {
        EXPECT_LE(s.first, s.last);
        speculated += s.size;
    }
    EXPECT_EQ(speculated, stats.window_speculations);
}

TEST(ChurnBatchTest, ShrinksInvalidateOpenBatches) {
    // deletions land inside open batches, breaking the monotone-usage
    // precondition: the tail must re-speculate, not commit stale results
    EXPECT_GT(default_runs()[0]->stats().window_speculation_invalidated, 0u);
    EXPECT_GT(faulted_runs()[0]->stats().window_speculation_invalidated, 0u);
}

/// Does any batch span (size >= 2) stay open across an event of `kind`?
/// The batch is speculated when its first arrival commits, so an event
/// strictly inside (first, last] intervened while the batch was open.
bool any_batch_straddles(const sim_engine& engine, lifecycle_event_kind kind) {
    for (const sim_engine::churn_batch_span& s : engine.churn_batches()) {
        if (s.size < 2 || s.first == s.last) continue;
        for (const lifecycle_event& e : engine.events().between(s.first + 1,
                                                                s.last + 1)) {
            if (e.kind == kind) return true;
        }
    }
    return false;
}

TEST(ChurnBatchTest, BatchesStraddleDeletions) {
    EXPECT_TRUE(any_batch_straddles(*default_runs()[0],
                                    lifecycle_event_kind::remove));
    EXPECT_TRUE(any_batch_straddles(*faulted_runs()[0],
                                    lifecycle_event_kind::remove));
}

TEST(ChurnBatchTest, BatchesStraddleFaultEvents) {
    const sim_engine& faulted = *faulted_runs()[0];
    EXPECT_GT(faulted.stats().host_crashes, 0u);
    EXPECT_GT(faulted.stats().maintenance_evacuations, 0u);
    // crashes (sci::fault) and maintenance/decommission evacuations both
    // landed inside open batches
    EXPECT_TRUE(any_batch_straddles(faulted, lifecycle_event_kind::crash));
    EXPECT_TRUE(any_batch_straddles(faulted, lifecycle_event_kind::evacuate));
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t hash_string(const std::string& s) {
    return fnv1a(1469598103934665603ull, s.data(), s.size());
}

TEST(ChurnBatchTest, ReportHashesAreBitIdentical) {
    const std::uint64_t ref = hash_string(markdown_report(*default_runs()[0]));
    const std::uint64_t faulted_ref =
        hash_string(markdown_report(*faulted_runs()[0]));
    EXPECT_NE(ref, faulted_ref);  // the runs differ; only threads must not
    for (std::size_t i = 1; i < default_runs().size(); ++i) {
        EXPECT_EQ(ref, hash_string(markdown_report(*default_runs()[i])));
        EXPECT_EQ(faulted_ref, hash_string(markdown_report(*faulted_runs()[i])));
    }
}

/// Export dataset + events CSV and hash every produced file, in sorted
/// filename order, content and name both.
std::uint64_t hash_dataset_export(const sim_engine& engine,
                                  const std::filesystem::path& dir) {
    std::filesystem::remove_all(dir);
    export_dataset(engine.store(), dir);
    export_events_csv(engine.events(), dir / "events.csv");
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    std::uint64_t h = 1469598103934665603ull;
    for (const std::filesystem::path& file : files) {
        const std::string name = file.filename().string();
        h = fnv1a(h, name.data(), name.size());
        std::ifstream in(file, std::ios::binary);
        std::ostringstream body;
        body << in.rdbuf();
        const std::string s = body.str();
        h = fnv1a(h, s.data(), s.size());
    }
    std::filesystem::remove_all(dir);
    return h;
}

TEST(ChurnBatchTest, DatasetExportsAreBitIdentical) {
    const std::filesystem::path base = "cbtest_dataset";
    const std::uint64_t ref =
        hash_dataset_export(*default_runs()[0], base / "t0");
    const std::uint64_t faulted_ref =
        hash_dataset_export(*faulted_runs()[0], base / "f0");
    for (std::size_t i = 1; i < default_runs().size(); ++i) {
        EXPECT_EQ(ref, hash_dataset_export(*default_runs()[i],
                                           base / ("t" + std::to_string(i))));
        EXPECT_EQ(faulted_ref,
                  hash_dataset_export(*faulted_runs()[i],
                                      base / ("f" + std::to_string(i))));
    }
    std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace sci
