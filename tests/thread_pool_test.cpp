// Unit tests for the simcore worker pool: coverage of the index range,
// deterministic sharding, exception propagation, nested-call safety, and
// the serial (0-worker) fallback.

#include "simcore/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "simcore/error.hpp"

namespace sci {
namespace {

TEST(ThreadPoolTest, EmptyRangeDoesNotInvokeTask) {
    thread_pool pool(4);
    std::atomic<int> calls{0};
    pool.parallel_for(0, 0, [&](unsigned, std::size_t, std::size_t) { ++calls; });
    pool.parallel_for(7, 7, [&](unsigned, std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, RangeSmallerThanWorkerCountCoversEachIndexOnce) {
    thread_pool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallel_for(0, 3, [&](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, LargeRangeCoversEachIndexOnce) {
    thread_pool pool(4);
    constexpr std::size_t n = 10007;  // prime: uneven shards
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(0, n, [&](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ShardHelperPartitionsContiguously) {
    constexpr unsigned count = 5;
    std::size_t expect_begin = 3;
    std::size_t covered = 0;
    for (unsigned i = 0; i < count; ++i) {
        const auto [lo, hi] = thread_pool::shard(3, 45, i, count);
        EXPECT_EQ(lo, expect_begin);  // contiguous, in shard order
        EXPECT_LE(lo, hi);
        covered += hi - lo;
        expect_begin = hi;
    }
    EXPECT_EQ(expect_begin, 45u);
    EXPECT_EQ(covered, 42u);
    // shard boundaries depend only on (range, count) — never on workers
    const auto again = thread_pool::shard(3, 45, 2, count);
    EXPECT_EQ(again, thread_pool::shard(3, 45, 2, count));
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToCaller) {
    thread_pool pool(4);
    EXPECT_THROW(
        pool.parallel_for(0, 100,
                          [](unsigned, std::size_t begin, std::size_t) {
                              if (begin == 0) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // the pool stays usable after a failed job
    std::atomic<std::size_t> done{0};
    pool.parallel_for(0, 100, [&](unsigned, std::size_t begin, std::size_t end) {
        done += end - begin;
    });
    EXPECT_EQ(done.load(), 100u);
}

TEST(ThreadPoolTest, LowestWorkerExceptionWinsWhenAllThrow) {
    thread_pool pool(4);
    try {
        pool.parallel_for(0, 4, [](unsigned worker, std::size_t, std::size_t) {
            throw std::runtime_error("worker-" + std::to_string(worker));
        });
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "worker-0");
    }
}

TEST(ThreadPoolTest, NestedParallelForSerializesInsteadOfDeadlocking) {
    thread_pool pool(2);
    std::atomic<std::size_t> inner_total{0};
    pool.parallel_for(0, 2, [&](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            pool.parallel_for(0, 10,
                              [&](unsigned, std::size_t b, std::size_t e) {
                                  inner_total += e - b;
                              });
        }
    });
    EXPECT_EQ(inner_total.load(), 20u);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnCaller) {
    thread_pool pool(0);
    EXPECT_EQ(pool.worker_count(), 0u);
    const std::thread::id caller = std::this_thread::get_id();
    std::size_t covered = 0;
    pool.parallel_for(5, 25, [&](unsigned worker, std::size_t begin, std::size_t end) {
        EXPECT_EQ(worker, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        covered += end - begin;
    });
    EXPECT_EQ(covered, 20u);
}

TEST(ThreadPoolTest, ConcurrentExternalCallersAreSerialized) {
    thread_pool pool(2);
    std::atomic<std::size_t> total{0};
    std::vector<std::thread> callers;
    for (int c = 0; c < 4; ++c) {
        callers.emplace_back([&] {
            for (int round = 0; round < 8; ++round) {
                pool.parallel_for(
                    0, 100, [&](unsigned, std::size_t begin, std::size_t end) {
                        total += end - begin;
                    });
            }
        });
    }
    for (std::thread& th : callers) th.join();
    EXPECT_EQ(total.load(), 4u * 8u * 100u);
}

TEST(ThreadPoolTest, EnvThreadsParsesSciThreads) {
    ::setenv("SCI_THREADS", "6", 1);
    EXPECT_EQ(thread_pool::env_threads(), 6u);
    ::setenv("SCI_THREADS", "0", 1);
    EXPECT_EQ(thread_pool::env_threads(), 0u);
    ::setenv("SCI_THREADS", "garbage", 1);
    EXPECT_EQ(thread_pool::env_threads(), 0u);
    ::unsetenv("SCI_THREADS");
    EXPECT_EQ(thread_pool::env_threads(), 0u);
}

TEST(ThreadPoolTest, ShardRejectsInvalidArguments) {
    EXPECT_THROW(thread_pool::shard(0, 10, 0, 0), precondition_error);
    EXPECT_THROW(thread_pool::shard(0, 10, 3, 3), precondition_error);
}

}  // namespace
}  // namespace sci
