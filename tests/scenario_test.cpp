// Tests for core/scenario: the regional and global fleet presets.

#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <map>

#include "simcore/error.hpp"
#include "workload/calibration.hpp"

namespace sci {
namespace {

TEST(RegionalScenarioTest, ScalesNodeAndVmCounts) {
    scenario_config config;
    config.scale = 0.1;
    const scenario sc = make_regional_scenario(config);
    // paper region 9: 751 + 1072 = 1823 nodes at scale 1
    EXPECT_NEAR(static_cast<double>(sc.infrastructure.node_count()), 182.0, 15.0);
    EXPECT_EQ(sc.target_vm_population,
              static_cast<int>(calibration::regional_vms * 0.1));
}

TEST(RegionalScenarioTest, FullScaleMatchesPaperRegion) {
    scenario_config config;
    config.scale = 1.0;
    const scenario sc = make_regional_scenario(config);
    EXPECT_NEAR(static_cast<double>(sc.infrastructure.node_count()), 1823.0, 60.0);
    EXPECT_EQ(sc.target_vm_population, calibration::regional_vms);
}

TEST(RegionalScenarioTest, TwoDcsInTwoAzs) {
    const scenario sc = make_regional_scenario({});
    EXPECT_EQ(sc.infrastructure.region_count(), 1u);
    EXPECT_EQ(sc.infrastructure.az_count(), 2u);
    EXPECT_EQ(sc.infrastructure.dc_count(), 2u);
    // DC B is larger than DC A (1072 vs 751)
    const auto nodes_a = sc.infrastructure.nodes_of_dc(dc_id(0)).size();
    const auto nodes_b = sc.infrastructure.nodes_of_dc(dc_id(1)).size();
    EXPECT_GT(nodes_b, nodes_a);
}

TEST(RegionalScenarioTest, AllPurposesPresent) {
    const scenario sc = make_regional_scenario({});
    std::map<bb_purpose, int> nodes_by_purpose;
    for (const building_block& bb : sc.infrastructure.bbs()) {
        nodes_by_purpose[bb.purpose] += static_cast<int>(bb.nodes.size());
    }
    EXPECT_GT(nodes_by_purpose[bb_purpose::general], 0);
    EXPECT_GT(nodes_by_purpose[bb_purpose::hana], 0);
    EXPECT_GT(nodes_by_purpose[bb_purpose::dedicated_xl], 0);
    // general is the majority
    EXPECT_GT(nodes_by_purpose[bb_purpose::general],
              nodes_by_purpose[bb_purpose::hana]);
}

TEST(RegionalScenarioTest, ReserveCapacityCarvedOut) {
    const scenario sc = make_regional_scenario({});
    int reserve_nodes = 0;
    for (const building_block& bb : sc.infrastructure.bbs()) {
        if (bb.purpose == bb_purpose::reserve) {
            reserve_nodes += static_cast<int>(bb.nodes.size());
        }
    }
    // ~6% of the fleet is failover reserve (Section 5.1 explanation (ii))
    EXPECT_GT(reserve_nodes, 0);
    EXPECT_NEAR(static_cast<double>(reserve_nodes) /
                    static_cast<double>(sc.infrastructure.node_count()),
                0.06, 0.035);
}

TEST(RegionalScenarioTest, BbSizesWithinPaperRange) {
    scenario_config config;
    config.scale = 0.3;
    const scenario sc = make_regional_scenario(config);
    for (const building_block& bb : sc.infrastructure.bbs()) {
        EXPECT_GE(bb.nodes.size(),
                  static_cast<std::size_t>(calibration::bb_min_nodes));
        // leftover folding may exceed the cap by a handful of nodes
        EXPECT_LE(bb.nodes.size(),
                  static_cast<std::size_t>(calibration::bb_max_nodes) + 4);
    }
}

TEST(RegionalScenarioTest, HomogeneousHardwarePerBb) {
    const scenario sc = make_regional_scenario({});
    for (const building_block& bb : sc.infrastructure.bbs()) {
        for (node_id node : bb.nodes) {
            EXPECT_EQ(sc.infrastructure.node_profile(node).name, bb.profile.name);
        }
    }
}

TEST(RegionalScenarioTest, DeterministicForSeed) {
    scenario_config config;
    config.seed = 123;
    const scenario a = make_regional_scenario(config);
    const scenario b = make_regional_scenario(config);
    ASSERT_EQ(a.infrastructure.bb_count(), b.infrastructure.bb_count());
    for (std::size_t i = 0; i < a.infrastructure.bb_count(); ++i) {
        EXPECT_EQ(a.infrastructure.bbs()[i].nodes.size(),
                  b.infrastructure.bbs()[i].nodes.size());
        EXPECT_EQ(a.infrastructure.bbs()[i].purpose,
                  b.infrastructure.bbs()[i].purpose);
    }
}

TEST(RegionalScenarioTest, CatalogPopulated) {
    const scenario sc = make_regional_scenario({});
    EXPECT_GE(sc.catalog.size(), 15u);
    EXPECT_EQ(sc.mix.weights().size(), sc.catalog.size());
}

TEST(RegionalScenarioTest, RejectsNonPositiveScale) {
    scenario_config config;
    config.scale = 0.0;
    EXPECT_THROW(make_regional_scenario(config), precondition_error);
}

// --- Table 5 global fleet ---------------------------------------------------

TEST(GlobalScenarioTest, Has29DataCenters) {
    EXPECT_EQ(table5_datacenters().size(), 29u);
    const scenario sc = make_global_scenario();
    EXPECT_EQ(sc.infrastructure.dc_count(), 29u);
    EXPECT_EQ(sc.infrastructure.region_count(), 16u);  // region ids 1..16
}

TEST(GlobalScenarioTest, HypervisorCountsTrackTable5) {
    const scenario sc = make_global_scenario();
    std::size_t spec_index = 0;
    for (const dc_spec& spec : table5_datacenters()) {
        const datacenter& dc = sc.infrastructure.dcs()[spec_index++];
        const auto built = sc.infrastructure.nodes_of_dc(dc.id).size();
        // BB partitioning may drop a handful of leftover nodes per purpose
        EXPECT_LE(built, static_cast<std::size_t>(spec.hypervisors));
        EXPECT_GE(built, static_cast<std::size_t>(spec.hypervisors) * 95 / 100)
            << "region " << spec.region_id << " dc " << spec.dc_name;
    }
}

TEST(GlobalScenarioTest, TotalsMatchPaperSection3) {
    const scenario sc = make_global_scenario();
    long total_nodes = 0;
    long total_vms = 0;
    for (const dc_spec& spec : table5_datacenters()) {
        total_nodes += spec.hypervisors;
        total_vms += spec.vms;
    }
    // paper Section 3: >6,000 hypervisors platform-wide (the ">200,000
    // active VMs" figure exceeds the Table 5 snapshot, which sums to
    // ~162k — counts fluctuate between the text and the appendix)
    EXPECT_GT(total_nodes, 6000);
    EXPECT_GT(total_vms, 160000);
    EXPECT_EQ(sc.target_vm_population, total_vms);
    EXPECT_GT(sc.infrastructure.node_count(), 6000u * 95 / 100);
}

TEST(GlobalScenarioTest, StudiedRegionIsRegion9) {
    // region 9: 751 + 1072 = 1823 hypervisors, 47,116 VMs (~paper's
    // "1,800 hypervisors and 48,000 VMs")
    long nodes = 0, vms = 0;
    for (const dc_spec& spec : table5_datacenters()) {
        if (spec.region_id == 9) {
            nodes += spec.hypervisors;
            vms += spec.vms;
        }
    }
    EXPECT_EQ(nodes, 1823);
    EXPECT_EQ(vms, 47116);
}

}  // namespace
}  // namespace sci
