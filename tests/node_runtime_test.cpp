// Tests for hypervisor/node_runtime: reservation accounting and the
// proportional-share contention model behind Figures 8 and 9.

#include "hypervisor/node_runtime.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

flavor make_flavor(core_count vcpus, double ram_gib, double disk = 100.0) {
    return flavor{.id = flavor_id(0), .name = "f", .vcpus = vcpus,
                  .ram_mib = gib_to_mib(ram_gib), .disk_gib = disk};
}

hardware_profile gp_profile() { return profiles::general_purpose(); }

// --- reservation accounting -------------------------------------------------

TEST(NodeRuntimeTest, PlaceAndRemoveAccounting) {
    node_runtime node(node_id(0), gp_profile());
    const flavor f = make_flavor(8, 64);
    node.place(vm_id(1), f);
    EXPECT_EQ(node.vm_count(), 1u);
    EXPECT_TRUE(node.hosts(vm_id(1)));
    EXPECT_EQ(node.reserved_vcpus(), 8);
    EXPECT_EQ(node.reserved_ram_mib(), gib_to_mib(64));
    EXPECT_DOUBLE_EQ(node.reserved_disk_gib(), 100.0);

    node.remove(vm_id(1), f);
    EXPECT_EQ(node.vm_count(), 0u);
    EXPECT_EQ(node.reserved_vcpus(), 0);
    EXPECT_EQ(node.reserved_ram_mib(), 0);
}

TEST(NodeRuntimeTest, DuplicatePlaceThrows) {
    node_runtime node(node_id(0), gp_profile());
    const flavor f = make_flavor(2, 8);
    node.place(vm_id(1), f);
    EXPECT_THROW(node.place(vm_id(1), f), precondition_error);
}

TEST(NodeRuntimeTest, RemoveUnknownThrows) {
    node_runtime node(node_id(0), gp_profile());
    EXPECT_THROW(node.remove(vm_id(1), make_flavor(2, 8)), precondition_error);
}

TEST(NodeRuntimeTest, OvercommitRatio) {
    node_runtime node(node_id(0), gp_profile());  // 96 pcpus
    node.place(vm_id(1), make_flavor(96, 8));
    EXPECT_DOUBLE_EQ(node.cpu_overcommit(), 1.0);
    node.place(vm_id(2), make_flavor(192, 8));
    EXPECT_DOUBLE_EQ(node.cpu_overcommit(), 3.0);
}

TEST(NodeRuntimeTest, RamReservedRatio) {
    node_runtime node(node_id(0), gp_profile());  // 1024 GiB
    node.place(vm_id(1), make_flavor(2, 512));
    EXPECT_DOUBLE_EQ(node.ram_reserved_ratio(), 0.5);
}

TEST(NodeRuntimeTest, FitsRespectsAllocationRatios) {
    node_runtime node(node_id(0), gp_profile());  // 96 cores, 1024 GiB
    // 96 * 4 = 384 vCPU budget at ratio 4
    node.place(vm_id(1), make_flavor(380, 16));
    EXPECT_TRUE(node.fits(make_flavor(4, 16), 4.0, 1.0));
    EXPECT_FALSE(node.fits(make_flavor(5, 16), 4.0, 1.0));
    // memory at ratio 1.0
    EXPECT_TRUE(node.fits(make_flavor(1, 1008), 4.0, 1.0));
    EXPECT_FALSE(node.fits(make_flavor(1, 1009), 4.0, 1.0));
}

TEST(NodeRuntimeTest, FitsChecksDisk) {
    node_runtime node(node_id(0), gp_profile());  // 7680 GiB datastore
    EXPECT_TRUE(node.fits(make_flavor(1, 1, 7680.0), 4.0, 1.0));
    EXPECT_FALSE(node.fits(make_flavor(1, 1, 7681.0), 4.0, 1.0));
}

TEST(NodeRuntimeTest, FitsRejectsBadRatios) {
    node_runtime node(node_id(0), gp_profile());
    EXPECT_THROW(node.fits(make_flavor(1, 1), 0.0, 1.0), precondition_error);
    EXPECT_THROW(node.fits(make_flavor(1, 1), 1.0, -1.0), precondition_error);
}

TEST(NodeRuntimeTest, AcceptingFlagDefaultsTrue) {
    node_runtime node(node_id(0), gp_profile());
    EXPECT_TRUE(node.accepting());
    node.set_accepting(false);
    EXPECT_FALSE(node.accepting());
}

// --- contention model --------------------------------------------------------

TEST(EvaluateNodeTest, NoContentionUnderCapacity) {
    node_demand demand;
    demand.add(48.0, gib_to_mib(512), 1000.0, 2000.0, 500.0);
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_DOUBLE_EQ(snap.cpu_util_pct, 50.0);  // 48 / 96
    EXPECT_DOUBLE_EQ(snap.cpu_contention_pct, 0.0);
    EXPECT_DOUBLE_EQ(snap.cpu_ready_ms, 0.0);
    EXPECT_DOUBLE_EQ(snap.mem_usage_pct, 50.0);  // 512 / 1024
    EXPECT_DOUBLE_EQ(snap.tx_kbps, 1000.0);
    EXPECT_DOUBLE_EQ(snap.rx_kbps, 2000.0);
    EXPECT_DOUBLE_EQ(snap.storage_used_gib, 500.0);
}

TEST(EvaluateNodeTest, ProportionalShareContention) {
    // demand 120 cores on 96 physical: 20% of requested time unsatisfied
    node_demand demand;
    demand.add(120.0, 0, 0.0, 0.0, 0.0);
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_DOUBLE_EQ(snap.cpu_util_pct, 100.0);
    EXPECT_NEAR(snap.cpu_contention_pct, 100.0 * 24.0 / 120.0, 1e-9);
    EXPECT_NEAR(snap.cpu_ready_ms, (24.0 / 120.0) * 300.0 * 1000.0, 1e-6);
}

TEST(EvaluateNodeTest, ContentionMatchesPaperScale) {
    // the paper's 40% contention: vCPU waits 40% of observed time
    // demand / capacity = 1 / (1 - 0.4)
    node_demand demand;
    demand.add(96.0 / 0.6, 0, 0.0, 0.0, 0.0);
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_NEAR(snap.cpu_contention_pct, 40.0, 1e-9);
}

TEST(EvaluateNodeTest, ReadyTimeBoundedByInterval) {
    node_demand demand;
    demand.add(10000.0, 0, 0.0, 0.0, 0.0);  // absurd oversubscription
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_LE(snap.cpu_ready_ms, 300.0 * 1000.0);
    EXPECT_LE(snap.cpu_contention_pct, 100.0);
}

TEST(EvaluateNodeTest, ExactCapacityIsNotContended) {
    node_demand demand;
    demand.add(96.0, 0, 0.0, 0.0, 0.0);
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_DOUBLE_EQ(snap.cpu_util_pct, 100.0);
    EXPECT_DOUBLE_EQ(snap.cpu_contention_pct, 0.0);
}

TEST(EvaluateNodeTest, NetworkClampedToNicCapacity) {
    node_demand demand;
    demand.add(1.0, 0, node_nic_capacity_kbps * 2.0, node_nic_capacity_kbps * 3.0,
               0.0);
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_DOUBLE_EQ(snap.tx_kbps, node_nic_capacity_kbps);
    EXPECT_DOUBLE_EQ(snap.rx_kbps, node_nic_capacity_kbps);
}

TEST(EvaluateNodeTest, StorageClampedToDatastore) {
    node_demand demand;
    demand.add(1.0, 0, 0.0, 0.0, 1e9);
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_DOUBLE_EQ(snap.storage_used_gib, gp_profile().storage_gib);
}

TEST(EvaluateNodeTest, MemoryPercentClamped) {
    node_demand demand;
    demand.add(1.0, gib_to_mib(5000), 0.0, 0.0, 0.0);  // > 1024 GiB capacity
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_DOUBLE_EQ(snap.mem_usage_pct, 100.0);
}

TEST(EvaluateNodeTest, RejectsBadArguments) {
    node_demand demand;
    EXPECT_THROW(evaluate_node(gp_profile(), demand, 0), precondition_error);
    EXPECT_THROW(evaluate_node(hardware_profile{}, demand, 300),
                 precondition_error);
}

// --- QoS CPU pinning (paper §8 future work) ---------------------------------

TEST(EvaluateNodeTest, PinnedCoresShrinkSharedPool) {
    node_demand demand;
    demand.add(60.0, 0, 0.0, 0.0, 0.0);  // shared demand
    demand.pinned_cores = 48.0;          // pinned reservations
    // shared pool = 96 - 48 = 48 cores, demand 60 -> contention among shared
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_NEAR(snap.cpu_contention_pct, 100.0 * 12.0 / 60.0, 1e-9);
    // util counts pinned cores as fully used
    EXPECT_DOUBLE_EQ(snap.cpu_util_pct, 100.0);
}

TEST(EvaluateNodeTest, PinnedVmsAreExemptFromContention) {
    // same total demand but all pinned: no shared contention at all
    node_demand demand;
    demand.pinned_cores = 90.0;
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_DOUBLE_EQ(snap.cpu_contention_pct, 0.0);
    EXPECT_NEAR(snap.cpu_util_pct, 90.0 / 96.0 * 100.0, 1e-9);
}

TEST(EvaluateNodeTest, FullyPinnedNodeContendsAllSharedDemand) {
    node_demand demand;
    demand.pinned_cores = 96.0;
    demand.add(10.0, 0, 0.0, 0.0, 0.0);
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_DOUBLE_EQ(snap.cpu_contention_pct, 100.0);
    EXPECT_DOUBLE_EQ(snap.cpu_ready_ms, 300.0 * 1000.0);
}

TEST(EvaluateNodeTest, PinnedDemandBeyondCapacityClamped) {
    node_demand demand;
    demand.pinned_cores = 500.0;
    const node_snapshot snap = evaluate_node(gp_profile(), demand, 300);
    EXPECT_DOUBLE_EQ(snap.cpu_util_pct, 100.0);
}

TEST(NodeDemandTest, AddAccumulates) {
    node_demand d;
    d.add(2.0, 100, 10.0, 20.0, 1.0);
    d.add(3.0, 200, 30.0, 40.0, 2.0);
    EXPECT_DOUBLE_EQ(d.cpu_cores, 5.0);
    EXPECT_EQ(d.mem_mib, 300);
    EXPECT_DOUBLE_EQ(d.tx_kbps, 40.0);
    EXPECT_DOUBLE_EQ(d.rx_kbps, 60.0);
    EXPECT_DOUBLE_EQ(d.storage_gib, 3.0);
    EXPECT_EQ(d.vm_count, 2);
}

}  // namespace
}  // namespace sci
