// Determinism guard for multi-region scale-out: every region of a
// region_set must be bit-identical to running that region alone with the
// same derived seed — at any shared-pool worker count and any region
// count — and the cross-region aggregation (merged run_stats, combined
// manifest, fleet-wide daily aggregates) must equal the same merge
// applied to the solo runs, byte for byte.  The runs are faulted (host
// crashes + migration aborts) so the HA batching and abort accounting
// paths are covered, not just the steady state.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "harness/harness.hpp"
#include "multiregion/region_set.hpp"
#include "simcore/rng.hpp"

namespace sci {
namespace {

constexpr std::size_t max_regions = 4;

engine_config base_config() {
    engine_config config;
    config.scenario.scale = 0.02;  // ~36 nodes, ~960 VMs per region
    config.scenario.seed = 29;
    config.population.seed = 29;
    config.sampling_interval = 900;
    config.fault.host_crash_rate_per_day = 0.003;
    config.fault.migration_abort_probability = 0.05;
    config.threads = 0;  // solo baseline runs serially; region engines
                         // use the set's shared pool instead
    return config;
}

/// Solo baselines: region r's exact config, run alone (expensive; built
/// once and shared across every comparison below).
const std::vector<std::unique_ptr<sim_engine>>& solo_runs() {
    static auto* runs = [] {
        auto* v = new std::vector<std::unique_ptr<sim_engine>>();
        for (const region_spec& spec :
             make_region_specs(base_config(), max_regions)) {
            v->push_back(std::make_unique<sim_engine>(spec.config));
            v->back()->run();
        }
        return v;
    }();
    return *runs;
}

/// Finished region_sets keyed by (region count, pool threads); each is
/// run exactly once and reused by every case that needs it.
region_set& set_for(std::size_t regions, unsigned threads) {
    static auto* cache =
        new std::map<std::pair<std::size_t, unsigned>,
                     std::unique_ptr<region_set>>();
    auto& slot = (*cache)[{regions, threads}];
    if (slot == nullptr) {
        slot = std::make_unique<region_set>(
            make_region_specs(base_config(), regions), threads);
        slot->run();
    }
    return *slot;
}

void expect_region_matches_solo(const sim_engine& region,
                                const sim_engine& solo,
                                const std::string& label) {
    EXPECT_EQ(harness::stats_fingerprint(region.stats()),
              harness::stats_fingerprint(solo.stats()))
        << label;
    EXPECT_EQ(harness::events_fingerprint(region.events()),
              harness::events_fingerprint(solo.events()))
        << label;
    EXPECT_EQ(region.events().size(), solo.events().size()) << label;
    EXPECT_EQ(region.stats().placements, solo.stats().placements) << label;
    EXPECT_EQ(region.stats().drs_migrations, solo.stats().drs_migrations)
        << label;
    EXPECT_EQ(region.stats().host_crashes, solo.stats().host_crashes)
        << label;
    EXPECT_EQ(region.store().total_samples(), solo.store().total_samples())
        << label;
    EXPECT_EQ(region.store().series_count(), solo.store().series_count())
        << label;
}

TEST(MultiRegionTest, RegionsAreBitIdenticalToSoloRuns) {
    const auto& solo = solo_runs();
    for (const std::size_t regions : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
        for (const unsigned threads : {0u, 1u, 4u}) {
            region_set& set = set_for(regions, threads);
            ASSERT_EQ(set.region_count(), regions);
            for (std::size_t r = 0; r < regions; ++r) {
                std::ostringstream label;
                label << "regions=" << regions << " threads=" << threads
                      << " region=" << r;
                expect_region_matches_solo(set.region(r), *solo[r],
                                           label.str());
            }
        }
    }
}

TEST(MultiRegionTest, MergedStatsEqualSumOfSoloRuns) {
    const auto& solo = solo_runs();
    std::vector<run_stats> solo_stats;
    for (const auto& engine : solo) solo_stats.push_back(engine->stats());
    const run_stats expected = merge_run_stats(solo_stats);
    const run_stats merged = set_for(max_regions, 4).merged_stats();
    EXPECT_EQ(harness::stats_fingerprint(merged),
              harness::stats_fingerprint(expected));
    EXPECT_EQ(merged.placements, expected.placements);
    EXPECT_EQ(merged.deletions, expected.deletions);
    EXPECT_EQ(merged.drs_migrations, expected.drs_migrations);
    EXPECT_EQ(merged.host_crashes, expected.host_crashes);
    EXPECT_EQ(merged.ha_restarts, expected.ha_restarts);
    EXPECT_EQ(merged.migration_aborts, expected.migration_aborts);
    EXPECT_EQ(merged.scrapes, expected.scrapes);
    EXPECT_EQ(merged.max_migration_downtime_ms,
              expected.max_migration_downtime_ms);
}

std::string file_bytes(const std::filesystem::path& file) {
    std::ifstream in(file, std::ios::binary);
    EXPECT_TRUE(in.good()) << file;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(MultiRegionTest, AggregatedExportsAreByteIdenticalToMergedSoloExports) {
    const auto& solo = solo_runs();
    const std::filesystem::path base =
        std::filesystem::temp_directory_path() / "sci_multiregion_test";
    const std::filesystem::path set_dir = base / "set";
    const std::filesystem::path solo_dir = base / "solo";
    std::filesystem::remove_all(base);

    region_set& set = set_for(max_regions, 4);
    const region_export_report report = set.export_datasets(set_dir);
    EXPECT_EQ(report.per_region.size(), max_regions);
    EXPECT_GT(report.combined.daily_rows, 0u);

    // The same merge applied to the solo runs' exports must reproduce the
    // region_set's cross-region files byte for byte.
    std::vector<std::string> names;
    for (std::size_t r = 0; r < max_regions; ++r) {
        names.push_back(set.spec(r).name);
        export_dataset(solo[r]->store(), solo_dir / names.back());
    }
    merge_region_exports(solo_dir, names);

    EXPECT_EQ(file_bytes(set_dir / "manifest.csv"),
              file_bytes(solo_dir / "manifest.csv"));
    EXPECT_EQ(file_bytes(set_dir / "fleet_daily.csv"),
              file_bytes(solo_dir / "fleet_daily.csv"));
    // and each per-region export equals the solo run's export
    for (const std::string& name : names) {
        EXPECT_EQ(file_bytes(set_dir / name / "manifest.csv"),
                  file_bytes(solo_dir / name / "manifest.csv"))
            << name;
    }
    std::filesystem::remove_all(base);
}

TEST(MultiRegionTest, DerivedRegionSeedsAreDistinct) {
    const auto specs = make_region_specs(base_config(), 8);
    for (std::size_t a = 0; a < specs.size(); ++a) {
        EXPECT_EQ(specs[a].config.scenario.seed,
                  derive_region_seed(base_config().scenario.seed, a));
        for (std::size_t b = a + 1; b < specs.size(); ++b) {
            EXPECT_NE(specs[a].config.scenario.seed,
                      specs[b].config.scenario.seed)
                << a << " vs " << b;
        }
    }
}

TEST(MultiRegionTest, RejectsRegionsSharingAMasterSeed) {
    std::vector<region_spec> specs = make_region_specs(base_config(), 2);
    specs[1].config.scenario.seed = specs[0].config.scenario.seed;
    // the explicit optional avoids ambiguity with the engine-adopting
    // overload (a literal 0 also converts to a null engine_builder)
    EXPECT_THROW(region_set(std::move(specs), std::optional<unsigned>{0u}),
                 precondition_error);
}

}  // namespace
}  // namespace sci
