// Tests for telemetry/query: the PromQL-inspired layer over the store.

#include "telemetry/query.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "simcore/error.hpp"

namespace sci {
namespace {

/// Store with 3 node series of host CPU utilization and one hourly ready
/// series, with known constants.
struct query_fixture {
    metric_store store{metric_registry::standard_catalog()};

    query_fixture() {
        add_node("n1", "bb-a", "dc-a", 10.0);
        add_node("n2", "bb-a", "dc-a", 30.0);
        add_node("n3", "bb-b", "dc-b", 80.0);
        const series_id ready = store.open_series(
            metric_names::host_cpu_ready,
            label_set{{"node", "n1"}, {"bb", "bb-a"}, {"dc", "dc-a"}});
        store.append(ready, hours(2) + 10, 5'000.0);
        store.append(ready, hours(2) + 400, 7'000.0);
    }

    void add_node(const char* node, const char* bb, const char* dc,
                  double util) {
        const series_id id = store.open_series(
            metric_names::host_cpu_core_utilization,
            label_set{{"node", node}, {"bb", bb}, {"dc", dc}});
        // two days of data: day 0 at util, day 1 at util + 10
        store.append(id, 100, util);
        store.append(id, 200, util);
        store.append(id, days(1) + 100, util + 10.0);
    }
};

TEST(QueryTest, DailyMeanMatrix) {
    query_fixture fx;
    const query_matrix m =
        query(fx.store).metric(metric_names::host_cpu_core_utilization).daily_mean();
    ASSERT_EQ(m.series.size(), 3u);
    EXPECT_EQ(m.step, seconds_per_day);
    EXPECT_EQ(m.steps(), static_cast<std::size_t>(observation_days));
    // series are label-identified; find n1
    for (const query_series& s : m.series) {
        if (s.labels.contains("node", "n1")) {
            EXPECT_DOUBLE_EQ(s.values[0], 10.0);
            EXPECT_DOUBLE_EQ(s.values[1], 20.0);
            EXPECT_TRUE(std::isnan(s.values[5]));
        }
    }
}

TEST(QueryTest, WhereFiltersSeries) {
    query_fixture fx;
    const query_matrix m = query(fx.store)
                               .metric(metric_names::host_cpu_core_utilization)
                               .where("dc", "dc-a")
                               .daily_mean();
    EXPECT_EQ(m.series.size(), 2u);
}

TEST(QueryTest, BucketStatSelection) {
    query_fixture fx;
    query q(fx.store);
    q.metric(metric_names::host_cpu_core_utilization).where("node", "n1");
    const query_matrix counts = q.stat(bucket_stat::count).run();
    ASSERT_EQ(counts.series.size(), 1u);
    EXPECT_DOUBLE_EQ(counts.series[0].values[0], 2.0);
    const query_matrix sums = q.stat(bucket_stat::sum).run();
    EXPECT_DOUBLE_EQ(sums.series[0].values[0], 20.0);
}

TEST(QueryTest, HourlyBuckets) {
    query_fixture fx;
    const query_matrix m = query(fx.store)
                               .metric(metric_names::host_cpu_ready)
                               .hourly()
                               .run();
    ASSERT_EQ(m.series.size(), 1u);
    EXPECT_EQ(m.step, seconds_per_hour);
    EXPECT_EQ(m.steps(), static_cast<std::size_t>(observation_days) * 24);
    EXPECT_DOUBLE_EQ(m.series[0].values[2], 6'000.0);  // mean of 5k and 7k
    EXPECT_TRUE(std::isnan(m.series[0].values[3]));
}

TEST(QueryTest, RunWithoutMetricThrows) {
    query_fixture fx;
    EXPECT_THROW(query(fx.store).run(), precondition_error);
}

TEST(QueryTest, WindowScalars) {
    query_fixture fx;
    const auto window = query(fx.store)
                            .metric(metric_names::host_cpu_core_utilization)
                            .where("node", "n2")
                            .window(bucket_stat::max);
    ASSERT_EQ(window.size(), 1u);
    EXPECT_DOUBLE_EQ(window[0].second, 40.0);
}

TEST(QueryMatrixTest, AggregateAcrossSeries) {
    query_fixture fx;
    const query_matrix m =
        query(fx.store).metric(metric_names::host_cpu_core_utilization).daily_mean();
    const query_series total = m.aggregate(agg_op::sum);
    EXPECT_DOUBLE_EQ(total.values[0], 120.0);  // 10 + 30 + 80
    const query_series avg = m.aggregate(agg_op::avg);
    EXPECT_DOUBLE_EQ(avg.values[0], 40.0);
    const query_series mx = m.aggregate(agg_op::max);
    EXPECT_DOUBLE_EQ(mx.values[0], 80.0);
    const query_series mn = m.aggregate(agg_op::min);
    EXPECT_DOUBLE_EQ(mn.values[0], 10.0);
    const query_series n = m.aggregate(agg_op::count);
    EXPECT_DOUBLE_EQ(n.values[0], 3.0);
    // all-NaN steps stay NaN
    EXPECT_TRUE(std::isnan(total.values[10]));
}

TEST(QueryMatrixTest, QuantileAggregate) {
    query_fixture fx;
    const query_matrix m =
        query(fx.store).metric(metric_names::host_cpu_core_utilization).daily_mean();
    const query_series median = m.aggregate(agg_op::quantile, 0.5);
    EXPECT_DOUBLE_EQ(median.values[0], 30.0);
    EXPECT_THROW(m.aggregate(agg_op::quantile, 0.0), precondition_error);
}

TEST(QueryMatrixTest, AggregateByLabel) {
    query_fixture fx;
    const query_matrix by_bb =
        query(fx.store)
            .metric(metric_names::host_cpu_core_utilization)
            .daily_mean()
            .aggregate_by("bb", agg_op::avg);
    ASSERT_EQ(by_bb.series.size(), 2u);
    // ordered map: bb-a first
    EXPECT_TRUE(by_bb.series[0].labels.contains("bb", "bb-a"));
    EXPECT_DOUBLE_EQ(by_bb.series[0].values[0], 20.0);  // (10+30)/2
    EXPECT_DOUBLE_EQ(by_bb.series[1].values[0], 80.0);
}

TEST(QueryMatrixTest, MapTransformsValues) {
    query_fixture fx;
    const query_matrix free_pct =
        query(fx.store)
            .metric(metric_names::host_cpu_core_utilization)
            .daily_mean()
            .map([](double util) { return 100.0 - util; });
    for (const query_series& s : free_pct.series) {
        if (s.labels.contains("node", "n3")) {
            EXPECT_DOUBLE_EQ(s.values[0], 20.0);
        }
    }
    EXPECT_THROW(free_pct.map(nullptr), precondition_error);
}

TEST(QueryMatrixTest, FilterByPredicate) {
    query_fixture fx;
    const query_matrix m =
        query(fx.store).metric(metric_names::host_cpu_core_utilization).daily_mean();
    const query_matrix only_bb_a = m.filter(
        [](const label_set& labels) { return labels.contains("bb", "bb-a"); });
    EXPECT_EQ(only_bb_a.series.size(), 2u);
}

TEST(QueryMatrixTest, ReduceTime) {
    query_fixture fx;
    const query_matrix m = query(fx.store)
                               .metric(metric_names::host_cpu_core_utilization)
                               .where("node", "n1")
                               .daily_mean();
    const auto reduced = m.reduce_time(agg_op::max);
    ASSERT_EQ(reduced.size(), 1u);
    EXPECT_DOUBLE_EQ(reduced[0].second, 20.0);  // day-1 mean
    const auto avg = m.reduce_time(agg_op::avg);
    EXPECT_DOUBLE_EQ(avg[0].second, 15.0);  // NaN days skipped
}

TEST(QueryMatrixTest, TopK) {
    query_fixture fx;
    const query_matrix m =
        query(fx.store).metric(metric_names::host_cpu_core_utilization).daily_mean();
    const query_matrix top1 = m.top_k(1, agg_op::sum);
    ASSERT_EQ(top1.series.size(), 1u);
    EXPECT_TRUE(top1.series[0].labels.contains("node", "n3"));
    EXPECT_EQ(m.top_k(10).series.size(), 3u);
}

TEST(AggregateValuesTest, NanHandling) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const std::vector<double> values{1.0, nan, 3.0};
    EXPECT_DOUBLE_EQ(aggregate_values(values, agg_op::sum, 0.5), 4.0);
    EXPECT_DOUBLE_EQ(aggregate_values(values, agg_op::count, 0.5), 2.0);
    const std::vector<double> all_nan{nan, nan};
    EXPECT_TRUE(std::isnan(aggregate_values(all_nan, agg_op::sum, 0.5)));
}

}  // namespace
}  // namespace sci
