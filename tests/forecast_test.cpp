// Tests for workload/forecast: the seasonal demand forecaster behind the
// proactive-scheduling ablation (§7 "ideally even proactive").

#include "workload/forecast.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "simcore/error.hpp"

namespace sci {
namespace {

/// Synthetic diurnal signal: level 50, business-hours sine, weekend dip —
/// the same structure the workload generator produces.
double synthetic_demand(sim_time t) {
    const double hour = static_cast<double>(second_of_day(t)) / 3600.0;
    double v = 50.0 * (1.0 + 0.4 * std::sin((hour - 8.0) / 24.0 * 2.0 *
                                            std::numbers::pi));
    if (is_weekend(t)) v *= 0.7;
    return v;
}

TEST(ForecastTest, StartsAtFirstObservation) {
    demand_forecaster fc;
    fc.observe(0, 42.0);
    EXPECT_DOUBLE_EQ(fc.level(), 42.0);
    EXPECT_DOUBLE_EQ(fc.forecast(hours(5)), 42.0);  // warm-up: level only
}

TEST(ForecastTest, LearnsSeasonalPattern) {
    demand_forecaster fc;
    // train on two weeks of hourly observations
    for (sim_time t = 0; t < days(14); t += seconds_per_hour) {
        fc.observe(t, synthetic_demand(t));
    }
    // predict the third week; error should be small relative to the signal
    double err = 0.0;
    int n = 0;
    for (sim_time t = days(14); t < days(21); t += seconds_per_hour) {
        err += std::abs(fc.forecast(t) - synthetic_demand(t));
        ++n;
    }
    const double mae = err / n;
    EXPECT_LT(mae, 5.0);  // < 10% of the level
}

TEST(ForecastTest, CapturesWeekendDip) {
    demand_forecaster fc;
    for (sim_time t = 0; t < days(21); t += seconds_per_hour) {
        fc.observe(t, synthetic_demand(t));
    }
    // Wednesday noon (weekday) vs Saturday noon of the following week
    const sim_time weekday_noon = days(21) + hours(12);
    const sim_time saturday_noon = days(24) + hours(12);
    ASSERT_FALSE(is_weekend(weekday_noon));
    ASSERT_TRUE(is_weekend(saturday_noon));
    EXPECT_GT(fc.forecast(weekday_noon), fc.forecast(saturday_noon) * 1.2);
}

TEST(ForecastTest, TracksLevelShift) {
    demand_forecaster fc;
    for (sim_time t = 0; t < days(7); t += seconds_per_hour) {
        fc.observe(t, 10.0);
    }
    EXPECT_NEAR(fc.forecast(days(7)), 10.0, 1.0);
    // demand quadruples; the EWMA should follow within two weeks.  Single
    // slots observed mid-jump keep a transient bias, so judge the mean
    // forecast over a full day.
    for (sim_time t = days(7); t < days(21); t += seconds_per_hour) {
        fc.observe(t, 40.0);
    }
    double mean_forecast = 0.0;
    for (int h = 0; h < 24; ++h) {
        mean_forecast += fc.forecast(days(21) + hours(h));
    }
    mean_forecast /= 24.0;
    EXPECT_NEAR(mean_forecast, 40.0, 6.0);
}

TEST(ForecastTest, ConstantSignalIsExact) {
    demand_forecaster fc;
    for (sim_time t = 0; t < days(10); t += seconds_per_hour) {
        fc.observe(t, 7.5);
    }
    for (sim_time t = days(10); t < days(11); t += seconds_per_hour) {
        EXPECT_NEAR(fc.forecast(t), 7.5, 1e-6);
    }
}

TEST(ForecastTest, MaeShrinksWithTraining) {
    demand_forecaster fc;
    for (sim_time t = 0; t < days(2); t += seconds_per_hour) {
        fc.observe(t, synthetic_demand(t));
    }
    const double early_mae = fc.mean_absolute_error();
    for (sim_time t = days(2); t < days(21); t += seconds_per_hour) {
        fc.observe(t, synthetic_demand(t));
    }
    // MAE includes early big errors, but the running average must drop
    EXPECT_LT(fc.mean_absolute_error(), early_mae);
}

TEST(ForecastTest, CountsObservations) {
    demand_forecaster fc;
    for (int i = 0; i < 5; ++i) fc.observe(i * 300, 1.0);
    EXPECT_EQ(fc.observation_count(), 5u);
}

TEST(ForecastTest, RejectsBadInput) {
    demand_forecaster fc;
    EXPECT_THROW(fc.observe(0, std::nan("")), precondition_error);
    forecaster_config bad;
    bad.level_alpha = 0.0;
    EXPECT_THROW(demand_forecaster{bad}, precondition_error);
    bad = forecaster_config{};
    bad.seasonal_alpha = 1.5;
    EXPECT_THROW(demand_forecaster{bad}, precondition_error);
}

}  // namespace
}  // namespace sci
