// Tests for workload/behavior: the calibrated synthetic workload models.
// These are the load-bearing substitutions for SAP's proprietary traces,
// so the tests pin the published statistics they target.

#include "workload/behavior.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "simcore/stats.hpp"
#include "workload/calibration.hpp"

namespace sci {
namespace {

flavor make_flavor(workload_class wc, core_count vcpus = 4,
                   double ram_gib = 32) {
    return flavor{.id = flavor_id(0), .name = "f", .vcpus = vcpus,
                  .ram_mib = gib_to_mib(ram_gib), .disk_gib = 100.0,
                  .wclass = wc};
}

TEST(SmoothHashNoiseTest, StaysInUnitInterval) {
    for (int i = 0; i < 1000; ++i) {
        const double v = smooth_hash_noise(42, i * 0.37);
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(SmoothHashNoiseTest, ContinuousAcrossBuckets) {
    // values just left/right of a bucket boundary must nearly agree
    for (int b = 1; b < 50; ++b) {
        const double left = smooth_hash_noise(7, b - 1e-9);
        const double right = smooth_hash_noise(7, b + 1e-9);
        EXPECT_NEAR(left, right, 1e-6);
    }
}

TEST(SmoothHashNoiseTest, DeterministicPerSeed) {
    EXPECT_DOUBLE_EQ(smooth_hash_noise(1, 3.5), smooth_hash_noise(1, 3.5));
    EXPECT_NE(smooth_hash_noise(1, 3.5), smooth_hash_noise(2, 3.5));
}

TEST(BehaviorModelTest, DeterministicPerVm) {
    const behavior_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    const vm_behavior a = model.sample(vm_id(5), f);
    const vm_behavior b = model.sample(vm_id(5), f);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_DOUBLE_EQ(a.cpu_mean_ratio, b.cpu_mean_ratio);
    EXPECT_DOUBLE_EQ(a.mem_mean_ratio, b.mem_mean_ratio);
    EXPECT_DOUBLE_EQ(a.tx_kbps_mean, b.tx_kbps_mean);
}

TEST(BehaviorModelTest, DifferentVmsDiffer) {
    const behavior_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    const vm_behavior a = model.sample(vm_id(1), f);
    const vm_behavior b = model.sample(vm_id(2), f);
    EXPECT_NE(a.seed, b.seed);
    EXPECT_NE(a.cpu_mean_ratio, b.cpu_mean_ratio);
}

TEST(BehaviorModelTest, CpuRatiosAlwaysInUnitInterval) {
    const behavior_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    for (int v = 0; v < 20; ++v) {
        const vm_behavior b = model.sample(vm_id(v), f);
        for (sim_time t = 0; t < days(2); t += 3600) {
            const double ratio = b.cpu_ratio_at(t);
            EXPECT_GE(ratio, 0.0);
            EXPECT_LE(ratio, 1.0);
        }
    }
}

TEST(BehaviorModelTest, RealizedCpuMeanTracksSampledMean) {
    const behavior_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    // pick a mid-band VM (clamping distorts the extremes)
    for (int v = 0; v < 200; ++v) {
        const vm_behavior b = model.sample(vm_id(v), f);
        if (b.cpu_mean_ratio < 0.3 || b.cpu_mean_ratio > 0.5 || b.bursty) continue;
        running_stats realized;
        for (sim_time t = 0; t < days(28); t += 900) {
            realized.add(b.cpu_ratio_at(t));
        }
        EXPECT_NEAR(realized.mean(), b.cpu_mean_ratio, 0.08)
            << "vm " << v << " target " << b.cpu_mean_ratio;
        return;  // one qualifying VM suffices
    }
    FAIL() << "no mid-band VM found";
}

TEST(BehaviorModelTest, Figure14aBandWeightsRespected) {
    const behavior_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    int under = 0;
    const int n = 5000;
    for (int v = 0; v < n; ++v) {
        if (model.sample(vm_id(v), f).cpu_mean_ratio < 0.70) ++under;
    }
    const double expected = calibration::cpu_low_band_weight +
                            calibration::cpu_mid_band_weight;
    EXPECT_NEAR(static_cast<double>(under) / n, expected, 0.03);
}

TEST(BehaviorModelTest, HanaMemoryResidencyHigh) {
    const behavior_model model(42);
    const flavor hana = make_flavor(workload_class::hana_db, 64, 2048);
    for (int v = 0; v < 100; ++v) {
        const vm_behavior b = model.sample(vm_id(v), hana);
        EXPECT_GE(b.mem_mean_ratio, calibration::hana_mem_ratio_lo);
        EXPECT_LT(b.mem_mean_ratio, calibration::hana_mem_ratio_hi);
        EXPECT_DOUBLE_EQ(b.diurnal_amplitude, calibration::hana_diurnal_amplitude);
        EXPECT_FALSE(b.bursty);  // HANA DB is never the bursty CI/CD tenant
    }
}

TEST(BehaviorModelTest, Figure14bMemoryBands) {
    const behavior_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    int under = 0, over = 0;
    const int n = 5000;
    for (int v = 0; v < n; ++v) {
        const double m = model.sample(vm_id(v), f).mem_mean_ratio;
        if (m < 0.70) ++under;
        if (m >= 0.85) ++over;
    }
    EXPECT_NEAR(static_cast<double>(under) / n,
                calibration::mem_low_band_weight, 0.03);
    EXPECT_NEAR(static_cast<double>(over) / n,
                calibration::mem_high_band_weight, 0.03);
}

TEST(BehaviorModelTest, WeekdayLoadExceedsWeekendLoad) {
    const behavior_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    running_stats weekday, weekend;
    for (int v = 0; v < 50; ++v) {
        const vm_behavior b = model.sample(vm_id(v), f);
        for (sim_time t = 0; t < days(28); t += 1800) {
            (is_weekend(t) ? weekend : weekday).add(b.cpu_ratio_at(t));
        }
    }
    EXPECT_GT(weekday.mean(), weekend.mean() * 1.2);
}

TEST(BehaviorModelTest, BurstyVmsSpike) {
    const behavior_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    for (int v = 0; v < 500; ++v) {
        const vm_behavior b = model.sample(vm_id(v), f);
        if (!b.bursty || b.cpu_mean_ratio > 0.3) continue;
        double peak = 0.0;
        for (sim_time t = 0; t < days(28); t += 300) {
            peak = std::max(peak, b.cpu_ratio_at(t));
        }
        EXPECT_GT(peak, b.cpu_mean_ratio * 1.8);
        return;
    }
    FAIL() << "no low-mean bursty VM in 500 samples";
}

TEST(BehaviorModelTest, MemoryGrowsForGrowingVms) {
    const behavior_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    for (int v = 0; v < 500; ++v) {
        const vm_behavior b = model.sample(vm_id(v), f);
        if (b.mem_growth_per_day <= 0.0 || b.mem_mean_ratio > 0.5) continue;
        const double young = b.mem_ratio_at(0, 0);
        const double old = b.mem_ratio_at(0, days(20));
        EXPECT_GT(old, young);
        return;
    }
    FAIL() << "no growing VM found";
}

TEST(BehaviorModelTest, NetworkScalesWithVcpus) {
    const behavior_model model(42);
    running_stats small_tx, large_tx;
    for (int v = 0; v < 300; ++v) {
        small_tx.add(
            model.sample(vm_id(v), make_flavor(workload_class::general_purpose, 2))
                .tx_kbps_mean);
        large_tx.add(
            model.sample(vm_id(v), make_flavor(workload_class::general_purpose, 32))
                .tx_kbps_mean);
    }
    EXPECT_GT(large_tx.mean(), small_tx.mean() * 4.0);
}

TEST(BehaviorModelTest, RxExceedsTxByAsymmetry) {
    const behavior_model model(42);
    const vm_behavior b =
        model.sample(vm_id(0), make_flavor(workload_class::general_purpose));
    EXPECT_NEAR(b.rx_kbps_mean / b.tx_kbps_mean, calibration::net_rx_asymmetry,
                1e-9);
}

TEST(BehaviorModelTest, DiskFillWithinBand) {
    const behavior_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    for (int v = 0; v < 200; ++v) {
        const double fill = model.sample(vm_id(v), f).disk_fill;
        EXPECT_GE(fill, calibration::disk_fill_lo);
        EXPECT_LT(fill, calibration::disk_fill_hi);
    }
}

// --- lifetimes (Figure 15) --------------------------------------------------

TEST(LifetimeModelTest, DeterministicPerVm) {
    const lifetime_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    EXPECT_EQ(model.sample(vm_id(3), f), model.sample(vm_id(3), f));
}

TEST(LifetimeModelTest, ClampedToDocumentedRange) {
    const lifetime_model model(42);
    for (auto wc : {workload_class::general_purpose, workload_class::hana_db,
                    workload_class::s4hana_app}) {
        const flavor f = make_flavor(wc);
        for (int v = 0; v < 2000; ++v) {
            const sim_duration lt = model.sample(vm_id(v), f);
            EXPECT_GE(lt, static_cast<sim_duration>(
                              calibration::lifetime_min_seconds));
            EXPECT_LE(lt, static_cast<sim_duration>(
                              calibration::lifetime_max_seconds));
        }
    }
}

TEST(LifetimeModelTest, SpansMinutesToYears) {
    const lifetime_model model(42);
    const flavor f = make_flavor(workload_class::general_purpose);
    sim_duration shortest = std::numeric_limits<sim_duration>::max();
    sim_duration longest = 0;
    for (int v = 0; v < 20000; ++v) {
        const sim_duration lt = model.sample(vm_id(v), f);
        shortest = std::min(shortest, lt);
        longest = std::max(longest, lt);
    }
    EXPECT_LT(shortest, hours(1));         // minutes-scale VMs exist
    EXPECT_GT(longest, days(365));         // years-scale VMs exist
}

TEST(LifetimeModelTest, HanaLongerLivedThanGeneralPurposeOnMedian) {
    const lifetime_model model(42);
    std::vector<double> gp, hana;
    for (int v = 0; v < 4001; ++v) {
        gp.push_back(static_cast<double>(
            model.sample(vm_id(v), make_flavor(workload_class::general_purpose))));
        hana.push_back(static_cast<double>(
            model.sample(vm_id(v), make_flavor(workload_class::hana_db))));
    }
    std::nth_element(gp.begin(), gp.begin() + 2000, gp.end());
    std::nth_element(hana.begin(), hana.begin() + 2000, hana.end());
    EXPECT_GT(hana[2000], gp[2000]);
}

}  // namespace
}  // namespace sci
