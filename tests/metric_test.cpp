// Tests for telemetry/metric: the Table 4 catalog.

#include "telemetry/metric.hpp"

#include <gtest/gtest.h>

#include <set>

#include "simcore/error.hpp"

namespace sci {
namespace {

TEST(MetricRegistryTest, StandardCatalogHasAllTable4Metrics) {
    const metric_registry reg = metric_registry::standard_catalog();
    EXPECT_EQ(reg.size(), 14u);
    using namespace metric_names;
    for (std::string_view name :
         {host_cpu_core_utilization, host_cpu_contention, host_cpu_ready,
          host_memory_usage, host_network_tx, host_network_rx,
          host_diskspace_usage, vm_cpu_usage_ratio, vm_memory_consumed_ratio,
          os_nodes_vcpus, os_nodes_vcpus_used, os_nodes_memory_mb,
          os_nodes_memory_mb_used, os_instances_total}) {
        EXPECT_TRUE(reg.find(name).has_value()) << name;
    }
}

TEST(MetricRegistryTest, NamesMatchProductionPrefixes) {
    const metric_registry reg = metric_registry::standard_catalog();
    for (const metric_def& def : reg.all()) {
        const bool vrops = def.name.starts_with("vrops_");
        const bool nova = def.name.starts_with("openstack_compute_");
        EXPECT_TRUE(vrops || nova) << def.name;
    }
}

TEST(MetricRegistryTest, SubsystemsMatchTable4) {
    const metric_registry reg = metric_registry::standard_catalog();
    EXPECT_EQ(reg.get(metric_names::vm_cpu_usage_ratio).subsystem,
              metric_subsystem::vm);
    EXPECT_EQ(reg.get(metric_names::host_cpu_contention).subsystem,
              metric_subsystem::compute_host);
    EXPECT_EQ(reg.get(metric_names::os_instances_total).subsystem,
              metric_subsystem::region);
}

TEST(MetricRegistryTest, UnitsAreSensible) {
    const metric_registry reg = metric_registry::standard_catalog();
    EXPECT_EQ(reg.get(metric_names::host_cpu_ready).unit,
              metric_unit::milliseconds);
    EXPECT_EQ(reg.get(metric_names::host_network_tx).unit, metric_unit::kbps);
    EXPECT_EQ(reg.get(metric_names::vm_memory_consumed_ratio).unit,
              metric_unit::ratio);
    EXPECT_EQ(reg.get(metric_names::os_nodes_memory_mb).unit, metric_unit::mib);
}

TEST(MetricRegistryTest, OnlyReadyTimeIsHourly) {
    const metric_registry reg = metric_registry::standard_catalog();
    std::set<std::string> hourly;
    for (const metric_def& def : reg.all()) {
        if (def.hourly) hourly.insert(def.name);
    }
    EXPECT_EQ(hourly, std::set<std::string>{
                          std::string(metric_names::host_cpu_ready)});
}

TEST(MetricRegistryTest, GetUnknownThrows) {
    const metric_registry reg = metric_registry::standard_catalog();
    EXPECT_THROW(reg.get("nonexistent_metric"), not_found_error);
}

TEST(MetricRegistryTest, AddRejectsDuplicatesAndEmpty) {
    metric_registry reg;
    reg.add({"m1", metric_subsystem::vm, metric_resource::cpu,
             metric_unit::ratio, "d"});
    EXPECT_THROW(reg.add({"m1", metric_subsystem::vm, metric_resource::cpu,
                          metric_unit::ratio, "d"}),
                 precondition_error);
    EXPECT_THROW(reg.add({"", metric_subsystem::vm, metric_resource::cpu,
                          metric_unit::ratio, "d"}),
                 precondition_error);
}

TEST(MetricEnumsTest, ToString) {
    EXPECT_EQ(to_string(metric_subsystem::compute_host), "Compute host");
    EXPECT_EQ(to_string(metric_resource::network), "Network");
    EXPECT_EQ(to_string(metric_unit::percentage), "percent");
    EXPECT_EQ(to_string(metric_unit::instances), "instances");
}

}  // namespace
}  // namespace sci
