// Tests for analysis/advisor: the overcommit recommendation engine (§7).

#include "analysis/advisor.hpp"

#include <gtest/gtest.h>

#include "sched/conductor.hpp"
#include "simcore/error.hpp"

namespace sci {
namespace {

struct advisor_fixture {
    fleet f;
    placement_service placement;
    metric_store store{metric_registry::standard_catalog()};
    bb_id cold_bb;
    bb_id hot_bb;

    advisor_fixture() {
        const region_id r = f.add_region("r");
        const dc_id dc = f.add_dc(f.add_az(r, "az"), "dc");
        cold_bb = f.add_bb(dc, "cold", bb_purpose::general,
                           profiles::general_purpose(), 2);
        hot_bb = f.add_bb(dc, "hot", bb_purpose::general,
                          profiles::general_purpose(), 2);
        for (const building_block& bb : f.bbs()) {
            placement.register_provider(
                bb.id, provider_inventory{f.bb_total_cores(bb.id),
                                          f.bb_total_memory(bb.id), 1000.0,
                                          4.0, 1.0});
        }
    }

    void feed(bb_id bb, double util_pct, double contention_pct) {
        for (node_id node : f.get(bb).nodes) {
            const label_set labels{{"node", f.get(node).name},
                                   {"bb", f.get(bb).name}};
            const series_id u = store.open_series(
                metric_names::host_cpu_core_utilization, labels);
            const series_id c =
                store.open_series(metric_names::host_cpu_contention, labels);
            for (int day = 0; day < 5; ++day) {
                store.append(u, days(day) + 100, util_pct);
                store.append(c, days(day) + 100, contention_pct);
            }
        }
    }
};

TEST(AdvisorTest, UnderutilizedBbGetsHigherRatio) {
    advisor_fixture fx;
    fx.feed(fx.cold_bb, 20.0, 0.0);  // 20% utilized, no contention
    const auto recs =
        recommend_cpu_overcommit(fx.store, fx.f, fx.placement, {});
    ASSERT_EQ(recs.size(), 1u);  // hot bb has no telemetry -> skipped
    EXPECT_EQ(recs[0].bb, fx.cold_bb);
    EXPECT_DOUBLE_EQ(recs[0].current_ratio, 4.0);
    EXPECT_NEAR(recs[0].observed_p95_util_pct, 20.0, 1e-9);
    // 4.0 * 70 / 20 = 14 -> clamped to max_ratio 8
    EXPECT_DOUBLE_EQ(recs[0].recommended_ratio, 8.0);
}

TEST(AdvisorTest, HotBbGetsLowerRatio) {
    advisor_fixture fx;
    fx.feed(fx.hot_bb, 95.0, 2.0);
    const auto recs =
        recommend_cpu_overcommit(fx.store, fx.f, fx.placement, {});
    ASSERT_EQ(recs.size(), 1u);
    // 4.0 * 70 / 95 ~ 2.95: recommend lowering the overcommit
    EXPECT_LT(recs[0].recommended_ratio, 4.0);
    EXPECT_GT(recs[0].recommended_ratio, 1.0);
}

TEST(AdvisorTest, ContentionGuardPreventsRaising) {
    advisor_fixture fx;
    // low mean utilization but heavy contention spikes: never raise
    fx.feed(fx.cold_bb, 30.0, 25.0);
    const auto recs =
        recommend_cpu_overcommit(fx.store, fx.f, fx.placement, {});
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_DOUBLE_EQ(recs[0].recommended_ratio, 4.0);  // capped at current
    EXPECT_DOUBLE_EQ(recs[0].observed_max_contention_pct, 25.0);
}

TEST(AdvisorTest, RatioBoundsRespected) {
    advisor_fixture fx;
    fx.feed(fx.cold_bb, 1.0, 0.0);
    advisor_config config;
    config.max_ratio = 6.0;
    const auto recs =
        recommend_cpu_overcommit(fx.store, fx.f, fx.placement, config);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_DOUBLE_EQ(recs[0].recommended_ratio, 6.0);
}

TEST(AdvisorTest, BbsWithoutTelemetrySkipped) {
    advisor_fixture fx;
    EXPECT_TRUE(
        recommend_cpu_overcommit(fx.store, fx.f, fx.placement, {}).empty());
}

TEST(AdvisorTest, ValidatesConfig) {
    advisor_fixture fx;
    advisor_config bad;
    bad.target_util_pct = 0.0;
    EXPECT_THROW(recommend_cpu_overcommit(fx.store, fx.f, fx.placement, bad),
                 precondition_error);
    bad = advisor_config{};
    bad.min_ratio = 5.0;
    bad.max_ratio = 2.0;
    EXPECT_THROW(recommend_cpu_overcommit(fx.store, fx.f, fx.placement, bad),
                 precondition_error);
}

}  // namespace
}  // namespace sci
