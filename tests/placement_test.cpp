// Tests for sched/placement: the inventory/allocation service behind
// Figure 2's placement API.

#include "sched/placement.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

flavor make_flavor(core_count vcpus, double ram_gib, double disk = 10.0) {
    return flavor{.id = flavor_id(0), .name = "f", .vcpus = vcpus,
                  .ram_mib = gib_to_mib(ram_gib), .disk_gib = disk};
}

provider_inventory small_inventory() {
    return provider_inventory{.total_pcpus = 96,
                              .total_ram_mib = gib_to_mib(512),
                              .total_disk_gib = 1000.0,
                              .cpu_allocation_ratio = 2.0,
                              .ram_allocation_ratio = 1.0};
}

TEST(PlacementServiceTest, RegisterAndIntrospect) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    EXPECT_TRUE(svc.has_provider(bb_id(0)));
    EXPECT_FALSE(svc.has_provider(bb_id(1)));
    EXPECT_EQ(svc.inventory(bb_id(0)).total_pcpus, 96);
    EXPECT_EQ(svc.usage(bb_id(0)).instances, 0);
    ASSERT_EQ(svc.providers().size(), 1u);
    EXPECT_EQ(svc.providers()[0], bb_id(0));
}

TEST(PlacementServiceTest, RegisterRejectsDuplicatesAndBadInput) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    EXPECT_THROW(svc.register_provider(bb_id(0), small_inventory()),
                 precondition_error);
    EXPECT_THROW(svc.register_provider(bb_id(), small_inventory()),
                 precondition_error);
    provider_inventory bad = small_inventory();
    bad.total_pcpus = 0;
    EXPECT_THROW(svc.register_provider(bb_id(1), bad), precondition_error);
    bad = small_inventory();
    bad.cpu_allocation_ratio = 0.0;
    EXPECT_THROW(svc.register_provider(bb_id(2), bad), precondition_error);
}

TEST(PlacementServiceTest, ClaimUpdatesUsage) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    svc.claim(vm_id(1), bb_id(0), make_flavor(8, 64));
    const provider_usage& u = svc.usage(bb_id(0));
    EXPECT_EQ(u.vcpus_used, 8);
    EXPECT_EQ(u.ram_used_mib, gib_to_mib(64));
    EXPECT_DOUBLE_EQ(u.disk_used_gib, 10.0);
    EXPECT_EQ(u.instances, 1);
    EXPECT_EQ(svc.allocation_of(vm_id(1)), bb_id(0));
    EXPECT_EQ(svc.allocation_count(), 1u);
}

TEST(PlacementServiceTest, CanFitRespectsAllocationRatios) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    // vCPU capacity = 96 * 2 = 192
    EXPECT_TRUE(svc.can_fit(bb_id(0), make_flavor(192, 1)));
    EXPECT_FALSE(svc.can_fit(bb_id(0), make_flavor(193, 1)));
    // RAM capacity = 512 GiB at ratio 1.0
    EXPECT_TRUE(svc.can_fit(bb_id(0), make_flavor(1, 512)));
    EXPECT_FALSE(svc.can_fit(bb_id(0), make_flavor(1, 513)));
    // disk
    EXPECT_TRUE(svc.can_fit(bb_id(0), make_flavor(1, 1, 1000.0)));
    EXPECT_FALSE(svc.can_fit(bb_id(0), make_flavor(1, 1, 1001.0)));
}

TEST(PlacementServiceTest, ClaimBeyondCapacityThrows) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    svc.claim(vm_id(1), bb_id(0), make_flavor(100, 256));
    EXPECT_THROW(svc.claim(vm_id(2), bb_id(0), make_flavor(100, 256)),
                 capacity_error);
    // failed claim leaves usage untouched
    EXPECT_EQ(svc.usage(bb_id(0)).instances, 1);
    EXPECT_FALSE(svc.allocation_of(vm_id(2)).has_value());
}

TEST(PlacementServiceTest, DoubleClaimSameVmThrows) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    svc.register_provider(bb_id(1), small_inventory());
    svc.claim(vm_id(1), bb_id(0), make_flavor(1, 1));
    EXPECT_THROW(svc.claim(vm_id(1), bb_id(1), make_flavor(1, 1)),
                 precondition_error);
}

TEST(PlacementServiceTest, ReleaseRestoresCapacity) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    const flavor f = make_flavor(100, 256);
    svc.claim(vm_id(1), bb_id(0), f);
    svc.release(vm_id(1), f);
    EXPECT_EQ(svc.usage(bb_id(0)).vcpus_used, 0);
    EXPECT_EQ(svc.usage(bb_id(0)).instances, 0);
    EXPECT_FALSE(svc.allocation_of(vm_id(1)).has_value());
    // capacity is reusable
    svc.claim(vm_id(2), bb_id(0), f);
}

TEST(PlacementServiceTest, ReleaseWithoutAllocationThrows) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    EXPECT_THROW(svc.release(vm_id(1), make_flavor(1, 1)), precondition_error);
}

TEST(PlacementServiceTest, MoveTransfersAllocation) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    svc.register_provider(bb_id(1), small_inventory());
    const flavor f = make_flavor(8, 64);
    svc.claim(vm_id(1), bb_id(0), f);
    svc.move(vm_id(1), bb_id(1), f);
    EXPECT_EQ(svc.allocation_of(vm_id(1)), bb_id(1));
    EXPECT_EQ(svc.usage(bb_id(0)).instances, 0);
    EXPECT_EQ(svc.usage(bb_id(1)).instances, 1);
}

TEST(PlacementServiceTest, MoveToSameProviderIsNoop) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    const flavor f = make_flavor(8, 64);
    svc.claim(vm_id(1), bb_id(0), f);
    svc.move(vm_id(1), bb_id(0), f);
    EXPECT_EQ(svc.usage(bb_id(0)).instances, 1);
}

TEST(PlacementServiceTest, FailedMoveRollsBack) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    svc.register_provider(bb_id(1), small_inventory());
    const flavor big = make_flavor(150, 400);
    svc.claim(vm_id(9), bb_id(1), big);  // destination nearly full
    const flavor f = make_flavor(100, 200);
    svc.claim(vm_id(1), bb_id(0), f);
    EXPECT_THROW(svc.move(vm_id(1), bb_id(1), f), capacity_error);
    // original allocation restored
    EXPECT_EQ(svc.allocation_of(vm_id(1)), bb_id(0));
    EXPECT_EQ(svc.usage(bb_id(0)).instances, 1);
    EXPECT_EQ(svc.usage(bb_id(1)).instances, 1);
}

TEST(PlacementServiceTest, ReclaimRestoresAboveShrunkCapacity) {
    // A fork arm can retune a provider's allocation ratio below its live
    // usage (overcommit sweep).  Rollback paths restore exactly what they
    // released, so the restore must not re-run the capacity check.
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    const flavor f = make_flavor(150, 256);  // fits at ratio 2.0 (192 vCPUs)
    svc.claim(vm_id(1), bb_id(0), f);
    provider_inventory shrunk = small_inventory();
    shrunk.cpu_allocation_ratio = 1.0;  // capacity 96 < 150 used
    svc.update_inventory(bb_id(0), shrunk);

    // a failed-resize rollback: release the old reservation, fail to grow,
    // put the old reservation back
    svc.release(vm_id(1), f);
    EXPECT_THROW(svc.claim(vm_id(1), bb_id(0), f), capacity_error);
    svc.reclaim(vm_id(1), bb_id(0), f);
    EXPECT_EQ(svc.allocation_of(vm_id(1)), bb_id(0));
    EXPECT_EQ(svc.usage(bb_id(0)).vcpus_used, 150);
}

TEST(PlacementServiceTest, FailedMoveRollsBackOntoShrunkProvider) {
    placement_service svc;
    svc.register_provider(bb_id(0), small_inventory());
    svc.register_provider(bb_id(1), small_inventory());
    const flavor f = make_flavor(150, 256);
    svc.claim(vm_id(1), bb_id(0), f);
    svc.claim(vm_id(9), bb_id(1), make_flavor(100, 200));  // destination busy
    provider_inventory shrunk = small_inventory();
    shrunk.cpu_allocation_ratio = 1.0;  // both providers now over/near cap
    svc.update_inventory(bb_id(0), shrunk);
    svc.update_inventory(bb_id(1), shrunk);
    // the move fails at the destination; the rollback must restore the
    // source reservation even though the source sits above capacity
    EXPECT_THROW(svc.move(vm_id(1), bb_id(1), f), capacity_error);
    EXPECT_EQ(svc.allocation_of(vm_id(1)), bb_id(0));
    EXPECT_EQ(svc.usage(bb_id(0)).instances, 1);
}

TEST(PlacementServiceTest, UnknownProviderThrows) {
    placement_service svc;
    EXPECT_THROW(svc.inventory(bb_id(0)), not_found_error);
    EXPECT_THROW(svc.usage(bb_id(0)), not_found_error);
    EXPECT_THROW(svc.can_fit(bb_id(0), make_flavor(1, 1)), not_found_error);
    EXPECT_THROW(svc.claim(vm_id(0), bb_id(0), make_flavor(1, 1)),
                 not_found_error);
}

TEST(PlacementServiceTest, ProvidersKeepRegistrationOrder) {
    placement_service svc;
    svc.register_provider(bb_id(5), small_inventory());
    svc.register_provider(bb_id(2), small_inventory());
    svc.register_provider(bb_id(9), small_inventory());
    ASSERT_EQ(svc.providers().size(), 3u);
    EXPECT_EQ(svc.providers()[0], bb_id(5));
    EXPECT_EQ(svc.providers()[1], bb_id(2));
    EXPECT_EQ(svc.providers()[2], bb_id(9));
}

}  // namespace
}  // namespace sci
