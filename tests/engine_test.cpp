// Integration tests: the full simulation engine over a small replica of
// the studied region.  One shared run is inspected by many tests; the
// invariants cover placement/accounting consistency, telemetry coverage,
// determinism, and every policy switch.

#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/figures.hpp"

namespace sci {
namespace {

engine_config small_config() {
    engine_config config;
    config.scenario.scale = 0.02;  // ~36 nodes, ~960 VMs
    config.scenario.seed = 11;
    config.sampling_interval = 900;
    return config;
}

/// Shared fully simulated engine (expensive; built once).
sim_engine& shared() {
    static sim_engine* engine = [] {
        auto* e = new sim_engine(small_config());
        e->run();
        return e;
    }();
    return *engine;
}

TEST(EngineTest, RunCompletesWithExpectedScrapes) {
    const sim_engine& e = shared();
    EXPECT_EQ(e.stats().scrapes,
              static_cast<std::uint64_t>(observation_window / 900));
    EXPECT_GT(e.stats().placements, 900u);
    EXPECT_GT(e.stats().deletions, 0u);
}

TEST(EngineTest, MostPlacementsSucceed) {
    const sim_engine& e = shared();
    const double failure_rate =
        static_cast<double>(e.stats().placement_failures) /
        static_cast<double>(e.stats().placements + e.stats().placement_failures);
    EXPECT_LT(failure_rate, 0.02);
}

TEST(EngineTest, ActiveVmAccountingIsConsistent) {
    sim_engine& e = shared();
    for (const vm_record& rec : e.vms().all()) {
        if (rec.state != vm_state::active) continue;
        ASSERT_TRUE(rec.placed_bb.valid());
        ASSERT_TRUE(rec.placed_node.valid());
        // placement allocation agrees with the record
        EXPECT_EQ(e.placement().allocation_of(rec.id), rec.placed_bb);
        // the node really hosts the VM and belongs to the BB
        const drs_cluster& cluster =
            e.clusters()[static_cast<std::size_t>(rec.placed_bb.value())];
        EXPECT_TRUE(cluster.node(rec.placed_node).hosts(rec.id));
        EXPECT_EQ(e.infrastructure().get(rec.placed_node).bb, rec.placed_bb);
    }
}

TEST(EngineTest, DeletedVmsHoldNothing) {
    sim_engine& e = shared();
    for (const vm_record& rec : e.vms().all()) {
        if (rec.state != vm_state::deleted) continue;
        EXPECT_FALSE(e.placement().allocation_of(rec.id).has_value());
        ASSERT_TRUE(rec.deleted_at.has_value());
        EXPECT_GT(*rec.deleted_at, rec.created_at);
    }
}

TEST(EngineTest, ReservationsConserveAcrossLayers) {
    sim_engine& e = shared();
    for (const drs_cluster& cluster : e.clusters()) {
        core_count node_vcpus = 0;
        mebibytes node_ram = 0;
        std::size_t node_vms = 0;
        for (const node_runtime& nr : cluster.nodes()) {
            node_vcpus += nr.reserved_vcpus();
            node_ram += nr.reserved_ram_mib();
            node_vms += nr.vm_count();
        }
        const provider_usage& usage = e.placement().usage(cluster.bb());
        EXPECT_EQ(node_vcpus, usage.vcpus_used) << "bb " << cluster.bb().value();
        EXPECT_EQ(node_ram, usage.ram_used_mib);
        EXPECT_EQ(node_vms, static_cast<std::size_t>(usage.instances));
    }
}

TEST(EngineTest, StoreCoversEveryNodeAndBb) {
    sim_engine& e = shared();
    const metric_store& store = e.store();
    EXPECT_EQ(store.select(metric_names::host_cpu_core_utilization).size(),
              e.infrastructure().node_count());
    EXPECT_EQ(store.select(metric_names::host_cpu_ready).size(),
              e.infrastructure().node_count());
    EXPECT_EQ(store.select(metric_names::os_nodes_vcpus).size(),
              e.infrastructure().bb_count());
    EXPECT_EQ(store.select(metric_names::os_instances_total).size(), 1u);
    // one VM series per successfully placed VM
    EXPECT_EQ(store.select(metric_names::vm_cpu_usage_ratio).size(),
              static_cast<std::size_t>(e.stats().placements));
}

TEST(EngineTest, PercentagesStayInRange) {
    sim_engine& e = shared();
    const metric_store& store = e.store();
    for (std::string_view metric :
         {metric_names::host_cpu_core_utilization,
          metric_names::host_cpu_contention, metric_names::host_memory_usage}) {
        for (series_id id : store.select(metric)) {
            for (int day = 0; day < observation_days; ++day) {
                const running_stats* agg = store.daily(id, day);
                if (agg == nullptr) continue;
                EXPECT_GE(agg->min(), 0.0);
                EXPECT_LE(agg->max(), 100.0);
            }
        }
    }
}

TEST(EngineTest, VmRatiosStayInUnitInterval) {
    sim_engine& e = shared();
    const metric_store& store = e.store();
    for (series_id id : store.select(metric_names::vm_cpu_usage_ratio)) {
        const running_stats agg = store.window_aggregate(id);
        if (agg.empty()) continue;
        EXPECT_GE(agg.min(), 0.0);
        EXPECT_LE(agg.max(), 1.0);
    }
}

TEST(EngineTest, InstanceGaugeTracksPopulation) {
    sim_engine& e = shared();
    const metric_store& store = e.store();
    const auto series = store.select(metric_names::os_instances_total);
    ASSERT_EQ(series.size(), 1u);
    const running_stats* last_day = store.daily(series[0], observation_days - 1);
    ASSERT_NE(last_day, nullptr);
    // gauge at window end ~ currently active VMs
    EXPECT_NEAR(last_day->max(),
                static_cast<double>(e.vms().count_in_state(vm_state::active)),
                static_cast<double>(e.vms().size()) * 0.05);
}

TEST(EngineTest, HanaVmsLandOnHanaOrXlBbs) {
    sim_engine& e = shared();
    for (const vm_record& rec : e.vms().all()) {
        if (rec.state != vm_state::active) continue;
        const flavor& f = e.catalog().get(rec.flavor);
        const bb_purpose purpose =
            e.infrastructure().get(rec.placed_bb).purpose;
        if (f.requires_dedicated_bb()) {
            EXPECT_EQ(purpose, bb_purpose::dedicated_xl) << f.name;
        } else if (f.wclass == workload_class::hana_db) {
            EXPECT_EQ(purpose, bb_purpose::hana) << f.name;
        } else {
            EXPECT_EQ(purpose, bb_purpose::general) << f.name;
        }
    }
}

TEST(EngineTest, ReserveBbsNeverReceiveVms) {
    sim_engine& e = shared();
    for (const building_block& bb : e.infrastructure().bbs()) {
        if (bb.purpose != bb_purpose::reserve) continue;
        EXPECT_EQ(e.placement().usage(bb.id).instances, 0) << bb.name;
        // but they are monitored: node telemetry exists
        const std::vector<std::pair<std::string, std::string>> filter{
            {"bb", bb.name}};
        EXPECT_FALSE(
            e.store()
                .select(metric_names::host_cpu_core_utilization, filter)
                .empty());
    }
}

TEST(EngineTest, DrsMigrationsRecordedOnVms) {
    sim_engine& e = shared();
    std::uint64_t recorded = 0;
    for (const vm_record& rec : e.vms().all()) {
        recorded += static_cast<std::uint64_t>(rec.migration_count);
    }
    EXPECT_GE(recorded, e.stats().drs_migrations);  // includes evacuations
}

TEST(EngineTest, NodeChurnProducesWhiteCells) {
    sim_engine& e = shared();
    const fleet& f = e.infrastructure();
    bool any_unavailable = false;
    for (const compute_node& node : f.nodes()) {
        if (!node.available_at(0) ||
            !node.available_at(observation_window - 1)) {
            any_unavailable = true;
            // the store must have no samples for unavailable days
            const std::vector<std::pair<std::string, std::string>> filter{
                {"node", node.name}};
            const auto series = e.store().select(
                metric_names::host_cpu_core_utilization, filter);
            ASSERT_EQ(series.size(), 1u);
            for (int day = 0; day < observation_days; ++day) {
                const sim_time mid = days(day) + hours(12);
                if (!node.available_at(mid)) continue;
                // available days can still have data
            }
            // first/last day outside availability has no aggregate
            if (node.available_from > hours(25)) {
                EXPECT_EQ(e.store().daily(series[0], 0), nullptr);
            }
        }
    }
    EXPECT_TRUE(any_unavailable);  // 3% churn over ~36 nodes: expect >= 1
}

TEST(EngineTest, DeterministicAcrossRuns) {
    sim_engine& a = shared();
    sim_engine b(small_config());
    b.run();
    EXPECT_EQ(a.stats().placements, b.stats().placements);
    EXPECT_EQ(a.stats().deletions, b.stats().deletions);
    EXPECT_EQ(a.stats().drs_migrations, b.stats().drs_migrations);
    EXPECT_EQ(a.store().total_samples(), b.store().total_samples());
    // spot-check a series' daily means
    const auto sa = a.store().select(metric_names::host_cpu_core_utilization);
    const auto sb = b.store().select(metric_names::host_cpu_core_utilization);
    ASSERT_EQ(sa.size(), sb.size());
    for (int day = 0; day < observation_days; day += 7) {
        const running_stats* da = a.store().daily(sa[0], day);
        const running_stats* db = b.store().daily(sb[0], day);
        ASSERT_EQ(da == nullptr, db == nullptr);
        if (da != nullptr) {
            EXPECT_DOUBLE_EQ(da->mean(), db->mean());
        }
    }
}

TEST(EngineTest, RunUntilSupportsIncrementalInspection) {
    engine_config config = small_config();
    config.scenario.scale = 0.01;
    sim_engine e(config);
    e.setup();
    e.run_until(days(2));
    const std::uint64_t scrapes_at_2d = e.stats().scrapes;
    EXPECT_EQ(scrapes_at_2d, static_cast<std::uint64_t>(days(2) / 900 + 1));
    e.run_until(observation_window);
    EXPECT_GT(e.stats().scrapes, scrapes_at_2d);
}

TEST(EngineTest, SetupTwiceThrows) {
    engine_config config = small_config();
    config.scenario.scale = 0.01;
    sim_engine e(config);
    e.setup();
    EXPECT_THROW(e.setup(), precondition_error);
}

TEST(EngineTest, InvalidConfigRejected) {
    engine_config config = small_config();
    config.sampling_interval = 0;
    EXPECT_THROW(sim_engine{config}, precondition_error);
    config = small_config();
    config.drs_interval = -1;
    EXPECT_THROW(sim_engine{config}, precondition_error);
}

// --- policy switches (smoke + directional checks) -----------------------

TEST(EngineTest, HolisticModeRuns) {
    engine_config config = small_config();
    config.scenario.scale = 0.01;
    config.holistic = true;
    sim_engine e(config);
    e.run();
    EXPECT_GT(e.stats().placements, 400u);
    EXPECT_EQ(e.stats().forced_fits, 0u);  // node-level placement never forces
}

// Regression (pre-existing since PR 4): under mass faults + cross-BB
// rebalancing the holistic path could pick a node with room while the
// provider-level claim found the crash-shrunken BB full —
// placement_service::claim threw capacity_error straight through the
// event loop.  The claim must degrade to NoValidHost instead.
TEST(EngineTest, HolisticMassFaultDegradesToNoValidHost) {
    engine_config config = small_config();
    config.holistic = true;
    config.population.daily_churn_fraction = 0.10;
    config.node_churn_fraction = 0.10;
    config.fault.host_crash_rate_per_day = 1.0;
    config.fault.crash_repair_time = hours(8);
    config.fault.ha_restart_delay = 900;
    config.fault.maintenance_windows = 4;
    config.cross_bb_interval = 3600;
    config.cross_bb.target_ram_spread = 0.02;
    config.cross_bb.max_moves_per_pass = 64;
    sim_engine e(config);
    e.run();  // pre-fix: aborted with capacity_error
    EXPECT_GT(e.stats().holistic_claim_rejections, 0u);
    EXPECT_LE(e.stats().holistic_claim_rejections,
              e.stats().placement_failures);
    // every rejection surfaced as an explicit schedule_fail event
    EXPECT_GE(e.events().count(lifecycle_event_kind::schedule_fail),
              e.stats().holistic_claim_rejections);
}

TEST(EngineTest, ContentionAwareModeRuns) {
    engine_config config = small_config();
    config.scenario.scale = 0.01;
    config.contention_aware = true;
    sim_engine e(config);
    e.run();
    EXPECT_GT(e.stats().placements, 400u);
}

TEST(EngineTest, LifetimeAwareModeRuns) {
    engine_config config = small_config();
    config.scenario.scale = 0.01;
    config.lifetime_aware = true;
    sim_engine e(config);
    e.run();
    EXPECT_GT(e.stats().placements, 400u);
}

// DRS move order is reference behavior: rebalance() iterates residents
// through the node-order-stable container (ascending vm id), so the exact
// migration sequence of the default run is pinned here.  A container or
// iteration-order change that reorders near-tie candidate picks shows up
// as a diff in this list — that is the point: such a change must be a
// deliberate, re-captured reference bump, never an accident.
TEST(EngineTest, DrsMoveOrderMatchesCapturedReference) {
    const sim_engine& e = shared();
    struct move_ref {
        sim_time t;
        std::int32_t vm, bb, from, to;
    };
    // first 24 migrate events captured from the default config (scale
    // 0.02, seed 11, sampling 900) after the resident-container change
    static constexpr move_ref expected[] = {
        {25200, 316, 4, 17, 14},   {39600, 184, 4, 19, 15},
        {43200, 202, 4, 20, 18},   {43200, 810, 5, 21, 26},
        {122400, 736, 4, 15, 14},  {122400, 247, 5, 25, 24},
        {129600, 769, 1, 8, 7},    {133200, 347, 5, 21, 24},
        {212400, 222, 4, 17, 19},  {219600, 720, 4, 20, 18},
        {219600, 290, 5, 27, 24},  {295200, 184, 4, 15, 18},
        {306000, 980, 0, 1, 0},    {399600, 507, 4, 16, 18},
        {561600, 816, 5, 22, 27},  {565200, 736, 4, 14, 18},
        {828000, 247, 5, 24, 26},  {918000, 361, 0, 1, 0},
        {1245600, 507, 4, 18, 15}, {1339200, 1160, 0, 4, 0},
        {1342800, 348, 0, 2, 3},   {1418400, 839, 0, 2, 0},
        {1436400, 709, 0, 0, 4},   {1436400, 259, 1, 5, 9},
    };
    EXPECT_EQ(e.stats().drs_migrations, 42u);
    std::vector<lifecycle_event> moves;
    for (const lifecycle_event& ev : e.events().all()) {
        if (ev.kind == lifecycle_event_kind::migrate) moves.push_back(ev);
    }
    ASSERT_GE(moves.size(), std::size(expected));
    for (std::size_t i = 0; i < std::size(expected); ++i) {
        EXPECT_EQ(moves[i].t, expected[i].t) << "move " << i;
        EXPECT_EQ(moves[i].vm.value(), expected[i].vm) << "move " << i;
        EXPECT_EQ(moves[i].bb.value(), expected[i].bb) << "move " << i;
        EXPECT_EQ(moves[i].from.value(), expected[i].from) << "move " << i;
        EXPECT_EQ(moves[i].to.value(), expected[i].to) << "move " << i;
    }
}

TEST(EngineTest, DrsDisabledMeansNoMigrations) {
    engine_config config = small_config();
    config.scenario.scale = 0.01;
    config.drs.enabled = false;
    config.node_churn_fraction = 0.0;  // evacuations also move VMs
    sim_engine e(config);
    e.run();
    EXPECT_EQ(e.stats().drs_migrations, 0u);
    EXPECT_EQ(e.stats().evacuations, 0u);
}

// --- event log integration --------------------------------------------------

TEST(EngineTest, EventLogMatchesRunStats) {
    sim_engine& e = shared();
    const event_log& log = e.events();
    EXPECT_EQ(log.count(lifecycle_event_kind::create), e.stats().placements);
    EXPECT_EQ(log.count(lifecycle_event_kind::remove), e.stats().deletions);
    EXPECT_EQ(log.count(lifecycle_event_kind::schedule_fail),
              e.stats().placement_failures);
    EXPECT_EQ(log.count(lifecycle_event_kind::migrate),
              e.stats().drs_migrations + e.stats().cross_bb_moves);
    EXPECT_EQ(log.count(lifecycle_event_kind::evacuate), e.stats().evacuations);
}

TEST(EngineTest, EventsAreTimeOrdered) {
    sim_engine& e = shared();
    sim_time last = std::numeric_limits<sim_time>::min();
    for (const lifecycle_event& ev : e.events().all()) {
        EXPECT_GE(ev.t, last);
        last = ev.t;
    }
}

TEST(EngineTest, DeletedVmsHaveCreateBeforeDelete) {
    sim_engine& e = shared();
    int checked = 0;
    for (const vm_record& rec : e.vms().all()) {
        if (rec.state != vm_state::deleted || checked >= 50) continue;
        const auto history = e.events().of_vm(rec.id);
        ASSERT_GE(history.size(), 2u);
        EXPECT_EQ(history.front().kind, lifecycle_event_kind::create);
        EXPECT_EQ(history.back().kind, lifecycle_event_kind::remove);
        ++checked;
    }
    EXPECT_GT(checked, 0);
}

TEST(EngineTest, MigrationCostsAccumulate) {
    sim_engine& e = shared();
    if (e.stats().drs_migrations + e.stats().evacuations > 0) {
        EXPECT_GT(e.stats().migration_seconds, 0.0);
    }
}

// --- cross-BB rebalancer integration ----------------------------------------

TEST(EngineTest, CrossBbRebalancerKeepsAccountingConsistent) {
    engine_config config = small_config();
    config.scenario.scale = 0.015;
    config.population.daily_churn_fraction = 0.05;
    config.cross_bb_interval = hours(6);
    config.cross_bb.target_ram_spread = 0.05;
    sim_engine e(config);
    e.run();
    // whether or not moves happened, the layers must agree afterwards
    for (const drs_cluster& cluster : e.clusters()) {
        core_count node_vcpus = 0;
        std::size_t node_vms = 0;
        for (const node_runtime& nr : cluster.nodes()) {
            node_vcpus += nr.reserved_vcpus();
            node_vms += nr.vm_count();
        }
        const provider_usage& usage = e.placement().usage(cluster.bb());
        EXPECT_EQ(node_vcpus, usage.vcpus_used);
        EXPECT_EQ(node_vms, static_cast<std::size_t>(usage.instances));
    }
    for (const vm_record& rec : e.vms().all()) {
        if (rec.state != vm_state::active) continue;
        EXPECT_EQ(e.placement().allocation_of(rec.id), rec.placed_bb);
        EXPECT_EQ(e.infrastructure().get(rec.placed_node).bb, rec.placed_bb);
    }
}

TEST(EngineTest, ResizesHappenAndStayConsistent) {
    engine_config config = small_config();
    config.scenario.scale = 0.02;
    config.daily_resize_fraction = 0.02;  // pronounced for the test
    sim_engine e(config);
    e.run();
    EXPECT_GT(e.stats().resizes, 0u);
    EXPECT_EQ(e.events().count(lifecycle_event_kind::resize),
              e.stats().resizes);
    // accounting still conserved after flavor swaps
    for (const drs_cluster& cluster : e.clusters()) {
        core_count vcpus = 0;
        mebibytes ram = 0;
        for (const node_runtime& nr : cluster.nodes()) {
            vcpus += nr.reserved_vcpus();
            ram += nr.reserved_ram_mib();
        }
        const provider_usage& usage = e.placement().usage(cluster.bb());
        EXPECT_EQ(vcpus, usage.vcpus_used);
        EXPECT_EQ(ram, usage.ram_used_mib);
    }
    // every resized VM's record matches its current allocation
    for (const lifecycle_event& ev : e.events().all()) {
        if (ev.kind != lifecycle_event_kind::resize) continue;
        const vm_record& rec = e.vms().get(ev.vm);
        if (rec.state != vm_state::active) continue;
        EXPECT_EQ(e.placement().allocation_of(ev.vm), rec.placed_bb);
    }
}

TEST(EngineTest, BehaviorOfIsStableAcrossCalls) {
    sim_engine& e = shared();
    const vm_behavior& a = e.behavior_of(vm_id(3));
    const vm_behavior& b = e.behavior_of(vm_id(3));
    EXPECT_EQ(a.seed, b.seed);
    const double d1 = e.vm_cpu_demand_cores(vm_id(3), hours(10));
    const double d2 = e.vm_cpu_demand_cores(vm_id(3), hours(10));
    EXPECT_DOUBLE_EQ(d1, d2);
}

}  // namespace
}  // namespace sci
