// Backpressure acceptance tests:
//   - the controller keeps its ground rules at unit level: the queue is
//     bounded by capacity, deadline expiry pops in event-time (= FIFO)
//     order, shed-mode eviction displaces the lowest-priority
//     latest-enqueued entry only for a strictly higher-priority
//     newcomer, and the queuing/shedding regime is hysteretic — one
//     flip under constant overload across three scrape ticks, never a
//     flap,
//   - both new checkers demonstrably FAIL on deliberately broken input
//     with precise messages (no vacuously-green physics), and the
//     no_silent_drops audit flags a hand-built HA give-up trace,
//   - a queue-mode engine run under real overload closes the
//     no-blackhole ledger, stays bit-identical at 0 / 1 / 4 worker
//     threads, and never exceeds the configured queue bound,
//   - degrade mode keeps the audited drop paths regression-tested: HA
//     give-ups emit terminal shed events that reconcile with the
//     ha_give_ups counter, and churn-arrival schedule_fails are
//     accounted exactly once,
//   - the v2 snapshot codec round-trips the backpressure state.
//
// Registered as a single ctest entry: the cases share the expensive
// engine runs built once.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "harness/harness.hpp"
#include "harness/invariants.hpp"
#include "harness/scenario_dsl.hpp"
#include "sched/backpressure.hpp"
#include "snapshot/snapshot.hpp"

namespace sci {
namespace {

bp_queued_request request(std::int32_t vm, std::int32_t priority,
                          sim_time enqueued_at, sim_time deadline) {
    bp_queued_request r;
    r.vm = vm_id(vm);
    r.priority = priority;
    r.enqueued_at = enqueued_at;
    r.deadline = deadline;
    return r;
}

backpressure_config config_of(backpressure_mode mode, std::uint32_t capacity,
                              sim_duration deadline) {
    backpressure_config c;
    c.mode = mode;
    c.queue_capacity = capacity;
    c.queue_deadline = deadline;
    return c;
}

// --- controller ground rules --------------------------------------------

TEST(Controller, QueueNeverExceedsCapacity) {
    backpressure_controller bp(
        config_of(backpressure_mode::queue, 4, 3600));
    for (std::int32_t i = 0; i < 7; ++i) {
        const auto r = bp.admit(request(i, 0, 0, 3600));
        EXPECT_LE(bp.size(), 4u);
        if (i < 4) {
            EXPECT_EQ(r.result,
                      backpressure_controller::admit_result::outcome::queued);
        } else {
            // queue mode has no eviction: overflow is shed outright
            EXPECT_EQ(r.result, backpressure_controller::admit_result::
                                    outcome::shed_queue_full);
            EXPECT_FALSE(r.evicted.has_value());
        }
    }
    EXPECT_EQ(bp.size(), 4u);
}

TEST(Controller, DeadlineExpiryPopsInEventTimeOrder) {
    backpressure_controller bp(
        config_of(backpressure_mode::queue, 8, 100));
    bp.admit(request(0, 0, 0, 100));
    bp.admit(request(1, 0, 10, 110));
    bp.admit(request(2, 0, 20, 120));

    const auto first = bp.expire(105);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].vm, vm_id(0));

    const auto rest = bp.expire(200);
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0].vm, vm_id(1));  // deadline 110 before 120
    EXPECT_EQ(rest[1].vm, vm_id(2));
    EXPECT_TRUE(bp.empty());
}

TEST(Controller, ShedModeEvictsLowestPriorityLatestEnqueued) {
    backpressure_controller bp(config_of(backpressure_mode::shed, 3, 3600));
    bp.admit(request(0, 1, 0, 3600));   // pack
    bp.admit(request(1, 0, 10, 3610));  // spread
    bp.admit(request(2, 0, 20, 3620));  // spread, latest of the p0 pair

    // equal priority cannot displace anyone: shed outright, queue intact
    const auto equal = bp.admit(request(3, 0, 30, 3630));
    EXPECT_EQ(equal.result,
              backpressure_controller::admit_result::outcome::shed_queue_full);
    EXPECT_EQ(bp.size(), 3u);

    // a strictly higher-priority newcomer (HA restart) displaces the
    // lowest-priority latest-enqueued victim: vm 2, not vm 1
    const auto ha = bp.admit(request(4, 2, 40, 3640));
    EXPECT_EQ(ha.result,
              backpressure_controller::admit_result::outcome::queued);
    ASSERT_TRUE(ha.evicted.has_value());
    EXPECT_EQ(ha.evicted->vm, vm_id(2));
    EXPECT_EQ(bp.size(), 3u);
}

TEST(Controller, RegimeFlipsOnceUnderConstantOverloadAcrossScrapes) {
    backpressure_controller bp(config_of(backpressure_mode::queue, 4, 7200));
    for (std::int32_t i = 0; i < 4; ++i) bp.admit(request(i, 0, 0, 7200));

    // scrape tick 1: queue at capacity -> enter shedding, exactly one flip
    EXPECT_TRUE(bp.update_regime(300));
    EXPECT_EQ(bp.regime(), bp_regime::shedding);
    // scrape ticks 2 and 3 under the same constant overload: NO flapping
    EXPECT_FALSE(bp.update_regime(600));
    EXPECT_FALSE(bp.update_regime(900));
    ASSERT_EQ(bp.transitions().size(), 1u);
    EXPECT_EQ(bp.transitions()[0], 300);

    // hysteresis: shrinking to 3 (> capacity/2) keeps shedding ...
    bp.erase(0);
    EXPECT_FALSE(bp.update_regime(1200));
    EXPECT_EQ(bp.regime(), bp_regime::shedding);
    // ... only draining to half releases it
    bp.erase(0);
    EXPECT_TRUE(bp.update_regime(1500));
    EXPECT_EQ(bp.regime(), bp_regime::queuing);
    ASSERT_EQ(bp.transitions().size(), 2u);
    EXPECT_EQ(bp.transitions()[1], 1500);
}

// --- both new checkers can actually fail --------------------------------

lifecycle_event make_event(sim_time t, lifecycle_event_kind kind,
                           std::int32_t vm, schedule_fail_reason reason =
                                               schedule_fail_reason::none) {
    lifecycle_event e;
    e.t = t;
    e.kind = kind;
    e.vm = vm_id(vm);
    e.reason = reason;
    return e;
}

TEST(Checkers, NoBlackholeCatchesLedgerMismatch) {
    run_stats stats;
    stats.bp_enqueued = 5;
    stats.bp_queue_placed = 2;
    const harness::invariant_result r =
        harness::check_no_blackhole(stats, event_log{}, 1);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.detail,
              "bp_enqueued (5) != placed (2) + shed-deadline (0) + evicted "
              "(0) + cancelled (0) + still queued (1)");
}

TEST(Checkers, NoBlackholeCatchesUncountedSheds) {
    run_stats stats;  // ledger closes trivially (nothing enqueued) ...
    event_log events;  // ... but a shed event appears with no counter
    events.record(make_event(0, lifecycle_event_kind::shed, 3,
                             schedule_fail_reason::deadline_expired));
    const harness::invariant_result r =
        harness::check_no_blackhole(stats, events, 0);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.detail,
              "shed events (1) != bp_shed_deadline (0) + bp_shed_queue_full "
              "(0) + bp_shed_evicted (0) + ha_give_ups (0)");
}

TEST(Checkers, NoBlackholeCatchesReasonlessSheds) {
    run_stats stats;
    stats.bp_enqueued = 1;
    stats.bp_shed_deadline = 1;
    event_log events;
    events.record(make_event(0, lifecycle_event_kind::shed, 3));
    const harness::invariant_result r =
        harness::check_no_blackhole(stats, events, 0);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.detail, "1 shed events carry no reason");
}

TEST(Checkers, NoBlackholePassesOnClosedLedger) {
    run_stats stats;
    stats.bp_enqueued = 3;
    stats.bp_queue_placed = 1;
    stats.bp_shed_deadline = 1;
    event_log events;
    events.record(make_event(0, lifecycle_event_kind::shed, 3,
                             schedule_fail_reason::deadline_expired));
    const harness::invariant_result r =
        harness::check_no_blackhole(stats, events, 1);
    EXPECT_TRUE(r.passed) << r.detail;
    EXPECT_EQ(r.detail,
              "3 queued requests terminated exactly once (1 still queued); "
              "1 sheds, all with reasons");
}

TEST(Checkers, BackpressureStabilityCatchesFlapping) {
    const std::vector<sim_time> flapping{0, 100};
    const harness::invariant_result r =
        harness::check_backpressure_stability(flapping, 300);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.detail,
              "regime flapped: transitions at t=0 and t=100 are 100 s apart "
              "(min 300 s)");
    const std::vector<sim_time> stable{0, 400, 800};
    EXPECT_TRUE(harness::check_backpressure_stability(stable, 300).passed);
}

// The satellite audit: a crash victim abandoned at
// ha_max_restart_attempts without a terminal shed event is exactly the
// silent give-up the fixed engine no longer produces.
TEST(Checkers, NoSilentDropsFlagsHandBuiltGiveUpTrace) {
    vm_record rec;
    rec.id = vm_id(5);
    rec.state = vm_state::error;
    const std::vector<vm_record> records{rec};
    event_log events;
    events.record(make_event(0, lifecycle_event_kind::create, 5));
    events.record(make_event(100, lifecycle_event_kind::crash, 5));
    events.record(make_event(200, lifecycle_event_kind::schedule_fail, 5,
                             schedule_fail_reason::no_valid_host));

    // broken trace: restart attempts logged, abandonment vanished
    const harness::invariant_result broken =
        harness::check_no_silent_drops(records, events);
    EXPECT_FALSE(broken.passed);
    EXPECT_EQ(broken.detail,
              "1 unexplained VM states; first: vm 5 is error but has no "
              "shed event");

    // still pending in the HA controller or backpressure queue -> in
    // flight, not dropped
    const std::vector<vm_id> in_flight{vm_id(5)};
    EXPECT_TRUE(
        harness::check_no_silent_drops(records, events, in_flight).passed);

    // fixed engine: the give-up leaves a terminal shed with its reason
    events.record(make_event(200, lifecycle_event_kind::shed, 5,
                             schedule_fail_reason::ha_attempts_exhausted));
    EXPECT_TRUE(harness::check_no_silent_drops(records, events).passed);
}

// --- engine runs under real overload ------------------------------------

engine_config storm_config(backpressure_mode mode) {
    engine_config config;
    config.scenario.scale = 0.02;
    config.scenario.seed = 23;
    config.population.seed = 23;
    config.population.daily_churn_fraction = 0.08;
    config.gp_cpu_allocation_ratio_override = 1.0;
    config.fault.host_crash_rate_per_day = 0.30;
    config.fault.claim_failure_probability = 0.35;
    config.fault.ha_max_restart_attempts = 1;
    config.fault.crash_repair_time = 14400;
    if (mode != backpressure_mode::degrade) {
        config.backpressure.mode = mode;
        config.backpressure.queue_capacity = 64;
        config.backpressure.queue_deadline = 7200;
    }
    return config;
}

struct storm_run {
    std::unique_ptr<sim_engine> engine;
    std::uint64_t events_hash = 0;
    std::uint64_t stats_hash = 0;
};

storm_run run_storm(backpressure_mode mode, unsigned threads) {
    storm_run run;
    engine_config config = storm_config(mode);
    config.threads = threads;
    run.engine = std::make_unique<sim_engine>(config);
    run.engine->setup();
    run.engine->run_until(days(2));
    run.events_hash = harness::events_fingerprint(run.engine->events());
    run.stats_hash = harness::stats_fingerprint(run.engine->stats());
    return run;
}

const std::vector<storm_run>& queue_runs() {
    static auto* runs = [] {
        auto* out = new std::vector<storm_run>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            out->push_back(run_storm(backpressure_mode::queue, threads));
        }
        return out;
    }();
    return *runs;
}

std::uint64_t shed_count_with_reason(const event_log& events,
                                     schedule_fail_reason reason) {
    std::uint64_t n = 0;
    for (const lifecycle_event& e : events.all()) {
        if (e.kind == lifecycle_event_kind::shed && e.reason == reason) ++n;
    }
    return n;
}

TEST(QueueMode, BitIdenticalAcrossThreadCounts) {
    const auto& runs = queue_runs();
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_GT(runs[0].engine->events().size(), 0u);
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].events_hash, runs[0].events_hash) << i;
        EXPECT_EQ(runs[i].stats_hash, runs[0].stats_hash) << i;
    }
}

TEST(QueueMode, OverloadActuallyQueuesAndLedgerCloses) {
    const storm_run& run = queue_runs().front();
    const run_stats& stats = run.engine->stats();
    const backpressure_controller* bp = run.engine->backpressure();
    ASSERT_NE(bp, nullptr);
    // the storm must actually bite, or this test is vacuous
    EXPECT_GT(stats.bp_enqueued, 0u);
    const harness::invariant_result r = harness::check_no_blackhole(
        stats, run.engine->events(), bp->size());
    EXPECT_TRUE(r.passed) << r.detail;
}

TEST(QueueMode, QueueLengthStaysBounded) {
    const storm_run& run = queue_runs().front();
    const run_stats& stats = run.engine->stats();
    EXPECT_LE(stats.bp_peak_queue_len, 64u);
    EXPECT_LE(run.engine->backpressure()->size(), 64u);
}

TEST(QueueMode, QueuedArrivalsLogNoScheduleFail) {
    // Under queue mode a churn arrival that cannot place is requeued with
    // a deadline, not failed: placement_failures still reconciles against
    // schedule_fail events exactly (the queued ones are in neither).
    const storm_run& run = queue_runs().front();
    const run_stats& stats = run.engine->stats();
    EXPECT_EQ(stats.placement_failures,
              run.engine->events().count(lifecycle_event_kind::schedule_fail));
    const harness::invariant_result r = harness::check_admission_accounting(
        stats, run.engine->events());
    EXPECT_TRUE(r.passed) << r.detail;
}

TEST(QueueMode, RegimeTransitionsRespectScrapeSpacing) {
    const storm_run& run = queue_runs().front();
    const backpressure_controller* bp = run.engine->backpressure();
    const harness::invariant_result r =
        harness::check_backpressure_stability(
            bp->transitions(), run.engine->config().sampling_interval);
    EXPECT_TRUE(r.passed) << r.detail;
    EXPECT_EQ(run.engine->stats().bp_regime_transitions,
              bp->transitions().size());
}

TEST(ShedMode, BitIdenticalAcrossThreadCountsAndLedgerCloses) {
    const storm_run serial = run_storm(backpressure_mode::shed, 0);
    const storm_run parallel = run_storm(backpressure_mode::shed, 4);
    EXPECT_EQ(parallel.events_hash, serial.events_hash);
    EXPECT_EQ(parallel.stats_hash, serial.stats_hash);
    const run_stats& stats = serial.engine->stats();
    const harness::invariant_result r = harness::check_no_blackhole(
        stats, serial.engine->events(), serial.engine->backpressure()->size());
    EXPECT_TRUE(r.passed) << r.detail;
    // every priority eviction shows up as a shed_lower_priority event
    EXPECT_EQ(stats.bp_shed_evicted,
              shed_count_with_reason(serial.engine->events(),
                                     schedule_fail_reason::shed_lower_priority));
}

// --- degrade mode: the audited drop paths, regression-tested ------------

TEST(DegradeMode, HaGiveUpEmitsTerminalShedAndCounter) {
    const storm_run run = run_storm(backpressure_mode::degrade, 0);
    const run_stats& stats = run.engine->stats();
    EXPECT_EQ(run.engine->backpressure(), nullptr);
    EXPECT_GT(stats.host_crashes, 0u);
    // with a single restart attempt, scarce capacity and a 35% transient
    // claim-failure rate, some victim runs out of budget inside two days
    EXPECT_GT(stats.ha_give_ups, 0u);
    EXPECT_EQ(stats.ha_give_ups,
              shed_count_with_reason(
                  run.engine->events(),
                  schedule_fail_reason::ha_attempts_exhausted));
    const harness::invariant_result r = harness::check_no_silent_drops(
        run.engine->vms().all(), run.engine->events());
    EXPECT_TRUE(r.passed) << r.detail;
}

TEST(DegradeMode, ChurnScheduleFailAccountedExactlyOnce) {
    const storm_run run = run_storm(backpressure_mode::degrade, 0);
    const run_stats& stats = run.engine->stats();
    EXPECT_EQ(stats.bp_enqueued, 0u);
    EXPECT_EQ(stats.placement_failures,
              run.engine->events().count(lifecycle_event_kind::schedule_fail));
    const harness::invariant_result r = harness::check_admission_accounting(
        stats, run.engine->events());
    EXPECT_TRUE(r.passed) << r.detail;
}

// --- recovery-tail skip verdict (satellite 3) ---------------------------

TEST(RecoveryTail, ZeroRecoveriesYieldExplicitSkipVerdict) {
    const harness::scenario_spec spec = harness::parse_scenario(R"([scenario]
name = no_faults
description = fault-free run with a recovery bound

[engine]
scale = 0.02
seed = 5

[invariants]
recovery_p99_seconds = 3600
)");
    harness::run_options options;
    options.days = 1;
    options.threads = 0u;
    const harness::scenario_outcome outcome =
        harness::run_scenario(spec, options);
    ASSERT_EQ(outcome.invariants.size(), 1u);
    const harness::invariant_result& r = outcome.invariants.front();
    EXPECT_EQ(r.name, "recovery_tail");
    EXPECT_TRUE(r.passed);
    EXPECT_TRUE(r.skipped);
    EXPECT_EQ(r.detail, "skipped: no HA recoveries observed");
    const std::string json =
        harness::outcomes_json(std::vector{outcome});
    EXPECT_NE(json.find("\"skipped\": true"), std::string::npos) << json;
}

// --- snapshot codec v2 --------------------------------------------------

TEST(SnapshotCodec, RoundTripsBackpressureState) {
    snapshot::engine_state state;
    state.has_bp = true;
    state.bp_queue.push_back(request(7, 2, 100, 7300));
    state.bp_queue.back().kind = bp_request_kind::ha_restart;
    state.bp_queue.push_back(request(9, 0, 200, 7400));
    state.bp_queue.back().deleted_at = 9000;
    state.bp_regime = static_cast<std::uint8_t>(bp_regime::shedding);
    state.bp_transitions = {300, 3900};
    state.bp_drain_seq = 17;
    state.bp_drain_armed = true;
    state.stats.bp_enqueued = 12;
    state.stats.ha_give_ups = 3;
    state.config.backpressure =
        config_of(backpressure_mode::shed, 64, 7200);

    const snapshot::engine_state decoded =
        snapshot::deserialize(snapshot::serialize(state));
    ASSERT_TRUE(decoded.has_bp);
    ASSERT_EQ(decoded.bp_queue.size(), 2u);
    EXPECT_EQ(decoded.bp_queue[0].vm, vm_id(7));
    EXPECT_EQ(decoded.bp_queue[0].kind, bp_request_kind::ha_restart);
    EXPECT_EQ(decoded.bp_queue[0].priority, 2);
    EXPECT_EQ(decoded.bp_queue[0].deadline, 7300);
    EXPECT_EQ(decoded.bp_queue[0].deleted_at, bp_queued_request::no_deletion);
    EXPECT_EQ(decoded.bp_queue[1].deleted_at, 9000);
    EXPECT_EQ(decoded.bp_regime,
              static_cast<std::uint8_t>(bp_regime::shedding));
    EXPECT_EQ(decoded.bp_transitions, (std::vector<sim_time>{300, 3900}));
    EXPECT_EQ(decoded.bp_drain_seq, 17u);
    EXPECT_TRUE(decoded.bp_drain_armed);
    EXPECT_EQ(decoded.stats.bp_enqueued, 12u);
    EXPECT_EQ(decoded.stats.ha_give_ups, 3u);
    EXPECT_EQ(decoded.config.backpressure.mode, backpressure_mode::shed);
    EXPECT_EQ(decoded.config.backpressure.queue_capacity, 64u);
    EXPECT_EQ(decoded.config.backpressure.queue_deadline, 7200);

    // serialize . deserialize . serialize is the identity
    EXPECT_EQ(snapshot::serialize(decoded), snapshot::serialize(state));
}

}  // namespace
}  // namespace sci
