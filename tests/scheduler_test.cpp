// Tests for sched/scheduler: the filter+weigher pipeline of Figure 3.

#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

flavor gp_flavor(core_count vcpus = 4, double ram_gib = 32) {
    return flavor{.id = flavor_id(0), .name = "f", .vcpus = vcpus,
                  .ram_mib = gib_to_mib(ram_gib), .disk_gib = 50.0};
}

host_state make_host(std::int32_t bb, core_count vcpus_used,
                     double ram_used_gib) {
    host_state h;
    h.bb = bb_id(bb);
    h.az = az_id(0);
    h.dc = dc_id(0);
    h.purpose = bb_purpose::general;
    h.node_count = 4;
    h.total_pcpus = 4 * 96;
    h.total_ram_mib = 4 * gib_to_mib(1024);
    h.total_disk_gib = 4 * 7680.0;
    h.cpu_allocation_ratio = 4.0;
    h.ram_allocation_ratio = 1.0;
    h.vcpus_used = vcpus_used;
    h.ram_used_mib = gib_to_mib(ram_used_gib);
    return h;
}

schedule_request make_request(placement_policy policy = placement_policy::spread) {
    schedule_request r;
    r.vm = vm_id(0);
    r.flavor = flavor_id(0);
    r.project = project_id(0);
    r.policy = policy;
    return r;
}

TEST(FilterSchedulerTest, RanksEmptierHostsFirstUnderSpread) {
    const filter_scheduler scheduler = make_default_scheduler();
    const flavor f = gp_flavor();
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(0, 800, 3000), make_host(1, 0, 0),
                                  make_host(2, 400, 1500)};
    const auto result = scheduler.select_destinations(ctx, hosts, 3);
    ASSERT_EQ(result.size(), 3u);
    EXPECT_EQ(result[0], bb_id(1));
    EXPECT_EQ(result[1], bb_id(2));
    EXPECT_EQ(result[2], bb_id(0));
}

TEST(FilterSchedulerTest, RanksFullerHostsFirstUnderPack) {
    const filter_scheduler scheduler = make_default_scheduler();
    const flavor f = gp_flavor();
    const schedule_request req = make_request(placement_policy::pack);
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(0, 800, 3000), make_host(1, 0, 0)};
    const auto result = scheduler.select_destinations(ctx, hosts, 2);
    ASSERT_EQ(result.size(), 2u);
    EXPECT_EQ(result[0], bb_id(0));
}

TEST(FilterSchedulerTest, FiltersEliminateFullHosts) {
    const filter_scheduler scheduler = make_default_scheduler();
    const flavor f = gp_flavor(4, 32);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    // host 0 has no RAM left
    std::vector<host_state> hosts{make_host(0, 0, 4096), make_host(1, 0, 0)};
    const auto result = scheduler.select_destinations(ctx, hosts, 5);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0], bb_id(1));
}

TEST(FilterSchedulerTest, NoValidHostYieldsEmpty) {
    const filter_scheduler scheduler = make_default_scheduler();
    const flavor f = gp_flavor(10000, 32);  // impossible
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(0, 0, 0), make_host(1, 0, 0)};
    EXPECT_TRUE(scheduler.select_destinations(ctx, hosts, 5).empty());
}

TEST(FilterSchedulerTest, MaxCandidatesCapsResult) {
    const filter_scheduler scheduler = make_default_scheduler();
    const flavor f = gp_flavor();
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    std::vector<host_state> hosts;
    for (int i = 0; i < 10; ++i) {
        hosts.push_back(make_host(i, i * 10, i * 100.0));
    }
    EXPECT_EQ(scheduler.select_destinations(ctx, hosts, 3).size(), 3u);
    EXPECT_EQ(scheduler.select_destinations(ctx, hosts, 100).size(), 10u);
}

TEST(FilterSchedulerTest, ZeroMaxCandidatesThrows) {
    const filter_scheduler scheduler = make_default_scheduler();
    const flavor f = gp_flavor();
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(0, 0, 0)};
    EXPECT_THROW(scheduler.select_destinations(ctx, hosts, 0),
                 precondition_error);
}

TEST(FilterSchedulerTest, TraceRecordsEliminations) {
    const filter_scheduler scheduler = make_default_scheduler();
    const flavor f = gp_flavor(4, 32);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(0, 0, 4096),  // compute-filtered
                                  make_host(1, 0, 0)};
    host_state hana = make_host(2, 0, 0);
    hana.purpose = bb_purpose::hana;  // purpose-filtered
    hosts.push_back(hana);

    filter_trace trace;
    scheduler.select_destinations(ctx, hosts, 5, &trace);
    EXPECT_EQ(trace.survivors, 1u);
    std::size_t eliminated_total = 0;
    for (const auto& [name, n] : trace.eliminated) eliminated_total += n;
    EXPECT_EQ(eliminated_total, 2u);
}

TEST(FilterSchedulerTest, DeterministicTieBreakById) {
    const filter_scheduler scheduler = make_default_scheduler();
    const flavor f = gp_flavor();
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    // identical hosts: weighers all tie, fall back to bb id ordering
    std::vector<host_state> hosts{make_host(3, 0, 0), make_host(1, 0, 0),
                                  make_host(2, 0, 0)};
    const auto result = scheduler.select_destinations(ctx, hosts, 3);
    ASSERT_EQ(result.size(), 3u);
    EXPECT_EQ(result[0], bb_id(1));
    EXPECT_EQ(result[1], bb_id(2));
    EXPECT_EQ(result[2], bb_id(3));
}

TEST(FilterSchedulerTest, EmptyHostListYieldsEmpty) {
    const filter_scheduler scheduler = make_default_scheduler();
    const flavor f = gp_flavor();
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    EXPECT_TRUE(scheduler.select_destinations(ctx, {}, 5).empty());
}

TEST(FilterSchedulerTest, AzConstraintHonored) {
    const filter_scheduler scheduler = make_default_scheduler();
    const flavor f = gp_flavor();
    schedule_request req = make_request();
    req.az = az_id(7);
    const request_context ctx{req, f};
    std::vector<host_state> hosts{make_host(0, 0, 0)};
    EXPECT_TRUE(scheduler.select_destinations(ctx, hosts, 5).empty());
    hosts[0].az = az_id(7);
    EXPECT_EQ(scheduler.select_destinations(ctx, hosts, 5).size(), 1u);
}

}  // namespace
}  // namespace sci
