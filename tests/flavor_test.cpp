// Tests for infra/flavor: the size taxonomy of Tables 1–2 and the flavor
// catalog.

#include "infra/flavor.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

// --- Table 1 vCPU class boundaries ----------------------------------------

struct vcpu_case {
    core_count vcpus;
    vcpu_class expected;
};

class VcpuClassTest : public testing::TestWithParam<vcpu_case> {};

TEST_P(VcpuClassTest, Classifies) {
    EXPECT_EQ(classify_vcpu(GetParam().vcpus), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Table1Boundaries, VcpuClassTest,
    testing::Values(vcpu_case{1, vcpu_class::small},
                    vcpu_case{4, vcpu_class::small},      // boundary: <= 4
                    vcpu_case{5, vcpu_class::medium},
                    vcpu_case{16, vcpu_class::medium},    // boundary: <= 16
                    vcpu_case{17, vcpu_class::large},
                    vcpu_case{64, vcpu_class::large},     // boundary: <= 64
                    vcpu_case{65, vcpu_class::extra_large},
                    vcpu_case{224, vcpu_class::extra_large}));

// --- Table 2 RAM class boundaries ------------------------------------------

struct ram_case {
    double gib;
    ram_class expected;
};

class RamClassTest : public testing::TestWithParam<ram_case> {};

TEST_P(RamClassTest, Classifies) {
    EXPECT_EQ(classify_ram(gib_to_mib(GetParam().gib)), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Table2Boundaries, RamClassTest,
    testing::Values(ram_case{1, ram_class::small},
                    ram_case{2, ram_class::small},        // boundary: <= 2
                    ram_case{2.5, ram_class::medium},
                    ram_case{64, ram_class::medium},      // boundary: <= 64
                    ram_case{65, ram_class::large},
                    ram_case{128, ram_class::large},      // boundary: <= 128
                    ram_case{129, ram_class::extra_large},
                    ram_case{12288, ram_class::extra_large}));

TEST(FlavorTest, DedicatedBbThresholdIs3TB) {
    flavor f{.id = flavor_id(0), .name = "x", .vcpus = 1,
             .ram_mib = gib_to_mib(3071), .disk_gib = 0.0};
    EXPECT_FALSE(f.requires_dedicated_bb());
    f.ram_mib = gib_to_mib(3072);
    EXPECT_TRUE(f.requires_dedicated_bb());
    f.ram_mib = gib_to_mib(12288);
    EXPECT_TRUE(f.requires_dedicated_bb());
}

TEST(FlavorTest, ClassAccessors) {
    flavor f{.id = flavor_id(0), .name = "g_c8_m64", .vcpus = 8,
             .ram_mib = gib_to_mib(64), .disk_gib = 100.0};
    EXPECT_EQ(f.cpu_class(), vcpu_class::medium);
    EXPECT_EQ(f.memory_class(), ram_class::medium);
}

TEST(FlavorTest, ToStringCoversAllClasses) {
    EXPECT_EQ(to_string(vcpu_class::small), "Small");
    EXPECT_EQ(to_string(vcpu_class::extra_large), "Extra Large");
    EXPECT_EQ(to_string(ram_class::medium), "Medium");
    EXPECT_EQ(to_string(ram_class::large), "Large");
    EXPECT_EQ(to_string(workload_class::general_purpose), "general_purpose");
    EXPECT_EQ(to_string(workload_class::s4hana_app), "s4hana_app");
    EXPECT_EQ(to_string(workload_class::hana_db), "hana_db");
}

// --- catalog ----------------------------------------------------------------

TEST(FlavorCatalogTest, AddAndGet) {
    flavor_catalog catalog;
    const flavor_id id = catalog.add("g_c4_m32", 4, gib_to_mib(32), 100.0,
                                     workload_class::general_purpose);
    const flavor& f = catalog.get(id);
    EXPECT_EQ(f.name, "g_c4_m32");
    EXPECT_EQ(f.vcpus, 4);
    EXPECT_EQ(f.ram_mib, gib_to_mib(32));
    EXPECT_EQ(catalog.size(), 1u);
}

TEST(FlavorCatalogTest, FindByName) {
    flavor_catalog catalog;
    const flavor_id id =
        catalog.add("a", 1, 1024, 10.0, workload_class::general_purpose);
    catalog.add("b", 2, 2048, 20.0, workload_class::hana_db);
    EXPECT_EQ(catalog.find("a"), id);
    EXPECT_FALSE(catalog.find("missing").has_value());
}

TEST(FlavorCatalogTest, IdsAreSequential) {
    flavor_catalog catalog;
    EXPECT_EQ(catalog.add("a", 1, 1, 0.0, workload_class::general_purpose).value(), 0);
    EXPECT_EQ(catalog.add("b", 1, 1, 0.0, workload_class::general_purpose).value(), 1);
}

TEST(FlavorCatalogTest, RejectsDuplicateName) {
    flavor_catalog catalog;
    catalog.add("dup", 1, 1, 0.0, workload_class::general_purpose);
    EXPECT_THROW(catalog.add("dup", 2, 2, 0.0, workload_class::hana_db),
                 precondition_error);
}

TEST(FlavorCatalogTest, RejectsInvalidSpecs) {
    flavor_catalog catalog;
    EXPECT_THROW(catalog.add("", 1, 1, 0.0, workload_class::general_purpose),
                 precondition_error);
    EXPECT_THROW(catalog.add("x", 0, 1, 0.0, workload_class::general_purpose),
                 precondition_error);
    EXPECT_THROW(catalog.add("y", 1, 0, 0.0, workload_class::general_purpose),
                 precondition_error);
    EXPECT_THROW(catalog.add("z", 1, 1, -1.0, workload_class::general_purpose),
                 precondition_error);
}

TEST(FlavorCatalogTest, GetRejectsUnknownId) {
    flavor_catalog catalog;
    EXPECT_THROW(catalog.get(flavor_id(0)), precondition_error);
    EXPECT_THROW(catalog.get(flavor_id()), precondition_error);
}

TEST(FlavorCatalogTest, AllSpansEverything) {
    flavor_catalog catalog;
    catalog.add("a", 1, 1, 0.0, workload_class::general_purpose);
    catalog.add("b", 2, 2, 0.0, workload_class::hana_db);
    EXPECT_EQ(catalog.all().size(), 2u);
    EXPECT_EQ(catalog.all()[1].name, "b");
}

TEST(UnitsTest, GibMibConversions) {
    EXPECT_EQ(gib_to_mib(1), 1024);
    EXPECT_EQ(gib_to_mib(0.5), 512);
    EXPECT_DOUBLE_EQ(mib_to_gib(2048), 2.0);
}

TEST(UnitsTest, ClampHelpers) {
    EXPECT_DOUBLE_EQ(clamp_percent(-5.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp_percent(50.0), 50.0);
    EXPECT_DOUBLE_EQ(clamp_percent(150.0), 100.0);
    EXPECT_DOUBLE_EQ(clamp_ratio(1.5), 1.0);
    EXPECT_DOUBLE_EQ(clamp_ratio(-0.5), 0.0);
}

}  // namespace
}  // namespace sci
