// Tests for sched/server_group: affinity / anti-affinity scheduling.

#include "sched/server_group.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sched/scheduler.hpp"

#include "simcore/error.hpp"

namespace sci {
namespace {

struct group_fixture {
    placement_service placement;
    server_group_registry groups;
    flavor small{.id = flavor_id(0), .name = "s", .vcpus = 2,
                 .ram_mib = gib_to_mib(8), .disk_gib = 10.0};

    group_fixture() {
        for (int i = 0; i < 3; ++i) {
            placement.register_provider(
                bb_id(i), provider_inventory{96, gib_to_mib(1024), 1000.0,
                                             4.0, 1.0});
        }
    }

    host_state host(std::int32_t bb) const {
        host_state h;
        h.bb = bb_id(bb);
        h.total_pcpus = 96;
        h.total_ram_mib = gib_to_mib(1024);
        h.total_disk_gib = 1000.0;
        h.cpu_allocation_ratio = 4.0;
        return h;
    }

    request_context context(schedule_request& req) const {
        return request_context{req, small};
    }
};

TEST(ServerGroupRegistryTest, CreateAndMembership) {
    server_group_registry groups;
    const group_id ha = groups.create("ha-app", group_policy::anti_affinity);
    EXPECT_EQ(groups.policy_of(ha), group_policy::anti_affinity);
    EXPECT_EQ(groups.name_of(ha), "ha-app");
    EXPECT_TRUE(groups.members(ha).empty());

    groups.add_member(ha, vm_id(1));
    groups.add_member(ha, vm_id(2));
    EXPECT_EQ(groups.members(ha).size(), 2u);
    EXPECT_EQ(groups.group_of(vm_id(1)), ha);
    EXPECT_FALSE(groups.group_of(vm_id(9)).has_value());

    groups.remove_member(vm_id(1));
    EXPECT_EQ(groups.members(ha).size(), 1u);
    EXPECT_FALSE(groups.group_of(vm_id(1)).has_value());
}

TEST(ServerGroupRegistryTest, Validation) {
    server_group_registry groups;
    EXPECT_THROW(groups.create("", group_policy::affinity), precondition_error);
    EXPECT_THROW(groups.policy_of(group_id(5)), precondition_error);
    const group_id g = groups.create("g", group_policy::affinity);
    groups.add_member(g, vm_id(1));
    EXPECT_THROW(groups.add_member(g, vm_id(1)), precondition_error);
    EXPECT_THROW(groups.remove_member(vm_id(7)), precondition_error);
}

TEST(ServerGroupFilterTest, NoGroupPassesEverywhere) {
    group_fixture fx;
    const server_group_filter filter(fx.groups, fx.placement);
    schedule_request req;
    req.vm = vm_id(0);
    req.flavor = fx.small.id;
    EXPECT_TRUE(filter.passes(fx.host(0), fx.context(req)));
}

TEST(ServerGroupFilterTest, AntiAffinityRejectsOccupiedHosts) {
    group_fixture fx;
    const group_id ha = fx.groups.create("ha", group_policy::anti_affinity);
    fx.groups.add_member(ha, vm_id(1));
    fx.groups.add_member(ha, vm_id(2));
    fx.placement.claim(vm_id(1), bb_id(0), fx.small);

    schedule_request req;
    req.vm = vm_id(2);
    req.flavor = fx.small.id;
    req.group = ha;
    const server_group_filter filter(fx.groups, fx.placement);
    EXPECT_FALSE(filter.passes(fx.host(0), fx.context(req)));
    EXPECT_TRUE(filter.passes(fx.host(1), fx.context(req)));
    EXPECT_TRUE(filter.passes(fx.host(2), fx.context(req)));
}

TEST(ServerGroupFilterTest, AffinityRequiresCoLocation) {
    group_fixture fx;
    const group_id pair = fx.groups.create("pair", group_policy::affinity);
    fx.groups.add_member(pair, vm_id(1));
    fx.groups.add_member(pair, vm_id(2));

    schedule_request req;
    req.vm = vm_id(1);
    req.flavor = fx.small.id;
    req.group = pair;
    const server_group_filter filter(fx.groups, fx.placement);
    // no member placed yet: anywhere goes
    EXPECT_TRUE(filter.passes(fx.host(0), fx.context(req)));
    EXPECT_TRUE(filter.passes(fx.host(1), fx.context(req)));

    fx.placement.claim(vm_id(1), bb_id(1), fx.small);
    req.vm = vm_id(2);
    EXPECT_FALSE(filter.passes(fx.host(0), fx.context(req)));
    EXPECT_TRUE(filter.passes(fx.host(1), fx.context(req)));
}

TEST(ServerGroupFilterTest, SoftAntiAffinityNeverFilters) {
    group_fixture fx;
    const group_id soft = fx.groups.create("soft", group_policy::soft_anti_affinity);
    fx.groups.add_member(soft, vm_id(1));
    fx.groups.add_member(soft, vm_id(2));
    fx.placement.claim(vm_id(1), bb_id(0), fx.small);

    schedule_request req;
    req.vm = vm_id(2);
    req.flavor = fx.small.id;
    req.group = soft;
    const server_group_filter filter(fx.groups, fx.placement);
    EXPECT_TRUE(filter.passes(fx.host(0), fx.context(req)));
}

TEST(ServerGroupFilterTest, RequestingVmIgnoresItself) {
    group_fixture fx;
    const group_id ha = fx.groups.create("ha", group_policy::anti_affinity);
    fx.groups.add_member(ha, vm_id(1));
    fx.placement.claim(vm_id(1), bb_id(0), fx.small);

    // re-scheduling the same VM (e.g. migration) must not self-conflict
    schedule_request req;
    req.vm = vm_id(1);
    req.flavor = fx.small.id;
    req.group = ha;
    const server_group_filter filter(fx.groups, fx.placement);
    EXPECT_TRUE(filter.passes(fx.host(0), fx.context(req)));
}

TEST(ServerGroupWeigherTest, PrefersHostsWithFewerMembers) {
    group_fixture fx;
    const group_id soft = fx.groups.create("soft", group_policy::soft_anti_affinity);
    for (int i = 1; i <= 3; ++i) fx.groups.add_member(soft, vm_id(i));
    fx.placement.claim(vm_id(1), bb_id(0), fx.small);
    fx.placement.claim(vm_id(2), bb_id(0), fx.small);

    schedule_request req;
    req.vm = vm_id(3);
    req.flavor = fx.small.id;
    req.group = soft;
    const server_group_weigher weigher(fx.groups, fx.placement);
    EXPECT_LT(weigher.raw(fx.host(0), fx.context(req)),
              weigher.raw(fx.host(1), fx.context(req)));
    EXPECT_DOUBLE_EQ(weigher.raw(fx.host(1), fx.context(req)), 0.0);
}

TEST(ServerGroupSchedulerTest, EndToEndAntiAffinitySpread) {
    group_fixture fx;
    const group_id ha = fx.groups.create("ha", group_policy::anti_affinity);
    for (int i = 0; i < 3; ++i) fx.groups.add_member(ha, vm_id(i));

    // scheduler with the server-group filter appended
    auto filters = make_default_filters();
    filters.push_back(
        std::make_unique<server_group_filter>(fx.groups, fx.placement));
    filter_scheduler scheduler(std::move(filters), make_spread_weighers(),
                               make_pack_weighers());

    std::vector<host_state> hosts{fx.host(0), fx.host(1), fx.host(2)};
    std::set<std::int32_t> used;
    for (int i = 0; i < 3; ++i) {
        // refresh the host view with current usage
        for (host_state& h : hosts) {
            h.vcpus_used = fx.placement.usage(h.bb).vcpus_used;
            h.ram_used_mib = fx.placement.usage(h.bb).ram_used_mib;
            h.instances = fx.placement.usage(h.bb).instances;
        }
        schedule_request req;
        req.vm = vm_id(i);
        req.flavor = fx.small.id;
        req.group = ha;
        const auto ranked =
            scheduler.select_destinations(request_context{req, fx.small}, hosts, 1);
        ASSERT_FALSE(ranked.empty());
        fx.placement.claim(vm_id(i), ranked[0], fx.small);
        EXPECT_TRUE(used.insert(ranked[0].value()).second)
            << "replica " << i << " landed on an occupied BB";
    }
    EXPECT_EQ(used.size(), 3u);
}

TEST(GroupPolicyTest, ToString) {
    EXPECT_EQ(to_string(group_policy::affinity), "affinity");
    EXPECT_EQ(to_string(group_policy::anti_affinity), "anti-affinity");
    EXPECT_EQ(to_string(group_policy::soft_anti_affinity), "soft-anti-affinity");
}

}  // namespace
}  // namespace sci
