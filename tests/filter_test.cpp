// Tests for sched/filter: the Nova filter pipeline.

#include "sched/filter.hpp"

#include <gtest/gtest.h>

#include "simcore/error.hpp"

namespace sci {
namespace {

flavor make_flavor(core_count vcpus, double ram_gib, double disk = 100.0,
                   workload_class wc = workload_class::general_purpose) {
    return flavor{.id = flavor_id(0), .name = "f", .vcpus = vcpus,
                  .ram_mib = gib_to_mib(ram_gib), .disk_gib = disk,
                  .wclass = wc};
}

host_state make_host() {
    host_state h;
    h.bb = bb_id(0);
    h.az = az_id(0);
    h.dc = dc_id(0);
    h.purpose = bb_purpose::general;
    h.node_count = 4;
    h.total_pcpus = 4 * 96;
    h.total_ram_mib = 4 * gib_to_mib(1024);
    h.total_disk_gib = 4 * 7680.0;
    h.cpu_allocation_ratio = 4.0;
    h.ram_allocation_ratio = 1.0;
    return h;
}

schedule_request make_request() {
    schedule_request r;
    r.vm = vm_id(0);
    r.flavor = flavor_id(0);
    r.project = project_id(0);
    return r;
}

TEST(ComputeFilterTest, PassesWhenResourcesFree) {
    const flavor f = make_flavor(8, 64);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    const host_state h = make_host();
    EXPECT_TRUE(compute_filter().passes(h, ctx));
}

TEST(ComputeFilterTest, RejectsWhenVcpusExhausted) {
    const flavor f = make_flavor(8, 64);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    host_state h = make_host();
    h.vcpus_used = static_cast<core_count>(h.vcpu_capacity()) - 7;  // only 7 left
    EXPECT_FALSE(compute_filter().passes(h, ctx));
}

TEST(ComputeFilterTest, RejectsWhenRamExhausted) {
    const flavor f = make_flavor(8, 64);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    host_state h = make_host();
    h.ram_used_mib = h.total_ram_mib - gib_to_mib(63);
    EXPECT_FALSE(compute_filter().passes(h, ctx));
}

TEST(ComputeFilterTest, ExactFitPasses) {
    const flavor f = make_flavor(8, 64);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    host_state h = make_host();
    h.vcpus_used = static_cast<core_count>(h.vcpu_capacity()) - 8;
    h.ram_used_mib = h.total_ram_mib - gib_to_mib(64);
    EXPECT_TRUE(compute_filter().passes(h, ctx));
}

TEST(AvailabilityZoneFilterTest, NoConstraintPassesAll) {
    const flavor f = make_flavor(1, 1);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    EXPECT_TRUE(availability_zone_filter().passes(make_host(), ctx));
}

TEST(AvailabilityZoneFilterTest, EnforcesRequestedAz) {
    const flavor f = make_flavor(1, 1);
    schedule_request req = make_request();
    req.az = az_id(1);
    const request_context ctx{req, f};
    host_state h = make_host();
    EXPECT_FALSE(availability_zone_filter().passes(h, ctx));
    h.az = az_id(1);
    EXPECT_TRUE(availability_zone_filter().passes(h, ctx));
}

TEST(DatacenterFilterTest, EnforcesRequestedDc) {
    const flavor f = make_flavor(1, 1);
    schedule_request req = make_request();
    req.dc = dc_id(2);
    const request_context ctx{req, f};
    host_state h = make_host();
    EXPECT_FALSE(datacenter_filter().passes(h, ctx));
    h.dc = dc_id(2);
    EXPECT_TRUE(datacenter_filter().passes(h, ctx));
}

TEST(DiskFilterTest, ChecksFreeDatastore) {
    const flavor f = make_flavor(1, 1, 1000.0);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    host_state h = make_host();
    EXPECT_TRUE(disk_filter().passes(h, ctx));
    h.disk_used_gib = h.total_disk_gib - 999.0;
    EXPECT_FALSE(disk_filter().passes(h, ctx));
}

// --- BB purpose routing (Section 3.1) ---------------------------------------

struct purpose_case {
    workload_class wc;
    double ram_gib;
    bb_purpose purpose;
    bool expected;
};

class BbPurposeFilterTest : public testing::TestWithParam<purpose_case> {};

TEST_P(BbPurposeFilterTest, RoutesFlavorsToPurposes) {
    const purpose_case& c = GetParam();
    const flavor f = make_flavor(4, c.ram_gib, 10.0, c.wc);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    host_state h = make_host();
    h.purpose = c.purpose;
    EXPECT_EQ(bb_purpose_filter().passes(h, ctx), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Routing, BbPurposeFilterTest,
    testing::Values(
        // general purpose goes to general BBs only
        purpose_case{workload_class::general_purpose, 64, bb_purpose::general, true},
        purpose_case{workload_class::general_purpose, 64, bb_purpose::hana, false},
        purpose_case{workload_class::general_purpose, 64, bb_purpose::dedicated_xl, false},
        purpose_case{workload_class::general_purpose, 64, bb_purpose::gpu, false},
        // s4hana app servers share the general pool
        purpose_case{workload_class::s4hana_app, 128, bb_purpose::general, true},
        purpose_case{workload_class::s4hana_app, 128, bb_purpose::hana, false},
        // HANA DB flavors go to hana BBs
        purpose_case{workload_class::hana_db, 1024, bb_purpose::hana, true},
        purpose_case{workload_class::hana_db, 1024, bb_purpose::general, false},
        // >= 3 TB flavors require dedicated XL BBs regardless of class
        purpose_case{workload_class::hana_db, 3072, bb_purpose::dedicated_xl, true},
        purpose_case{workload_class::hana_db, 3072, bb_purpose::hana, false},
        purpose_case{workload_class::hana_db, 6144, bb_purpose::general, false}));

TEST(NumInstancesFilterTest, CapsInstances) {
    const flavor f = make_flavor(1, 1);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    host_state h = make_host();
    h.instances = 99;
    EXPECT_TRUE(num_instances_filter(100).passes(h, ctx));
    h.instances = 100;
    EXPECT_FALSE(num_instances_filter(100).passes(h, ctx));
}

TEST(NumInstancesFilterTest, RejectsNonPositiveLimit) {
    EXPECT_THROW(num_instances_filter(0), precondition_error);
}

TEST(ContentionFilterTest, RejectsHotHosts) {
    const flavor f = make_flavor(1, 1);
    const schedule_request req = make_request();
    const request_context ctx{req, f};
    host_state h = make_host();
    h.avg_cpu_contention_pct = 20.0;
    EXPECT_FALSE(contention_filter(15.0).passes(h, ctx));
    EXPECT_TRUE(contention_filter(25.0).passes(h, ctx));
    EXPECT_TRUE(contention_filter(20.0).passes(h, ctx));  // inclusive
}

TEST(ContentionFilterTest, RejectsNegativeThreshold) {
    EXPECT_THROW(contention_filter(-1.0), precondition_error);
}

TEST(DefaultFiltersTest, PipelineComposition) {
    const auto filters = make_default_filters();
    ASSERT_EQ(filters.size(), 5u);
    EXPECT_EQ(filters[0]->name(), "DatacenterFilter");
    EXPECT_EQ(filters[1]->name(), "AvailabilityZoneFilter");
    EXPECT_EQ(filters[2]->name(), "BBPurposeFilter");
    EXPECT_EQ(filters[3]->name(), "ComputeFilter");
    EXPECT_EQ(filters[4]->name(), "DiskFilter");
}

TEST(HostStateTest, CapacityHelpers) {
    host_state h = make_host();
    EXPECT_DOUBLE_EQ(h.vcpu_capacity(), 4 * 96 * 4.0);
    h.vcpus_used = 100;
    EXPECT_DOUBLE_EQ(h.free_vcpus(), 4 * 96 * 4.0 - 100);
    EXPECT_DOUBLE_EQ(h.ram_capacity_mib(),
                     static_cast<double>(4 * gib_to_mib(1024)));
    h.disk_used_gib = 100.0;
    EXPECT_DOUBLE_EQ(h.free_disk_gib(), 4 * 7680.0 - 100.0);
}

}  // namespace
}  // namespace sci
