// Determinism guard for the speculative parallel initial placement and
// the zero-copy scheduler fast path: fixed-seed runs at SCI_THREADS ∈
// {0, 1, 4} must produce bit-identical placements, stats, reports, and
// exported datasets — including a faulted run (crash rate > 0) so HA
// re-placement goes through the reworked conductor path.  The commit
// pass is exact (commit_speculation revalidates providers claimed since
// the batch snapshot), so this holds bitwise, not approximately.
//
// Conductor-level cases additionally pin the speculation semantics
// against a pristine (non-speculative) twin: commits match what the
// plain retry loop would pick even as earlier commits dirty the
// snapshot, and a speculation miss falls back without double-counting
// retries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "data/dataset.hpp"
#include "sched/conductor.hpp"

namespace sci {
namespace {

// ---------------------------------------------------------------------------
// engine-level determinism across thread counts
// ---------------------------------------------------------------------------

std::unique_ptr<sim_engine> run_engine(unsigned threads, double crash_rate) {
    engine_config config;
    config.scenario.scale = 0.02;  // ~36 nodes, ~960 VMs
    config.scenario.seed = 11;
    config.sampling_interval = 900;
    config.threads = threads;
    config.fault.host_crash_rate_per_day = crash_rate;
    auto engine = std::make_unique<sim_engine>(config);
    engine->run();
    return engine;
}

/// Three default-config engines at 0/1/4 threads (expensive; built once).
std::vector<std::unique_ptr<sim_engine>>& default_runs() {
    static auto* runs = [] {
        auto* v = new std::vector<std::unique_ptr<sim_engine>>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            v->push_back(run_engine(threads, 0.0));
        }
        return v;
    }();
    return *runs;
}

/// Same, with host crashes injected so HA re-placement runs in-window.
std::vector<std::unique_ptr<sim_engine>>& faulted_runs() {
    static auto* runs = [] {
        auto* v = new std::vector<std::unique_ptr<sim_engine>>();
        for (const unsigned threads : {0u, 1u, 4u}) {
            v->push_back(run_engine(threads, 0.05));
        }
        return v;
    }();
    return *runs;
}

void expect_stats_equal(const run_stats& a, const run_stats& b) {
    EXPECT_EQ(a.placements, b.placements);
    EXPECT_EQ(a.placement_failures, b.placement_failures);
    EXPECT_EQ(a.scheduler_retries, b.scheduler_retries);
    EXPECT_EQ(a.drs_migrations, b.drs_migrations);
    EXPECT_EQ(a.evacuations, b.evacuations);
    EXPECT_EQ(a.forced_fits, b.forced_fits);
    EXPECT_EQ(a.holistic_claim_rejections, b.holistic_claim_rejections);
    EXPECT_EQ(a.deletions, b.deletions);
    EXPECT_EQ(a.scrapes, b.scrapes);
    EXPECT_EQ(a.cross_bb_moves, b.cross_bb_moves);
    EXPECT_EQ(a.resizes, b.resizes);
    EXPECT_EQ(a.resize_failures, b.resize_failures);
    EXPECT_EQ(a.migration_seconds, b.migration_seconds);  // bitwise: ==
    EXPECT_EQ(a.max_migration_downtime_ms, b.max_migration_downtime_ms);
    EXPECT_EQ(a.speculative_placements, b.speculative_placements);
    EXPECT_EQ(a.speculation_misses, b.speculation_misses);
    EXPECT_EQ(a.window_batches, b.window_batches);
    EXPECT_EQ(a.window_speculations, b.window_speculations);
    EXPECT_EQ(a.window_speculative_placements, b.window_speculative_placements);
    EXPECT_EQ(a.window_speculation_misses, b.window_speculation_misses);
    EXPECT_EQ(a.window_speculation_invalidated, b.window_speculation_invalidated);
    // churn_placement_wall_ms is host timing, deliberately not compared
    // initial_placement_wall_ms is host timing, deliberately not compared
    EXPECT_EQ(a.recovery_batches, b.recovery_batches);
    EXPECT_EQ(a.recovery_speculations, b.recovery_speculations);
    EXPECT_EQ(a.recovery_speculative_placements,
              b.recovery_speculative_placements);
    EXPECT_EQ(a.recovery_speculation_misses, b.recovery_speculation_misses);
    EXPECT_EQ(a.recovery_speculation_invalidated,
              b.recovery_speculation_invalidated);
    EXPECT_EQ(a.recovery_speculation_cancelled,
              b.recovery_speculation_cancelled);
    // recovery_placement_wall_ms is host timing, deliberately not compared
    EXPECT_EQ(a.rebalance_target_speculations, b.rebalance_target_speculations);
    EXPECT_EQ(a.rebalance_targets_used, b.rebalance_targets_used);
    EXPECT_EQ(a.rebalance_target_invalidated, b.rebalance_target_invalidated);
    EXPECT_EQ(a.host_crashes, b.host_crashes);
    EXPECT_EQ(a.crash_victims, b.crash_victims);
    EXPECT_EQ(a.ha_restarts, b.ha_restarts);
    EXPECT_EQ(a.ha_restart_failures, b.ha_restart_failures);
    EXPECT_EQ(a.migration_aborts, b.migration_aborts);
    EXPECT_EQ(a.maintenance_evacuations, b.maintenance_evacuations);
    EXPECT_EQ(a.wasted_migration_seconds, b.wasted_migration_seconds);
}

/// The serial-reference assertion: thread-pool runs compared VM-by-VM
/// against the SCI_THREADS=0 run.
void expect_placements_equal(const sim_engine& serial, const sim_engine& pool) {
    const auto a = serial.vms().all();
    const auto b = pool.vms().all();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].state, b[i].state) << "vm " << i;
        ASSERT_EQ(a[i].placed_bb, b[i].placed_bb) << "vm " << i;
        ASSERT_EQ(a[i].placed_node, b[i].placed_node) << "vm " << i;
        ASSERT_EQ(a[i].migration_count, b[i].migration_count) << "vm " << i;
    }
}

TEST(ParallelPlacementTest, VmPlacementsMatchSerialReference) {
    for (std::size_t i = 1; i < default_runs().size(); ++i) {
        expect_placements_equal(*default_runs()[0], *default_runs()[i]);
    }
}

TEST(ParallelPlacementTest, FaultedVmPlacementsMatchSerialReference) {
    for (std::size_t i = 1; i < faulted_runs().size(); ++i) {
        expect_placements_equal(*faulted_runs()[0], *faulted_runs()[i]);
    }
}

TEST(ParallelPlacementTest, StatsAreBitIdenticalAcrossThreadCounts) {
    for (std::size_t i = 1; i < default_runs().size(); ++i) {
        expect_stats_equal(default_runs()[0]->stats(), default_runs()[i]->stats());
        expect_stats_equal(faulted_runs()[0]->stats(), faulted_runs()[i]->stats());
    }
}

TEST(ParallelPlacementTest, SpeculationCommitsTheInitialPopulation) {
    const run_stats& stats = default_runs()[0]->stats();
    EXPECT_GT(stats.speculative_placements, 0u);
    EXPECT_LE(stats.speculative_placements, stats.placements);
    // the faulted run places the same initial population speculatively
    EXPECT_EQ(faulted_runs()[0]->stats().speculative_placements,
              stats.speculative_placements);
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t hash_string(const std::string& s) {
    return fnv1a(1469598103934665603ull, s.data(), s.size());
}

TEST(ParallelPlacementTest, ReportHashesAreBitIdentical) {
    const std::uint64_t ref = hash_string(markdown_report(*default_runs()[0]));
    const std::uint64_t faulted_ref =
        hash_string(markdown_report(*faulted_runs()[0]));
    EXPECT_NE(ref, faulted_ref);  // the runs differ; only threads must not
    for (std::size_t i = 1; i < default_runs().size(); ++i) {
        EXPECT_EQ(ref, hash_string(markdown_report(*default_runs()[i])));
        EXPECT_EQ(faulted_ref, hash_string(markdown_report(*faulted_runs()[i])));
    }
}

/// Export dataset + events CSV and hash every produced file, in sorted
/// filename order, content and name both.
std::uint64_t hash_dataset_export(const sim_engine& engine,
                                  const std::filesystem::path& dir) {
    std::filesystem::remove_all(dir);
    export_dataset(engine.store(), dir);
    export_events_csv(engine.events(), dir / "events.csv");
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    std::uint64_t h = 1469598103934665603ull;
    for (const std::filesystem::path& file : files) {
        const std::string name = file.filename().string();
        h = fnv1a(h, name.data(), name.size());
        std::ifstream in(file, std::ios::binary);
        std::ostringstream body;
        body << in.rdbuf();
        const std::string s = body.str();
        h = fnv1a(h, s.data(), s.size());
    }
    std::filesystem::remove_all(dir);
    return h;
}

TEST(ParallelPlacementTest, DatasetExportsAreBitIdentical) {
    const std::filesystem::path base = "pptest_dataset";
    const std::uint64_t ref =
        hash_dataset_export(*default_runs()[0], base / "t0");
    const std::uint64_t faulted_ref =
        hash_dataset_export(*faulted_runs()[0], base / "f0");
    for (std::size_t i = 1; i < default_runs().size(); ++i) {
        EXPECT_EQ(ref, hash_dataset_export(*default_runs()[i],
                                           base / ("t" + std::to_string(i))));
        EXPECT_EQ(faulted_ref,
                  hash_dataset_export(*faulted_runs()[i],
                                      base / ("f" + std::to_string(i))));
    }
    std::filesystem::remove_all(base);
}

// ---------------------------------------------------------------------------
// conductor-level speculation semantics
// ---------------------------------------------------------------------------

struct speculation_fixture {
    fleet f;
    flavor_catalog catalog;
    placement_service placement;  ///< speculative conductor's allocations
    placement_service twin;       ///< pristine reference conductor's
    flavor_id small;

    speculation_fixture() {
        const region_id r = f.add_region("r");
        const az_id az = f.add_az(r, "az");
        const dc_id dc = f.add_dc(az, "dc");
        f.add_bb(dc, "gen-0", bb_purpose::general, profiles::general_purpose(), 2);
        f.add_bb(dc, "gen-1", bb_purpose::general, profiles::general_purpose(), 2);
        f.add_bb(dc, "gen-2", bb_purpose::general, profiles::general_purpose(), 2);
        small = catalog.add("g_c8_m64", 8, gib_to_mib(64), 200.0,
                            workload_class::general_purpose);
        for (placement_service* p : {&placement, &twin}) {
            for (const building_block& bb : f.bbs()) {
                const allocation_ratios ratios = default_ratios_for(bb.purpose);
                p->register_provider(
                    bb.id,
                    provider_inventory{f.bb_total_cores(bb.id),
                                       f.bb_total_memory(bb.id),
                                       bb.profile.storage_gib *
                                           static_cast<double>(bb.nodes.size()),
                                       ratios.cpu, ratios.ram});
            }
        }
    }

    schedule_request request(int vm) {
        schedule_request r;
        r.vm = vm_id(vm);
        r.flavor = small;
        r.project = project_id(0);
        r.policy = placement_policy::spread;
        return r;
    }
};

TEST(SpeculativeConductorTest, CommitMatchesPristineScheduleAsBatchDirties) {
    speculation_fixture fx;
    conductor nova(fx.f, fx.catalog, fx.placement, make_default_scheduler());
    conductor reference(fx.f, fx.catalog, fx.twin, make_default_scheduler());

    // one batch: speculate every request against the opening snapshot +
    // claim counters, then commit serially — earlier commits dirty the
    // providers later speculations must revalidate against
    constexpr int batch = 24;
    const std::vector<host_state> snapshot = nova.build_host_states();
    std::vector<std::uint64_t> base_counts;
    nova.snapshot_claim_counts(base_counts);
    std::vector<host_speculation> specs(batch);
    for (int i = 0; i < batch; ++i) {
        const schedule_request rq = fx.request(i);
        const request_context ctx{rq, fx.catalog.get(rq.flavor)};
        nova.scheduler().speculate(ctx, snapshot, specs[i]);
        EXPECT_TRUE(specs[i].valid);
        EXPECT_EQ(specs[i].survivors.size(), 3u);  // all general BBs fit
    }
    for (int i = 0; i < batch; ++i) {
        const placement_outcome committed =
            nova.schedule_and_claim(fx.request(i), &specs[i], base_counts);
        const placement_outcome pristine =
            reference.schedule_and_claim(fx.request(i));
        ASSERT_TRUE(committed.success);
        ASSERT_TRUE(pristine.success);
        EXPECT_EQ(committed.bb, pristine.bb) << "vm " << i;
        EXPECT_EQ(committed.attempts, pristine.attempts) << "vm " << i;
    }
    EXPECT_EQ(nova.speculative_placement_count(), static_cast<std::uint64_t>(batch));
    EXPECT_EQ(nova.speculation_miss_count(), 0u);
    EXPECT_EQ(nova.retry_count(), reference.retry_count());
}

TEST(SpeculativeConductorTest, MissFallsBackWithoutDoubleCountingRetries) {
    speculation_fixture fx;
    conductor nova(fx.f, fx.catalog, fx.placement, make_default_scheduler());
    conductor reference(fx.f, fx.catalog, fx.twin, make_default_scheduler());
    // Transient claim races exhaust every alternate of the first pass:
    // the commit path burns through all speculated candidates (a miss)
    // and the request must be re-placed by the pristine retry loop.
    const auto fault = [](vm_id, bb_id, int attempt) { return attempt <= 4; };
    nova.set_claim_fault(fault);
    reference.set_claim_fault(fault);

    const std::vector<host_state> snapshot = nova.build_host_states();
    std::vector<std::uint64_t> base_counts;
    nova.snapshot_claim_counts(base_counts);
    host_speculation spec;
    const schedule_request rq = fx.request(0);
    {
        const request_context ctx{rq, fx.catalog.get(rq.flavor)};
        nova.scheduler().speculate(ctx, snapshot, spec);
    }
    const placement_outcome committed =
        nova.schedule_and_claim(rq, &spec, base_counts);
    const placement_outcome pristine = reference.schedule_and_claim(rq);

    ASSERT_TRUE(committed.success);
    ASSERT_TRUE(pristine.success);
    EXPECT_EQ(nova.speculation_miss_count(), 1u);
    EXPECT_EQ(nova.speculative_placement_count(), 0u);
    EXPECT_EQ(committed.bb, pristine.bb);
    // the miss reset the attempt count, so the retries stat matches the
    // pristine conductor's exactly — no double-billing of the first pass
    EXPECT_EQ(committed.attempts, pristine.attempts);
    EXPECT_EQ(nova.retry_count(), reference.retry_count());
}

}  // namespace
}  // namespace sci
