// Tests for infra/fleet: the region -> AZ -> DC -> BB -> node hierarchy.

#include "infra/fleet.hpp"

#include <gtest/gtest.h>

#include <set>

#include "simcore/error.hpp"

namespace sci {
namespace {

fleet make_small_fleet() {
    fleet f;
    const region_id r = f.add_region("region-9");
    const az_id az_a = f.add_az(r, "az-a");
    const az_id az_b = f.add_az(r, "az-b");
    const dc_id dc_a = f.add_dc(az_a, "dc-a");
    const dc_id dc_b = f.add_dc(az_b, "dc-b");
    f.add_bb(dc_a, "bb-0", bb_purpose::general, profiles::general_purpose(), 4);
    f.add_bb(dc_a, "bb-1", bb_purpose::hana, profiles::hana_large_memory(), 2);
    f.add_bb(dc_b, "bb-2", bb_purpose::general, profiles::general_purpose_large(), 3);
    return f;
}

TEST(FleetTest, HierarchyCounts) {
    const fleet f = make_small_fleet();
    EXPECT_EQ(f.region_count(), 1u);
    EXPECT_EQ(f.az_count(), 2u);
    EXPECT_EQ(f.dc_count(), 2u);
    EXPECT_EQ(f.bb_count(), 3u);
    EXPECT_EQ(f.node_count(), 9u);
}

TEST(FleetTest, CrossLinksAreConsistent) {
    const fleet f = make_small_fleet();
    const region& r = f.get(region_id(0));
    EXPECT_EQ(r.azs.size(), 2u);
    const availability_zone& az = f.get(r.azs[0]);
    EXPECT_EQ(az.region, r.id);
    EXPECT_EQ(az.dcs.size(), 1u);
    const datacenter& dc = f.get(az.dcs[0]);
    EXPECT_EQ(dc.az, az.id);
    EXPECT_EQ(dc.bbs.size(), 2u);
    const building_block& bb = f.get(dc.bbs[0]);
    EXPECT_EQ(bb.dc, dc.id);
    EXPECT_EQ(bb.nodes.size(), 4u);
    const compute_node& node = f.get(bb.nodes[0]);
    EXPECT_EQ(node.bb, bb.id);
}

TEST(FleetTest, NodeProfileResolvesThroughBb) {
    const fleet f = make_small_fleet();
    const building_block& hana_bb = f.get(bb_id(1));
    for (node_id node : hana_bb.nodes) {
        EXPECT_EQ(f.node_profile(node).name, "hana-224c-8tb");
    }
}

TEST(FleetTest, DcOfHelpers) {
    const fleet f = make_small_fleet();
    EXPECT_EQ(f.dc_of(bb_id(0)), dc_id(0));
    EXPECT_EQ(f.dc_of(bb_id(2)), dc_id(1));
    const building_block& bb = f.get(bb_id(2));
    EXPECT_EQ(f.dc_of(bb.nodes[0]), dc_id(1));
}

TEST(FleetTest, NodesOfDc) {
    const fleet f = make_small_fleet();
    EXPECT_EQ(f.nodes_of_dc(dc_id(0)).size(), 6u);  // 4 + 2
    EXPECT_EQ(f.nodes_of_dc(dc_id(1)).size(), 3u);
}

TEST(FleetTest, BbsOfAz) {
    const fleet f = make_small_fleet();
    EXPECT_EQ(f.bbs_of_az(az_id(0)).size(), 2u);
    EXPECT_EQ(f.bbs_of_az(az_id(1)).size(), 1u);
}

TEST(FleetTest, BbCapacityTotals) {
    const fleet f = make_small_fleet();
    const hardware_profile gp = profiles::general_purpose();
    EXPECT_EQ(f.bb_total_cores(bb_id(0)), 4 * gp.pcpu_cores);
    EXPECT_EQ(f.bb_total_memory(bb_id(0)), 4 * gp.memory_mib);
}

TEST(FleetTest, AddNodeGrowsBb) {
    fleet f = make_small_fleet();
    const node_id added = f.add_node(bb_id(0));
    EXPECT_EQ(f.get(bb_id(0)).nodes.size(), 5u);
    EXPECT_EQ(f.get(added).bb, bb_id(0));
}

TEST(FleetTest, NodeNamesAreUniqueAndStable) {
    const fleet a = make_small_fleet();
    const fleet b = make_small_fleet();
    std::set<std::string> names;
    for (const compute_node& n : a.nodes()) names.insert(n.name);
    EXPECT_EQ(names.size(), a.node_count());
    // deterministic across constructions
    for (std::size_t i = 0; i < a.node_count(); ++i) {
        EXPECT_EQ(a.nodes()[i].name, b.nodes()[i].name);
    }
}

TEST(FleetTest, NodesAvailableByDefault) {
    const fleet f = make_small_fleet();
    const compute_node& node = f.get(node_id(0));
    EXPECT_TRUE(node.available_at(0));
    EXPECT_TRUE(node.available_at(-days(1000)));
    EXPECT_TRUE(node.available_at(days(1000)));
}

TEST(FleetTest, AvailabilityWindow) {
    fleet f = make_small_fleet();
    compute_node& node = f.get_mutable(node_id(0));
    node.available_from = days(5);
    node.available_until = days(20);
    EXPECT_FALSE(node.available_at(days(4)));
    EXPECT_TRUE(node.available_at(days(5)));
    EXPECT_TRUE(node.available_at(days(19)));
    EXPECT_FALSE(node.available_at(days(20)));
}

TEST(FleetTest, LookupsRejectInvalidIds) {
    const fleet f = make_small_fleet();
    EXPECT_THROW(f.get(region_id(5)), precondition_error);
    EXPECT_THROW(f.get(az_id()), precondition_error);
    EXPECT_THROW(f.get(dc_id(9)), precondition_error);
    EXPECT_THROW(f.get(bb_id(99)), precondition_error);
    EXPECT_THROW(f.get(node_id(-1)), precondition_error);
}

TEST(FleetTest, BuildersValidateParents) {
    fleet f;
    EXPECT_THROW(f.add_az(region_id(0), "az"), precondition_error);
    const region_id r = f.add_region("r");
    EXPECT_THROW(f.add_dc(az_id(3), "dc"), precondition_error);
    const az_id az = f.add_az(r, "az");
    EXPECT_THROW(
        f.add_bb(dc_id(1), "bb", bb_purpose::general, profiles::general_purpose(), 1),
        precondition_error);
    const dc_id dc = f.add_dc(az, "dc");
    EXPECT_THROW(f.add_bb(dc, "bb", bb_purpose::general, hardware_profile{}, 1),
                 precondition_error);
    EXPECT_THROW(f.add_node(bb_id(0)), precondition_error);
}

TEST(FleetTest, BbPurposeToString) {
    EXPECT_EQ(to_string(bb_purpose::general), "general");
    EXPECT_EQ(to_string(bb_purpose::hana), "hana");
    EXPECT_EQ(to_string(bb_purpose::dedicated_xl), "dedicated_xl");
    EXPECT_EQ(to_string(bb_purpose::gpu), "gpu");
}

TEST(AnonymisedNameTest, DeterministicAndKindScoped) {
    EXPECT_EQ(anonymised_name("node", 1), anonymised_name("node", 1));
    EXPECT_NE(anonymised_name("node", 1), anonymised_name("node", 2));
    EXPECT_NE(anonymised_name("node", 1), anonymised_name("vm", 1));
    EXPECT_TRUE(anonymised_name("vm", 3).starts_with("vm-"));
}

TEST(StrongIdTest, ValidityAndComparison) {
    EXPECT_FALSE(node_id().valid());
    EXPECT_TRUE(node_id(0).valid());
    EXPECT_LT(node_id(1), node_id(2));
    EXPECT_EQ(node_id(3), node_id(3));
    std::hash<node_id> h;
    EXPECT_NE(h(node_id(1)), h(node_id(2)));
}

}  // namespace
}  // namespace sci
