// Contention study: reproduce the paper's noisy-neighbor investigation
// (Sections 5.1, 7) on a synthetic deployment and show how the two
// mitigation levers — DRS rebalancing and contention-aware placement —
// change the contention envelope.
//
// Run:  ./contention_study [scale]   (default 0.04)

#include <cstdlib>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "core/engine.hpp"

namespace {

struct study_result {
    double worst_mean = 0.0;
    double worst_p95 = 0.0;
    double worst_max = 0.0;
    double peak_ready_s = 0.0;
    std::uint64_t migrations = 0;
};

study_result run_study(double scale, bool drs_enabled, bool contention_aware) {
    sci::engine_config config;
    config.scenario.scale = scale;
    config.scenario.seed = 21;
    config.drs.enabled = drs_enabled;
    config.contention_aware = contention_aware;
    sci::sim_engine engine(config);
    engine.run();

    study_result result;
    for (const auto& day : sci::fig9_contention_by_day(engine.store())) {
        result.worst_mean = std::max(result.worst_mean, day.mean_pct);
        result.worst_p95 = std::max(result.worst_p95, day.p95_pct);
        result.worst_max = std::max(result.worst_max, day.max_pct);
    }
    for (const auto& s : sci::fig8_top_ready_nodes(engine.store(), 1)) {
        result.peak_ready_s = std::max(result.peak_ready_s, s.peak_ready_ms / 1000.0);
    }
    result.migrations = engine.stats().drs_migrations;
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.04;
    std::cout << "Contention study at scale " << scale
              << " — paper context: contention >40% on several nodes, CPU "
                 "ready time up to 220 s (Figures 8, 9)\n\n";

    sci::table_printer table({"configuration", "worst daily mean %",
                              "worst p95 %", "worst max %", "peak ready (s)",
                              "migrations"});
    const auto row = [&](const char* label, const study_result& r) {
        table.add_row({label, sci::format_double(r.worst_mean),
                       sci::format_double(r.worst_p95),
                       sci::format_double(r.worst_max),
                       sci::format_double(r.peak_ready_s),
                       std::to_string(r.migrations)});
    };
    std::cout << "running: vanilla (DRS on) ...\n";
    row("vanilla Nova + DRS", run_study(scale, true, false));
    std::cout << "running: DRS off ...\n";
    row("vanilla Nova, DRS off", run_study(scale, false, false));
    std::cout << "running: contention-aware ...\n";
    row("contention-aware + DRS", run_study(scale, true, true));
    std::cout << "\n" << table.to_string();
    std::cout << "\nReading: DRS tames intra-cluster hotspots; feeding the "
                 "observed contention back into placement (the paper's §7 "
                 "guidance) lowers the envelope further.\n";
    return 0;
}
