// Dataset export: regenerate a (scaled) equivalent of the published
// Zenodo dataset — anonymized per-metric CSV telemetry (Appendix B) — from
// a simulation run, then read the manifest back and summarize it.
//
// Run:  ./dataset_export [scale] [out_dir]   (defaults: 0.02 ./sci_dataset)

#include <cstdlib>
#include <iostream>

#include "analysis/render.hpp"
#include "core/engine.hpp"
#include "data/dataset.hpp"

int main(int argc, char** argv) {
    using namespace sci;
    engine_config config;
    config.scenario.scale = argc > 1 ? std::atof(argv[1]) : 0.02;
    config.scenario.seed = 3;
    const std::filesystem::path out_dir =
        argc > 2 ? argv[2] : "sci_dataset";

    std::cout << "Simulating region at scale " << config.scenario.scale
              << " ...\n";
    sim_engine engine(config);
    engine.run();

    std::cout << "Exporting dataset to " << out_dir << " ...\n";
    const dataset_export_report report =
        export_dataset(engine.store(), out_dir);
    const std::size_t events =
        export_events_csv(engine.events(), out_dir / "events.csv");
    std::cout << "  metrics: " << report.metrics_exported
              << ", series: " << report.series_exported
              << ", daily rows: " << report.daily_rows
              << ", scheduling events: " << events << "\n\n";

    const auto manifest = read_manifest(out_dir);
    table_printer table({"metric", "subsystem", "unit", "series"});
    for (const manifest_entry& e : manifest) {
        table.add_row({e.metric, e.subsystem, e.unit,
                       std::to_string(e.series_count)});
    }
    std::cout << table.to_string();
    std::cout << "\nLayout mirrors the paper's release: anonymized hostnames, "
                 "one CSV per Table 4 metric, 30 days of aggregates.\n"
              << "Set store.keep_raw=true in code for full-resolution raw "
                 "sample export (memory permitting).\n";
    return 0;
}
