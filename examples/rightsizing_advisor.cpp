// Right-sizing advisor: the paper's §7 guidance made executable —
// "recommendations about qualified right-sizing could help users to
// adjust the requested resources and the associated costs based on the
// actual usage."
//
// Simulates the region, then for every *underutilized* VM (mean CPU
// usage < 70%, Section 5.5) finds the smallest catalog flavor that still
// covers its observed peak demand with 25% headroom, and reports the
// reclaimable vCPU/memory.
//
// Run:  ./rightsizing_advisor [scale]   (default 0.04)

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "analysis/render.hpp"
#include "core/engine.hpp"

namespace {

struct recommendation {
    sci::vm_id vm;
    sci::flavor_id from;
    sci::flavor_id to;
    sci::core_count saved_vcpus = 0;
    sci::mebibytes saved_ram = 0;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace sci;
    engine_config config;
    config.scenario.scale = argc > 1 ? std::atof(argv[1]) : 0.04;
    config.scenario.seed = 5;
    std::cout << "Simulating region at scale " << config.scenario.scale
              << " ...\n";
    sim_engine engine(config);
    engine.run();

    const flavor_catalog& catalog = engine.catalog();
    const metric_store& store = engine.store();

    // candidate flavors sorted by size for "smallest covering flavor"
    std::vector<const flavor*> ladder;
    for (const flavor& f : catalog.all()) {
        if (f.wclass == workload_class::general_purpose) ladder.push_back(&f);
    }
    std::sort(ladder.begin(), ladder.end(), [](const flavor* a, const flavor* b) {
        if (a->vcpus != b->vcpus) return a->vcpus < b->vcpus;
        return a->ram_mib < b->ram_mib;
    });

    std::vector<recommendation> recs;
    core_count total_saved_vcpus = 0;
    mebibytes total_saved_ram = 0;
    std::size_t examined = 0;

    for (const vm_record& rec : engine.vms().all()) {
        if (rec.state != vm_state::active) continue;
        const flavor& current = catalog.get(rec.flavor);
        if (current.wclass != workload_class::general_purpose) continue;
        ++examined;

        const label_set labels{{"vm", rec.name}};
        const auto cpu_series =
            store.find_series(metric_names::vm_cpu_usage_ratio, labels);
        const auto mem_series =
            store.find_series(metric_names::vm_memory_consumed_ratio, labels);
        if (!cpu_series || !mem_series) continue;
        const running_stats cpu = store.window_aggregate(*cpu_series);
        const running_stats mem = store.window_aggregate(*mem_series);
        if (cpu.empty() || cpu.mean() >= 0.70) continue;  // not underutilized

        // peak demand with 25% headroom
        const double needed_cores =
            cpu.max() * static_cast<double>(current.vcpus) * 1.25;
        const double needed_ram =
            mem.max() * static_cast<double>(current.ram_mib) * 1.25;
        for (const flavor* candidate : ladder) {
            if (static_cast<double>(candidate->vcpus) < needed_cores) continue;
            if (static_cast<double>(candidate->ram_mib) < needed_ram) continue;
            if (candidate->disk_gib < current.disk_gib) continue;
            if (candidate->vcpus >= current.vcpus &&
                candidate->ram_mib >= current.ram_mib) {
                break;  // no smaller flavor covers the demand
            }
            recommendation r;
            r.vm = rec.id;
            r.from = current.id;
            r.to = candidate->id;
            r.saved_vcpus = current.vcpus - candidate->vcpus;
            r.saved_ram = current.ram_mib - candidate->ram_mib;
            total_saved_vcpus += std::max<core_count>(r.saved_vcpus, 0);
            total_saved_ram += std::max<mebibytes>(r.saved_ram, 0);
            recs.push_back(r);
            break;
        }
    }

    std::cout << "\nexamined " << examined << " general-purpose VMs; "
              << recs.size() << " right-sizing recommendations ("
              << format_double(100.0 * static_cast<double>(recs.size()) /
                                   std::max<std::size_t>(examined, 1))
              << "% of the fleet)\n";
    std::cout << "reclaimable: " << total_saved_vcpus << " vCPUs, "
              << format_double(mib_to_gib(total_saved_ram), 0) << " GiB RAM\n\n";

    // top moves by flavor pair
    std::map<std::pair<std::string, std::string>, int> by_pair;
    for (const recommendation& r : recs) {
        ++by_pair[{catalog.get(r.from).name, catalog.get(r.to).name}];
    }
    std::vector<std::pair<std::pair<std::string, std::string>, int>> pairs(
        by_pair.begin(), by_pair.end());
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });

    table_printer table({"current flavor", "recommended", "VMs"});
    for (std::size_t i = 0; i < pairs.size() && i < 10; ++i) {
        table.add_row({pairs[i].first.first, pairs[i].first.second,
                       std::to_string(pairs[i].second)});
    }
    std::cout << table.to_string();
    std::cout << "\n(paper Figure 14a: >80% of VMs use less than 70% of "
                 "their allocated CPU — right-sizing recovers that slack)\n";
    return 0;
}
