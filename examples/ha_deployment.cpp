// HA deployment: an S/4HANA landscape placed with server groups.
//
// The paper's platform serves HA enterprise landscapes (Sections 2.1, 3.1:
// availability zones "ensure high-availability scenarios").  A production
// S/4HANA system is a HANA database plus several redundant ABAP
// application servers; the replicas must not share a failure domain.
// This example builds that landscape with Nova server groups:
//   - the app servers join a hard anti-affinity group (distinct BBs)
//   - the database pair (primary + HSR secondary) is anti-affine too
// and verifies the resulting placement survives any single-BB failure.
//
// Run:  ./ha_deployment

#include <iostream>
#include <map>
#include <set>

#include "analysis/render.hpp"
#include "core/scenario.hpp"
#include "sched/conductor.hpp"
#include "sched/server_group.hpp"

int main() {
    using namespace sci;
    std::cout << "HA S/4HANA landscape placement with server groups\n\n";

    // a small region: 6 general BBs + 3 HANA BBs
    fleet f;
    const region_id region = f.add_region("region");
    const dc_id dc = f.add_dc(f.add_az(region, "az-a"), "dc-a");
    for (int i = 0; i < 6; ++i) {
        f.add_bb(dc, "gen-" + std::to_string(i), bb_purpose::general,
                 profiles::general_purpose(), 3);
    }
    for (int i = 0; i < 3; ++i) {
        f.add_bb(dc, "hana-" + std::to_string(i), bb_purpose::hana,
                 profiles::hana_large_memory(), 2);
    }

    flavor_catalog catalog;
    const flavor_id app = catalog.add("a_c16_m128", 16, gib_to_mib(128), 200,
                                      workload_class::s4hana_app);
    const flavor_id db = catalog.add("hana_c64_m2048", 64, gib_to_mib(2048),
                                     4096, workload_class::hana_db);

    placement_service placement;
    for (const building_block& bb : f.bbs()) {
        const allocation_ratios ratios = default_ratios_for(bb.purpose);
        placement.register_provider(
            bb.id, provider_inventory{f.bb_total_cores(bb.id),
                                      f.bb_total_memory(bb.id),
                                      bb.profile.storage_gib * 3.0,
                                      ratios.cpu, ratios.ram});
    }

    // scheduler with the server-group filter in the pipeline
    server_group_registry groups;
    auto filters = make_default_filters();
    filters.push_back(std::make_unique<server_group_filter>(groups, placement));
    conductor nova(f, catalog, placement,
                   filter_scheduler(std::move(filters), make_spread_weighers(),
                                    make_pack_weighers()));

    const group_id app_group =
        groups.create("s4-app-servers", group_policy::anti_affinity);
    const group_id db_group =
        groups.create("hana-hsr-pair", group_policy::anti_affinity);

    vm_registry vms;
    std::map<std::string, bb_id> landscape;
    const auto place = [&](const char* role, flavor_id fid, group_id group,
                           placement_policy policy) {
        const vm_id vm = vms.create(fid, project_id(7), 0);
        groups.add_member(group, vm);
        schedule_request request;
        request.vm = vm;
        request.flavor = fid;
        request.project = project_id(7);
        request.policy = policy;
        request.group = group;
        const placement_outcome outcome = nova.schedule_and_claim(request);
        if (!outcome.success) {
            std::cout << "  " << role << ": NoValidHost!\n";
            return;
        }
        landscape[role] = outcome.bb;
    };

    place("db-primary", db, db_group, placement_policy::pack);
    place("db-secondary (HSR)", db, db_group, placement_policy::pack);
    for (int i = 0; i < 4; ++i) {
        place(("app-server-" + std::to_string(i)).c_str(), app, app_group,
              placement_policy::spread);
    }

    table_printer table({"component", "building block"});
    for (const auto& [role, bb] : landscape) {
        table.add_row({role, f.get(bb).name});
    }
    std::cout << table.to_string();

    // verify: no single BB failure takes down both DB replicas or more
    // than one app server
    std::set<std::int32_t> app_bbs, db_bbs;
    for (const auto& [role, bb] : landscape) {
        if (role.starts_with("app")) {
            app_bbs.insert(bb.value());
        } else {
            db_bbs.insert(bb.value());
        }
    }
    std::cout << "\napp servers on " << app_bbs.size()
              << " distinct building blocks (4 required) — "
              << (app_bbs.size() == 4 ? "OK" : "VIOLATION") << "\n";
    std::cout << "database replicas on " << db_bbs.size()
              << " distinct building blocks (2 required) — "
              << (db_bbs.size() == 2 ? "OK" : "VIOLATION") << "\n";
    std::cout << "\nAny single building-block outage leaves the landscape "
                 "with a database replica and three app servers.\n";
    return app_bbs.size() == 4 && db_bbs.size() == 2 ? 0 : 1;
}
