// Quickstart: build a scaled-down replica of the studied region, play the
// 30-day observation window, and print the headline numbers the paper
// reports (Sections 5.1–5.5).
//
// Run:  ./quickstart [scale]    (default 0.05 — ~90 nodes, ~2,400 VMs)

#include <cstdlib>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "core/engine.hpp"

int main(int argc, char** argv) {
    sci::engine_config config;
    config.scenario.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
    config.scenario.seed = 7;

    std::cout << "Building regional scenario at scale " << config.scenario.scale
              << " ...\n";
    sci::sim_engine engine(config);
    const sci::fleet& fleet = engine.infrastructure();
    std::cout << "  fleet: " << fleet.node_count() << " nodes in "
              << fleet.bb_count() << " building blocks across "
              << fleet.dc_count() << " DCs\n";
    std::cout << "  target population: " << engine.scn().target_vm_population
              << " VMs\n\nSimulating 30 days ...\n";
    engine.run();

    const sci::run_stats& stats = engine.stats();
    std::cout << "  placements=" << stats.placements
              << " failures=" << stats.placement_failures
              << " drs_migrations=" << stats.drs_migrations
              << " deletions=" << stats.deletions
              << " scrapes=" << stats.scrapes << "\n\n";

    // --- CPU free heatmap (Figure 5) ------------------------------------
    const sci::dc_id dc = fleet.dcs().front().id;
    const sci::heatmap fig5 = sci::fig5_free_cpu_per_node(engine.store(), fleet, dc);
    std::cout << "Figure 5 preview — daily % free CPU per node (" << dc.value()
              << "):\n"
              << sci::render_heatmap_ascii(fig5);

    // --- contention (Figure 9) -------------------------------------------
    const auto contention = sci::fig9_contention_by_day(engine.store());
    double max_contention = 0.0;
    for (const auto& day : contention) {
        max_contention = std::max(max_contention, day.max_pct);
    }
    std::cout << "\nMax CPU contention over the window: "
              << sci::format_double(max_contention) << "% (paper: up to >40%)\n";

    // --- VM utilization classes (Figure 14) -------------------------------
    const auto cpu = sci::fig14a_cpu_utilization(engine.store());
    const auto mem = sci::fig14b_memory_utilization(engine.store());
    std::cout << "VM CPU utilization:    " << sci::format_double(cpu.classes.under_pct)
              << "% under / " << sci::format_double(cpu.classes.optimal_pct)
              << "% optimal / " << sci::format_double(cpu.classes.over_pct)
              << "% over   (paper: >80% under)\n";
    std::cout << "VM memory utilization: " << sci::format_double(mem.classes.under_pct)
              << "% under / " << sci::format_double(mem.classes.optimal_pct)
              << "% optimal / " << sci::format_double(mem.classes.over_pct)
              << "% over   (paper: ~38% / ~10% / ~52%)\n";
    return 0;
}
