// scisim — command-line driver for the SAP Cloud Infrastructure
// reproduction.
//
//   scisim simulate [--scale S] [--seed N] [--out DIR]   run + export dataset
//   scisim report   [--scale S] [--seed N]               run + key findings
//   scisim analyze  --out DIR                            analyze an exported
//                                                        dataset (no sim)
//   scisim advisor  [--scale S] [--seed N]               overcommit advice
//   scisim fleet                                         Table 5 overview
//
// Scale 1.0 reproduces the paper's full region (1,800 nodes / 48,000 VMs);
// the default 0.05 runs in seconds on a laptop.

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include <fstream>

#include "analysis/advisor.hpp"
#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"
#include "data/dataset.hpp"

namespace {

struct cli_options {
    double scale = 0.05;
    std::uint64_t seed = 42;
    std::filesystem::path out_dir = "sci_dataset";
    std::filesystem::path markdown_file;  ///< report: write markdown here
    sci::fault_config fault;              ///< inert unless a knob is set
};

cli_options parse_options(int argc, char** argv, int first) {
    cli_options options;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            options.scale = std::atof(next());
        } else if (arg == "--seed") {
            options.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--out") {
            options.out_dir = next();
        } else if (arg == "--markdown") {
            options.markdown_file = next();
        } else if (arg == "--crash-rate") {
            options.fault.host_crash_rate_per_day = std::atof(next());
        } else if (arg == "--claim-fail") {
            options.fault.claim_failure_probability = std::atof(next());
        } else if (arg == "--mig-abort") {
            options.fault.migration_abort_probability = std::atof(next());
        } else if (arg == "--degraded") {
            options.fault.degraded_node_fraction = std::atof(next());
        } else if (arg == "--degraded-cpu-factor") {
            options.fault.degraded_cpu_factor = std::atof(next());
        } else if (arg == "--maintenance") {
            options.fault.maintenance_windows = std::atoi(next());
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            std::exit(2);
        }
    }
    if (options.scale <= 0.0) {
        std::cerr << "--scale must be positive\n";
        std::exit(2);
    }
    return options;
}

sci::sim_engine run_engine(const cli_options& options) {
    sci::engine_config config;
    config.scenario.scale = options.scale;
    config.scenario.seed = options.seed;
    config.fault = options.fault;
    std::cout << "simulating 30 days at scale " << options.scale << " (seed "
              << options.seed << ") ...\n";
    sci::sim_engine engine(config);
    engine.run();
    const sci::run_stats& stats = engine.stats();
    std::cout << "  " << engine.infrastructure().node_count() << " nodes, "
              << stats.placements << " placements, " << stats.deletions
              << " deletions, " << stats.drs_migrations << " DRS migrations, "
              << stats.scrapes << " scrapes\n";
    if (config.fault.enabled()) {
        std::cout << "  faults: " << stats.host_crashes << " host crashes, "
                  << stats.crash_victims << " victims, " << stats.ha_restarts
                  << " HA restarts, " << stats.migration_aborts
                  << " migration aborts\n";
    }
    return engine;
}

int cmd_simulate(const cli_options& options) {
    const sci::sim_engine engine = run_engine(options);
    std::cout << "exporting dataset to " << options.out_dir << " ...\n";
    const auto report = sci::export_dataset(engine.store(), options.out_dir);
    const std::size_t events = sci::export_events_csv(
        engine.events(), options.out_dir / "events.csv");
    std::cout << "  " << report.metrics_exported << " metrics, "
              << report.series_exported << " series, " << report.daily_rows
              << " daily rows, " << events << " scheduling events\n";
    return 0;
}

int cmd_report(const cli_options& options) {
    sci::sim_engine engine = run_engine(options);
    if (!options.markdown_file.empty()) {
        std::ofstream out(options.markdown_file);
        if (!out.good()) {
            std::cerr << "cannot write " << options.markdown_file << "\n";
            return 1;
        }
        sci::write_markdown_report(out, engine);
        std::cout << "wrote markdown report to " << options.markdown_file
                  << "\n";
        return 0;
    }
    const sci::fleet& fleet = engine.infrastructure();
    const sci::dc_id dc = fleet.dcs().front().id;

    std::cout << "\n-- Figure 5: % free CPU per node ("
              << fleet.get(dc).name << ") --\n"
              << render_heatmap_ascii(
                     sci::fig5_free_cpu_per_node(engine.store(), fleet, dc));

    double worst_mean = 0.0, worst_max = 0.0;
    for (const auto& day : sci::fig9_contention_by_day(engine.store())) {
        worst_mean = std::max(worst_mean, day.mean_pct);
        worst_max = std::max(worst_max, day.max_pct);
    }
    std::cout << "\n-- contention -- worst daily mean "
              << sci::format_double(worst_mean) << "%, worst node max "
              << sci::format_double(worst_max) << "% (paper: <5% / >40%)\n";

    const auto cpu = sci::fig14a_cpu_utilization(engine.store());
    const auto mem = sci::fig14b_memory_utilization(engine.store());
    std::cout << "-- VM CPU util -- " << sci::format_double(cpu.classes.under_pct)
              << "% under / " << sci::format_double(cpu.classes.optimal_pct)
              << "% optimal / " << sci::format_double(cpu.classes.over_pct)
              << "% over\n";
    std::cout << "-- VM mem util -- " << sci::format_double(mem.classes.under_pct)
              << "% under / " << sci::format_double(mem.classes.optimal_pct)
              << "% optimal / " << sci::format_double(mem.classes.over_pct)
              << "% over\n";

    std::cout << "-- events -- creates "
              << engine.events().count(sci::lifecycle_event_kind::create)
              << ", deletes "
              << engine.events().count(sci::lifecycle_event_kind::remove)
              << ", migrations "
              << engine.events().count(sci::lifecycle_event_kind::migrate)
              << ", evacuations "
              << engine.events().count(sci::lifecycle_event_kind::evacuate)
              << "\n";
    return 0;
}

int cmd_analyze(const cli_options& options) {
    std::cout << "importing dataset from " << options.out_dir << " ...\n";
    const sci::metric_store store = sci::import_dataset(options.out_dir);
    std::cout << "  " << store.series_count() << " series, "
              << store.total_samples() << " samples (daily aggregates)\n\n";

    double worst_mean = 0.0, worst_max = 0.0;
    for (const auto& day : sci::fig9_contention_by_day(store)) {
        worst_mean = std::max(worst_mean, day.mean_pct);
        worst_max = std::max(worst_max, day.max_pct);
    }
    std::cout << "-- contention -- worst daily mean "
              << sci::format_double(worst_mean) << "%, worst node max "
              << sci::format_double(worst_max) << "%\n";
    const auto cpu = sci::fig14a_cpu_utilization(store);
    const auto mem = sci::fig14b_memory_utilization(store);
    std::cout << "-- VM CPU util -- " << sci::format_double(cpu.classes.under_pct)
              << "% under / " << sci::format_double(cpu.classes.optimal_pct)
              << "% optimal / " << sci::format_double(cpu.classes.over_pct)
              << "% over (" << cpu.classes.vm_count << " VMs)\n";
    std::cout << "-- VM mem util -- " << sci::format_double(mem.classes.under_pct)
              << "% under / " << sci::format_double(mem.classes.optimal_pct)
              << "% optimal / " << sci::format_double(mem.classes.over_pct)
              << "% over\n";
    // events, if exported
    const auto events_file = options.out_dir / "events.csv";
    if (std::filesystem::exists(events_file)) {
        const auto events = sci::import_events_csv(events_file);
        std::cout << "-- events -- " << events.size()
                  << " scheduling events in events.csv\n";
    }
    return 0;
}

int cmd_advisor(const cli_options& options) {
    const sci::sim_engine engine = run_engine(options);
    const auto recs = sci::recommend_cpu_overcommit(
        engine.store(), engine.infrastructure(), engine.placement(), {});
    sci::table_printer table({"building block", "purpose", "current ratio",
                              "p95 util %", "max contention %", "recommended"});
    for (const auto& r : recs) {
        table.add_row({r.bb_name, std::string(to_string(r.purpose)),
                       sci::format_double(r.current_ratio),
                       sci::format_double(r.observed_p95_util_pct),
                       sci::format_double(r.observed_max_contention_pct),
                       sci::format_double(r.recommended_ratio)});
    }
    std::cout << "\n" << table.to_string();
    return 0;
}

int cmd_fleet() {
    const sci::scenario global = sci::make_global_scenario();
    sci::table_printer table({"region", "dc", "hypervisors", "VMs (paper)"});
    std::size_t index = 0;
    for (const sci::dc_spec& spec : sci::table5_datacenters()) {
        const sci::datacenter& dc = global.infrastructure.dcs()[index++];
        table.add_row({std::to_string(spec.region_id), spec.dc_name,
                       std::to_string(
                           global.infrastructure.nodes_of_dc(dc.id).size()),
                       std::to_string(spec.vms)});
    }
    std::cout << table.to_string();
    return 0;
}

void usage() {
    std::cout << "usage: scisim <simulate|report|analyze|advisor|fleet> "
                 "[--scale S] [--seed N] [--out DIR] [--markdown FILE]\n"
                 "fault injection (sci::fault; all default off):\n"
                 "  --crash-rate R            host crashes per node per day\n"
                 "  --claim-fail P            transient placement-claim failure "
                 "probability\n"
                 "  --mig-abort P             live-migration abort probability\n"
                 "  --degraded F              fraction of nodes degraded "
                 "in-window\n"
                 "  --degraded-cpu-factor C   effective CPU factor while "
                 "degraded (default 0.6)\n"
                 "  --maintenance N           unplanned maintenance windows\n";
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    try {
        if (command == "simulate") return cmd_simulate(parse_options(argc, argv, 2));
        if (command == "report") return cmd_report(parse_options(argc, argv, 2));
        if (command == "analyze") return cmd_analyze(parse_options(argc, argv, 2));
        if (command == "advisor") return cmd_advisor(parse_options(argc, argv, 2));
        if (command == "fleet") return cmd_fleet();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    usage();
    return 2;
}
