// scisim — command-line driver for the SAP Cloud Infrastructure
// reproduction.
//
//   scisim simulate [--scale S] [--seed N] [--out DIR]   run + export dataset
//   scisim report   [--scale S] [--seed N]               run + key findings
//       both accept --regions N: run N regions (seeds derived per region)
//       concurrently on one shared pool and aggregate across the fleet
//   scisim analyze  --out DIR                            analyze an exported
//                                                        dataset (no sim)
//   scisim advisor  [--scale S] [--seed N]               overcommit advice
//   scisim fleet                                         Table 5 overview
//
// Scale 1.0 reproduces the paper's full region (1,800 nodes / 48,000 VMs);
// the default 0.05 runs in seconds on a laptop.

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include <fstream>

#include "analysis/advisor.hpp"
#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"
#include "data/dataset.hpp"
#include "harness/invariants.hpp"
#include "harness/scenario_dsl.hpp"
#include "multiregion/region_set.hpp"
#include "snapshot/snapshot.hpp"

namespace {

struct cli_options {
    double scale = 0.05;
    std::uint64_t seed = 42;
    std::filesystem::path out_dir = "sci_dataset";
    std::filesystem::path markdown_file;  ///< report: write markdown here
    sci::fault_config fault;              ///< inert unless a knob is set
    /// --backpressure: overload mode for ad-hoc runs.  A --scenario
    /// file's [backpressure] section always wins over this flag — a
    /// scenario IS its overload physics, unlike --scale/--seed which are
    /// run-shape knobs.
    std::optional<sci::backpressure_mode> backpressure;
    std::filesystem::path scenario_file;  ///< --scenario: run a .scn file
    int regions = 1;                      ///< --regions: multi-region run
    bool check_invariants = false;
    /// --snapshot-at: checkpoint the run at this event time (seconds).
    std::optional<sci::sim_time> snapshot_at;
    /// --snapshot-out: where the checkpoint goes (multi-region runs
    /// write one file per region: PATH.<region>).
    std::filesystem::path snapshot_out = "scisim.snap";
    /// --restore: resume from checkpoint file(s) instead of a fresh
    /// setup (pass once per region, in region order).
    std::vector<std::filesystem::path> restore_files;
    // CLI flags win over a --scenario file only when actually given.
    bool scale_set = false;
    bool seed_set = false;
    bool fault_touched = false;
};

cli_options parse_options(int argc, char** argv, int first) {
    cli_options options;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            options.scale = std::atof(next());
            options.scale_set = true;
        } else if (arg == "--seed") {
            options.seed = std::strtoull(next(), nullptr, 10);
            options.seed_set = true;
        } else if (arg == "--out") {
            options.out_dir = next();
        } else if (arg == "--markdown") {
            options.markdown_file = next();
        } else if (arg == "--scenario") {
            options.scenario_file = next();
        } else if (arg == "--regions") {
            options.regions = std::atoi(next());
        } else if (arg == "--check-invariants") {
            options.check_invariants = true;
        } else if (arg == "--snapshot-at") {
            options.snapshot_at =
                static_cast<sci::sim_time>(std::strtoll(next(), nullptr, 10));
        } else if (arg == "--snapshot-out") {
            options.snapshot_out = next();
        } else if (arg == "--restore") {
            options.restore_files.emplace_back(next());
        } else if (arg == "--crash-rate") {
            options.fault.host_crash_rate_per_day = std::atof(next());
            options.fault_touched = true;
        } else if (arg == "--claim-fail") {
            options.fault.claim_failure_probability = std::atof(next());
            options.fault_touched = true;
        } else if (arg == "--mig-abort") {
            options.fault.migration_abort_probability = std::atof(next());
            options.fault_touched = true;
        } else if (arg == "--degraded") {
            options.fault.degraded_node_fraction = std::atof(next());
            options.fault_touched = true;
        } else if (arg == "--degraded-cpu-factor") {
            options.fault.degraded_cpu_factor = std::atof(next());
            options.fault_touched = true;
        } else if (arg == "--maintenance") {
            options.fault.maintenance_windows = std::atoi(next());
            options.fault_touched = true;
        } else if (arg == "--backpressure") {
            const char* token = next();
            options.backpressure = sci::backpressure_mode_from(token);
            if (!options.backpressure.has_value()) {
                std::cerr << "--backpressure expects degrade, queue or "
                             "shed (got '"
                          << token << "')\n";
                std::exit(2);
            }
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            std::exit(2);
        }
    }
    if (options.scale <= 0.0) {
        std::cerr << "--scale must be positive\n";
        std::exit(2);
    }
    if (options.regions < 1) {
        std::cerr << "--regions must be at least 1\n";
        std::exit(2);
    }
    if (options.snapshot_at.has_value() &&
        (*options.snapshot_at <= 0 ||
         *options.snapshot_at >= sci::days(sci::observation_days))) {
        std::cerr << "--snapshot-at must fall inside the "
                  << sci::observation_days << "-day window\n";
        std::exit(2);
    }
    return options;
}

/// Base config + invariants resolved from the scenario file / CLI flags
/// (shared by the single-engine and multi-region paths), plus the
/// region specs when the run is multi-region.
struct resolved_run {
    sci::engine_config config;
    sci::harness::invariant_config inv;
    /// Non-empty = multi-region ([region.N] sections or --regions N > 1).
    std::vector<sci::region_spec> region_specs;
};

resolved_run resolve_run(const cli_options& options) {
    resolved_run run;
    if (!options.scenario_file.empty()) {
        sci::harness::scenario_spec spec =
            sci::harness::load_scenario_file(options.scenario_file);
        run.config = spec.config;
        run.inv = spec.invariants;
        std::cout << "scenario " << spec.name
                  << (spec.description.empty() ? "" : ": " + spec.description)
                  << "\n";
        // Explicit CLI flags still win over the scenario file.
        if (options.scale_set) run.config.scenario.scale = options.scale;
        if (options.seed_set) {
            run.config.scenario.seed = options.seed;
            run.config.population.seed = options.seed;
        }
        if (options.fault_touched) run.config.fault = options.fault;
        if (!spec.regions.empty()) {
            spec.config = run.config;  // overrides become the regions' base
            run.region_specs = sci::harness::region_specs_of(spec);
        }
    } else {
        run.config.scenario.scale = options.scale;
        run.config.scenario.seed = options.seed;
        run.config.population.seed = options.seed;
        run.config.fault = options.fault;
        if (options.backpressure.has_value()) {
            run.config.backpressure.mode = *options.backpressure;
            if (run.config.backpressure.active()) {
                run.config.backpressure.queue_capacity = 256;
                run.config.backpressure.queue_deadline = 3600;
            }
        }
    }
    if (run.region_specs.empty() && options.regions > 1) {
        run.region_specs = sci::make_region_specs(
            run.config, static_cast<std::size_t>(options.regions));
    }
    if (options.check_invariants && run.inv.count() == 0) {
        // No scenario (or one without an [invariants] section): check the
        // always-applicable physics.
        run.inv.admission_accounting = true;
        run.inv.no_silent_drops = true;
        run.inv.conservation = true;
        if (!run.region_specs.empty()) run.inv.cross_region_conservation = true;
    }
    return run;
}

/// A finished run.  The engine lives behind a pointer because the
/// invariant_monitor holds a reference into it for the whole window.
struct engine_run {
    std::unique_ptr<sci::sim_engine> engine;
    std::vector<sci::harness::invariant_result> invariants;
    bool invariants_ok = true;
};

engine_run run_engine(const cli_options& options,
                      const resolved_run& resolved) {
    const sci::engine_config& config = resolved.config;
    engine_run run;
    if (!options.restore_files.empty()) {
        // resume from a checkpoint: the snapshot's embedded config wins
        // over --scale/--seed (the state was built from it)
        const std::filesystem::path& file = options.restore_files.front();
        std::cout << "restoring checkpoint " << file.string()
                  << ", resuming the 30-day window ...\n";
        run.engine = sci::snapshot::restore(sci::snapshot::load_file(file));
    } else {
        std::cout << "simulating 30 days at scale " << config.scenario.scale
                  << " (seed " << config.scenario.seed << ") ...\n";
        run.engine = std::make_unique<sci::sim_engine>(config);
    }
    std::optional<sci::harness::invariant_monitor> monitor;
    if (options.check_invariants) monitor.emplace(*run.engine, resolved.inv);
    if (options.snapshot_at.has_value()) {
        if (options.restore_files.empty()) run.engine->setup();
        run.engine->run_until(*options.snapshot_at);
        sci::snapshot::save_file(sci::snapshot::capture(*run.engine),
                                 options.snapshot_out);
        std::cout << "  checkpoint written to "
                  << options.snapshot_out.string() << " at t="
                  << *options.snapshot_at << "s\n";
    }
    run.engine->run();
    const sci::run_stats& stats = run.engine->stats();
    std::cout << "  " << run.engine->infrastructure().node_count()
              << " nodes, " << stats.placements << " placements, "
              << stats.deletions << " deletions, " << stats.drs_migrations
              << " DRS migrations, " << stats.scrapes << " scrapes\n";
    if (config.fault.enabled()) {
        std::cout << "  faults: " << stats.host_crashes << " host crashes, "
                  << stats.crash_victims << " victims, " << stats.ha_restarts
                  << " HA restarts, " << stats.migration_aborts
                  << " migration aborts\n";
    }
    if (monitor.has_value()) {
        run.invariants = monitor->evaluate();
        std::cout << "  invariants:\n";
        for (const auto& r : run.invariants) {
            std::cout << "    ["
                      << (r.skipped ? "skip" : (r.passed ? "pass" : "FAIL"))
                      << "] " << r.name
                      << (r.detail.empty() ? "" : ": " + r.detail) << "\n";
            run.invariants_ok = run.invariants_ok && r.passed;
        }
    }
    return run;
}

/// A finished multi-region run: the region_set plus invariant outcomes.
struct region_run {
    std::unique_ptr<sci::region_set> set;
    bool invariants_ok = true;
};

region_run run_region_set(const cli_options& options,
                          const resolved_run& resolved) {
    region_run run;
    if (!options.restore_files.empty()) {
        std::vector<sci::snapshot::engine_state> states;
        states.reserve(options.restore_files.size());
        for (const std::filesystem::path& file : options.restore_files) {
            states.push_back(sci::snapshot::load_file(file));
        }
        std::cout << "restoring " << states.size()
                  << "-region checkpoint, resuming the 30-day window ...\n";
        run.set = sci::snapshot::restore_regions(states);
    } else {
        run.set = std::make_unique<sci::region_set>(resolved.region_specs);
    }
    sci::region_set& set = *run.set;
    if (options.restore_files.empty()) {
        std::cout << "simulating 30 days across " << set.region_count()
                  << " regions (base seed " << options.seed << ") ...\n";
    }
    std::vector<std::unique_ptr<sci::harness::invariant_monitor>> monitors;
    if (options.check_invariants) {
        sci::harness::invariant_config per_region = resolved.inv;
        per_region.cross_region_conservation = false;
        for (std::size_t r = 0; r < set.region_count(); ++r) {
            monitors.push_back(
                std::make_unique<sci::harness::invariant_monitor>(
                    set.region(r), per_region));
        }
    }
    if (options.snapshot_at.has_value()) {
        // one event-time barrier checkpoints all regions consistently;
        // one file per region, suffixed with the region's name
        set.run_until(*options.snapshot_at);
        for (sci::snapshot::engine_state& state : sci::snapshot::capture(set)) {
            std::filesystem::path file = options.snapshot_out;
            file += "." + state.region;
            sci::snapshot::save_file(state, file);
            std::cout << "  checkpoint written to " << file.string()
                      << " at t=" << *options.snapshot_at << "s\n";
        }
    }
    set.run();
    std::size_t nodes = 0;
    for (std::size_t r = 0; r < set.region_count(); ++r) {
        const sci::run_stats& rs = set.region(r).stats();
        std::cout << "  " << set.spec(r).name << ": "
                  << set.region(r).infrastructure().node_count() << " nodes, "
                  << rs.placements << " placements, " << rs.drs_migrations
                  << " DRS migrations, " << rs.host_crashes
                  << " host crashes\n";
        nodes += set.region(r).infrastructure().node_count();
    }
    const sci::run_stats merged = set.merged_stats();
    std::cout << "  fleet: " << nodes << " nodes, " << merged.placements
              << " placements, " << merged.deletions << " deletions, "
              << merged.drs_migrations << " DRS migrations, "
              << merged.scrapes << " scrapes\n";
    if (options.check_invariants) {
        std::cout << "  invariants:\n";
        const auto show = [&](const sci::harness::invariant_result& r) {
            std::cout << "    ["
                      << (r.skipped ? "skip" : (r.passed ? "pass" : "FAIL"))
                      << "] " << r.name
                      << (r.detail.empty() ? "" : ": " + r.detail) << "\n";
            run.invariants_ok = run.invariants_ok && r.passed;
        };
        for (std::size_t r = 0; r < set.region_count(); ++r) {
            for (sci::harness::invariant_result result :
                 monitors[r]->evaluate()) {
                result.name = set.spec(r).name + "." + result.name;
                show(result);
            }
        }
        if (resolved.inv.cross_region_conservation) {
            std::vector<sci::harness::conservation_snapshot> snaps;
            for (std::size_t r = 0; r < set.region_count(); ++r) {
                snaps.push_back(
                    sci::harness::collect_conservation(set.region(r)));
            }
            show(sci::harness::check_cross_region_conservation(snaps));
        }
    }
    return run;
}

int cmd_simulate(const cli_options& options) {
    const resolved_run resolved = resolve_run(options);
    if (!resolved.region_specs.empty()) {
        const region_run run = run_region_set(options, resolved);
        sci::region_set& set = *run.set;
        std::cout << "exporting per-region datasets + fleet aggregation to "
                  << options.out_dir << " ...\n";
        const sci::region_export_report report =
            set.export_datasets(options.out_dir);
        std::size_t events = 0;
        for (std::size_t r = 0; r < set.region_count(); ++r) {
            events += sci::export_events_csv(
                set.region(r).events(),
                options.out_dir / set.spec(r).name / "events.csv");
        }
        std::cout << "  " << report.combined.metrics_exported
                  << " metrics, " << report.combined.series_exported
                  << " series, " << report.combined.daily_rows
                  << " daily rows, " << events << " scheduling events across "
                  << set.region_count() << " regions\n";
        return run.invariants_ok ? 0 : 1;
    }
    const engine_run run = run_engine(options, resolved);
    const sci::sim_engine& engine = *run.engine;
    std::cout << "exporting dataset to " << options.out_dir << " ...\n";
    const auto report = sci::export_dataset(engine.store(), options.out_dir);
    const std::size_t events = sci::export_events_csv(
        engine.events(), options.out_dir / "events.csv");
    std::cout << "  " << report.metrics_exported << " metrics, "
              << report.series_exported << " series, " << report.daily_rows
              << " daily rows, " << events << " scheduling events\n";
    return run.invariants_ok ? 0 : 1;
}

int cmd_report(const cli_options& options) {
    const resolved_run resolved = resolve_run(options);
    if (!resolved.region_specs.empty()) {
        // Multi-region report: per-region and fleet-wide scheduling
        // summaries (the per-node figures stay a single-region view).
        const region_run run = run_region_set(options, resolved);
        sci::region_set& set = *run.set;
        std::uint64_t creates = 0, removes = 0, migrations = 0, evacs = 0;
        for (std::size_t r = 0; r < set.region_count(); ++r) {
            const sci::event_log& events = set.region(r).events();
            creates += events.count(sci::lifecycle_event_kind::create);
            removes += events.count(sci::lifecycle_event_kind::remove);
            migrations += events.count(sci::lifecycle_event_kind::migrate);
            evacs += events.count(sci::lifecycle_event_kind::evacuate);
        }
        std::cout << "-- fleet events -- creates " << creates << ", deletes "
                  << removes << ", migrations " << migrations
                  << ", evacuations " << evacs << "\n";
        return run.invariants_ok ? 0 : 1;
    }
    const engine_run run = run_engine(options, resolved);
    sci::sim_engine& engine = *run.engine;
    if (!options.markdown_file.empty()) {
        std::ofstream out(options.markdown_file);
        if (!out.good()) {
            std::cerr << "cannot write " << options.markdown_file << "\n";
            return 1;
        }
        sci::write_markdown_report(out, engine);
        std::cout << "wrote markdown report to " << options.markdown_file
                  << "\n";
        return run.invariants_ok ? 0 : 1;
    }
    const sci::fleet& fleet = engine.infrastructure();
    const sci::dc_id dc = fleet.dcs().front().id;

    std::cout << "\n-- Figure 5: % free CPU per node ("
              << fleet.get(dc).name << ") --\n"
              << render_heatmap_ascii(
                     sci::fig5_free_cpu_per_node(engine.store(), fleet, dc));

    double worst_mean = 0.0, worst_max = 0.0;
    for (const auto& day : sci::fig9_contention_by_day(engine.store())) {
        worst_mean = std::max(worst_mean, day.mean_pct);
        worst_max = std::max(worst_max, day.max_pct);
    }
    std::cout << "\n-- contention -- worst daily mean "
              << sci::format_double(worst_mean) << "%, worst node max "
              << sci::format_double(worst_max) << "% (paper: <5% / >40%)\n";

    const auto cpu = sci::fig14a_cpu_utilization(engine.store());
    const auto mem = sci::fig14b_memory_utilization(engine.store());
    std::cout << "-- VM CPU util -- " << sci::format_double(cpu.classes.under_pct)
              << "% under / " << sci::format_double(cpu.classes.optimal_pct)
              << "% optimal / " << sci::format_double(cpu.classes.over_pct)
              << "% over\n";
    std::cout << "-- VM mem util -- " << sci::format_double(mem.classes.under_pct)
              << "% under / " << sci::format_double(mem.classes.optimal_pct)
              << "% optimal / " << sci::format_double(mem.classes.over_pct)
              << "% over\n";

    std::cout << "-- events -- creates "
              << engine.events().count(sci::lifecycle_event_kind::create)
              << ", deletes "
              << engine.events().count(sci::lifecycle_event_kind::remove)
              << ", migrations "
              << engine.events().count(sci::lifecycle_event_kind::migrate)
              << ", evacuations "
              << engine.events().count(sci::lifecycle_event_kind::evacuate)
              << "\n";
    return run.invariants_ok ? 0 : 1;
}

int cmd_analyze(const cli_options& options) {
    std::cout << "importing dataset from " << options.out_dir << " ...\n";
    const sci::metric_store store = sci::import_dataset(options.out_dir);
    std::cout << "  " << store.series_count() << " series, "
              << store.total_samples() << " samples (daily aggregates)\n\n";

    double worst_mean = 0.0, worst_max = 0.0;
    for (const auto& day : sci::fig9_contention_by_day(store)) {
        worst_mean = std::max(worst_mean, day.mean_pct);
        worst_max = std::max(worst_max, day.max_pct);
    }
    std::cout << "-- contention -- worst daily mean "
              << sci::format_double(worst_mean) << "%, worst node max "
              << sci::format_double(worst_max) << "%\n";
    const auto cpu = sci::fig14a_cpu_utilization(store);
    const auto mem = sci::fig14b_memory_utilization(store);
    std::cout << "-- VM CPU util -- " << sci::format_double(cpu.classes.under_pct)
              << "% under / " << sci::format_double(cpu.classes.optimal_pct)
              << "% optimal / " << sci::format_double(cpu.classes.over_pct)
              << "% over (" << cpu.classes.vm_count << " VMs)\n";
    std::cout << "-- VM mem util -- " << sci::format_double(mem.classes.under_pct)
              << "% under / " << sci::format_double(mem.classes.optimal_pct)
              << "% optimal / " << sci::format_double(mem.classes.over_pct)
              << "% over\n";
    // events, if exported
    const auto events_file = options.out_dir / "events.csv";
    if (std::filesystem::exists(events_file)) {
        const auto events = sci::import_events_csv(events_file);
        std::cout << "-- events -- " << events.size()
                  << " scheduling events in events.csv\n";
    }
    return 0;
}

int cmd_advisor(const cli_options& options) {
    const resolved_run resolved = resolve_run(options);
    if (!resolved.region_specs.empty()) {
        std::cerr << "advisor is a per-region analysis; run it without "
                     "--regions\n";
        return 2;
    }
    const engine_run run = run_engine(options, resolved);
    const sci::sim_engine& engine = *run.engine;
    const auto recs = sci::recommend_cpu_overcommit(
        engine.store(), engine.infrastructure(), engine.placement(), {});
    sci::table_printer table({"building block", "purpose", "current ratio",
                              "p95 util %", "max contention %", "recommended"});
    for (const auto& r : recs) {
        table.add_row({r.bb_name, std::string(to_string(r.purpose)),
                       sci::format_double(r.current_ratio),
                       sci::format_double(r.observed_p95_util_pct),
                       sci::format_double(r.observed_max_contention_pct),
                       sci::format_double(r.recommended_ratio)});
    }
    std::cout << "\n" << table.to_string();
    return run.invariants_ok ? 0 : 1;
}

int cmd_fleet() {
    const sci::scenario global = sci::make_global_scenario();
    sci::table_printer table({"region", "dc", "hypervisors", "VMs (paper)"});
    std::size_t index = 0;
    for (const sci::dc_spec& spec : sci::table5_datacenters()) {
        const sci::datacenter& dc = global.infrastructure.dcs()[index++];
        table.add_row({std::to_string(spec.region_id), spec.dc_name,
                       std::to_string(
                           global.infrastructure.nodes_of_dc(dc.id).size()),
                       std::to_string(spec.vms)});
    }
    std::cout << table.to_string();
    return 0;
}

void usage() {
    std::cout << "usage: scisim <simulate|report|analyze|advisor|fleet> "
                 "[--scale S] [--seed N] [--out DIR] [--markdown FILE]\n"
                 "scenario harness (sci::harness):\n"
                 "  --scenario FILE           run a *.scn scenario file "
                 "(engine + fault\n"
                 "                            config from the file; explicit "
                 "CLI flags win)\n"
                 "  --regions N               simulate/report: run N regions "
                 "concurrently on\n"
                 "                            one shared pool (per-region "
                 "derived seeds) and\n"
                 "                            aggregate stats + datasets "
                 "fleet-wide\n"
                 "  --check-invariants        evaluate the scenario's "
                 "invariants after the\n"
                 "                            run (without a scenario: "
                 "admission accounting,\n"
                 "                            no silent drops, conservation); "
                 "exit 1 on any\n"
                 "                            violation\n"
                 "checkpointing (sci::snapshot):\n"
                 "  --snapshot-at T           checkpoint the run at event "
                 "time T seconds\n"
                 "                            (multi-region: one file per "
                 "region)\n"
                 "  --snapshot-out PATH       checkpoint file (default "
                 "scisim.snap)\n"
                 "  --restore PATH            resume from a checkpoint "
                 "instead of a fresh\n"
                 "                            setup (repeat once per region, "
                 "in region order)\n"
                 "fault injection (sci::fault; all default off):\n"
                 "  --crash-rate R            host crashes per node per day\n"
                 "  --claim-fail P            transient placement-claim failure "
                 "probability\n"
                 "  --mig-abort P             live-migration abort probability\n"
                 "  --degraded F              fraction of nodes degraded "
                 "in-window\n"
                 "  --degraded-cpu-factor C   effective CPU factor while "
                 "degraded (default 0.6)\n"
                 "  --maintenance N           unplanned maintenance windows\n"
                 "backpressure (sci::sched):\n"
                 "  --backpressure MODE       overload handling: degrade "
                 "(default, immediate\n"
                 "                            NoValidHost), queue (bounded "
                 "deadline queue,\n"
                 "                            capacity 256 / deadline 3600s), "
                 "or shed (queue +\n"
                 "                            priority eviction); a --scenario "
                 "file's\n"
                 "                            [backpressure] section wins "
                 "over this flag\n";
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    try {
        if (command == "simulate") return cmd_simulate(parse_options(argc, argv, 2));
        if (command == "report") return cmd_report(parse_options(argc, argv, 2));
        if (command == "analyze") return cmd_analyze(parse_options(argc, argv, 2));
        if (command == "advisor") return cmd_advisor(parse_options(argc, argv, 2));
        if (command == "fleet") return cmd_fleet();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    usage();
    return 2;
}
