// sciverify — the scenario + invariants harness ("physics CI").
//
//   sciverify [options] <scenario.scn | directory>...
//
// Loads every named scenario (directories are scanned for *.scn, sorted
// by filename), runs each through a fresh engine with its invariants
// attached, and prints one JSON summary to stdout — progress and the
// human-readable verdict go to stderr, so `sciverify scenarios/ >
// summary.json` is all CI needs.  Exit code 0 iff every scenario passes
// (all invariants hold and every declared replay trace matches).
//
//   --record          write/refresh replay traces instead of comparing
//   --days N          cap each run to the first N simulated days
//                     (default: the SCI_BENCH_DAYS environment variable,
//                     else the full 30-day observation window)
//   --threads N       worker-thread override (default: SCI_THREADS)
//   --watch           assert the scrape-checkable invariants at every
//                     scrape barrier instead of spot-checking
//
// Replay traces are recorded, not committed: the fingerprints cover
// floating-point history, reproducible per-toolchain but not across
// libm versions.  CI records and replays within one job.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "harness/scenario_dsl.hpp"

namespace {

void usage() {
    std::cerr
        << "usage: sciverify [options] <scenario.scn | directory>...\n"
           "  --record      write/refresh replay traces instead of comparing\n"
           "  --days N      cap each run to the first N simulated days\n"
           "                (default: SCI_BENCH_DAYS env, else full window)\n"
           "  --threads N   worker-thread override (default: SCI_THREADS)\n"
           "  --watch       assert scrape-checkable invariants at every\n"
           "                scrape barrier instead of spot-checking\n"
           "\n"
           "Prints a JSON pass/fail summary to stdout; progress goes to\n"
           "stderr.  Exit 0 iff every scenario passes.\n";
}

std::vector<std::filesystem::path> collect_scenarios(
    const std::vector<std::filesystem::path>& inputs) {
    std::vector<std::filesystem::path> files;
    for (const auto& input : inputs) {
        if (std::filesystem::is_directory(input)) {
            std::vector<std::filesystem::path> found;
            for (const auto& entry :
                 std::filesystem::directory_iterator(input)) {
                if (entry.is_regular_file() &&
                    entry.path().extension() == ".scn") {
                    found.push_back(entry.path());
                }
            }
            std::sort(found.begin(), found.end());
            files.insert(files.end(), found.begin(), found.end());
        } else {
            files.push_back(input);
        }
    }
    return files;
}

}  // namespace

int main(int argc, char** argv) {
    sci::harness::run_options options;
    std::vector<std::filesystem::path> inputs;
    if (const char* env = std::getenv("SCI_BENCH_DAYS")) {
        options.days = std::max(0, std::atoi(env));
    }
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--record") {
            options.record_trace = true;
        } else if (arg == "--days") {
            options.days = std::atoi(next());
        } else if (arg == "--threads") {
            options.threads = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--watch") {
            options.watch = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        } else {
            inputs.emplace_back(arg);
        }
    }
    if (inputs.empty()) {
        usage();
        return 2;
    }

    const auto files = collect_scenarios(inputs);
    if (files.empty()) {
        std::cerr << "no *.scn scenarios found\n";
        return 2;
    }

    std::vector<sci::harness::scenario_outcome> outcomes;
    bool all_passed = true;
    for (const auto& file : files) {
        try {
            const auto spec = sci::harness::load_scenario_file(file);
            std::cerr << "running " << spec.name << " ("
                      << spec.invariants.count() << " invariants) ...\n";
            auto outcome = sci::harness::run_scenario(spec, options);
            for (const auto& r : outcome.invariants) {
                std::cerr << "  ["
                          << (r.skipped ? "skip" : (r.passed ? "pass" : "FAIL"))
                          << "] " << r.name
                          << (r.detail.empty() ? "" : ": " + r.detail)
                          << "\n";
            }
            if (outcome.replay != sci::harness::replay_status::none) {
                std::cerr << "  replay: " << to_string(outcome.replay)
                          << " — " << outcome.replay_detail << "\n";
            }
            all_passed = all_passed && outcome.passed();
            outcomes.push_back(std::move(outcome));
        } catch (const std::exception& e) {
            std::cerr << "error: " << file.string() << ": " << e.what()
                      << "\n";
            return 2;
        }
    }

    std::cout << sci::harness::outcomes_json(outcomes);
    std::cerr << (all_passed ? "all scenarios passed"
                             : "scenario violations detected")
              << " (" << outcomes.size() << " scenarios)\n";
    return all_passed ? 0 : 1;
}
