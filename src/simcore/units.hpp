#pragma once

// Resource units used throughout the simulator.
//
// Conventions (matching the metric catalog in Table 4 of the paper):
//   - memory is tracked in MiB (openstack_compute_nodes_memory_mb_*)
//   - CPU capacity is tracked in vCPU / pCPU core counts
//   - network bandwidth in kbps (vrops_hostsystem_network_bytes_*_kbps)
//   - storage in GiB (vrops_hostsystem_diskspace_usage_gigabytes)
//   - ratios / percentages as double in [0, 100] for "percentage" metrics
//     and [0, 1] for "ratio" metrics.

#include <cstdint>

namespace sci {

using mebibytes = std::int64_t;  ///< memory size in MiB
using gibibytes = double;        ///< storage size in GiB
using kbps = double;             ///< bandwidth in kilobits per second
using core_count = std::int32_t; ///< number of (virtual or physical) cores

constexpr mebibytes mib_per_gib = 1024;

constexpr mebibytes gib_to_mib(double gib) {
    return static_cast<mebibytes>(gib * static_cast<double>(mib_per_gib));
}

constexpr double mib_to_gib(mebibytes mib) {
    return static_cast<double>(mib) / static_cast<double>(mib_per_gib);
}

/// 200 Gbps NIC capacity per compute node (Section 5.3 of the paper).
constexpr kbps node_nic_capacity_kbps = 200.0 * 1000.0 * 1000.0;

/// Clamp a percentage to the displayable [0, 100] range.
constexpr double clamp_percent(double value) {
    if (value < 0.0) return 0.0;
    if (value > 100.0) return 100.0;
    return value;
}

/// Clamp a ratio to [0, 1].
constexpr double clamp_ratio(double value) {
    if (value < 0.0) return 0.0;
    if (value > 1.0) return 1.0;
    return value;
}

}  // namespace sci
