#pragma once

// Fixed-size worker pool with a deterministic parallel_for.
//
// The scrape pipeline (core/engine.cpp) needs to fan pure per-index work
// across cores without ever changing the simulation's output: callers
// shard their work by a *fixed* shard count and merge shard results in
// shard order, so the floating-point grouping is identical at any worker
// count (see shard()).  The pool itself only decides which thread runs
// which contiguous index range; it never reorders or splits a range.
//
// Semantics:
//   - thread_pool(0) keeps no workers; parallel_for runs inline on the
//     caller (the serial fallback — identical arithmetic, zero threads).
//   - parallel_for blocks until every index is processed.  An exception
//     thrown by a task is captured and rethrown on the caller; when
//     several workers throw, the lowest worker index wins (deterministic).
//   - A parallel_for issued from inside a pool task (nested use) is
//     serialized inline on that worker — never dispatched — so tasks can
//     call library code that itself parallelizes without deadlocking.
//   - Concurrent parallel_for calls from distinct external threads are
//     serialized against each other; the pool runs one job at a time.
//
// Coarse-grained tasks (run_tasks) layer a second scheduling level on the
// same workers: independent heavyweight tasks (e.g. whole simulation
// regions) are claimed dynamically from a shared counter by every worker
// *and* the calling thread.  Each task runs under the nested-use flag, so
// any parallel_for a task issues internally serializes inline — region
// parallelism composes with intra-region sharding instead of deadlocking
// or oversubscribing.  A single task runs on the caller with the pool left
// idle, so its internal stages can still fan out across the workers.
//
// Worker count resolution: callers usually take an explicit count or fall
// back to env_threads() (the SCI_THREADS environment variable, default 0).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace sci {

class thread_pool {
public:
    /// Task over one contiguous index shard: fn(worker, begin, end).
    using range_fn = std::function<void(unsigned, std::size_t, std::size_t)>;

    /// One coarse-grained task by index: fn(task).
    using task_fn = std::function<void(std::size_t)>;

    /// Start `workers` threads (0 = serial fallback, no threads).
    explicit thread_pool(unsigned workers);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    unsigned worker_count() const {
        return static_cast<unsigned>(workers_.size());
    }

    /// Split [begin, end) into worker_count contiguous shards and run
    /// fn(worker, shard_begin, shard_end) on each worker.  Blocks until
    /// every shard finished; rethrows the first worker exception.  Empty
    /// ranges return immediately without invoking fn.
    void parallel_for(std::size_t begin, std::size_t end, const range_fn& fn);

    /// Run `count` independent coarse-grained tasks, dynamically claimed
    /// by the workers and the calling thread.  Every task executes under
    /// the nested-use flag, so a parallel_for issued from inside a task
    /// serializes inline on its claimant.  A single task (or a serial /
    /// nested pool) runs inline on the caller *without* the flag, leaving
    /// the workers available to the task's own parallel stages.  Blocks
    /// until all tasks finished; rethrows the lowest-indexed worker
    /// exception, else the caller's own.  Task completion order is not
    /// deterministic — callers must not let task side effects interleave
    /// (each task owns its state; merge results by task index afterwards).
    void run_tasks(std::size_t count, const task_fn& fn);

    /// Contiguous shard `index` of `count` over [begin, end): the same
    /// block decomposition parallel_for uses.  Exposed so callers can
    /// shard by a fixed count (independent of worker count) and keep
    /// reduction order — and therefore floating-point results —
    /// bit-identical under any parallelism.
    static std::pair<std::size_t, std::size_t> shard(std::size_t begin,
                                                     std::size_t end,
                                                     unsigned index,
                                                     unsigned count);

    /// Worker count requested via the SCI_THREADS environment variable
    /// (unset, empty, or unparsable = 0 = serial).
    static unsigned env_threads();

private:
    void worker_loop(unsigned index);

    std::vector<std::thread> workers_;

    // one job at a time; external callers queue on submit_mutex_
    std::mutex submit_mutex_;

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    const range_fn* job_fn_ = nullptr;
    std::size_t job_begin_ = 0;
    std::size_t job_end_ = 0;
    std::uint64_t job_epoch_ = 0;
    unsigned job_pending_ = 0;
    bool stopping_ = false;
    std::vector<std::exception_ptr> errors_;  // slot per worker
};

}  // namespace sci
