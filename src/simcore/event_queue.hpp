#pragma once

// Discrete-event simulation core: a simulated clock plus a time-ordered
// queue of events.  Events scheduled for the same instant fire in
// scheduling order (FIFO), which keeps runs deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "simcore/error.hpp"
#include "simcore/time.hpp"

namespace sci {

/// Handle identifying a scheduled event; usable for cancellation.
using event_handle = std::uint64_t;

/// Min-heap driven discrete-event loop.
class event_queue {
public:
    using callback = std::function<void(sim_time)>;

    /// Schedule `fn` at absolute time `at` (must not be in the past).
    event_handle schedule_at(sim_time at, callback fn);

    /// Schedule `fn` after `delay` seconds (delay >= 0).
    event_handle schedule_after(sim_duration delay, callback fn);

    /// Reserve a tie-break sequence slot at the current allocation point
    /// without scheduling anything.  Events later scheduled through
    /// schedule_at_pinned with this slot order among equal-timestamp
    /// events as if they had been scheduled right now — which lets a
    /// self-rescheduling event (e.g. the engine's churn-arrival drain)
    /// keep a fixed position in the FIFO tie order no matter when it
    /// re-arms itself.
    std::uint64_t reserve_seq() { return next_seq_++; }

    /// Schedule `fn` at `at` with an explicit reserved tie-break slot.
    /// At most one live event may hold a given slot at a time (otherwise
    /// their mutual order at equal timestamps would be unspecified).
    event_handle schedule_at_pinned(sim_time at, std::uint64_t seq, callback fn);

    /// Cancel a previously scheduled event.  Returns false if the event
    /// already fired or was already cancelled.
    bool cancel(event_handle handle);

    /// Current simulated time.
    sim_time now() const { return now_; }

    /// True when no live events remain.
    bool empty() const { return live_events_ == 0; }

    /// Number of live (scheduled, not cancelled, not fired) events.
    std::size_t size() const { return live_events_; }

    /// Run the next event; returns false if the queue is empty.
    bool step();

    /// Run events until the queue is empty or the clock passes `until`.
    /// Events at exactly `until` are executed.  The clock is advanced to
    /// `until` even if the queue drains earlier.
    void run_until(sim_time until);

    /// Run until the queue is empty.
    void run();

    /// Total number of events executed so far.
    std::uint64_t executed_count() const { return executed_; }

private:
    struct entry {
        sim_time at;
        std::uint64_t seq;  // tie-break: FIFO among equal timestamps
        event_handle handle;
    };

    struct entry_later {
        bool operator()(const entry& a, const entry& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<entry, std::vector<entry>, entry_later> heap_;
    // callbacks keyed by handle; erased on fire/cancel.  A cancelled event
    // leaves a stale heap entry that is skipped lazily.
    std::unordered_map<event_handle, callback> callbacks_;

    sim_time now_ = 0;
    std::uint64_t next_seq_ = 0;
    event_handle next_handle_ = 1;
    std::size_t live_events_ = 0;
    std::uint64_t executed_ = 0;
};

}  // namespace sci
