#include "simcore/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simcore/error.hpp"

namespace sci {

void running_stats::add(double x) {
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

running_stats running_stats::from_moments(std::uint64_t count, double mean,
                                           double min, double max) {
    expects(count == 0 || min <= max, "from_moments: min must not exceed max");
    running_stats s;
    if (count == 0) return s;
    s.count_ = count;
    s.mean_ = mean;
    s.sum_ = mean * static_cast<double>(count);
    s.min_ = min;
    s.max_ = max;
    return s;
}

void running_stats::merge(const running_stats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    mean_ = (na * mean_ + nb * other.mean_) / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double running_stats::variance() const {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

p2_quantile::p2_quantile(double quantile) : quantile_(quantile) {
    expects(quantile > 0.0 && quantile < 1.0, "p2_quantile: quantile in (0,1)");
    desired_ = {1.0, 1.0 + 2.0 * quantile_, 1.0 + 4.0 * quantile_,
                3.0 + 2.0 * quantile_, 5.0};
    increments_ = {0.0, quantile_ / 2.0, quantile_, (1.0 + quantile_) / 2.0, 1.0};
}

void p2_quantile::add(double x) {
    if (count_ < 5) {
        heights_[count_] = x;
        ++count_;
        if (count_ == 5) {
            std::sort(heights_.begin(), heights_.end());
            for (std::size_t i = 0; i < 5; ++i) {
                positions_[i] = static_cast<double>(i + 1);
            }
        }
        return;
    }
    ++count_;

    std::size_t k;
    if (x < heights_[0]) {
        heights_[0] = x;
        k = 0;
    } else if (x >= heights_[4]) {
        heights_[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= heights_[k + 1]) ++k;
    }

    for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
    for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

    for (std::size_t i = 1; i <= 3; ++i) {
        const double d = desired_[i] - positions_[i];
        const double below = positions_[i] - positions_[i - 1];
        const double above = positions_[i + 1] - positions_[i];
        if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
            const double sign = d >= 0 ? 1.0 : -1.0;
            // parabolic (P²) interpolation of the new marker height
            const double hp = heights_[i + 1];
            const double hm = heights_[i - 1];
            const double h = heights_[i];
            const double np = positions_[i + 1];
            const double nm = positions_[i - 1];
            const double ni = positions_[i];
            double candidate =
                h + sign / (np - nm) *
                        ((ni - nm + sign) * (hp - h) / (np - ni) +
                         (np - ni - sign) * (h - hm) / (ni - nm));
            if (candidate <= hm || candidate >= hp) {
                // fall back to linear interpolation when parabola overshoots
                candidate = sign > 0 ? h + (hp - h) / (np - ni)
                                     : h - (hm - h) / (nm - ni);
            }
            heights_[i] = candidate;
            positions_[i] += sign;
        }
    }
}

double p2_quantile::value() const {
    if (count_ == 0) return 0.0;
    if (count_ < 5) {
        std::array<double, 5> sorted = heights_;
        std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
        const double pos = quantile_ * static_cast<double>(count_ - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, static_cast<std::size_t>(count_ - 1));
        const double frac = pos - static_cast<double>(lo);
        return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
    }
    return heights_[2];
}

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    expects(hi > lo, "histogram: hi must exceed lo");
    expects(bins > 0, "histogram: need at least one bin");
}

void histogram::add(double x) {
    std::size_t idx;
    if (x < lo_) {
        idx = 0;
    } else if (x >= hi_) {
        idx = counts_.size() - 1;
    } else {
        idx = static_cast<std::size_t>((x - lo_) / width_);
        idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
    ++total_;
}

double histogram::bin_lower(std::size_t i) const {
    expects(i < counts_.size(), "histogram::bin_lower: index out of range");
    return lo_ + width_ * static_cast<double>(i);
}

double histogram::bin_upper(std::size_t i) const {
    expects(i < counts_.size(), "histogram::bin_upper: index out of range");
    return lo_ + width_ * static_cast<double>(i + 1);
}

double histogram::cdf(double x) const {
    if (total_ == 0) return 0.0;
    if (x <= lo_) return 0.0;
    if (x >= hi_) return 1.0;
    const double pos = (x - lo_) / width_;
    const auto full_bins = static_cast<std::size_t>(pos);
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < full_bins && i < counts_.size(); ++i) {
        below += counts_[i];
    }
    double frac_in_bin = 0.0;
    if (full_bins < counts_.size()) {
        frac_in_bin = (pos - static_cast<double>(full_bins)) *
                      static_cast<double>(counts_[full_bins]);
    }
    return (static_cast<double>(below) + frac_in_bin) / static_cast<double>(total_);
}

double exact_quantile(std::span<const double> samples, double q) {
    expects(!samples.empty(), "exact_quantile: empty sample set");
    expects(q >= 0.0 && q <= 1.0, "exact_quantile: q in [0,1]");
    std::vector<double> sorted(samples.begin(), samples.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double empirical_cdf(std::span<const double> sorted_samples, double x) {
    if (sorted_samples.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_samples.begin(), sorted_samples.end(), x);
    return static_cast<double>(it - sorted_samples.begin()) /
           static_cast<double>(sorted_samples.size());
}

}  // namespace sci
