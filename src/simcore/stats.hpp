#pragma once

// Streaming statistics used by telemetry compaction and the analysis layer:
//   - running_stats: count/sum/min/max/mean/variance (Welford)
//   - p2_quantile:   constant-memory quantile sketch (Jain & Chlamtac '85),
//                    used for the daily p95 contention series of Figure 9
//   - histogram:     fixed-width bins over a known range
//   - empirical CDF helpers for Figure 14

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace sci {

/// Constant-memory accumulator of basic moments and extrema.
class running_stats {
public:
    void add(double x);

    /// Reconstruct an accumulator from stored moments (count/mean/min/max),
    /// e.g. when re-ingesting exported daily aggregates.  The squared
    /// deviations are not recoverable, so variance() of the result is 0.
    static running_stats from_moments(std::uint64_t count, double mean,
                                      double min, double max);

    /// Merge another accumulator into this one.
    void merge(const running_stats& other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    /// Mean of added values; 0 when empty.
    double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
    /// Population variance; 0 when fewer than 2 samples.
    double variance() const;
    double stddev() const;
    /// Minimum; +inf when empty.
    double min() const { return min_; }
    /// Maximum; -inf when empty.
    double max() const { return max_; }
    bool empty() const { return count_ == 0; }

    /// Exact internal state for checkpointing.  Unlike from_moments this
    /// round-trips the Welford accumulators bitwise, so variance — and
    /// every future add() — continues exactly where the original left off.
    struct exact_state {
        std::uint64_t count = 0;
        double sum = 0.0;
        double m2 = 0.0;
        double mean = 0.0;
        double min = 0.0;
        double max = 0.0;
    };
    exact_state exact() const {
        return {count_, sum_, m2_, mean_, min_, max_};
    }
    static running_stats from_exact(const exact_state& s) {
        running_stats r;
        r.count_ = s.count;
        r.sum_ = s.sum;
        r.m2_ = s.m2;
        r.mean_ = s.mean;
        r.min_ = s.min;
        r.max_ = s.max;
        return r;
    }

private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double m2_ = 0.0;    // Welford sum of squared deviations
    double mean_ = 0.0;  // Welford running mean
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// P² single-quantile estimator: O(1) memory, good accuracy for the smooth
/// utilization distributions we aggregate.  Exact for < 5 samples.
class p2_quantile {
public:
    explicit p2_quantile(double quantile);

    void add(double x);
    /// Current estimate; 0 when empty.
    double value() const;
    std::uint64_t count() const { return count_; }

private:
    double quantile_;
    std::uint64_t count_ = 0;
    std::array<double, 5> heights_{};
    std::array<double, 5> positions_{};
    std::array<double, 5> desired_{};
    std::array<double, 5> increments_{};
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins.
class histogram {
public:
    histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::uint64_t total() const { return total_; }
    std::size_t bin_count() const { return counts_.size(); }
    std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
    double bin_lower(std::size_t i) const;
    double bin_upper(std::size_t i) const;
    /// Fraction of samples strictly below x (linear interpolation in-bin).
    double cdf(double x) const;

private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/// Exact quantile of a sample set (sorts a copy; linear interpolation).
/// q in [0, 1].  Throws on an empty span.
double exact_quantile(std::span<const double> samples, double q);

/// Point of the empirical CDF: fraction of samples <= x.
double empirical_cdf(std::span<const double> sorted_samples, double x);

}  // namespace sci
