#pragma once

// Simulated time.
//
// The paper's observation window starts 2024-07-31 00:00:00 UTC and spans
// 30 days (Section 4).  Simulated time is a count of seconds since the
// observation start; negative values denote events before the window
// (e.g. VMs created long before measurement began, cf. Figure 15 where
// lifetimes reach multiple years).

#include <cstdint>
#include <string>

namespace sci {

using sim_time = std::int64_t;      ///< seconds relative to observation start
using sim_duration = std::int64_t;  ///< seconds

constexpr sim_duration seconds_per_minute = 60;
constexpr sim_duration seconds_per_hour = 3600;
constexpr sim_duration seconds_per_day = 86400;

/// Length of the paper's observation window: 30 days.
constexpr sim_duration observation_window = 30 * seconds_per_day;

/// Number of observed days (rows of every heatmap in Section 5).
constexpr int observation_days = 30;

constexpr sim_duration minutes(std::int64_t n) { return n * seconds_per_minute; }
constexpr sim_duration hours(std::int64_t n) { return n * seconds_per_hour; }
constexpr sim_duration days(std::int64_t n) { return n * seconds_per_day; }

/// Day index within the observation window; negative before the window.
constexpr std::int64_t day_index(sim_time t) {
    // floor division so that t = -1 maps to day -1, not 0.
    std::int64_t d = t / seconds_per_day;
    if (t < 0 && t % seconds_per_day != 0) --d;
    return d;
}

/// Second-of-day in [0, 86400).
constexpr std::int64_t second_of_day(sim_time t) {
    std::int64_t s = t % seconds_per_day;
    if (s < 0) s += seconds_per_day;
    return s;
}

/// Hour-of-day in [0, 24).
constexpr int hour_of_day(sim_time t) {
    return static_cast<int>(second_of_day(t) / seconds_per_hour);
}

/// Day of week, 0 = Monday ... 6 = Sunday.
/// 2024-07-31 (observation start) was a Wednesday.
constexpr int day_of_week(sim_time t) {
    constexpr int start_weekday = 2;  // Wednesday
    std::int64_t dow = (day_index(t) + start_weekday) % 7;
    if (dow < 0) dow += 7;
    return static_cast<int>(dow);
}

constexpr bool is_weekend(sim_time t) { return day_of_week(t) >= 5; }

/// Calendar date of a simulated instant (proleptic Gregorian, UTC).
struct calendar_date {
    int year;
    int month;  ///< 1..12
    int day;    ///< 1..31

    friend bool operator==(const calendar_date&, const calendar_date&) = default;
};

/// Calendar date for a simulated time (observation start = 2024-07-31).
calendar_date to_calendar_date(sim_time t);

/// "YYYY-MM-DD HH:MM:SS" rendering of a simulated instant.
std::string format_timestamp(sim_time t);

/// "YYYY-MM-DD" rendering of the day containing t.
std::string format_date(sim_time t);

/// Human-readable duration, e.g. "2.5 h", "3.1 d", "1.2 y" (used by the
/// Figure 15 lifetime rendering).
std::string format_duration(sim_duration d);

}  // namespace sci
