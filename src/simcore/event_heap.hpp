#pragma once

// Typed discrete-event loop: the serializable sibling of event_queue.
//
// event_queue stores callbacks, which makes a mid-run checkpoint
// impossible — a closure cannot be written to disk.  event_heap stores a
// plain payload per entry and lets the driver interpret it (the engine
// dispatches on an enum), so the complete pending-event set is data:
// sorted_entries()/restore() move it in and out of a snapshot verbatim,
// including reserved tie-break slots.
//
// Scheduling semantics are exactly event_queue's: events fire in (at,
// seq) order, seq is allocated monotonically at schedule time (FIFO
// among equal timestamps), and reserve_seq()/schedule_at_pinned() let a
// self-rescheduling event keep a fixed tie-order slot.  There is no
// cancel — the engine never cancels, and dropping the tombstone
// machinery keeps every heap entry live (what a snapshot must capture
// anyway).

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "simcore/error.hpp"
#include "simcore/time.hpp"

namespace sci {

template <class Payload>
class event_heap {
public:
    struct entry {
        sim_time at;
        std::uint64_t seq;  // tie-break: FIFO among equal timestamps
        Payload payload;
    };

    /// Schedule `payload` at absolute time `at` (must not be in the past).
    void schedule_at(sim_time at, Payload payload) {
        expects(at >= now_, "event_heap::schedule_at: cannot schedule in the past");
        heap_.push(entry{at, next_seq_++, std::move(payload)});
    }

    /// Reserve a tie-break sequence slot at the current allocation point
    /// without scheduling anything (see event_queue::reserve_seq).
    std::uint64_t reserve_seq() { return next_seq_++; }

    /// Schedule at `at` with an explicit reserved tie-break slot.  At most
    /// one live event may hold a given slot at a time.
    void schedule_at_pinned(sim_time at, std::uint64_t seq, Payload payload) {
        expects(at >= now_,
                "event_heap::schedule_at_pinned: cannot schedule in the past");
        expects(seq < next_seq_,
                "event_heap::schedule_at_pinned: sequence slot not reserved");
        heap_.push(entry{at, seq, std::move(payload)});
    }

    sim_time now() const { return now_; }
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }
    std::uint64_t executed_count() const { return executed_; }

    /// Run events until the heap is empty or the clock passes `until`;
    /// events at exactly `until` are executed.  The clock is advanced to
    /// `until` even if the heap drains earlier.  `dispatch(payload, now)`
    /// may schedule further events.
    template <class Dispatch>
    void run_until(sim_time until, Dispatch&& dispatch) {
        expects(until >= now_, "event_heap::run_until: target in the past");
        while (!heap_.empty() && heap_.top().at <= until) {
            // copy out before pop: dispatch may push and reallocate
            entry top = heap_.top();
            heap_.pop();
            now_ = top.at;
            ++executed_;
            dispatch(top.payload, now_);
        }
        now_ = until;
    }

    // --- snapshot support ------------------------------------------------

    /// Every pending entry in (at, seq) order — the canonical serialized
    /// form, so save·load·save is byte-stable.
    std::vector<entry> sorted_entries() const {
        std::priority_queue<entry, std::vector<entry>, entry_later> copy = heap_;
        std::vector<entry> out;
        out.reserve(copy.size());
        while (!copy.empty()) {
            out.push_back(copy.top());
            copy.pop();
        }
        return out;
    }

    std::uint64_t next_seq() const { return next_seq_; }

    /// Replace the complete loop state with a previously captured one.
    void restore(std::vector<entry> entries, sim_time now,
                 std::uint64_t next_seq, std::uint64_t executed) {
        heap_ = {};
        for (entry& e : entries) {
            expects(e.seq < next_seq,
                    "event_heap::restore: entry seq beyond allocation point");
            heap_.push(std::move(e));
        }
        now_ = now;
        next_seq_ = next_seq;
        executed_ = executed;
    }

private:
    struct entry_later {
        bool operator()(const entry& a, const entry& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<entry, std::vector<entry>, entry_later> heap_;
    sim_time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

}  // namespace sci
