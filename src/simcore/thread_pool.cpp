#include "simcore/thread_pool.hpp"

#include <atomic>
#include <cstdlib>

#include "simcore/error.hpp"

namespace sci {

namespace {

/// Set while a pool worker (of any pool) executes a task; a nested
/// parallel_for seen under this flag is serialized inline instead of
/// dispatched, which would deadlock on the busy workers.
thread_local bool inside_pool_task = false;

}  // namespace

thread_pool::thread_pool(unsigned workers) {
    errors_.resize(workers);
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

std::pair<std::size_t, std::size_t> thread_pool::shard(std::size_t begin,
                                                       std::size_t end,
                                                       unsigned index,
                                                       unsigned count) {
    expects(count > 0, "thread_pool::shard: count must be positive");
    expects(index < count, "thread_pool::shard: index out of range");
    const std::size_t n = end > begin ? end - begin : 0;
    const std::size_t base = n / count;
    const std::size_t rem = n % count;
    const std::size_t lo =
        begin + index * base + std::min<std::size_t>(index, rem);
    const std::size_t len = base + (index < rem ? 1 : 0);
    return {lo, lo + len};
}

unsigned thread_pool::env_threads() {
    const char* v = std::getenv("SCI_THREADS");
    if (v == nullptr || *v == '\0') return 0;
    const long parsed = std::strtol(v, nullptr, 10);
    return parsed > 0 ? static_cast<unsigned>(parsed) : 0;
}

void thread_pool::parallel_for(std::size_t begin, std::size_t end,
                               const range_fn& fn) {
    expects(static_cast<bool>(fn), "thread_pool::parallel_for: empty task");
    if (begin >= end) return;
    if (workers_.empty() || inside_pool_task) {
        fn(0, begin, end);
        return;
    }

    const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        job_fn_ = &fn;
        job_begin_ = begin;
        job_end_ = end;
        job_pending_ = worker_count();
        ++job_epoch_;
    }
    work_cv_.notify_all();

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return job_pending_ == 0; });
    job_fn_ = nullptr;

    // deterministic propagation: the lowest-indexed failure wins
    for (std::exception_ptr& err : errors_) {
        if (err) {
            const std::exception_ptr first = std::exchange(err, nullptr);
            for (std::exception_ptr& rest : errors_) rest = nullptr;
            lock.unlock();
            std::rethrow_exception(first);
        }
    }
}

void thread_pool::run_tasks(std::size_t count, const task_fn& fn) {
    expects(static_cast<bool>(fn), "thread_pool::run_tasks: empty task");
    if (count == 0) return;
    if (workers_.empty() || inside_pool_task || count == 1) {
        // Inline on the caller without the nested-use flag: with one task
        // (or a serial pool) the workers stay idle, so the task's own
        // parallel_for calls can still fan out across them.
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    const range_fn claim = [&next, count, &fn](unsigned, std::size_t,
                                               std::size_t) {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            fn(i);
        }
    };

    const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        job_fn_ = &claim;
        job_begin_ = 0;
        job_end_ = count;
        job_pending_ = worker_count();
        ++job_epoch_;
    }
    work_cv_.notify_all();

    // The caller claims tasks too, under the nested-use flag so a task's
    // internal parallel_for serializes inline here exactly as on a worker.
    std::exception_ptr caller_error;
    inside_pool_task = true;
    try {
        claim(0, 0, 0);
    } catch (...) {
        caller_error = std::current_exception();
    }
    inside_pool_task = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return job_pending_ == 0; });
    job_fn_ = nullptr;

    for (std::exception_ptr& err : errors_) {
        if (err) {
            const std::exception_ptr first = std::exchange(err, nullptr);
            for (std::exception_ptr& rest : errors_) rest = nullptr;
            lock.unlock();
            std::rethrow_exception(first);
        }
    }
    if (caller_error) {
        lock.unlock();
        std::rethrow_exception(caller_error);
    }
}

void thread_pool::worker_loop(unsigned index) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
        const range_fn* fn = nullptr;
        std::size_t begin = 0;
        std::size_t end = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this, seen_epoch] {
                return stopping_ || job_epoch_ != seen_epoch;
            });
            if (stopping_) return;
            seen_epoch = job_epoch_;
            fn = job_fn_;
            begin = job_begin_;
            end = job_end_;
        }
        const auto [lo, hi] = shard(begin, end, index, worker_count());
        if (lo < hi) {
            inside_pool_task = true;
            try {
                (*fn)(index, lo, hi);
            } catch (...) {
                errors_[index] = std::current_exception();
            }
            inside_pool_task = false;
        }
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (--job_pending_ == 0) done_cv_.notify_all();
        }
    }
}

}  // namespace sci
