#pragma once

// Deterministic random number generation.
//
// Every stochastic component draws from a named rng_stream derived from a
// single master seed, so the whole simulation — and therefore every
// reproduced figure — is exactly reproducible (DESIGN.md §4 "Determinism").
// Stream derivation hashes (master_seed, name) with splitmix64 so adding a
// new consumer never perturbs existing streams.

#include <cstdint>
#include <random>
#include <span>
#include <string_view>

namespace sci {

/// splitmix64 step; good avalanche, used for seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// FNV-1a hash of a string, for stream-name derivation.
constexpr std::uint64_t fnv1a(std::string_view s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// Derive the master seed for one region of a multi-region fleet.  Region 0
/// keeps the fleet master seed unchanged, so a single-region deployment is
/// bit-identical to a plain engine run at that seed; higher regions hash
/// (master, "region", index) through splitmix64.  The derivation is a pure
/// function of (master_seed, region_index): adding or removing regions
/// never perturbs another region's streams.
constexpr std::uint64_t derive_region_seed(std::uint64_t master_seed,
                                           std::uint64_t region_index) {
    if (region_index == 0) return master_seed;
    return splitmix64(master_seed ^ splitmix64(fnv1a("region") + region_index));
}

/// A named, independently seeded random stream.
class rng_stream {
public:
    rng_stream(std::uint64_t master_seed, std::string_view name)
        : rng_stream(splitmix64(master_seed ^ splitmix64(fnv1a(name)))) {}

    /// Derive an independent child stream, e.g. one per VM: child(vm_index).
    /// Children are a pure function of (this stream's seed, index), so the
    /// order in which they are created does not matter.
    rng_stream child(std::uint64_t index) const {
        return rng_stream(splitmix64(seed_ ^ splitmix64(index + 1)));
    }

    std::mt19937_64& engine() { return engine_; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Bernoulli trial.
    bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

    /// Normal draw.
    double normal(double mean, double stddev) {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Normal draw truncated to [lo, hi] by clamping.
    double clamped_normal(double mean, double stddev, double lo, double hi) {
        const double v = normal(mean, stddev);
        if (v < lo) return lo;
        if (v > hi) return hi;
        return v;
    }

    /// Log-normal draw parameterised by the *underlying* normal.
    double lognormal(double mu, double sigma) {
        return std::lognormal_distribution<double>(mu, sigma)(engine_);
    }

    /// Exponential draw with the given mean.
    double exponential_mean(double mean) {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /// Bounded Pareto draw (heavy tail for lifetimes/spikes).
    double bounded_pareto(double alpha, double lo, double hi);

    /// Pick an index from a discrete distribution given non-negative weights.
    std::size_t pick_weighted(std::span<const double> weights);

private:
    explicit rng_stream(std::uint64_t derived_seed)
        : seed_(derived_seed), engine_(derived_seed) {}

    std::uint64_t seed_;
    std::mt19937_64 engine_;
};

/// A registry handing out named streams from one master seed.
class rng_registry {
public:
    explicit rng_registry(std::uint64_t master_seed) : master_seed_(master_seed) {}

    rng_stream stream(std::string_view name) const {
        return rng_stream(master_seed_, name);
    }

    std::uint64_t master_seed() const { return master_seed_; }

private:
    std::uint64_t master_seed_;
};

}  // namespace sci
