#include "simcore/time.hpp"

#include <array>
#include <cstdio>

namespace sci {

namespace {

// Days from civil date algorithm (Howard Hinnant's public-domain method).
constexpr std::int64_t days_from_civil(int y, int m, int d) {
    y -= m <= 2;
    const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
    const unsigned yoe = static_cast<unsigned>(y - era * 400);
    const unsigned doy =
        (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
        static_cast<unsigned>(d) - 1u;
    const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr calendar_date civil_from_days(std::int64_t z) {
    z += 719468;
    const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
    const unsigned doe = static_cast<unsigned>(z - era * 146097);
    const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
    const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    const unsigned mp = (5 * doy + 2) / 153;
    const unsigned d = doy - (153 * mp + 2) / 5 + 1;
    const unsigned m = mp < 10 ? mp + 3 : mp - 9;
    return calendar_date{static_cast<int>(y + (m <= 2 ? 1 : 0)),
                         static_cast<int>(m), static_cast<int>(d)};
}

constexpr std::int64_t observation_start_days = days_from_civil(2024, 7, 31);

}  // namespace

calendar_date to_calendar_date(sim_time t) {
    return civil_from_days(observation_start_days + day_index(t));
}

std::string format_timestamp(sim_time t) {
    const calendar_date date = to_calendar_date(t);
    const std::int64_t s = second_of_day(t);
    std::array<char, 32> buf{};
    std::snprintf(buf.data(), buf.size(), "%04d-%02d-%02d %02d:%02d:%02d",
                  date.year, date.month, date.day,
                  static_cast<int>(s / seconds_per_hour),
                  static_cast<int>((s / seconds_per_minute) % 60),
                  static_cast<int>(s % 60));
    return std::string(buf.data());
}

std::string format_date(sim_time t) {
    const calendar_date date = to_calendar_date(t);
    std::array<char, 16> buf{};
    std::snprintf(buf.data(), buf.size(), "%04d-%02d-%02d", date.year,
                  date.month, date.day);
    return std::string(buf.data());
}

std::string format_duration(sim_duration d) {
    const double secs = static_cast<double>(d);
    std::array<char, 32> buf{};
    if (secs < 90.0) {
        std::snprintf(buf.data(), buf.size(), "%.0f s", secs);
    } else if (secs < 90.0 * 60.0) {
        std::snprintf(buf.data(), buf.size(), "%.1f min", secs / 60.0);
    } else if (secs < 36.0 * 3600.0) {
        std::snprintf(buf.data(), buf.size(), "%.1f h", secs / 3600.0);
    } else if (secs < 400.0 * 86400.0) {
        std::snprintf(buf.data(), buf.size(), "%.1f d", secs / 86400.0);
    } else {
        std::snprintf(buf.data(), buf.size(), "%.1f y", secs / (365.0 * 86400.0));
    }
    return std::string(buf.data());
}

}  // namespace sci
