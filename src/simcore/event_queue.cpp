#include "simcore/event_queue.hpp"

#include <utility>

namespace sci {

event_handle event_queue::schedule_at(sim_time at, callback fn) {
    expects(at >= now_, "event_queue::schedule_at: cannot schedule in the past");
    expects(static_cast<bool>(fn), "event_queue::schedule_at: null callback");
    const event_handle handle = next_handle_++;
    heap_.push(entry{at, next_seq_++, handle});
    callbacks_.emplace(handle, std::move(fn));
    ++live_events_;
    return handle;
}

event_handle event_queue::schedule_after(sim_duration delay, callback fn) {
    expects(delay >= 0, "event_queue::schedule_after: negative delay");
    return schedule_at(now_ + delay, std::move(fn));
}

event_handle event_queue::schedule_at_pinned(sim_time at, std::uint64_t seq,
                                             callback fn) {
    expects(at >= now_,
            "event_queue::schedule_at_pinned: cannot schedule in the past");
    expects(seq < next_seq_,
            "event_queue::schedule_at_pinned: sequence slot not reserved");
    expects(static_cast<bool>(fn), "event_queue::schedule_at_pinned: null callback");
    const event_handle handle = next_handle_++;
    heap_.push(entry{at, seq, handle});
    callbacks_.emplace(handle, std::move(fn));
    ++live_events_;
    return handle;
}

bool event_queue::cancel(event_handle handle) {
    const auto it = callbacks_.find(handle);
    if (it == callbacks_.end()) return false;
    callbacks_.erase(it);
    --live_events_;
    return true;
}

bool event_queue::step() {
    while (!heap_.empty()) {
        const entry top = heap_.top();
        heap_.pop();
        const auto it = callbacks_.find(top.handle);
        if (it == callbacks_.end()) continue;  // cancelled: skip stale entry
        callback fn = std::move(it->second);
        callbacks_.erase(it);
        --live_events_;
        now_ = top.at;
        ++executed_;
        fn(now_);
        return true;
    }
    return false;
}

void event_queue::run_until(sim_time until) {
    expects(until >= now_, "event_queue::run_until: target in the past");
    while (!heap_.empty()) {
        const entry& top = heap_.top();
        if (callbacks_.find(top.handle) == callbacks_.end()) {
            heap_.pop();  // stale cancelled entry
            continue;
        }
        if (top.at > until) break;
        step();
    }
    now_ = until;
}

void event_queue::run() {
    while (step()) {
    }
}

}  // namespace sci
