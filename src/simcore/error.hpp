#pragma once

// Error handling primitives for the sci library.
//
// Public API boundaries validate their inputs with expects()/ensures(),
// which throw sci::error on violation (Core Guidelines I.5/I.7: state and
// check preconditions).  Internal invariants use assert().

#include <stdexcept>
#include <string>
#include <string_view>

namespace sci {

/// Base exception for every error raised by the sci library.
class error : public std::runtime_error {
public:
    explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an argument violates a documented precondition.
class precondition_error : public error {
public:
    explicit precondition_error(const std::string& what) : error(what) {}
};

/// Raised when a requested entity (host, series, flavor, ...) is unknown.
class not_found_error : public error {
public:
    explicit not_found_error(const std::string& what) : error(what) {}
};

/// Raised when a resource request cannot be satisfied (e.g. no valid host).
class capacity_error : public error {
public:
    explicit capacity_error(const std::string& what) : error(what) {}
};

/// Check a precondition at an API boundary; throws precondition_error.
inline void expects(bool condition, std::string_view message) {
    if (!condition) {
        throw precondition_error(std::string(message));
    }
}

/// Check a postcondition / internal consistency result visible to callers.
inline void ensures(bool condition, std::string_view message) {
    if (!condition) {
        throw error("postcondition violated: " + std::string(message));
    }
}

}  // namespace sci
