#include "simcore/rng.hpp"

#include <cmath>

#include "simcore/error.hpp"

namespace sci {

double rng_stream::bounded_pareto(double alpha, double lo, double hi) {
    expects(alpha > 0.0, "bounded_pareto: alpha must be positive");
    expects(lo > 0.0 && hi > lo, "bounded_pareto: need 0 < lo < hi");
    // Inverse-CDF sampling of the truncated Pareto distribution.
    const double u = uniform(0.0, 1.0);
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t rng_stream::pick_weighted(std::span<const double> weights) {
    expects(!weights.empty(), "pick_weighted: weights must be non-empty");
    double total = 0.0;
    for (double w : weights) {
        expects(w >= 0.0, "pick_weighted: weights must be non-negative");
        total += w;
    }
    expects(total > 0.0, "pick_weighted: at least one weight must be positive");
    double r = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (r < weights[i]) return i;
        r -= weights[i];
    }
    return weights.size() - 1;  // numeric edge: fall back to last bucket
}

}  // namespace sci
