#pragma once

// sci::fault — deterministic fault injection.
//
// The paper is a reality check: real fleets lose hypervisors, abort live
// migrations, and restart VMs under HA — the dataset only shows the
// *planned* side (decommissions, resizes).  This module compiles a
// seed-driven fault schedule at engine setup so the robustness narrative
// (Nova's "greedy approach with retries", NoValidHost under pressure, DRS
// churn after host loss) can be reproduced and quantified.
//
// Everything is a pure function of (fault_config, fleet, master seed):
// crash times come from per-node child RNG streams, so the schedule is
// independent of node iteration order, thread count, and of every other
// consumer of the master seed.  A default-constructed fault_config (all
// rates zero) compiles to an empty schedule and the engine's fault layer
// stays completely inert — no RNG draws, no queue events, no extra state.

#include <string_view>
#include <vector>

#include "infra/fleet.hpp"
#include "infra/ids.hpp"
#include "simcore/time.hpp"

namespace sci {

/// Knobs of the fault layer.  All rates default to zero: the injector is
/// fully inert and existing runs reproduce byte-for-byte.
struct fault_config {
    /// Expected hypervisor crashes per node per day (exponential
    /// inter-arrival per node).  A crash kills resident VMs; HA restarts
    /// them through the real Nova conductor.
    double host_crash_rate_per_day = 0.0;
    /// Probability that one placement claim transiently fails (claim
    /// races / RPC timeouts), exercising the conductor's retry loop.
    double claim_failure_probability = 0.0;
    /// Probability that an individual DRS / cross-BB live migration
    /// aborts mid-copy; the pre-copy work is wasted and the VM stays put.
    double migration_abort_probability = 0.0;
    /// Fraction of nodes that suffer one degraded interval in-window
    /// (failing DIMM/fan, firmware throttling): effective CPU capacity is
    /// scaled by degraded_cpu_factor in the contention model.
    double degraded_node_fraction = 0.0;
    double degraded_cpu_factor = 0.6;
    /// Number of unplanned single-node maintenance windows (evacuate,
    /// hold out of service, recommission).
    int maintenance_windows = 0;
    sim_duration maintenance_duration = hours(6);
    /// AZ-level correlated outages: every host of one availability zone
    /// crashes in the same detection epoch (power/cooling/network-spine
    /// loss — the datacenter-scale incidents the paper's reality check
    /// motivates).  HA re-places all victims through the real conductor,
    /// so the surviving zones absorb the zone's standing population.
    int az_outages = 0;
    /// Deterministic start of outage w at (w+1)·az_outage_at; 0 draws the
    /// start times uniformly inside [0.10, 0.80] of the window instead.
    sim_duration az_outage_at = 0;
    /// Wall-clock until the zone's hosts rejoin their clusters (0 = never).
    sim_duration az_outage_repair_time = hours(4);

    // --- HA controller policy -------------------------------------------
    /// Detection + restart latency before the first re-placement attempt.
    sim_duration ha_restart_delay = 120;
    /// Backoff between failed restart attempts.
    sim_duration ha_retry_backoff = 600;
    /// Attempts before a victim is abandoned (stays in error state).
    int ha_max_restart_attempts = 5;
    /// Wall-clock until a crashed host rejoins its cluster (0 = never).
    sim_duration crash_repair_time = days(2);

    /// Whether any fault source is active.  False for the default config:
    /// the engine then skips the fault layer entirely.
    bool enabled() const {
        return host_crash_rate_per_day > 0.0 ||
               claim_failure_probability > 0.0 ||
               migration_abort_probability > 0.0 ||
               degraded_node_fraction > 0.0 || maintenance_windows > 0 ||
               az_outages > 0;
    }
};

enum class fault_event_kind {
    host_crash,         ///< hypervisor dies; residents need HA restarts
    host_repair,        ///< crashed host rejoins the cluster
    degrade_begin,      ///< effective CPU capacity shrinks
    degrade_end,        ///< capacity restored
    maintenance_begin,  ///< evacuate + hold out of service
    maintenance_end,    ///< recommission
    az_outage_begin,    ///< every host of one AZ crashes at once
    az_outage_end,      ///< the zone's hosts rejoin their clusters
};

std::string_view to_string(fault_event_kind k);

/// One compiled fault: what happens to which node (or, for AZ outages,
/// which zone) at what instant.
struct fault_event {
    sim_time t = 0;
    fault_event_kind kind = fault_event_kind::host_crash;
    node_id node;  ///< unset for az_outage_* events
    az_id az;      ///< set only for az_outage_* events
    /// Effective-capacity factor for degrade_begin events (else 1.0).
    double cpu_factor = 1.0;
};

/// Compile the deterministic fault schedule for one run: every fault the
/// window will see, sorted by time (ties keep generation order: crashes,
/// then degradations, then maintenance, then AZ outages; by node id
/// within each source).
/// Pure in (config, fleet size, seed); empty when config.enabled() is
/// false.
std::vector<fault_event> compile_fault_schedule(const fault_config& config,
                                                const fleet& infrastructure,
                                                std::uint64_t seed);

}  // namespace sci
