#include "fault/ha.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace sci {

ha_controller::ha_controller(sim_duration retry_backoff,
                             int max_restart_attempts)
    : retry_backoff_(retry_backoff),
      max_restart_attempts_(max_restart_attempts) {
    expects(retry_backoff_ >= 0, "ha_controller: negative retry backoff");
    expects(max_restart_attempts_ >= 1, "ha_controller: need >= 1 attempt");
}

void ha_controller::on_crash(vm_id vm, sim_time t) {
    expects(vm.valid(), "ha_controller::on_crash: invalid vm");
    const auto [it, inserted] = pending_.insert({vm, victim{t, 0}});
    (void)it;
    expects(inserted, "ha_controller::on_crash: restart already pending");
    ++crashed_;
}

bool ha_controller::cancel(vm_id vm) {
    if (pending_.erase(vm) == 0) return false;
    ++cancelled_;
    return true;
}

void ha_controller::on_restart_success(vm_id vm, sim_time t) {
    const auto it = pending_.find(vm);
    expects(it != pending_.end(),
            "ha_controller::on_restart_success: no pending restart");
    downtime_.push_back(static_cast<double>(t - it->second.crashed_at));
    pending_.erase(it);
    ++restarted_;
}

std::optional<sim_time> ha_controller::on_restart_failure(vm_id vm, sim_time t) {
    const auto it = pending_.find(vm);
    expects(it != pending_.end(),
            "ha_controller::on_restart_failure: no pending restart");
    ++failed_attempts_;
    if (++it->second.attempts >= max_restart_attempts_) {
        pending_.erase(it);
        ++abandoned_;
        return std::nullopt;
    }
    return t + retry_backoff_;
}

int ha_controller::attempts_of(vm_id vm) const {
    const auto it = pending_.find(vm);
    return it != pending_.end() ? it->second.attempts : 0;
}

std::vector<ha_controller::pending_row> ha_controller::pending_table() const {
    std::vector<pending_row> rows;
    rows.reserve(pending_.size());
    for (const auto& [vm, v] : pending_) {
        rows.push_back({vm, v.crashed_at, v.attempts});
    }
    std::sort(rows.begin(), rows.end(),
              [](const pending_row& a, const pending_row& b) {
                  return a.vm < b.vm;
              });
    return rows;
}

void ha_controller::restore_state(const std::vector<pending_row>& pending,
                                  std::vector<double> downtime,
                                  std::uint64_t crashed,
                                  std::uint64_t restarted,
                                  std::uint64_t abandoned,
                                  std::uint64_t cancelled,
                                  std::uint64_t failed_attempts) {
    pending_.clear();
    for (const pending_row& row : pending) {
        const bool inserted =
            pending_.insert({row.vm, victim{row.crashed_at, row.attempts}})
                .second;
        expects(inserted, "ha_controller::restore_state: duplicate victim");
    }
    downtime_ = std::move(downtime);
    crashed_ = crashed;
    restarted_ = restarted;
    abandoned_ = abandoned;
    cancelled_ = cancelled;
    failed_attempts_ = failed_attempts;
}

double ha_controller::mttr() const {
    if (downtime_.empty()) return 0.0;
    double sum = 0.0;
    for (const double d : downtime_) sum += d;
    return sum / static_cast<double>(downtime_.size());
}

}  // namespace sci
