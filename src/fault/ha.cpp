#include "fault/ha.hpp"

#include "simcore/error.hpp"

namespace sci {

ha_controller::ha_controller(sim_duration retry_backoff,
                             int max_restart_attempts)
    : retry_backoff_(retry_backoff),
      max_restart_attempts_(max_restart_attempts) {
    expects(retry_backoff_ >= 0, "ha_controller: negative retry backoff");
    expects(max_restart_attempts_ >= 1, "ha_controller: need >= 1 attempt");
}

void ha_controller::on_crash(vm_id vm, sim_time t) {
    expects(vm.valid(), "ha_controller::on_crash: invalid vm");
    const auto [it, inserted] = pending_.insert({vm, victim{t, 0}});
    (void)it;
    expects(inserted, "ha_controller::on_crash: restart already pending");
    ++crashed_;
}

bool ha_controller::cancel(vm_id vm) {
    if (pending_.erase(vm) == 0) return false;
    ++cancelled_;
    return true;
}

void ha_controller::on_restart_success(vm_id vm, sim_time t) {
    const auto it = pending_.find(vm);
    expects(it != pending_.end(),
            "ha_controller::on_restart_success: no pending restart");
    downtime_.push_back(static_cast<double>(t - it->second.crashed_at));
    pending_.erase(it);
    ++restarted_;
}

std::optional<sim_time> ha_controller::on_restart_failure(vm_id vm, sim_time t) {
    const auto it = pending_.find(vm);
    expects(it != pending_.end(),
            "ha_controller::on_restart_failure: no pending restart");
    ++failed_attempts_;
    if (++it->second.attempts >= max_restart_attempts_) {
        pending_.erase(it);
        ++abandoned_;
        return std::nullopt;
    }
    return t + retry_backoff_;
}

int ha_controller::attempts_of(vm_id vm) const {
    const auto it = pending_.find(vm);
    return it != pending_.end() ? it->second.attempts : 0;
}

double ha_controller::mttr() const {
    if (downtime_.empty()) return 0.0;
    double sum = 0.0;
    for (const double d : downtime_) sum += d;
    return sum / static_cast<double>(downtime_.size());
}

}  // namespace sci
