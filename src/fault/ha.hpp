#pragma once

// HA recovery controller (vSphere-HA / Nova evacuate equivalent).
//
// When a hypervisor crashes, its VMs are gone until the HA layer notices
// and asks the scheduler to re-place them — under pressure, because the
// surviving hosts just absorbed the cluster's load.  This controller owns
// the recovery *bookkeeping and policy* (who is down since when, how many
// attempts, when to give up) and the resulting availability statistics
// (per-VM downtime distribution, MTTR); the engine performs the actual
// re-placement through the real Nova conductor so HA restarts exercise
// the same retry / NoValidHost machinery as regular placements.
//
// Restarts are batched: one detection epoch's victims drain as a group
// through the engine's speculate/commit pipeline, and on_restart_failure
// is charged exactly once per genuine NoValidHost outcome — a speculation
// miss inside the drain falls back to the serial retry rounds of the SAME
// attempt and must not inflate the victim's attempt budget.

#include <optional>
#include <unordered_map>
#include <vector>

#include "infra/ids.hpp"
#include "simcore/time.hpp"

namespace sci {

class ha_controller {
public:
    ha_controller(sim_duration retry_backoff, int max_restart_attempts);

    /// A VM lost its host at time t; a restart is now pending.
    void on_crash(vm_id vm, sim_time t);

    /// Whether a restart is pending for this VM.
    bool pending(vm_id vm) const { return pending_.contains(vm); }
    std::size_t pending_count() const { return pending_.size(); }

    /// The owner deleted the VM while it was down: drop the pending
    /// restart.  Returns false when no restart was pending.
    bool cancel(vm_id vm);

    /// A restart attempt succeeded: records the downtime sample
    /// (t - crash time) and clears the pending state.
    void on_restart_success(vm_id vm, sim_time t);

    /// A restart attempt failed (NoValidHost).  Returns the time of the
    /// next attempt, or nullopt when the attempt budget is exhausted (the
    /// victim is abandoned and stays in error state).
    std::optional<sim_time> on_restart_failure(vm_id vm, sim_time t);

    // --- availability statistics -----------------------------------------
    std::uint64_t crashed_vms() const { return crashed_; }
    std::uint64_t restarted_vms() const { return restarted_; }
    std::uint64_t abandoned_vms() const { return abandoned_; }
    std::uint64_t cancelled_vms() const { return cancelled_; }
    std::uint64_t failed_attempts() const { return failed_attempts_; }

    /// Failed attempts charged against a pending victim so far (0 for
    /// unknown/recovered VMs).  A fresh crash after a successful restart
    /// starts again at 0 — the budget is per recovery, never inherited.
    int attempts_of(vm_id vm) const;

    /// Downtime (seconds) of every successfully restarted VM, in recovery
    /// order — the availability distribution of the report.
    const std::vector<double>& downtime_samples() const { return downtime_; }

    /// Mean time to recovery over restarted VMs (seconds; 0 when none).
    double mttr() const;

    // --- snapshot support -------------------------------------------------
    struct pending_row {
        vm_id vm;
        sim_time crashed_at = 0;
        int attempts = 0;
    };

    /// Pending victims as rows sorted by vm id — the canonical serialized
    /// form (the live map's iteration order is not).
    std::vector<pending_row> pending_table() const;

    /// Overwrite the complete controller state with checkpointed values.
    /// `downtime` keeps recovery order; the backoff/attempt policy comes
    /// from the constructor (config, not state).
    void restore_state(const std::vector<pending_row>& pending,
                       std::vector<double> downtime, std::uint64_t crashed,
                       std::uint64_t restarted, std::uint64_t abandoned,
                       std::uint64_t cancelled, std::uint64_t failed_attempts);

private:
    struct victim {
        sim_time crashed_at = 0;
        int attempts = 0;
    };

    sim_duration retry_backoff_;
    int max_restart_attempts_;
    std::unordered_map<vm_id, victim> pending_;
    std::vector<double> downtime_;
    std::uint64_t crashed_ = 0;
    std::uint64_t restarted_ = 0;
    std::uint64_t abandoned_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t failed_attempts_ = 0;
};

}  // namespace sci
