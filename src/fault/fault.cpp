#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "simcore/error.hpp"
#include "simcore/rng.hpp"

namespace sci {

std::string_view to_string(fault_event_kind k) {
    switch (k) {
        case fault_event_kind::host_crash: return "host_crash";
        case fault_event_kind::host_repair: return "host_repair";
        case fault_event_kind::degrade_begin: return "degrade_begin";
        case fault_event_kind::degrade_end: return "degrade_end";
        case fault_event_kind::maintenance_begin: return "maintenance_begin";
        case fault_event_kind::maintenance_end: return "maintenance_end";
        case fault_event_kind::az_outage_begin: return "az_outage_begin";
        case fault_event_kind::az_outage_end: return "az_outage_end";
    }
    return "unknown";
}

namespace {

/// Pick `count` distinct node indices (uniform, without replacement).
std::vector<std::size_t> pick_distinct_nodes(rng_stream& rng,
                                             std::size_t node_count,
                                             std::size_t count) {
    std::vector<std::size_t> indices(node_count);
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    std::vector<std::size_t> picked;
    for (std::size_t p = 0; p < count && !indices.empty(); ++p) {
        const auto slot = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(indices.size()) - 1));
        picked.push_back(indices[slot]);
        indices.erase(indices.begin() + static_cast<std::ptrdiff_t>(slot));
    }
    return picked;
}

}  // namespace

std::vector<fault_event> compile_fault_schedule(const fault_config& config,
                                                const fleet& infrastructure,
                                                std::uint64_t seed) {
    expects(config.host_crash_rate_per_day >= 0.0 &&
                config.claim_failure_probability >= 0.0 &&
                config.claim_failure_probability <= 1.0 &&
                config.migration_abort_probability >= 0.0 &&
                config.migration_abort_probability <= 1.0 &&
                config.degraded_node_fraction >= 0.0 &&
                config.degraded_node_fraction <= 1.0 &&
                config.maintenance_windows >= 0 && config.az_outages >= 0 &&
                config.az_outage_at >= 0 && config.az_outage_repair_time >= 0,
            "compile_fault_schedule: rates out of range");
    expects(config.degraded_cpu_factor > 0.0 && config.degraded_cpu_factor <= 1.0,
            "compile_fault_schedule: degraded_cpu_factor must be in (0, 1]");
    expects(config.ha_restart_delay >= 0 && config.ha_retry_backoff >= 0 &&
                config.ha_max_restart_attempts >= 1 &&
                config.crash_repair_time >= 0,
            "compile_fault_schedule: HA policy out of range");

    std::vector<fault_event> schedule;
    if (!config.enabled()) return schedule;
    const std::size_t node_count = infrastructure.node_count();

    // --- host crashes: exponential inter-arrival per node ----------------
    // One child stream per node index keeps the schedule a pure function
    // of (node, seed): adding nodes or reordering iteration never
    // perturbs another node's crash times.
    if (config.host_crash_rate_per_day > 0.0) {
        const rng_stream parent(seed, "fault-crashes");
        const double mean_gap = static_cast<double>(seconds_per_day) /
                                config.host_crash_rate_per_day;
        for (std::size_t i = 0; i < node_count; ++i) {
            rng_stream rng = parent.child(i);
            double t = rng.exponential_mean(mean_gap);
            while (t < static_cast<double>(observation_window)) {
                const auto at = static_cast<sim_time>(t);
                const node_id node(static_cast<std::int32_t>(i));
                schedule.push_back(fault_event{
                    .t = at, .kind = fault_event_kind::host_crash, .node = node});
                if (config.crash_repair_time == 0) break;  // host never returns
                const sim_time repaired = at + config.crash_repair_time;
                if (repaired < observation_window) {
                    schedule.push_back(
                        fault_event{.t = repaired,
                                    .kind = fault_event_kind::host_repair,
                                    .node = node});
                }
                // next crash only after the host is back in service
                t = static_cast<double>(repaired) + rng.exponential_mean(mean_gap);
            }
        }
    }

    // --- degraded hosts: one capacity dip per picked node ----------------
    if (config.degraded_node_fraction > 0.0) {
        rng_stream rng(seed, "fault-degrade");
        const auto count = static_cast<std::size_t>(std::lround(
            config.degraded_node_fraction * static_cast<double>(node_count)));
        for (const std::size_t idx : pick_distinct_nodes(rng, node_count, count)) {
            const auto begin = static_cast<sim_time>(
                rng.uniform(0.05, 0.70) * static_cast<double>(observation_window));
            const auto length = static_cast<sim_duration>(
                rng.uniform(0.05, 0.25) * static_cast<double>(observation_window));
            const sim_time end =
                std::min<sim_time>(begin + length, observation_window - 1);
            const node_id node(static_cast<std::int32_t>(idx));
            schedule.push_back(fault_event{.t = begin,
                                           .kind = fault_event_kind::degrade_begin,
                                           .node = node,
                                           .cpu_factor = config.degraded_cpu_factor});
            schedule.push_back(fault_event{
                .t = end, .kind = fault_event_kind::degrade_end, .node = node});
        }
    }

    // --- unplanned maintenance windows -----------------------------------
    if (config.maintenance_windows > 0 && node_count > 0) {
        rng_stream rng(seed, "fault-maintenance");
        for (int w = 0; w < config.maintenance_windows; ++w) {
            const auto idx = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(node_count) - 1));
            const auto begin = static_cast<sim_time>(
                rng.uniform(0.10, 0.85) * static_cast<double>(observation_window));
            const sim_time end = std::min<sim_time>(
                begin + config.maintenance_duration, observation_window - 1);
            const node_id node(static_cast<std::int32_t>(idx));
            schedule.push_back(
                fault_event{.t = begin,
                            .kind = fault_event_kind::maintenance_begin,
                            .node = node});
            schedule.push_back(fault_event{
                .t = end, .kind = fault_event_kind::maintenance_end, .node = node});
        }
    }

    // --- AZ-level correlated outages --------------------------------------
    if (config.az_outages > 0 && infrastructure.az_count() > 0) {
        rng_stream rng(seed, "fault-az-outage");
        for (int w = 0; w < config.az_outages; ++w) {
            // the zone pick always consumes one draw, so begin times stay
            // aligned whether az_outage_at pins them or not
            const auto az_idx = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(infrastructure.az_count()) - 1));
            const az_id az = infrastructure.azs()[az_idx].id;
            const sim_time begin =
                config.az_outage_at > 0
                    ? static_cast<sim_time>(w + 1) * config.az_outage_at
                    : static_cast<sim_time>(
                          rng.uniform(0.10, 0.80) *
                          static_cast<double>(observation_window));
            if (begin >= observation_window) continue;
            schedule.push_back(fault_event{
                .t = begin, .kind = fault_event_kind::az_outage_begin, .az = az});
            if (config.az_outage_repair_time == 0) continue;  // never repaired
            const sim_time end = begin + config.az_outage_repair_time;
            if (end < observation_window) {
                schedule.push_back(fault_event{
                    .t = end, .kind = fault_event_kind::az_outage_end, .az = az});
            }
        }
    }

    // stable by time: same-instant faults keep generation order, which is
    // itself deterministic (crash < degrade < maintenance, node-ordered)
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const fault_event& a, const fault_event& b) {
                         return a.t < b.t;
                     });
    return schedule;
}

}  // namespace sci
