#include "hypervisor/node_runtime.hpp"

#include <algorithm>

#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace sci {

node_snapshot evaluate_node(const hardware_profile& profile,
                            const node_demand& demand, sim_duration interval) {
    expects(interval > 0, "evaluate_node: interval must be positive");
    expects(profile.pcpu_cores > 0 && profile.memory_mib > 0,
            "evaluate_node: profile must have positive capacity");

    node_snapshot snap;
    const double capacity = static_cast<double>(profile.pcpu_cores);
    // pinned-QoS VMs own dedicated cores; the shared pool shrinks
    const double pinned = std::clamp(demand.pinned_cores, 0.0, capacity);
    const double shared_capacity = capacity - pinned;
    const double d = std::max(0.0, demand.cpu_cores);

    snap.cpu_util_pct = clamp_percent(
        (std::min(d, shared_capacity) + pinned) / capacity * 100.0);
    if (d > shared_capacity && d > 0.0) {
        const double ready_fraction = (d - shared_capacity) / d;
        snap.cpu_contention_pct = clamp_percent(ready_fraction * 100.0);
        snap.cpu_ready_ms = ready_fraction * static_cast<double>(interval) * 1000.0;
    }

    snap.mem_usage_pct = clamp_percent(
        static_cast<double>(demand.mem_mib) /
        static_cast<double>(profile.memory_mib) * 100.0);

    snap.tx_kbps = std::clamp(demand.tx_kbps, 0.0, profile.nic_kbps);
    snap.rx_kbps = std::clamp(demand.rx_kbps, 0.0, profile.nic_kbps);
    snap.storage_used_gib =
        std::clamp(demand.storage_gib, 0.0, profile.storage_gib);
    return snap;
}

void node_runtime::place(vm_id vm, const flavor& f) {
    expects(vm.valid(), "node_runtime::place: invalid vm id");
    const auto it = std::lower_bound(residents_.begin(), residents_.end(), vm);
    expects(it == residents_.end() || *it != vm,
            "node_runtime::place: vm already resident");
    residents_.insert(it, vm);
    reserved_vcpus_ += f.vcpus;
    reserved_ram_ += f.ram_mib;
    reserved_disk_ += f.disk_gib;
}

void node_runtime::remove(vm_id vm, const flavor& f) {
    const auto it = std::lower_bound(residents_.begin(), residents_.end(), vm);
    expects(it != residents_.end() && *it == vm,
            "node_runtime::remove: vm not resident");
    residents_.erase(it);
    reserved_vcpus_ -= f.vcpus;
    reserved_ram_ -= f.ram_mib;
    reserved_disk_ -= f.disk_gib;
    ensures(reserved_vcpus_ >= 0 && reserved_ram_ >= 0 && reserved_disk_ >= -1e-9,
            "node_runtime::remove: reservation accounting went negative");
}

bool node_runtime::fits(const flavor& f, double cpu_allocation_ratio,
                        double ram_allocation_ratio) const {
    expects(cpu_allocation_ratio > 0.0 && ram_allocation_ratio > 0.0,
            "node_runtime::fits: allocation ratios must be positive");
    const double cpu_limit =
        static_cast<double>(profile_.pcpu_cores) * cpu_allocation_ratio;
    const double ram_limit =
        static_cast<double>(profile_.memory_mib) * ram_allocation_ratio;
    return static_cast<double>(reserved_vcpus_ + f.vcpus) <= cpu_limit &&
           static_cast<double>(reserved_ram_ + f.ram_mib) <= ram_limit &&
           reserved_disk_ + f.disk_gib <= profile_.storage_gib;
}

}  // namespace sci
