#pragma once

// Per-node runtime state and the CPU contention model.
//
// node_runtime tracks which VMs reside on an ESXi node and the resources
// they *reserve* (flavor-sized, i.e. what placement decisions see).
// evaluate_node() converts instantaneous *demand* (what the workload model
// says VMs want right now) into the observable host metrics of Table 4,
// including the two contention signals the paper analyses:
//
//   CPU contention %  — share of time vCPUs were ready but not scheduled
//                       (Figure 9; >40% observed on some hosts)
//   CPU ready ms      — the same signal expressed as waiting time per
//                       sampling interval (Figure 8; up to ~220 s per 300 s)
//
// The model is proportional-share: when aggregate demand D exceeds physical
// capacity C, every vCPU gets scaled back by C/D and the unsatisfied
// fraction (D-C)/D of the interval is spent in ready state.

#include <algorithm>
#include <span>
#include <vector>

#include "infra/flavor.hpp"
#include "infra/hardware.hpp"
#include "infra/ids.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace sci {

/// Aggregate instantaneous demand of the VMs on one node.
struct node_demand {
    double cpu_cores = 0.0;      ///< sum of active vCPU-cores demanded (shared pool)
    double pinned_cores = 0.0;   ///< physical cores reserved by pinned-QoS VMs
    mebibytes mem_mib = 0;       ///< sum of consumed memory
    kbps tx_kbps = 0.0;          ///< transmitted traffic
    kbps rx_kbps = 0.0;          ///< received traffic
    gibibytes storage_gib = 0.0; ///< allocated datastore space
    int vm_count = 0;

    void add(double cores, mebibytes mem, kbps tx, kbps rx, gibibytes disk) {
        cpu_cores += cores;
        mem_mib += mem;
        tx_kbps += tx;
        rx_kbps += rx;
        storage_gib += disk;
        ++vm_count;
    }

    /// Fold another partial demand into this one (sharded scrape
    /// reduction; callers must merge shards in a fixed order so the
    /// floating-point grouping stays deterministic).
    void merge(const node_demand& o) {
        cpu_cores += o.cpu_cores;
        pinned_cores += o.pinned_cores;
        mem_mib += o.mem_mib;
        tx_kbps += o.tx_kbps;
        rx_kbps += o.rx_kbps;
        storage_gib += o.storage_gib;
        vm_count += o.vm_count;
    }
};

/// Observable host metrics for one sampling interval.
struct node_snapshot {
    double cpu_util_pct = 0.0;     ///< min(D, C) / C * 100
    double cpu_contention_pct = 0.0;  ///< (D - C) / D * 100 when D > C
    double cpu_ready_ms = 0.0;     ///< contention fraction * interval
    double mem_usage_pct = 0.0;
    kbps tx_kbps = 0.0;
    kbps rx_kbps = 0.0;
    gibibytes storage_used_gib = 0.0;
};

/// Evaluate the contention model for one node over one sampling interval.
node_snapshot evaluate_node(const hardware_profile& profile,
                            const node_demand& demand, sim_duration interval);

/// Reservation-level state of one ESXi node: which VMs live here and what
/// their flavors reserve.  This is what DRS and node-granular placement
/// reason about (demand-level signals come from evaluate_node).
class node_runtime {
public:
    node_runtime() = default;
    node_runtime(node_id id, hardware_profile profile)
        : id_(id), profile_(std::move(profile)) {}

    node_id id() const { return id_; }
    const hardware_profile& profile() const { return profile_; }

    /// Place a VM; reserves its flavor's resources.  Throws if already here.
    void place(vm_id vm, const flavor& f);

    /// Remove a VM; releases its flavor's resources.  Throws if not here.
    void remove(vm_id vm, const flavor& f);

    bool hosts(vm_id vm) const {
        return std::binary_search(residents_.begin(), residents_.end(), vm);
    }
    /// Resident VMs in ascending-id order.  The order is *stable* across
    /// container library versions and identical for every walk, so DRS
    /// candidate scans, evacuations and demand sums are reproducible
    /// (ROADMAP: node-order-stable resident container).
    std::span<const vm_id> residents() const { return residents_; }
    std::size_t vm_count() const { return residents_.size(); }

    /// Whether the node accepts new placements (false while the host is
    /// out of service / not yet commissioned — operational changes during
    /// the observation window, Section 5 "white cells").
    bool accepting() const { return accepting_; }
    void set_accepting(bool accepting) { accepting_ = accepting; }

    core_count reserved_vcpus() const { return reserved_vcpus_; }
    mebibytes reserved_ram_mib() const { return reserved_ram_; }
    gibibytes reserved_disk_gib() const { return reserved_disk_; }

    /// vCPU:pCPU overcommit currently reserved on this node.
    double cpu_overcommit() const {
        return profile_.pcpu_cores == 0
                   ? 0.0
                   : static_cast<double>(reserved_vcpus_) /
                         static_cast<double>(profile_.pcpu_cores);
    }

    /// Fraction of physical memory reserved by flavors.
    double ram_reserved_ratio() const {
        return profile_.memory_mib == 0
                   ? 0.0
                   : static_cast<double>(reserved_ram_) /
                         static_cast<double>(profile_.memory_mib);
    }

    /// Whether a flavor fits under the given allocation ratios (the
    /// placement-API admission rule).
    bool fits(const flavor& f, double cpu_allocation_ratio,
              double ram_allocation_ratio) const;

    // --- snapshot support -------------------------------------------------
    /// Overwrite the reservation state with checkpointed values.  The
    /// reserved disk total accumulates flavor-by-flavor over the run, so
    /// it must round-trip bitwise rather than be recomputed.  `residents`
    /// must be ascending (the invariant every walk relies on).
    void restore(bool accepting, std::vector<vm_id> residents,
                 core_count reserved_vcpus, mebibytes reserved_ram_mib,
                 gibibytes reserved_disk_gib) {
        accepting_ = accepting;
        residents_ = std::move(residents);
        reserved_vcpus_ = reserved_vcpus;
        reserved_ram_ = reserved_ram_mib;
        reserved_disk_ = reserved_disk_gib;
    }

private:
    node_id id_;
    hardware_profile profile_;
    bool accepting_ = true;
    std::vector<vm_id> residents_;  ///< sorted ascending (binary search)
    core_count reserved_vcpus_ = 0;
    mebibytes reserved_ram_ = 0;
    gibibytes reserved_disk_ = 0.0;
};

}  // namespace sci
