#include <algorithm>
#include <sstream>

#include "snapshot/engine_access.hpp"
#include "snapshot/snapshot.hpp"

namespace sci::snapshot {
namespace {

std::vector<running_stats::exact_state> to_exact(
    std::span<const running_stats> stats) {
    std::vector<running_stats::exact_state> out;
    out.reserve(stats.size());
    for (const running_stats& s : stats) out.push_back(s.exact());
    return out;
}

std::vector<running_stats> from_exact(
    const std::vector<running_stats::exact_state>& states) {
    std::vector<running_stats> out;
    out.reserve(states.size());
    for (const auto& s : states) out.push_back(running_stats::from_exact(s));
    return out;
}

std::string rng_text(rng_stream& rng) {
    std::ostringstream os;
    os << rng.engine();
    return os.str();
}

void restore_rng(rng_stream& rng, const std::string& text) {
    std::istringstream is(text);
    is >> rng.engine();
    expects(!is.fail(), "snapshot: malformed RNG stream state");
}

}  // namespace

engine_state engine_access::capture(sim_engine& e) {
    expects(e.setup_done_, "snapshot::capture: engine not set up");
    engine_state s;
    s.config = e.config_;

    // event loop (sorted_entries is the canonical (at, seq) order)
    s.queue = e.queue_.sorted_entries();
    s.now = e.queue_.now();
    s.next_seq = e.queue_.next_seq();
    s.executed = e.queue_.executed_count();

    // VMs — names/projects are pure-from-config, so only lifecycle fields
    s.vms.reserve(e.vms_.size());
    for (const vm_record& rec : e.vms_.all()) {
        s.vms.push_back({rec.flavor, rec.state, rec.created_at,
                         rec.deleted_at, rec.placed_bb, rec.placed_node,
                         rec.migration_count});
    }

    // placement
    const std::vector<bb_id>& provs = e.placement_.providers();
    s.provider_usages.reserve(provs.size());
    for (const bb_id bb : provs) {
        s.provider_usages.push_back(e.placement_.usage(bb));
    }
    s.allocations = e.placement_.allocation_table();
    s.placement_version = e.placement_.version();
    s.placement_shrink_version = e.placement_.shrink_version();

    // conductor
    s.sched_scheduled = e.conductor_->scheduled_count();
    s.sched_no_valid_host = e.conductor_->no_valid_host_count();
    s.sched_retries = e.conductor_->retry_count();
    s.sched_transient_claim_failures =
        e.conductor_->transient_claim_failure_count();
    s.sched_speculative_placements =
        e.conductor_->speculative_placement_count();
    s.sched_speculation_misses = e.conductor_->speculation_miss_count();
    e.conductor_->snapshot_claim_counts(s.claim_counts);

    // clusters & nodes (cluster-major, nodes() order — the restore walk)
    s.clusters.reserve(e.clusters_.size());
    for (const drs_cluster& c : e.clusters_) {
        s.clusters.push_back(
            {c.migration_count(), c.abort_count(), c.usage_version()});
        for (const node_runtime& nr : c.nodes()) {
            s.nodes.push_back({nr.accepting(),
                               {nr.residents().begin(), nr.residents().end()},
                               nr.reserved_vcpus(), nr.reserved_ram_mib(),
                               nr.reserved_disk_gib()});
        }
    }

    // telemetry (ascending series id — restore re-creates ids in order)
    const std::size_t series_count = e.store_.series_count();
    s.series.reserve(series_count);
    for (std::size_t i = 0; i < series_count; ++i) {
        const series_id id(static_cast<std::int32_t>(i));
        const metric_store::series_view v = e.store_.view_of(id);
        series_state row;
        row.metric = std::string(e.store_.metric_of(id).name);
        row.labels = e.store_.labels_of(id).pairs();
        row.daily_first = v.daily_first;
        row.daily = to_exact(v.daily);
        row.hourly_first = v.hourly_first;
        row.hourly = to_exact(v.hourly);
        row.raw.assign(v.raw.begin(), v.raw.end());
        s.series.push_back(std::move(row));
    }
    for (unsigned shard = 0; shard < metric_store::append_shard_count;
         ++shard) {
        s.shard_counters.push_back(e.store_.shard_counter(shard));
    }
    s.raw_sealed_through = e.store_.raw_sealed_through();

    // log & stats
    s.events.assign(e.events_.all().begin(), e.events_.all().end());
    s.stats = e.stats_;

    // churn-arrival pipeline (arrivals_ itself is pure-from-config)
    s.arrival_cursor = e.arrival_cursor_;
    s.arrival_drain_seq = e.arrival_drain_seq_;
    s.window_spec_active = e.window_spec_active_;
    s.spec_begin = e.spec_begin_;
    s.spec_end = e.spec_end_;
    s.spec_shrink_version = e.spec_shrink_version_;
    s.spec_scrapes = e.spec_scrapes_;
    if (e.window_spec_active_) {
        // the live vector is resize-up-only scratch; only the open batch's
        // slots are state
        const std::size_t batch = e.spec_end_ - e.spec_begin_;
        s.spec_slots.assign(e.spec_slots_.begin(),
                            e.spec_slots_.begin() +
                                static_cast<std::ptrdiff_t>(batch));
        s.spec_claim_counts = e.spec_claim_counts_;
    }
    s.churn_batch_spans = e.churn_batch_spans_;

    // backpressure (bp_drain_wanted_/bp_draining_ are transient and never
    // set at an event-time barrier, so only the durable pieces travel)
    if (e.bp_) {
        s.has_bp = true;
        s.bp_queue = e.bp_->queue_table();
        s.bp_regime = static_cast<std::uint8_t>(e.bp_->regime());
        s.bp_transitions.assign(e.bp_->transitions().begin(),
                                e.bp_->transitions().end());
    }
    s.bp_drain_seq = e.bp_drain_seq_;
    s.bp_drain_armed = e.bp_drain_armed_;

    // HA recovery
    if (e.ha_) {
        s.has_ha = true;
        s.ha_pending = e.ha_->pending_table();
        s.ha_downtime = e.ha_->downtime_samples();
        s.ha_crashed = e.ha_->crashed_vms();
        s.ha_restarted = e.ha_->restarted_vms();
        s.ha_abandoned = e.ha_->abandoned_vms();
        s.ha_cancelled = e.ha_->cancelled_vms();
        s.ha_failed_attempts = e.ha_->failed_attempts();
    }
    for (const sim_engine::ha_group& g : e.ha_groups_) {
        s.ha_groups.push_back({g.due, g.victims});
    }
    s.ha_spec_active = e.ha_spec_active_;
    s.ha_spec_vms = e.ha_spec_vms_;
    s.ha_spec_cursor = e.ha_spec_cursor_;
    s.ha_spec_shrink_version = e.ha_spec_shrink_version_;
    s.ha_spec_scrapes = e.ha_spec_scrapes_;
    if (e.ha_spec_active_) {
        s.ha_spec_slots.assign(e.ha_spec_slots_.begin(),
                               e.ha_spec_slots_.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       e.ha_spec_vms_.size()));
        s.ha_spec_claim_counts = e.ha_spec_claim_counts_;
    }
    s.recovery_batch_spans = e.recovery_batch_spans_;

    // fault layer
    s.node_down = e.node_down_;
    s.node_az_down = e.node_az_down_;
    s.node_cpu_factor = e.node_cpu_factor_;
    if (e.mig_abort_rng_) {
        s.has_mig_abort_rng = true;
        s.mig_abort_rng_state = rng_text(*e.mig_abort_rng_);
    }
    if (e.claim_fault_rng_) {
        s.has_claim_fault_rng = true;
        s.claim_fault_rng_state = rng_text(*e.claim_fault_rng_);
    }

    s.bb_contention_ewma = e.bb_contention_ewma_;
    return s;
}

void engine_access::restore_into(sim_engine& e, const engine_state& s) {
    expects(!e.setup_done_,
            "snapshot::restore: engine already set up — restore needs a "
            "freshly constructed engine");
    e.setup_done_ = true;

    // (1) Telemetry FIRST: the store is empty before setup_providers, so
    // restoring rows in ascending id order reproduces the original id
    // assignment; the open_series calls below then get-or-create onto the
    // restored ids.
    for (const series_state& row : s.series) {
        label_set labels;
        for (const auto& [k, v] : row.labels) labels.set(k, v);
        e.store_.restore_series(row.metric, std::move(labels),
                                row.daily_first, from_exact(row.daily),
                                row.hourly_first, from_exact(row.hourly),
                                row.raw);
    }
    expects(s.shard_counters.size() == metric_store::append_shard_count,
            "snapshot::restore: shard counter count mismatch");
    for (unsigned shard = 0; shard < metric_store::append_shard_count;
         ++shard) {
        e.store_.restore_shard_counter(shard, s.shard_counters[shard].first,
                                       s.shard_counters[shard].second);
    }
    e.store_.restore_raw_sealed_through(s.raw_sealed_through);

    // (2) Pure-from-config rebuild: providers/clusters/conductor/series
    // registrations, then the node-churn fleet mutations (the plan is a
    // pure function of seed + fleet; events live in the restored queue and
    // accepting flags in the restored node rows, so ONLY availability
    // spans are re-applied here).
    e.setup_providers();
    fleet& f = e.scenario_.infrastructure;
    for (const sim_engine::node_churn_action& a : e.plan_node_churn()) {
        compute_node& n = f.get_mutable(a.node);
        if (a.commission) {
            n.available_from = a.at;
        } else {
            n.available_until = a.at;
        }
    }
    e.build_population();
    e.setup_scrape_pipeline();

    // (3) VM overlay onto the rebuilt registry.
    expects(s.vms.size() == e.vms_.size(),
            "snapshot::restore: VM count mismatch (config drift?)");
    for (std::size_t i = 0; i < s.vms.size(); ++i) {
        const vm_state_row& row = s.vms[i];
        vm_record& rec = e.vms_.get_mutable(vm_id(static_cast<std::int32_t>(i)));
        rec.flavor = row.flavor;
        rec.state = row.state;
        rec.created_at = row.created_at;
        rec.deleted_at = row.deleted_at;
        rec.placed_bb = row.placed_bb;
        rec.placed_node = row.placed_node;
        rec.migration_count = row.migration_count;
    }

    // (4) Arrivals: rebuilt exactly as schedule_window_events builds them
    // (same source, same stable sort); the cursor and the pinned drain
    // slot come from the snapshot (the drain event itself, if still
    // pending, is in the restored queue).
    e.arrivals_.clear();
    e.arrivals_.reserve(e.population_plan_.arrivals.size());
    for (const vm_plan& plan : e.population_plan_.arrivals) {
        e.arrivals_.push_back({plan.vm, plan.created_at, plan.deleted_at});
    }
    std::stable_sort(e.arrivals_.begin(), e.arrivals_.end(),
                     [](const sim_engine::churn_arrival& a,
                        const sim_engine::churn_arrival& b) {
                         return a.created_at < b.created_at;
                     });
    e.arrival_cursor_ = static_cast<std::size_t>(s.arrival_cursor);
    e.arrival_drain_seq_ = s.arrival_drain_seq;

    // (5) Event loop.
    e.queue_.restore(s.queue, s.now, s.next_seq, s.executed);

    // (6) Placement claims + version counters.
    const std::vector<bb_id>& provs = e.placement_.providers();
    expects(s.provider_usages.size() == provs.size(),
            "snapshot::restore: provider count mismatch");
    for (std::size_t i = 0; i < provs.size(); ++i) {
        e.placement_.restore_usage(provs[i], s.provider_usages[i]);
    }
    e.placement_.restore_allocations(s.allocations);
    e.placement_.restore_versions(s.placement_version,
                                  s.placement_shrink_version);

    // (7) Conductor counters + per-provider claim counts.
    e.conductor_->restore_counters(
        s.sched_scheduled, s.sched_no_valid_host, s.sched_retries,
        s.sched_transient_claim_failures, s.sched_speculative_placements,
        s.sched_speculation_misses);
    e.conductor_->restore_claim_counts(s.claim_counts);

    // (8) Clusters & nodes (same cluster-major walk as capture).
    expects(s.clusters.size() == e.clusters_.size(),
            "snapshot::restore: cluster count mismatch");
    std::size_t node_row = 0;
    for (std::size_t c = 0; c < e.clusters_.size(); ++c) {
        drs_cluster& cluster = e.clusters_[c];
        cluster.restore_counters(s.clusters[c].migrations,
                                 s.clusters[c].aborts,
                                 s.clusters[c].usage_version);
        std::vector<node_id> ids;
        ids.reserve(cluster.nodes().size());
        for (const node_runtime& nr : cluster.nodes()) ids.push_back(nr.id());
        for (const node_id id : ids) {
            expects(node_row < s.nodes.size(),
                    "snapshot::restore: node row count mismatch");
            const node_state_row& row = s.nodes[node_row++];
            cluster.node(id).restore(row.accepting, row.residents,
                                     row.reserved_vcpus, row.reserved_ram_mib,
                                     row.reserved_disk_gib);
        }
    }
    expects(node_row == s.nodes.size(),
            "snapshot::restore: node row count mismatch");

    // (9) Lifecycle log + counters.
    for (const lifecycle_event& ev : s.events) e.events_.record(ev);
    e.stats_ = s.stats;

    // (10) Open churn batch (if one straddles the barrier, the next
    // drain_arrivals commits straight out of these slots — or drops the
    // tail on a version mismatch, exactly like the uninterrupted run).
    e.window_spec_active_ = s.window_spec_active;
    e.spec_begin_ = static_cast<std::size_t>(s.spec_begin);
    e.spec_end_ = static_cast<std::size_t>(s.spec_end);
    e.spec_shrink_version_ = s.spec_shrink_version;
    e.spec_scrapes_ = s.spec_scrapes;
    e.spec_slots_ = s.spec_slots;
    // the engine's grow-only guard keys on spec_slots_.size() and sizes
    // the request scratch with it — keep them sized together
    e.spec_requests_.resize(e.spec_slots_.size());
    e.spec_claim_counts_ = s.spec_claim_counts;
    e.churn_batch_spans_ = s.churn_batch_spans;

    // (10b) Backpressure controller + queued requests.  Rebuilt by hand
    // (restore never runs setup_backpressure), including the placement
    // release listener — same pattern as the claim-fault hook in (12).
    // The pinned drain event itself, if armed, is in the restored queue.
    if (s.has_bp) {
        expects(e.config_.backpressure.active(),
                "snapshot::restore: snapshot has backpressure state but "
                "config is degrade-mode");
        e.bp_ = std::make_unique<backpressure_controller>(
            e.config_.backpressure);
        e.bp_->restore_state(s.bp_queue,
                             static_cast<sci::bp_regime>(s.bp_regime),
                             s.bp_transitions);
        e.placement_.set_release_listener([&e] {
            if (!e.bp_draining_) e.bp_drain_wanted_ = true;
        });
    }
    e.bp_drain_seq_ = s.bp_drain_seq;
    e.bp_drain_armed_ = s.bp_drain_armed;

    // (11) HA controller + queued victim groups + open recovery batch.
    const fault_config& fc = e.config_.fault;
    if (s.has_ha) {
        expects(fc.enabled(),
                "snapshot::restore: snapshot has HA state but config has "
                "no fault model");
        e.ha_ = std::make_unique<ha_controller>(fc.ha_retry_backoff,
                                                fc.ha_max_restart_attempts);
        e.ha_->restore_state(s.ha_pending, s.ha_downtime, s.ha_crashed,
                             s.ha_restarted, s.ha_abandoned, s.ha_cancelled,
                             s.ha_failed_attempts);
    }
    e.ha_groups_.clear();
    for (const ha_group_state& g : s.ha_groups) {
        e.ha_groups_.push_back({g.due, g.victims});
    }
    e.ha_spec_active_ = s.ha_spec_active;
    e.ha_spec_vms_ = s.ha_spec_vms;
    e.ha_spec_cursor_ = static_cast<std::size_t>(s.ha_spec_cursor);
    e.ha_spec_shrink_version_ = s.ha_spec_shrink_version;
    e.ha_spec_scrapes_ = s.ha_spec_scrapes;
    e.ha_spec_slots_ = s.ha_spec_slots;
    // same sized-together invariant as the churn batch above
    e.ha_spec_requests_.resize(e.ha_spec_slots_.size());
    e.ha_spec_claim_counts_ = s.ha_spec_claim_counts;
    e.recovery_batch_spans_ = s.recovery_batch_spans;

    // (12) Fault arrays + serial RNG stream positions (re-seed the same
    // named streams, then fast-forward to the captured engine position).
    expects(s.node_down.size() == e.node_down_.size(),
            "snapshot::restore: fleet size mismatch");
    e.node_down_ = s.node_down;
    e.node_az_down_ = s.node_az_down;
    e.node_cpu_factor_ = s.node_cpu_factor;
    if (s.has_mig_abort_rng) {
        e.mig_abort_rng_.emplace(e.config_.scenario.seed,
                                 "fault-migration-aborts");
        restore_rng(*e.mig_abort_rng_, s.mig_abort_rng_state);
    }
    if (s.has_claim_fault_rng) {
        e.claim_fault_rng_.emplace(e.config_.scenario.seed,
                                   "fault-claim-races");
        restore_rng(*e.claim_fault_rng_, s.claim_fault_rng_state);
        e.conductor_->set_claim_fault([&e](vm_id, bb_id, int) {
            return e.claim_fault_rng_->chance(
                e.config_.fault.claim_failure_probability);
        });
    }

    // (13) Contention feed memory.
    expects(s.bb_contention_ewma.size() == e.bb_contention_ewma_.size(),
            "snapshot::restore: BB count mismatch");
    e.bb_contention_ewma_ = s.bb_contention_ewma;

    // (14) SoA hot-path columns: re-admit every active VM.  Slot numbers
    // may differ from the original engine's (its free-list history is
    // gone) but are observationally irrelevant — every walk goes through
    // active_slots_, which is sorted by vm id.  open_vm_series resolves to
    // the restored series ids via get-or-create.
    for (std::size_t i = 0; i < s.vms.size(); ++i) {
        if (s.vms[i].state != vm_state::active) continue;
        const vm_id vm(static_cast<std::int32_t>(i));
        e.active_insert(vm);
        e.open_vm_series(e.vms_.get(vm));
    }
}

std::unique_ptr<sim_engine> restore(const engine_state& state,
                                    thread_pool* shared_pool) {
    auto engine = std::make_unique<sim_engine>(state.config);
    if (shared_pool != nullptr) engine->set_shared_pool(shared_pool);
    engine_access::restore_into(*engine, state);
    return engine;
}

engine_state capture(sim_engine& engine) {
    return engine_access::capture(engine);
}

}  // namespace sci::snapshot
