#include "snapshot/whatif.hpp"

#include <algorithm>

#include "sched/conductor.hpp"
#include "snapshot/engine_access.hpp"

namespace sci::snapshot {

whatif_planner::whatif_planner(const sim_engine& engine)
    : catalog_(&engine.catalog()),
      scheduler_(&engine_access::conductor_of(engine).scheduler()),
      base_(engine_access::conductor_of(engine).build_host_states()) {}

whatif_result whatif_planner::plan(
    std::span<const whatif_query> queries) const {
    std::vector<host_state> hosts = base_;
    sched_scratch scratch;
    whatif_result result;
    result.landings.reserve(queries.size());

    for (const whatif_query& q : queries) {
        const flavor& f = catalog_->get(q.flavor);
        schedule_request rq;
        rq.flavor = q.flavor;
        rq.policy = q.policy;
        const request_context ctx{rq, f};
        const std::span<const bb_id> ranked =
            scheduler_->select_destinations(ctx, hosts, 1, scratch);
        if (ranked.empty()) {
            result.landings.emplace_back(std::nullopt);
            ++result.failed;
            continue;
        }
        const bb_id dest = ranked.front();
        // the host view is providers-ordered and dense in bb id value
        const auto it = std::find_if(
            hosts.begin(), hosts.end(),
            [dest](const host_state& h) { return h.bb == dest; });
        expects(it != hosts.end(), "whatif: destination missing from view");
        it->vcpus_used += f.vcpus;
        it->ram_used_mib += f.ram_mib;
        it->disk_used_gib += f.disk_gib;
        ++it->instances;
        result.landings.emplace_back(dest);
        ++result.placed;
    }

    for (const host_state& h : hosts) {
        if (h.vcpu_capacity() > 0.0) {
            result.peak_cpu_allocation_ratio =
                std::max(result.peak_cpu_allocation_ratio,
                         static_cast<double>(h.vcpus_used) / h.vcpu_capacity());
        }
        if (h.ram_capacity_mib() > 0.0) {
            result.peak_ram_allocation_ratio = std::max(
                result.peak_ram_allocation_ratio,
                static_cast<double>(h.ram_used_mib) / h.ram_capacity_mib());
        }
    }
    return result;
}

}  // namespace sci::snapshot
