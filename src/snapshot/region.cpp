// Multi-region snapshot composition.  One event-time barrier — the pool
// barrier of region_set::run_until(T) — covers all N regions at once:
// regions share no mutable state, so after run_until returns each engine
// sits at its own valid barrier and the bundle is a consistent cut.

#include "multiregion/region_set.hpp"
#include "snapshot/engine_access.hpp"
#include "snapshot/snapshot.hpp"

namespace sci::snapshot {

std::vector<engine_state> capture(region_set& regions) {
    std::vector<engine_state> states;
    states.reserve(regions.region_count());
    for (std::size_t r = 0; r < regions.region_count(); ++r) {
        engine_state state = engine_access::capture(regions.region(r));
        state.region = regions.spec(r).name;
        states.push_back(std::move(state));
    }
    return states;
}

std::unique_ptr<region_set> restore_regions(
    std::span<const engine_state> states, std::optional<unsigned> threads) {
    expects(!states.empty(), "snapshot::restore_regions: no regions");
    std::vector<region_spec> specs;
    specs.reserve(states.size());
    for (const engine_state& state : states) {
        specs.push_back({state.region, state.config});
    }
    return std::make_unique<region_set>(
        std::move(specs),
        [&states](std::size_t r, thread_pool& pool) {
            return restore(states[r], &pool);
        },
        threads);
}

}  // namespace sci::snapshot
