#pragma once

// Snapshot-internal backdoor into sim_engine (the friend declared in
// core/engine.hpp).  Everything the public snapshot API needs from the
// engine's private state funnels through these three entry points, so
// the capture/restore surface stays auditable in one place.

#include "core/engine.hpp"
#include "snapshot/snapshot.hpp"

namespace sci::snapshot {

struct engine_access {
    /// Read the complete mutable state (see snapshot.hpp for the
    /// serialize-vs-rebuild split).
    static engine_state capture(sim_engine& engine);

    /// Overlay `state` onto a freshly constructed engine (same config,
    /// setup() NOT run).  Rebuilds the pure-from-config parts, then
    /// restores every serialized field; afterwards the engine reports
    /// is_setup() and run_until continues the original timeline.
    static void restore_into(sim_engine& engine, const engine_state& state);

    /// Scheduler internals for the read-only what-if planner.
    static const conductor& conductor_of(const sim_engine& engine) {
        expects(engine.is_setup(), "snapshot: engine not set up");
        return *engine.conductor_;
    }
};

}  // namespace sci::snapshot
