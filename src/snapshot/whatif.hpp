#pragma once

// Read-only what-if queries against a live engine or a restored fork:
// "where would these 500 VMs land, and what does allocation pressure
// become?"  The planner copies the scheduler's host view ONCE at
// construction; plan() is a pure const function over that copy (each call
// works on its own private host vector and scratch), so any number of
// threads may run queries concurrently against one hot snapshot and every
// per-query result is identical to executing the same queries serially.
//
// The planner walks the real filter+weigher pipeline (the conductor's
// filter_scheduler) — not a re-implementation — so a what-if answer is
// exactly the placement the engine itself would have chosen.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "sched/scheduler.hpp"

namespace sci::snapshot {

/// One hypothetical VM to place.
struct whatif_query {
    flavor_id flavor;
    placement_policy policy = placement_policy::spread;
};

/// Outcome of one plan() call.
struct whatif_result {
    /// Landing BB per query, in query order (nullopt = NoValidHost).
    std::vector<std::optional<bb_id>> landings;
    std::size_t placed = 0;
    std::size_t failed = 0;
    /// Worst per-BB utilization of the *allocation* capacity (vCPU/RAM
    /// under the overcommit ratios) after all placements applied.
    double peak_cpu_allocation_ratio = 0.0;
    double peak_ram_allocation_ratio = 0.0;
};

class whatif_planner {
public:
    /// Snapshot the scheduler's host view of a set-up engine.  The engine
    /// must outlive the planner (catalog and scheduler are borrowed); the
    /// engine must not RUN while queries execute — fork a snapshot for
    /// concurrent explore-while-simulating.
    explicit whatif_planner(const sim_engine& engine);

    /// Place `queries` in order against a private copy of the base view,
    /// each placement's reservation visible to the next query.  Pure
    /// const: concurrent calls never share mutable state.
    whatif_result plan(std::span<const whatif_query> queries) const;

    std::size_t host_count() const { return base_.size(); }

private:
    const flavor_catalog* catalog_;
    const filter_scheduler* scheduler_;
    std::vector<host_state> base_;
};

}  // namespace sci::snapshot
