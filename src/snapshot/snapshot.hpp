#pragma once

// Checkpoint / restore / fork of a running simulation (sci::snapshot).
//
// A snapshot is the *complete mutable state* of a sim_engine at an
// event-time barrier (any instant after run_until(T) returned): pending
// event-heap entries with their sequence slots, every VM's lifecycle
// fields, placement usage + allocations + version counters, conductor and
// cluster counters, per-node reservations, the metric store's running
// aggregates and unsealed raw blocks, open speculation batches (churn and
// HA — a barrier can fall while a batch awaits its next commit), the HA
// controller's pending victims, fault arrays, and the textual positions
// of the serial fault RNG streams.
//
// Everything derivable purely from the config is NOT stored and instead
// rebuilt on restore: the fleet (make_regional_scenario), VM names and
// projects (build_population), behavior/lifetime models, the scheduler
// pipeline and per-node/BB series registrations (setup_providers), and
// the node-churn plan (a pure function of seed + fleet size).  That keeps
// snapshots small — state, not world — while `snapshot → restore →
// run_until(W)` reproduces the uninterrupted run's replay fingerprints
// bit for bit at any SCI_THREADS.
//
// Forking: an engine_state is immutable once captured, so N what-if arms
// share ONE state behind a shared_ptr and each restore() builds only its
// private overlay (fleet + registries + overlaid mutable state) — far
// cheaper than re-running setup(), whose initial placement dominates.
// Post-restore policy mutators (sim_engine::set_drs_enabled,
// set_gp_cpu_allocation_ratio) turn a fork into an ablation arm.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "fault/ha.hpp"
#include "sched/scheduler.hpp"
#include "simcore/error.hpp"
#include "simcore/stats.hpp"
#include "simcore/thread_pool.hpp"
#include "telemetry/store.hpp"

namespace sci {

class region_set;  // sci::multiregion (capture/restore compose per region)

namespace snapshot {

/// Serialized-format version.  deserialize() accepts exactly the versions
/// it knows how to read; a snapshot from a future build fails with a
/// precise error instead of misinterpreting bytes.
inline constexpr std::uint32_t format_version = 2;

/// Raised by the codec on malformed input: wrong magic, future version,
/// truncation, or checksum mismatch.  Never undefined behaviour — every
/// read is length-checked before it happens.
class snapshot_error : public error {
public:
    explicit snapshot_error(const std::string& what) : error(what) {}
};

/// One series of the metric store: identity (metric + labels, so restore
/// re-creates ids in ascending order) plus the complete mutable payload.
struct series_state {
    std::string metric;
    std::vector<std::pair<std::string, std::string>> labels;  ///< sorted
    std::int32_t daily_first = -1;
    std::vector<running_stats::exact_state> daily;
    std::int32_t hourly_first = -1;
    std::vector<running_stats::exact_state> hourly;
    std::vector<sample> raw;  ///< unsealed samples, time-ascending
};

/// Mutable lifecycle fields of one VM record (index = vm id; names and
/// projects are rebuilt by build_population).
struct vm_state_row {
    flavor_id flavor;  ///< current flavor (resizes move it)
    vm_state state = vm_state::pending;
    sim_time created_at = 0;
    std::optional<sim_time> deleted_at;
    bb_id placed_bb;
    node_id placed_node;
    std::int32_t migration_count = 0;
};

/// Reservation state of one node (cluster-major, nodes() order).
struct node_state_row {
    bool accepting = true;
    std::vector<vm_id> residents;  ///< ascending
    core_count reserved_vcpus = 0;
    mebibytes reserved_ram_mib = 0;
    gibibytes reserved_disk_gib = 0.0;
};

/// Lifetime counters of one DRS cluster (clusters_ order = bb id order).
struct cluster_state_row {
    std::uint64_t migrations = 0;
    std::uint64_t aborts = 0;
    std::uint64_t usage_version = 0;
};

/// One queued HA victim group (deque order).
struct ha_group_state {
    sim_time due = 0;
    std::vector<vm_id> victims;
};

/// Complete engine state at an event-time barrier.  Immutable by
/// convention once captured (fork() shares it across arms).
struct engine_state {
    engine_config config;  ///< snapshots are self-contained
    std::string region;    ///< region name for region_set bundles ("" solo)

    // --- event loop -------------------------------------------------------
    std::vector<event_heap<engine_event>::entry> queue;  ///< (at, seq) asc
    sim_time now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;

    // --- VMs & placement --------------------------------------------------
    std::vector<vm_state_row> vms;  ///< index = vm id
    std::vector<provider_usage> provider_usages;  ///< providers() order
    std::vector<std::pair<vm_id, bb_id>> allocations;  ///< sorted by vm
    std::uint64_t placement_version = 0;
    std::uint64_t placement_shrink_version = 0;

    // --- conductor --------------------------------------------------------
    std::uint64_t sched_scheduled = 0;
    std::uint64_t sched_no_valid_host = 0;
    std::uint64_t sched_retries = 0;
    std::uint64_t sched_transient_claim_failures = 0;
    std::uint64_t sched_speculative_placements = 0;
    std::uint64_t sched_speculation_misses = 0;
    std::vector<std::uint64_t> claim_counts;  ///< per provider index

    // --- clusters & nodes -------------------------------------------------
    std::vector<cluster_state_row> clusters;
    std::vector<node_state_row> nodes;  ///< cluster-major

    // --- telemetry --------------------------------------------------------
    std::vector<series_state> series;  ///< ascending series id
    std::vector<std::pair<std::uint64_t, std::uint64_t>> shard_counters;
    std::int32_t raw_sealed_through = -1;

    // --- log & stats ------------------------------------------------------
    std::vector<lifecycle_event> events;
    run_stats stats;

    // --- churn-arrival pipeline -------------------------------------------
    std::uint64_t arrival_cursor = 0;
    std::uint64_t arrival_drain_seq = 0;
    bool window_spec_active = false;  ///< a batch straddles the barrier
    std::uint64_t spec_begin = 0;
    std::uint64_t spec_end = 0;
    std::uint64_t spec_shrink_version = 0;
    std::uint64_t spec_scrapes = 0;
    std::vector<host_speculation> spec_slots;  ///< open-batch slots only
    std::vector<std::uint64_t> spec_claim_counts;
    std::vector<sim_engine::churn_batch_span> churn_batch_spans;

    // --- backpressure (format v2; v1 snapshots restore as inert) ----------
    bool has_bp = false;
    std::vector<bp_queued_request> bp_queue;  ///< front-to-back
    std::uint8_t bp_regime = 0;               ///< sci::bp_regime value
    std::vector<sim_time> bp_transitions;
    std::uint64_t bp_drain_seq = 0;  ///< pinned drain slot (always reserved)
    bool bp_drain_armed = false;     ///< a drain event sits in the queue

    // --- HA recovery ------------------------------------------------------
    bool has_ha = false;
    std::vector<ha_controller::pending_row> ha_pending;  ///< sorted by vm
    std::vector<double> ha_downtime;
    std::uint64_t ha_crashed = 0;
    std::uint64_t ha_restarted = 0;
    std::uint64_t ha_abandoned = 0;
    std::uint64_t ha_cancelled = 0;
    std::uint64_t ha_failed_attempts = 0;
    std::vector<ha_group_state> ha_groups;
    bool ha_spec_active = false;
    std::vector<vm_id> ha_spec_vms;
    std::uint64_t ha_spec_cursor = 0;
    std::uint64_t ha_spec_shrink_version = 0;
    std::uint64_t ha_spec_scrapes = 0;
    std::vector<host_speculation> ha_spec_slots;
    std::vector<std::uint64_t> ha_spec_claim_counts;
    std::vector<sim_engine::churn_batch_span> recovery_batch_spans;

    // --- fault layer ------------------------------------------------------
    std::vector<char> node_down;
    std::vector<char> node_az_down;
    std::vector<double> node_cpu_factor;
    bool has_mig_abort_rng = false;
    std::string mig_abort_rng_state;  ///< textual mt19937_64 position
    bool has_claim_fault_rng = false;
    std::string claim_fault_rng_state;

    // --- contention feed --------------------------------------------------
    std::vector<double> bb_contention_ewma;
};

// --- capture / restore / fork ----------------------------------------------

/// Capture the complete state of a set-up engine at the current event-time
/// barrier (call only between run_until returns — never from a probe).
/// Non-const because reading the serial fault RNG positions and claim
/// counters touches caches; the simulated state is not perturbed.
engine_state capture(sim_engine& engine);

/// Rebuild a live engine from a state: pure-from-config parts are re-run
/// (scenario, population, models, providers), mutable state is overlaid.
/// `shared_pool` wires the engine to an external pool before restore
/// (region_set composition / fork fan-out); the pool must outlive the
/// engine.  The result is indistinguishable from the engine the state was
/// captured from: running both to any later time produces bit-identical
/// fingerprints at any SCI_THREADS.
std::unique_ptr<sim_engine> restore(const engine_state& state,
                                    thread_pool* shared_pool = nullptr);

/// Immutable shared snapshot: N forks hold one state, zero deep copies.
using shared_snapshot = std::shared_ptr<const engine_state>;

inline shared_snapshot share(engine_state state) {
    return std::make_shared<const engine_state>(std::move(state));
}

/// Fork one arm off a shared snapshot (copy-on-write: the arm's overlay
/// is private, the state stays shared and untouched).
inline std::unique_ptr<sim_engine> fork(const shared_snapshot& snap,
                                        thread_pool* shared_pool = nullptr) {
    expects(snap != nullptr, "snapshot::fork: null snapshot");
    return restore(*snap, shared_pool);
}

// --- multi-region composition -----------------------------------------------

/// Capture every region of a region_set at one shared event-time barrier
/// (call after region_set::run_until(T) returned — the pool barrier IS
/// the event-time barrier for all N regions).  States carry their region
/// names, so a bundle round-trips through restore_regions.
std::vector<engine_state> capture(region_set& regions);

/// Rebuild a region_set from captured per-region states: one restored
/// engine per state, all sharing one pool of `threads` workers (nullopt =
/// SCI_THREADS).  setup() on the result is a no-op.
std::unique_ptr<region_set> restore_regions(
    std::span<const engine_state> states,
    std::optional<unsigned> threads = std::nullopt);

// --- versioned byte codec ---------------------------------------------------

/// Serialize to the versioned byte format: magic + version + payload
/// length + FNV-1a checksum + payload.  Deterministic: equal states
/// produce equal bytes, and save·load·save is the identity (every
/// container is captured in canonical order).
std::vector<std::byte> serialize(const engine_state& state);

/// Parse serialized bytes; throws snapshot_error with a precise message
/// on bad magic, unsupported (future) version, truncation, or checksum
/// mismatch.
engine_state deserialize(std::span<const std::byte> bytes);

/// Write / read a snapshot file (the CLI's --snapshot-at / --restore).
void save_file(const engine_state& state, const std::string& path);
engine_state load_file(const std::string& path);

}  // namespace snapshot
}  // namespace sci
