// Versioned byte codec for engine_state.
//
// Layout: magic (u64) · format version (u32) · payload length (u64) ·
// FNV-1a checksum of the payload (u64) · payload.  All integers are
// little-endian fixed-width; doubles travel as their IEEE-754 bit
// patterns (bit_cast), so serialization is lossless and deterministic —
// equal states produce equal bytes and save·load·save is the identity.
//
// Every read is length-checked before it happens and every failure mode
// (bad magic, future version, truncation, checksum mismatch) throws
// snapshot_error with a message naming the offending field — a corrupted
// or future-version file can never walk the decoder into UB.

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "simcore/rng.hpp"
#include "snapshot/snapshot.hpp"

namespace sci::snapshot {
namespace {

constexpr std::uint64_t snapshot_magic = 0x53434953'4e415031ull;  // "SCISNAP1"

std::uint64_t checksum(std::span<const std::byte> payload) {
    return fnv1a(std::string_view(
        reinterpret_cast<const char*>(payload.data()), payload.size()));
}

class byte_writer {
public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    void u32(std::uint32_t v) { append(&v, sizeof v); }
    void u64(std::uint64_t v) { append(&v, sizeof v); }
    void i32(std::int32_t v) { append(&v, sizeof v); }
    void i64(std::int64_t v) { append(&v, sizeof v); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void str(std::string_view s) {
        u64(s.size());
        append(s.data(), s.size());
    }
    template <typename Tag>
    void id(strong_id<Tag> v) {
        i32(v.valid() ? v.value() : -1);
    }
    void opt_i64(const std::optional<sim_time>& v) {
        boolean(v.has_value());
        if (v.has_value()) i64(*v);
    }
    void size(std::size_t n) { u64(n); }

    std::vector<std::byte> take() { return std::move(buf_); }

private:
    void append(const void* data, std::size_t n) {
        const auto* p = static_cast<const std::byte*>(data);
        buf_.insert(buf_.end(), p, p + n);
    }
    std::vector<std::byte> buf_;
};

class byte_reader {
public:
    explicit byte_reader(std::span<const std::byte> bytes) : bytes_(bytes) {}

    std::uint8_t u8() {
        need(1, "u8");
        return static_cast<std::uint8_t>(bytes_[pos_++]);
    }
    bool boolean() {
        const std::uint8_t v = u8();
        if (v > 1) throw snapshot_error("snapshot: malformed bool value");
        return v != 0;
    }
    std::uint32_t u32() { return scalar<std::uint32_t>("u32"); }
    std::uint64_t u64() { return scalar<std::uint64_t>("u64"); }
    std::int32_t i32() { return scalar<std::int32_t>("i32"); }
    std::int64_t i64() { return scalar<std::int64_t>("i64"); }
    double f64() { return std::bit_cast<double>(u64()); }
    std::string str() {
        const std::uint64_t n = u64();
        need(n, "string body");
        std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }
    template <typename Tag>
    strong_id<Tag> id() {
        return strong_id<Tag>(i32());
    }
    std::optional<sim_time> opt_i64() {
        if (!boolean()) return std::nullopt;
        return i64();
    }
    /// Element count of a container about to be read.  `min_bytes` is the
    /// smallest serialized size of one element — bounding the count by the
    /// remaining bytes rejects absurd lengths from corrupted input before
    /// any allocation.
    std::size_t size(std::size_t min_bytes) {
        const std::uint64_t n = u64();
        if (min_bytes > 0 && n > remaining() / min_bytes) {
            throw snapshot_error(
                "snapshot: truncated input (container length exceeds "
                "remaining bytes)");
        }
        return static_cast<std::size_t>(n);
    }

    std::size_t remaining() const { return bytes_.size() - pos_; }

private:
    template <typename T>
    T scalar(const char* what) {
        need(sizeof(T), what);
        T v;
        std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }
    void need(std::uint64_t n, const char* what) {
        if (n > remaining()) {
            throw snapshot_error(std::string("snapshot: truncated input "
                                             "(reading ") +
                                 what + ")");
        }
    }

    std::span<const std::byte> bytes_;
    std::size_t pos_ = 0;
};

// --- config ------------------------------------------------------------------

void write_config(byte_writer& w, const engine_config& c) {
    w.f64(c.scenario.scale);
    w.u64(c.scenario.seed);
    w.f64(c.scenario.hana_node_fraction);
    w.f64(c.scenario.dedicated_xl_node_fraction);
    w.f64(c.scenario.reserve_node_fraction);
    w.i64(c.sampling_interval);
    w.i64(c.drs_interval);
    w.f64(c.drs.imbalance_threshold);
    w.i32(c.drs.max_migrations_per_pass);
    w.i64(c.drs.heavy_vm_ram_mib);
    w.f64(c.drs.min_gain);
    w.f64(c.drs.cpu_allocation_ratio);
    w.f64(c.drs.ram_allocation_ratio);
    w.boolean(c.drs.enabled);
    w.boolean(c.drs.pack_memory);
    w.i32(c.store.days);
    w.boolean(c.store.keep_raw);
    w.i32(c.population.initial_population);
    w.f64(c.population.daily_churn_fraction);
    w.i32(c.population.project_count);
    w.u64(c.population.seed);
    w.boolean(c.contention_aware);
    w.f64(c.contention_filter_threshold_pct);
    w.boolean(c.holistic);
    w.boolean(c.lifetime_aware);
    w.f64(c.node_churn_fraction);
    w.f64(c.daily_resize_fraction);
    w.boolean(c.gp_cpu_allocation_ratio_override.has_value());
    if (c.gp_cpu_allocation_ratio_override.has_value()) {
        w.f64(*c.gp_cpu_allocation_ratio_override);
    }
    w.i64(c.cross_bb_interval);
    w.f64(c.cross_bb.target_ram_spread);
    w.i32(c.cross_bb.max_moves_per_pass);
    w.i64(c.cross_bb.heavy_vm_ram_mib);
    w.f64(c.cross_bb.max_downtime_ms);
    w.f64(c.cross_bb.cost.bandwidth_mib_per_s);
    w.i64(c.cross_bb.cost.stop_and_copy_mib);
    w.i32(c.cross_bb.cost.max_precopy_rounds);
    w.f64(c.migration_cost.bandwidth_mib_per_s);
    w.i64(c.migration_cost.stop_and_copy_mib);
    w.i32(c.migration_cost.max_precopy_rounds);
    w.boolean(c.threads.has_value());
    if (c.threads.has_value()) w.u32(*c.threads);
    w.f64(c.fault.host_crash_rate_per_day);
    w.f64(c.fault.claim_failure_probability);
    w.f64(c.fault.migration_abort_probability);
    w.f64(c.fault.degraded_node_fraction);
    w.f64(c.fault.degraded_cpu_factor);
    w.i32(c.fault.maintenance_windows);
    w.i64(c.fault.maintenance_duration);
    w.i32(c.fault.az_outages);
    w.i64(c.fault.az_outage_at);
    w.i64(c.fault.az_outage_repair_time);
    w.i64(c.fault.ha_restart_delay);
    w.i64(c.fault.ha_retry_backoff);
    w.i32(c.fault.ha_max_restart_attempts);
    w.i64(c.fault.crash_repair_time);
    w.u8(static_cast<std::uint8_t>(c.backpressure.mode));
    w.u32(c.backpressure.queue_capacity);
    w.i64(c.backpressure.queue_deadline);
}

engine_config read_config(byte_reader& r, std::uint32_t version) {
    engine_config c;
    c.scenario.scale = r.f64();
    c.scenario.seed = r.u64();
    c.scenario.hana_node_fraction = r.f64();
    c.scenario.dedicated_xl_node_fraction = r.f64();
    c.scenario.reserve_node_fraction = r.f64();
    c.sampling_interval = r.i64();
    c.drs_interval = r.i64();
    c.drs.imbalance_threshold = r.f64();
    c.drs.max_migrations_per_pass = r.i32();
    c.drs.heavy_vm_ram_mib = r.i64();
    c.drs.min_gain = r.f64();
    c.drs.cpu_allocation_ratio = r.f64();
    c.drs.ram_allocation_ratio = r.f64();
    c.drs.enabled = r.boolean();
    c.drs.pack_memory = r.boolean();
    c.store.days = r.i32();
    c.store.keep_raw = r.boolean();
    c.population.initial_population = r.i32();
    c.population.daily_churn_fraction = r.f64();
    c.population.project_count = r.i32();
    c.population.seed = r.u64();
    c.contention_aware = r.boolean();
    c.contention_filter_threshold_pct = r.f64();
    c.holistic = r.boolean();
    c.lifetime_aware = r.boolean();
    c.node_churn_fraction = r.f64();
    c.daily_resize_fraction = r.f64();
    if (r.boolean()) c.gp_cpu_allocation_ratio_override = r.f64();
    c.cross_bb_interval = r.i64();
    c.cross_bb.target_ram_spread = r.f64();
    c.cross_bb.max_moves_per_pass = r.i32();
    c.cross_bb.heavy_vm_ram_mib = r.i64();
    c.cross_bb.max_downtime_ms = r.f64();
    c.cross_bb.cost.bandwidth_mib_per_s = r.f64();
    c.cross_bb.cost.stop_and_copy_mib = r.i64();
    c.cross_bb.cost.max_precopy_rounds = r.i32();
    c.migration_cost.bandwidth_mib_per_s = r.f64();
    c.migration_cost.stop_and_copy_mib = r.i64();
    c.migration_cost.max_precopy_rounds = r.i32();
    if (r.boolean()) c.threads = r.u32();
    c.fault.host_crash_rate_per_day = r.f64();
    c.fault.claim_failure_probability = r.f64();
    c.fault.migration_abort_probability = r.f64();
    c.fault.degraded_node_fraction = r.f64();
    c.fault.degraded_cpu_factor = r.f64();
    c.fault.maintenance_windows = r.i32();
    c.fault.maintenance_duration = r.i64();
    c.fault.az_outages = r.i32();
    c.fault.az_outage_at = r.i64();
    c.fault.az_outage_repair_time = r.i64();
    c.fault.ha_restart_delay = r.i64();
    c.fault.ha_retry_backoff = r.i64();
    c.fault.ha_max_restart_attempts = r.i32();
    c.fault.crash_repair_time = r.i64();
    if (version >= 2) {
        c.backpressure.mode = static_cast<backpressure_mode>(r.u8());
        c.backpressure.queue_capacity = r.u32();
        c.backpressure.queue_deadline = r.i64();
    }
    return c;
}

// --- small composites --------------------------------------------------------

void write_fault_event(byte_writer& w, const fault_event& e) {
    w.i64(e.t);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.id(e.node);
    w.id(e.az);
    w.f64(e.cpu_factor);
}

fault_event read_fault_event(byte_reader& r) {
    fault_event e;
    e.t = r.i64();
    e.kind = static_cast<fault_event_kind>(r.u8());
    e.node = r.id<node_tag>();
    e.az = r.id<az_tag>();
    e.cpu_factor = r.f64();
    return e;
}

void write_event(byte_writer& w, const engine_event& e) {
    w.u8(static_cast<std::uint8_t>(e.act));
    w.i32(e.id);
    write_fault_event(w, e.fault);
}

engine_event read_event(byte_reader& r) {
    engine_event e;
    e.act = static_cast<engine_event::action>(r.u8());
    e.id = r.i32();
    e.fault = read_fault_event(r);
    return e;
}

void write_exact(byte_writer& w, const running_stats::exact_state& s) {
    w.u64(s.count);
    w.f64(s.sum);
    w.f64(s.m2);
    w.f64(s.mean);
    w.f64(s.min);
    w.f64(s.max);
}

running_stats::exact_state read_exact(byte_reader& r) {
    running_stats::exact_state s;
    s.count = r.u64();
    s.sum = r.f64();
    s.m2 = r.f64();
    s.mean = r.f64();
    s.min = r.f64();
    s.max = r.f64();
    return s;
}

void write_speculation(byte_writer& w, const host_speculation& s) {
    w.boolean(s.valid);
    w.u32(s.weigher_count);
    w.size(s.survivors.size());
    for (const std::uint32_t v : s.survivors) w.u32(v);
    w.size(s.raws.size());
    for (const double v : s.raws) w.f64(v);
}

host_speculation read_speculation(byte_reader& r) {
    host_speculation s;
    s.valid = r.boolean();
    s.weigher_count = r.u32();
    s.survivors.resize(r.size(sizeof(std::uint32_t)));
    for (std::uint32_t& v : s.survivors) v = r.u32();
    s.raws.resize(r.size(sizeof(std::uint64_t)));
    for (double& v : s.raws) v = r.f64();
    return s;
}

void write_span_row(byte_writer& w, const sim_engine::churn_batch_span& s) {
    w.i64(s.first);
    w.i64(s.last);
    w.u32(s.size);
}

sim_engine::churn_batch_span read_span_row(byte_reader& r) {
    sim_engine::churn_batch_span s;
    s.first = r.i64();
    s.last = r.i64();
    s.size = r.u32();
    return s;
}

void write_run_stats(byte_writer& w, const run_stats& s) {
    w.u64(s.placements);
    w.u64(s.placement_failures);
    w.u64(s.scheduler_retries);
    w.u64(s.drs_migrations);
    w.u64(s.evacuations);
    w.u64(s.forced_fits);
    w.u64(s.holistic_claim_rejections);
    w.u64(s.deletions);
    w.u64(s.scrapes);
    w.u64(s.cross_bb_moves);
    w.u64(s.resizes);
    w.u64(s.resize_failures);
    w.f64(s.migration_seconds);
    w.f64(s.max_migration_downtime_ms);
    w.u64(s.speculative_placements);
    w.u64(s.speculation_misses);
    w.f64(s.initial_placement_wall_ms);
    w.u64(s.window_batches);
    w.u64(s.window_speculations);
    w.u64(s.window_speculative_placements);
    w.u64(s.window_speculation_misses);
    w.u64(s.window_speculation_invalidated);
    w.f64(s.churn_placement_wall_ms);
    w.u64(s.recovery_batches);
    w.u64(s.recovery_speculations);
    w.u64(s.recovery_speculative_placements);
    w.u64(s.recovery_speculation_misses);
    w.u64(s.recovery_speculation_invalidated);
    w.u64(s.recovery_speculation_cancelled);
    w.f64(s.recovery_placement_wall_ms);
    w.u64(s.rebalance_target_speculations);
    w.u64(s.rebalance_targets_used);
    w.u64(s.rebalance_target_invalidated);
    w.u64(s.az_outages);
    w.u64(s.host_crashes);
    w.u64(s.crash_victims);
    w.u64(s.ha_restarts);
    w.u64(s.ha_restart_failures);
    w.u64(s.migration_aborts);
    w.u64(s.maintenance_evacuations);
    w.f64(s.wasted_migration_seconds);
    w.u64(s.bp_enqueued);
    w.u64(s.bp_queue_placed);
    w.u64(s.bp_shed_deadline);
    w.u64(s.bp_shed_queue_full);
    w.u64(s.bp_shed_evicted);
    w.u64(s.bp_cancelled);
    w.u64(s.bp_regime_transitions);
    w.u64(s.bp_peak_queue_len);
    w.u64(s.ha_give_ups);
}

run_stats read_run_stats(byte_reader& r, std::uint32_t version) {
    run_stats s;
    s.placements = r.u64();
    s.placement_failures = r.u64();
    s.scheduler_retries = r.u64();
    s.drs_migrations = r.u64();
    s.evacuations = r.u64();
    s.forced_fits = r.u64();
    s.holistic_claim_rejections = r.u64();
    s.deletions = r.u64();
    s.scrapes = r.u64();
    s.cross_bb_moves = r.u64();
    s.resizes = r.u64();
    s.resize_failures = r.u64();
    s.migration_seconds = r.f64();
    s.max_migration_downtime_ms = r.f64();
    s.speculative_placements = r.u64();
    s.speculation_misses = r.u64();
    s.initial_placement_wall_ms = r.f64();
    s.window_batches = r.u64();
    s.window_speculations = r.u64();
    s.window_speculative_placements = r.u64();
    s.window_speculation_misses = r.u64();
    s.window_speculation_invalidated = r.u64();
    s.churn_placement_wall_ms = r.f64();
    s.recovery_batches = r.u64();
    s.recovery_speculations = r.u64();
    s.recovery_speculative_placements = r.u64();
    s.recovery_speculation_misses = r.u64();
    s.recovery_speculation_invalidated = r.u64();
    s.recovery_speculation_cancelled = r.u64();
    s.recovery_placement_wall_ms = r.f64();
    s.rebalance_target_speculations = r.u64();
    s.rebalance_targets_used = r.u64();
    s.rebalance_target_invalidated = r.u64();
    s.az_outages = r.u64();
    s.host_crashes = r.u64();
    s.crash_victims = r.u64();
    s.ha_restarts = r.u64();
    s.ha_restart_failures = r.u64();
    s.migration_aborts = r.u64();
    s.maintenance_evacuations = r.u64();
    s.wasted_migration_seconds = r.f64();
    if (version >= 2) {
        s.bp_enqueued = r.u64();
        s.bp_queue_placed = r.u64();
        s.bp_shed_deadline = r.u64();
        s.bp_shed_queue_full = r.u64();
        s.bp_shed_evicted = r.u64();
        s.bp_cancelled = r.u64();
        s.bp_regime_transitions = r.u64();
        s.bp_peak_queue_len = r.u64();
        s.ha_give_ups = r.u64();
    }
    return s;
}

void write_payload(byte_writer& w, const engine_state& s) {
    write_config(w, s.config);
    w.str(s.region);

    w.size(s.queue.size());
    for (const auto& e : s.queue) {
        w.i64(e.at);
        w.u64(e.seq);
        write_event(w, e.payload);
    }
    w.i64(s.now);
    w.u64(s.next_seq);
    w.u64(s.executed);

    w.size(s.vms.size());
    for (const vm_state_row& v : s.vms) {
        w.id(v.flavor);
        w.u8(static_cast<std::uint8_t>(v.state));
        w.i64(v.created_at);
        w.opt_i64(v.deleted_at);
        w.id(v.placed_bb);
        w.id(v.placed_node);
        w.i32(v.migration_count);
    }

    w.size(s.provider_usages.size());
    for (const provider_usage& u : s.provider_usages) {
        w.i32(u.vcpus_used);
        w.i64(u.ram_used_mib);
        w.f64(u.disk_used_gib);
        w.i32(u.instances);
    }
    w.size(s.allocations.size());
    for (const auto& [vm, bb] : s.allocations) {
        w.id(vm);
        w.id(bb);
    }
    w.u64(s.placement_version);
    w.u64(s.placement_shrink_version);

    w.u64(s.sched_scheduled);
    w.u64(s.sched_no_valid_host);
    w.u64(s.sched_retries);
    w.u64(s.sched_transient_claim_failures);
    w.u64(s.sched_speculative_placements);
    w.u64(s.sched_speculation_misses);
    w.size(s.claim_counts.size());
    for (const std::uint64_t c : s.claim_counts) w.u64(c);

    w.size(s.clusters.size());
    for (const cluster_state_row& c : s.clusters) {
        w.u64(c.migrations);
        w.u64(c.aborts);
        w.u64(c.usage_version);
    }
    w.size(s.nodes.size());
    for (const node_state_row& n : s.nodes) {
        w.boolean(n.accepting);
        w.size(n.residents.size());
        for (const vm_id vm : n.residents) w.id(vm);
        w.i32(n.reserved_vcpus);
        w.i64(n.reserved_ram_mib);
        w.f64(n.reserved_disk_gib);
    }

    w.size(s.series.size());
    for (const series_state& row : s.series) {
        w.str(row.metric);
        w.size(row.labels.size());
        for (const auto& [k, v] : row.labels) {
            w.str(k);
            w.str(v);
        }
        w.i32(row.daily_first);
        w.size(row.daily.size());
        for (const auto& d : row.daily) write_exact(w, d);
        w.i32(row.hourly_first);
        w.size(row.hourly.size());
        for (const auto& h : row.hourly) write_exact(w, h);
        w.size(row.raw.size());
        for (const sample& smp : row.raw) {
            w.i64(smp.t);
            w.f64(smp.value);
        }
    }
    w.size(s.shard_counters.size());
    for (const auto& [appended, dropped] : s.shard_counters) {
        w.u64(appended);
        w.u64(dropped);
    }
    w.i32(s.raw_sealed_through);

    w.size(s.events.size());
    for (const lifecycle_event& e : s.events) {
        w.i64(e.t);
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.id(e.vm);
        w.id(e.bb);
        w.id(e.from);
        w.id(e.to);
        w.u8(static_cast<std::uint8_t>(e.reason));
    }
    write_run_stats(w, s.stats);

    w.u64(s.arrival_cursor);
    w.u64(s.arrival_drain_seq);
    w.boolean(s.window_spec_active);
    w.u64(s.spec_begin);
    w.u64(s.spec_end);
    w.u64(s.spec_shrink_version);
    w.u64(s.spec_scrapes);
    w.size(s.spec_slots.size());
    for (const host_speculation& slot : s.spec_slots) {
        write_speculation(w, slot);
    }
    w.size(s.spec_claim_counts.size());
    for (const std::uint64_t c : s.spec_claim_counts) w.u64(c);
    w.size(s.churn_batch_spans.size());
    for (const auto& span : s.churn_batch_spans) write_span_row(w, span);

    w.boolean(s.has_ha);
    w.size(s.ha_pending.size());
    for (const ha_controller::pending_row& p : s.ha_pending) {
        w.id(p.vm);
        w.i64(p.crashed_at);
        w.i32(p.attempts);
    }
    w.size(s.ha_downtime.size());
    for (const double d : s.ha_downtime) w.f64(d);
    w.u64(s.ha_crashed);
    w.u64(s.ha_restarted);
    w.u64(s.ha_abandoned);
    w.u64(s.ha_cancelled);
    w.u64(s.ha_failed_attempts);
    w.size(s.ha_groups.size());
    for (const ha_group_state& g : s.ha_groups) {
        w.i64(g.due);
        w.size(g.victims.size());
        for (const vm_id vm : g.victims) w.id(vm);
    }
    w.boolean(s.ha_spec_active);
    w.size(s.ha_spec_vms.size());
    for (const vm_id vm : s.ha_spec_vms) w.id(vm);
    w.u64(s.ha_spec_cursor);
    w.u64(s.ha_spec_shrink_version);
    w.u64(s.ha_spec_scrapes);
    w.size(s.ha_spec_slots.size());
    for (const host_speculation& slot : s.ha_spec_slots) {
        write_speculation(w, slot);
    }
    w.size(s.ha_spec_claim_counts.size());
    for (const std::uint64_t c : s.ha_spec_claim_counts) w.u64(c);
    w.size(s.recovery_batch_spans.size());
    for (const auto& span : s.recovery_batch_spans) write_span_row(w, span);

    w.size(s.node_down.size());
    for (const char v : s.node_down) w.u8(static_cast<std::uint8_t>(v));
    w.size(s.node_az_down.size());
    for (const char v : s.node_az_down) w.u8(static_cast<std::uint8_t>(v));
    w.size(s.node_cpu_factor.size());
    for (const double v : s.node_cpu_factor) w.f64(v);
    w.boolean(s.has_mig_abort_rng);
    w.str(s.mig_abort_rng_state);
    w.boolean(s.has_claim_fault_rng);
    w.str(s.claim_fault_rng_state);

    w.size(s.bb_contention_ewma.size());
    for (const double v : s.bb_contention_ewma) w.f64(v);

    // backpressure (format v2)
    w.boolean(s.has_bp);
    w.size(s.bp_queue.size());
    for (const bp_queued_request& q : s.bp_queue) {
        w.id(q.vm);
        w.u8(static_cast<std::uint8_t>(q.kind));
        w.i32(q.priority);
        w.i64(q.enqueued_at);
        w.i64(q.deadline);
        w.i64(q.deleted_at);
    }
    w.u8(s.bp_regime);
    w.size(s.bp_transitions.size());
    for (const sim_time t : s.bp_transitions) w.i64(t);
    w.u64(s.bp_drain_seq);
    w.boolean(s.bp_drain_armed);
}

engine_state read_payload(byte_reader& r, std::uint32_t version) {
    engine_state s;
    s.config = read_config(r, version);
    s.region = r.str();

    s.queue.resize(r.size(8 + 8 + 1));
    for (auto& e : s.queue) {
        e.at = r.i64();
        e.seq = r.u64();
        e.payload = read_event(r);
    }
    s.now = r.i64();
    s.next_seq = r.u64();
    s.executed = r.u64();

    s.vms.resize(r.size(4 + 1 + 8 + 1 + 4 + 4 + 4));
    for (vm_state_row& v : s.vms) {
        v.flavor = r.id<flavor_tag>();
        v.state = static_cast<vm_state>(r.u8());
        v.created_at = r.i64();
        v.deleted_at = r.opt_i64();
        v.placed_bb = r.id<bb_tag>();
        v.placed_node = r.id<node_tag>();
        v.migration_count = r.i32();
    }

    s.provider_usages.resize(r.size(4 + 8 + 8 + 4));
    for (provider_usage& u : s.provider_usages) {
        u.vcpus_used = r.i32();
        u.ram_used_mib = r.i64();
        u.disk_used_gib = r.f64();
        u.instances = r.i32();
    }
    s.allocations.resize(r.size(4 + 4));
    for (auto& [vm, bb] : s.allocations) {
        vm = r.id<vm_tag>();
        bb = r.id<bb_tag>();
    }
    s.placement_version = r.u64();
    s.placement_shrink_version = r.u64();

    s.sched_scheduled = r.u64();
    s.sched_no_valid_host = r.u64();
    s.sched_retries = r.u64();
    s.sched_transient_claim_failures = r.u64();
    s.sched_speculative_placements = r.u64();
    s.sched_speculation_misses = r.u64();
    s.claim_counts.resize(r.size(8));
    for (std::uint64_t& c : s.claim_counts) c = r.u64();

    s.clusters.resize(r.size(8 + 8 + 8));
    for (cluster_state_row& c : s.clusters) {
        c.migrations = r.u64();
        c.aborts = r.u64();
        c.usage_version = r.u64();
    }
    s.nodes.resize(r.size(1 + 8 + 4 + 8 + 8));
    for (node_state_row& n : s.nodes) {
        n.accepting = r.boolean();
        n.residents.resize(r.size(4));
        for (vm_id& vm : n.residents) vm = r.id<vm_tag>();
        n.reserved_vcpus = r.i32();
        n.reserved_ram_mib = r.i64();
        n.reserved_disk_gib = r.f64();
    }

    s.series.resize(r.size(8 + 8 + 4 + 8 + 4 + 8 + 8));
    for (series_state& row : s.series) {
        row.metric = r.str();
        row.labels.resize(r.size(8 + 8));
        for (auto& [k, v] : row.labels) {
            k = r.str();
            v = r.str();
        }
        row.daily_first = r.i32();
        row.daily.resize(r.size(6 * 8));
        for (auto& d : row.daily) d = read_exact(r);
        row.hourly_first = r.i32();
        row.hourly.resize(r.size(6 * 8));
        for (auto& h : row.hourly) h = read_exact(r);
        row.raw.resize(r.size(8 + 8));
        for (sample& smp : row.raw) {
            smp.t = r.i64();
            smp.value = r.f64();
        }
    }
    s.shard_counters.resize(r.size(8 + 8));
    for (auto& [appended, dropped] : s.shard_counters) {
        appended = r.u64();
        dropped = r.u64();
    }
    s.raw_sealed_through = r.i32();

    s.events.resize(r.size(8 + 1 + 4 + 4 + 4 + 4 + 1));
    for (lifecycle_event& e : s.events) {
        e.t = r.i64();
        e.kind = static_cast<lifecycle_event_kind>(r.u8());
        e.vm = r.id<vm_tag>();
        e.bb = r.id<bb_tag>();
        e.from = r.id<node_tag>();
        e.to = r.id<node_tag>();
        e.reason = static_cast<schedule_fail_reason>(r.u8());
    }
    s.stats = read_run_stats(r, version);

    s.arrival_cursor = r.u64();
    s.arrival_drain_seq = r.u64();
    s.window_spec_active = r.boolean();
    s.spec_begin = r.u64();
    s.spec_end = r.u64();
    s.spec_shrink_version = r.u64();
    s.spec_scrapes = r.u64();
    s.spec_slots.resize(r.size(1 + 4 + 8 + 8));
    for (host_speculation& slot : s.spec_slots) slot = read_speculation(r);
    s.spec_claim_counts.resize(r.size(8));
    for (std::uint64_t& c : s.spec_claim_counts) c = r.u64();
    s.churn_batch_spans.resize(r.size(8 + 8 + 4));
    for (auto& span : s.churn_batch_spans) span = read_span_row(r);

    s.has_ha = r.boolean();
    s.ha_pending.resize(r.size(4 + 8 + 4));
    for (ha_controller::pending_row& p : s.ha_pending) {
        p.vm = r.id<vm_tag>();
        p.crashed_at = r.i64();
        p.attempts = r.i32();
    }
    s.ha_downtime.resize(r.size(8));
    for (double& d : s.ha_downtime) d = r.f64();
    s.ha_crashed = r.u64();
    s.ha_restarted = r.u64();
    s.ha_abandoned = r.u64();
    s.ha_cancelled = r.u64();
    s.ha_failed_attempts = r.u64();
    s.ha_groups.resize(r.size(8 + 8));
    for (ha_group_state& g : s.ha_groups) {
        g.due = r.i64();
        g.victims.resize(r.size(4));
        for (vm_id& vm : g.victims) vm = r.id<vm_tag>();
    }
    s.ha_spec_active = r.boolean();
    s.ha_spec_vms.resize(r.size(4));
    for (vm_id& vm : s.ha_spec_vms) vm = r.id<vm_tag>();
    s.ha_spec_cursor = r.u64();
    s.ha_spec_shrink_version = r.u64();
    s.ha_spec_scrapes = r.u64();
    s.ha_spec_slots.resize(r.size(1 + 4 + 8 + 8));
    for (host_speculation& slot : s.ha_spec_slots) {
        slot = read_speculation(r);
    }
    s.ha_spec_claim_counts.resize(r.size(8));
    for (std::uint64_t& c : s.ha_spec_claim_counts) c = r.u64();
    s.recovery_batch_spans.resize(r.size(8 + 8 + 4));
    for (auto& span : s.recovery_batch_spans) span = read_span_row(r);

    s.node_down.resize(r.size(1));
    for (char& v : s.node_down) v = static_cast<char>(r.u8());
    s.node_az_down.resize(r.size(1));
    for (char& v : s.node_az_down) v = static_cast<char>(r.u8());
    s.node_cpu_factor.resize(r.size(8));
    for (double& v : s.node_cpu_factor) v = r.f64();
    s.has_mig_abort_rng = r.boolean();
    s.mig_abort_rng_state = r.str();
    s.has_claim_fault_rng = r.boolean();
    s.claim_fault_rng_state = r.str();

    s.bb_contention_ewma.resize(r.size(8));
    for (double& v : s.bb_contention_ewma) v = r.f64();

    if (version >= 2) {
        s.has_bp = r.boolean();
        s.bp_queue.resize(r.size(4 + 1 + 4 + 8 + 8 + 8));
        for (bp_queued_request& q : s.bp_queue) {
            q.vm = r.id<vm_tag>();
            q.kind = static_cast<bp_request_kind>(r.u8());
            q.priority = r.i32();
            q.enqueued_at = r.i64();
            q.deadline = r.i64();
            q.deleted_at = r.i64();
        }
        s.bp_regime = r.u8();
        s.bp_transitions.resize(r.size(8));
        for (sim_time& t : s.bp_transitions) t = r.i64();
        s.bp_drain_seq = r.u64();
        s.bp_drain_armed = r.boolean();
    }
    return s;
}

}  // namespace

std::vector<std::byte> serialize(const engine_state& state) {
    byte_writer payload_writer;
    write_payload(payload_writer, state);
    const std::vector<std::byte> payload = payload_writer.take();

    byte_writer w;
    w.u64(snapshot_magic);
    w.u32(format_version);
    w.u64(payload.size());
    w.u64(checksum(payload));
    std::vector<std::byte> out = w.take();
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

engine_state deserialize(std::span<const std::byte> bytes) {
    // magic u64 · version u32 · payload length u64 · checksum u64
    constexpr std::size_t header_size = 8 + 4 + 8 + 8;
    if (bytes.size() < header_size) {
        throw snapshot_error("snapshot: input shorter than the file header (" +
                             std::to_string(bytes.size()) + " of " +
                             std::to_string(header_size) + " bytes)");
    }
    byte_reader header(bytes);
    const std::uint64_t magic = header.u64();
    if (magic != snapshot_magic) {
        throw snapshot_error(
            "snapshot: bad magic — not a snapshot file (or corrupted "
            "header)");
    }
    const std::uint32_t version = header.u32();
    if (version == 0 || version > format_version) {
        throw snapshot_error(
            "snapshot: unsupported format version " + std::to_string(version) +
            " (this build reads up to version " +
            std::to_string(format_version) + ")");
    }
    const std::uint64_t payload_len = header.u64();
    const std::uint64_t expected_sum = header.u64();
    if (payload_len != header.remaining()) {
        throw snapshot_error(
            "snapshot: truncated input (header promises " +
            std::to_string(payload_len) + " payload bytes, " +
            std::to_string(header.remaining()) + " present)");
    }
    const std::span<const std::byte> payload =
        bytes.subspan(bytes.size() - static_cast<std::size_t>(payload_len));
    if (checksum(payload) != expected_sum) {
        throw snapshot_error(
            "snapshot: payload checksum mismatch (corrupted input)");
    }

    byte_reader r(payload);
    engine_state state = read_payload(r, version);
    if (r.remaining() != 0) {
        throw snapshot_error(
            "snapshot: trailing bytes after the payload (corrupted input)");
    }
    return state;
}

void save_file(const engine_state& state, const std::string& path) {
    const std::vector<std::byte> bytes = serialize(state);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw snapshot_error("snapshot: cannot open '" + path +
                             "' for writing");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
        throw snapshot_error("snapshot: short write to '" + path + "'");
    }
}

engine_state load_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw snapshot_error("snapshot: cannot open '" + path +
                             "' for reading");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();
    return deserialize(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(data.data()), data.size()));
}

}  // namespace sci::snapshot
