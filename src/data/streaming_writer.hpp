#pragma once

// Streaming dataset writer.
//
// The materialized exporter (export_dataset) walks raw samples that are
// fully resident — O(window) memory for a 30-day region.  This writer
// instead rides the store's raw-block sealing: attach sink() as the seal
// sink (sim_engine::enable_raw_streaming wires it to the day-boundary
// seal), and each completed day's raw blocks are appended to the
// per-metric raw CSVs and freed immediately, so raw residency stays
// O(compaction horizon).  finish() then writes manifest.csv and the
// <metric>.daily.csv aggregates from the (small, always-resident) day
// slots.
//
// manifest.csv and the daily files are byte-identical to
// export_dataset's.  Raw files carry the same rows but ordered by
// (seal point, series, day) instead of (series, t) — raw CSVs are
// unordered collections to every reader (import_raw_metric).

#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/csv.hpp"
#include "data/dataset.hpp"
#include "telemetry/store.hpp"

namespace sci {

class streaming_dataset_writer {
public:
    /// Prepare to write into `dir` (created immediately).  The store must
    /// outlive the writer.
    streaming_dataset_writer(const metric_store& store,
                             std::filesystem::path dir);

    /// Seal sink: appends each sealed raw block to its metric's raw CSV.
    /// Pass to metric_store::seal_raw_through or
    /// sim_engine::enable_raw_streaming.
    metric_store::raw_sink sink();

    /// Write manifest.csv + daily aggregate files and close the raw
    /// files.  raw_rows counts the rows streamed through sink().
    dataset_export_report finish();

    /// Rows streamed so far (bounded-memory progress indicator).
    std::size_t raw_rows_written() const { return raw_rows_; }

private:
    /// One open <metric>.raw.csv.  The column schema is fixed when the
    /// metric's first block arrives; finish() verifies it never grew
    /// (every series of a metric carries the same label keys here).
    struct raw_file {
        std::unique_ptr<std::ofstream> stream;
        std::unique_ptr<csv_writer> writer;
        std::vector<std::string> schema;
    };

    void write_block(series_id id, std::span<const sample> block);

    const metric_store& store_;
    std::filesystem::path dir_;
    std::unordered_map<std::string, raw_file> raw_files_;  ///< by metric
    std::size_t raw_rows_ = 0;
};

}  // namespace sci
