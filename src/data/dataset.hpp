#pragma once

// Dataset export/import in the style of the published Zenodo release
// (Appendix B: "anonymized telemetry data in CSV format").
//
// Layout under the export directory:
//   manifest.csv                     metric catalog (Table 4) + series counts
//   <metric>.daily.csv               per-series per-day aggregates
//   <metric>.raw.csv                 raw samples (only when the store kept them)
//
// Daily files: label columns first (sorted keys of the metric's label
// schema), then day,count,mean,min,max.  Raw files: label columns, then
// t,value.  Host names in our stores are already anonymised at creation
// (infra::anonymised_name), matching the paper's hashing of hostnames.

#include <filesystem>
#include <string>
#include <vector>

#include "infra/event_log.hpp"
#include "telemetry/store.hpp"

namespace sci {

struct dataset_export_options {
    /// Also export raw samples for metrics whose store kept them.
    bool include_raw = true;
};

struct dataset_export_report {
    std::size_t metrics_exported = 0;
    std::size_t series_exported = 0;
    std::size_t daily_rows = 0;
    std::size_t raw_rows = 0;
};

/// Export every metric of the store into `dir` (created if needed).
dataset_export_report export_dataset(const metric_store& store,
                                     const std::filesystem::path& dir,
                                     const dataset_export_options& options = {});

struct manifest_entry {
    std::string metric;
    std::string subsystem;
    std::string resource;
    std::string unit;
    std::size_t series_count = 0;
};

/// Read back manifest.csv.
std::vector<manifest_entry> read_manifest(const std::filesystem::path& dir);

/// Import raw samples of one metric file into a store (the metric must
/// exist in the store's registry).  Returns the number of samples read.
std::size_t import_raw_metric(metric_store& store,
                              const std::filesystem::path& raw_csv,
                              std::string_view metric);

/// Re-ingest an exported dataset's daily aggregates into a fresh store
/// (the offline-analysis path: analyze a published dataset without
/// re-simulating).  Variance within days is not recoverable from the CSV
/// moments; means/min/max/counts are exact.
metric_store import_dataset(const std::filesystem::path& dir);

/// Export the scheduling-event log (Section 4: "scheduling-relevant
/// events ... such as creation, migration, resize, and deletion") as
/// events.csv: t,kind,vm,bb,from_node,to_node.  Returns rows written.
std::size_t export_events_csv(const event_log& events,
                              const std::filesystem::path& file);

/// Read events.csv back.  Returns events in file order.
std::vector<lifecycle_event> import_events_csv(
    const std::filesystem::path& file);

}  // namespace sci
