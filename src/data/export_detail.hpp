#pragma once

// Internal helpers shared by the materialized exporter (dataset.cpp) and
// the streaming writer (streaming_writer.cpp) so both paths emit
// byte-identical manifest.csv / <metric>.daily.csv files.

#include <filesystem>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "telemetry/store.hpp"

namespace sci::detail {

/// Union of label keys over a set of series (the metric's label schema).
std::vector<std::string> label_schema(const metric_store& store,
                                      const std::vector<series_id>& series);

/// Values of `labels` in schema order (missing keys become empty cells).
std::vector<std::string> label_values(const label_set& labels,
                                      const std::vector<std::string>& schema);

/// Write manifest.csv and every <metric>.daily.csv into `dir`, filling the
/// metrics/series/daily counters of `report`.
void write_aggregate_files(const metric_store& store,
                           const std::filesystem::path& dir,
                           dataset_export_report& report);

}  // namespace sci::detail
