#include "data/csv.hpp"

#include <istream>
#include <ostream>

#include "simcore/error.hpp"

namespace sci {

std::string csv_escape(std::string_view field) {
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string_view::npos;
    if (!needs_quotes) return std::string(field);
    std::string out;
    out.reserve(field.size() + 2);
    out += '"';
    for (char c : field) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<std::string> csv_parse_line(std::string_view line) {
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                current += c;
            }
        } else if (c == '"') {
            if (!current.empty()) {
                throw error("csv_parse_line: quote inside unquoted field");
            }
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else if (c == '\r') {
            // tolerate CRLF
        } else {
            current += c;
        }
    }
    if (in_quotes) throw error("csv_parse_line: unterminated quoted field");
    fields.push_back(std::move(current));
    return fields;
}

void csv_writer::write_row(std::span<const std::string> fields) {
    bool first = true;
    for (const std::string& f : fields) {
        if (!first) os_ << ',';
        first = false;
        os_ << csv_escape(f);
    }
    os_ << '\n';
    ++rows_;
}

void csv_writer::write_row(std::initializer_list<std::string_view> fields) {
    bool first = true;
    for (std::string_view f : fields) {
        if (!first) os_ << ',';
        first = false;
        os_ << csv_escape(f);
    }
    os_ << '\n';
    ++rows_;
}

bool csv_reader::next_row(std::vector<std::string>& fields) {
    std::string line;
    while (std::getline(is_, line)) {
        if (line.empty() || line == "\r") continue;
        fields = csv_parse_line(line);
        ++rows_;
        return true;
    }
    return false;
}

}  // namespace sci
