#include "data/streaming_writer.hpp"

#include "data/export_detail.hpp"
#include "simcore/error.hpp"

namespace sci {

streaming_dataset_writer::streaming_dataset_writer(const metric_store& store,
                                                   std::filesystem::path dir)
    : store_(store), dir_(std::move(dir)) {
    std::filesystem::create_directories(dir_);
}

metric_store::raw_sink streaming_dataset_writer::sink() {
    return [this](series_id id, int day, std::span<const sample> block) {
        (void)day;  // rows carry their own timestamps
        write_block(id, block);
    };
}

void streaming_dataset_writer::write_block(series_id id,
                                           std::span<const sample> block) {
    const metric_def& def = store_.metric_of(id);
    auto it = raw_files_.find(def.name);
    if (it == raw_files_.end()) {
        raw_file rf;
        rf.schema = detail::label_schema(store_, store_.select(def.name));
        rf.stream = std::make_unique<std::ofstream>(
            dir_ / (def.name + ".raw.csv"));
        expects(rf.stream->good(),
                "streaming_dataset_writer: cannot create raw csv");
        rf.writer = std::make_unique<csv_writer>(*rf.stream);
        std::vector<std::string> header = rf.schema;
        header.insert(header.end(), {"t", "value"});
        rf.writer->write_row(header);
        it = raw_files_.emplace(def.name, std::move(rf)).first;
    }
    const std::vector<std::string> labels =
        detail::label_values(store_.labels_of(id), it->second.schema);
    for (const sample& s : block) {
        std::vector<std::string> row = labels;
        row.push_back(std::to_string(s.t));
        row.push_back(std::to_string(s.value));
        it->second.writer->write_row(row);
        ++raw_rows_;
    }
}

dataset_export_report streaming_dataset_writer::finish() {
    dataset_export_report report;
    detail::write_aggregate_files(store_, dir_, report);
    report.raw_rows = raw_rows_;
    for (auto& [metric, rf] : raw_files_) {
        // a schema that grew after the first block would have produced
        // short rows — refuse to pretend the file is well-formed
        ensures(rf.schema == detail::label_schema(store_,
                                                  store_.select(metric)),
                "streaming_dataset_writer: label schema of '" + metric +
                    "' changed after its first sealed block");
        rf.stream->flush();
        expects(rf.stream->good(),
                "streaming_dataset_writer: raw csv write failed");
    }
    raw_files_.clear();
    return report;
}

}  // namespace sci
