#include "data/dataset.hpp"

#include <fstream>
#include <set>

#include "data/csv.hpp"
#include "data/export_detail.hpp"
#include "simcore/error.hpp"

namespace sci {

namespace detail {

std::vector<std::string> label_schema(const metric_store& store,
                                      const std::vector<series_id>& series) {
    std::set<std::string> keys;
    for (series_id id : series) {
        for (const auto& [k, v] : store.labels_of(id).pairs()) {
            (void)v;
            keys.insert(k);
        }
    }
    return {keys.begin(), keys.end()};
}

std::vector<std::string> label_values(const label_set& labels,
                                      const std::vector<std::string>& schema) {
    std::vector<std::string> out;
    out.reserve(schema.size());
    for (const std::string& key : schema) {
        const auto v = labels.get(key);
        out.emplace_back(v.has_value() ? std::string(*v) : std::string());
    }
    return out;
}

void write_aggregate_files(const metric_store& store,
                           const std::filesystem::path& dir,
                           dataset_export_report& report) {
    std::ofstream manifest_file(dir / "manifest.csv");
    expects(manifest_file.good(), "export_dataset: cannot create manifest.csv");
    csv_writer manifest(manifest_file);
    manifest.write_row({"metric", "subsystem", "resource", "unit",
                        "description", "series_count"});

    for (const metric_def& def : store.registry().all()) {
        const std::vector<series_id> series = store.select(def.name);
        manifest.write_row({def.name, std::string(to_string(def.subsystem)),
                            std::string(to_string(def.resource)),
                            std::string(to_string(def.unit)), def.description,
                            std::to_string(series.size())});
        if (series.empty()) continue;
        ++report.metrics_exported;
        report.series_exported += series.size();

        const std::vector<std::string> schema = label_schema(store, series);
        std::ofstream f(dir / (def.name + ".daily.csv"));
        expects(f.good(), "export_dataset: cannot create daily csv");
        csv_writer w(f);
        std::vector<std::string> header = schema;
        header.insert(header.end(), {"day", "count", "mean", "min", "max"});
        w.write_row(header);
        for (series_id id : series) {
            const std::vector<std::string> labels =
                label_values(store.labels_of(id), schema);
            for (int day = 0; day < store.config().days; ++day) {
                const running_stats* agg = store.daily(id, day);
                if (agg == nullptr) continue;
                std::vector<std::string> row = labels;
                row.push_back(std::to_string(day));
                row.push_back(std::to_string(agg->count()));
                row.push_back(std::to_string(agg->mean()));
                row.push_back(std::to_string(agg->min()));
                row.push_back(std::to_string(agg->max()));
                w.write_row(row);
                ++report.daily_rows;
            }
        }
    }
}

}  // namespace detail

dataset_export_report export_dataset(const metric_store& store,
                                     const std::filesystem::path& dir,
                                     const dataset_export_options& options) {
    std::filesystem::create_directories(dir);
    dataset_export_report report;
    detail::write_aggregate_files(store, dir, report);

    // ---- raw samples (materialized path: everything is still resident) --
    if (options.include_raw && store.config().keep_raw) {
        for (const metric_def& def : store.registry().all()) {
            const std::vector<series_id> series = store.select(def.name);
            if (series.empty()) continue;
            const std::vector<std::string> schema =
                detail::label_schema(store, series);
            std::ofstream f(dir / (def.name + ".raw.csv"));
            expects(f.good(), "export_dataset: cannot create raw csv");
            csv_writer w(f);
            std::vector<std::string> header = schema;
            header.insert(header.end(), {"t", "value"});
            w.write_row(header);
            for (series_id id : series) {
                const std::vector<std::string> labels =
                    detail::label_values(store.labels_of(id), schema);
                for (const sample& s : store.raw(id)) {
                    std::vector<std::string> row = labels;
                    row.push_back(std::to_string(s.t));
                    row.push_back(std::to_string(s.value));
                    w.write_row(row);
                    ++report.raw_rows;
                }
            }
        }
    }
    return report;
}

std::vector<manifest_entry> read_manifest(const std::filesystem::path& dir) {
    std::ifstream f(dir / "manifest.csv");
    if (!f.good()) throw not_found_error("read_manifest: manifest.csv missing");
    csv_reader reader(f);
    std::vector<std::string> fields;
    expects(reader.next_row(fields) && fields.size() >= 6,
            "read_manifest: malformed header");
    std::vector<manifest_entry> out;
    while (reader.next_row(fields)) {
        expects(fields.size() >= 6, "read_manifest: malformed row");
        manifest_entry e;
        e.metric = fields[0];
        e.subsystem = fields[1];
        e.resource = fields[2];
        e.unit = fields[3];
        e.series_count = static_cast<std::size_t>(std::stoull(fields[5]));
        out.push_back(std::move(e));
    }
    return out;
}

metric_store import_dataset(const std::filesystem::path& dir) {
    metric_store store(metric_registry::standard_catalog());
    for (const manifest_entry& entry : read_manifest(dir)) {
        if (entry.series_count == 0) continue;
        const auto daily_file = dir / (entry.metric + ".daily.csv");
        std::ifstream f(daily_file);
        if (!f.good()) {
            throw not_found_error("import_dataset: missing " +
                                  daily_file.string());
        }
        csv_reader reader(f);
        std::vector<std::string> header;
        expects(reader.next_row(header) && header.size() >= 5,
                "import_dataset: malformed daily header");
        // trailing columns are day,count,mean,min,max; the rest are labels
        const std::size_t label_count = header.size() - 5;
        std::vector<std::string> fields;
        while (reader.next_row(fields)) {
            expects(fields.size() == header.size(),
                    "import_dataset: row width mismatch");
            label_set labels;
            for (std::size_t i = 0; i < label_count; ++i) {
                if (!fields[i].empty()) labels.set(header[i], fields[i]);
            }
            const series_id id = store.open_series(entry.metric, std::move(labels));
            const int day = std::stoi(fields[label_count]);
            const auto count = static_cast<std::uint64_t>(
                std::stoull(fields[label_count + 1]));
            store.merge_daily(
                id, day,
                running_stats::from_moments(count,
                                            std::stod(fields[label_count + 2]),
                                            std::stod(fields[label_count + 3]),
                                            std::stod(fields[label_count + 4])));
        }
    }
    return store;
}

std::size_t export_events_csv(const event_log& events,
                              const std::filesystem::path& file) {
    std::ofstream f(file);
    expects(f.good(), "export_events_csv: cannot create file");
    csv_writer w(f);
    w.write_row({"t", "kind", "vm", "bb", "from_node", "to_node", "reason"});
    for (const lifecycle_event& e : events.all()) {
        w.write_row({std::to_string(e.t), std::string(to_string(e.kind)),
                     std::to_string(e.vm.value()), std::to_string(e.bb.value()),
                     std::to_string(e.from.value()),
                     std::to_string(e.to.value()),
                     std::string(to_string(e.reason))});
    }
    return events.size();
}

std::vector<lifecycle_event> import_events_csv(
    const std::filesystem::path& file) {
    std::ifstream f(file);
    if (!f.good()) throw not_found_error("import_events_csv: file missing");
    csv_reader reader(f);
    std::vector<std::string> fields;
    // width 6 = pre-reason exports; width 7 carries the schedule_fail reason
    expects(reader.next_row(fields) &&
                (fields.size() == 6 || fields.size() == 7),
            "import_events_csv: malformed header");
    const std::size_t width = fields.size();
    std::vector<lifecycle_event> out;
    const auto kind_of = [](const std::string& s) {
        for (auto k : {lifecycle_event_kind::create,
                       lifecycle_event_kind::schedule_fail,
                       lifecycle_event_kind::migrate,
                       lifecycle_event_kind::evacuate,
                       lifecycle_event_kind::resize,
                       lifecycle_event_kind::remove,
                       lifecycle_event_kind::crash,
                       lifecycle_event_kind::ha_restart,
                       lifecycle_event_kind::shed}) {
            if (s == to_string(k)) return k;
        }
        throw error("import_events_csv: unknown event kind '" + s + "'");
    };
    while (reader.next_row(fields)) {
        expects(fields.size() == width, "import_events_csv: malformed row");
        lifecycle_event e;
        e.t = static_cast<sim_time>(std::stoll(fields[0]));
        e.kind = kind_of(fields[1]);
        e.vm = vm_id(static_cast<std::int32_t>(std::stol(fields[2])));
        e.bb = bb_id(static_cast<std::int32_t>(std::stol(fields[3])));
        e.from = node_id(static_cast<std::int32_t>(std::stol(fields[4])));
        e.to = node_id(static_cast<std::int32_t>(std::stol(fields[5])));
        if (width == 7) {
            const auto reason = schedule_fail_reason_from(fields[6]);
            if (!reason.has_value()) {
                throw error("import_events_csv: unknown reason '" + fields[6] +
                            "'");
            }
            e.reason = *reason;
        }
        out.push_back(e);
    }
    return out;
}

std::size_t import_raw_metric(metric_store& store,
                              const std::filesystem::path& raw_csv,
                              std::string_view metric) {
    std::ifstream f(raw_csv);
    if (!f.good()) throw not_found_error("import_raw_metric: file missing");
    csv_reader reader(f);
    std::vector<std::string> header;
    expects(reader.next_row(header) && header.size() >= 2,
            "import_raw_metric: malformed header");
    expects(header[header.size() - 2] == "t" && header.back() == "value",
            "import_raw_metric: expected trailing t,value columns");
    const std::size_t label_count = header.size() - 2;

    std::size_t imported = 0;
    std::vector<std::string> fields;
    while (reader.next_row(fields)) {
        expects(fields.size() == header.size(),
                "import_raw_metric: row width mismatch");
        label_set labels;
        for (std::size_t i = 0; i < label_count; ++i) {
            if (!fields[i].empty()) labels.set(header[i], fields[i]);
        }
        const series_id id = store.open_series(metric, std::move(labels));
        store.append(id, static_cast<sim_time>(std::stoll(fields[label_count])),
                     std::stod(fields[label_count + 1]));
        ++imported;
    }
    return imported;
}

}  // namespace sci
