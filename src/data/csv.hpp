#pragma once

// Minimal RFC-4180-ish CSV reading/writing (the published dataset is
// "anonymized telemetry data in CSV format", Appendix B).

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sci {

/// Quote/escape a field if needed (commas, quotes, newlines).
std::string csv_escape(std::string_view field);

/// Parse one CSV line into fields (handles quoted fields with embedded
/// commas and doubled quotes).  Throws sci::error on malformed input.
std::vector<std::string> csv_parse_line(std::string_view line);

class csv_writer {
public:
    explicit csv_writer(std::ostream& os) : os_(os) {}

    void write_row(std::span<const std::string> fields);
    void write_row(std::initializer_list<std::string_view> fields);

    std::size_t rows_written() const { return rows_; }

private:
    std::ostream& os_;
    std::size_t rows_ = 0;
};

class csv_reader {
public:
    explicit csv_reader(std::istream& is) : is_(is) {}

    /// Read the next row; false at end of input.  Skips blank lines.
    bool next_row(std::vector<std::string>& fields);

    std::size_t rows_read() const { return rows_; }

private:
    std::istream& is_;
    std::size_t rows_ = 0;
};

}  // namespace sci
