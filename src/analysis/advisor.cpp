#include "analysis/advisor.hpp"

#include <algorithm>

#include "simcore/error.hpp"
#include "simcore/stats.hpp"

namespace sci {

std::vector<overcommit_recommendation> recommend_cpu_overcommit(
    const metric_store& store, const fleet& f,
    const placement_service& placement, const advisor_config& config) {
    expects(config.target_util_pct > 0.0 && config.target_util_pct <= 100.0,
            "recommend_cpu_overcommit: target in (0, 100]");
    expects(config.min_ratio > 0.0 && config.max_ratio >= config.min_ratio,
            "recommend_cpu_overcommit: invalid ratio bounds");

    std::vector<overcommit_recommendation> out;
    for (const building_block& bb : f.bbs()) {
        if (!placement.has_provider(bb.id)) continue;

        // collect node-day means and maxima within this BB
        const std::vector<std::pair<std::string, std::string>> filter{
            {"bb", bb.name}};
        std::vector<double> node_day_means;
        double max_contention = 0.0;
        for (series_id id :
             store.select(metric_names::host_cpu_core_utilization, filter)) {
            for (int day = 0; day < store.config().days; ++day) {
                const running_stats* agg = store.daily(id, day);
                if (agg != nullptr) node_day_means.push_back(agg->mean());
            }
        }
        for (series_id id :
             store.select(metric_names::host_cpu_contention, filter)) {
            const running_stats agg = store.window_aggregate(id);
            if (!agg.empty()) max_contention = std::max(max_contention, agg.max());
        }
        if (node_day_means.empty()) continue;

        overcommit_recommendation rec;
        rec.bb = bb.id;
        rec.bb_name = bb.name;
        rec.purpose = bb.purpose;
        rec.current_ratio = placement.inventory(bb.id).cpu_allocation_ratio;
        rec.observed_p95_util_pct = exact_quantile(node_day_means, 0.95);
        rec.observed_max_contention_pct = max_contention;

        // utilization scales ~linearly with admitted vCPUs, so the ratio
        // that hits the target is current * target / observed
        const double observed = std::max(rec.observed_p95_util_pct, 1.0);
        double recommended =
            rec.current_ratio * config.target_util_pct / observed;
        if (max_contention > config.contention_guard_pct) {
            recommended = std::min(recommended, rec.current_ratio);
        }
        rec.recommended_ratio =
            std::clamp(recommended, config.min_ratio, config.max_ratio);
        out.push_back(std::move(rec));
    }
    return out;
}

}  // namespace sci
