#include "analysis/heatmap.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace sci {

double heatmap::column_mean(std::size_t column) const {
    double sum = 0.0;
    int n = 0;
    for (int day = 0; day < days; ++day) {
        const double v = cell(day, column);
        if (!missing(v)) {
            sum += v;
            ++n;
        }
    }
    return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                  : sum / static_cast<double>(n);
}

double heatmap::min_value() const {
    double lo = std::numeric_limits<double>::infinity();
    for (const auto& row : cells) {
        for (double v : row) {
            if (!missing(v)) lo = std::min(lo, v);
        }
    }
    return lo;
}

double heatmap::max_value() const {
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto& row : cells) {
        for (double v : row) {
            if (!missing(v)) hi = std::max(hi, v);
        }
    }
    return hi;
}

double heatmap::missing_fraction() const {
    std::size_t missing_cells = 0;
    std::size_t total = 0;
    for (const auto& row : cells) {
        for (double v : row) {
            ++total;
            if (missing(v)) ++missing_cells;
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(missing_cells) /
                            static_cast<double>(total);
}

heatmap build_daily_heatmap(
    const metric_store& store, std::string_view metric,
    std::span<const std::pair<std::string, std::string>> label_eq,
    std::string_view column_label, const cell_transform& transform) {
    expects(static_cast<bool>(transform), "build_daily_heatmap: null transform");
    const int days = store.config().days;

    // group series by the column label value (ordered map: deterministic)
    std::map<std::string, std::vector<series_id>> groups;
    for (series_id id : store.select(metric, label_eq)) {
        const auto column = store.labels_of(id).get(column_label);
        if (!column.has_value()) continue;
        groups[std::string(*column)].push_back(id);
    }

    heatmap hm;
    hm.days = days;
    hm.columns.reserve(groups.size());
    hm.cells.assign(static_cast<std::size_t>(days), {});
    for (auto& row : hm.cells) {
        row.assign(groups.size(), std::numeric_limits<double>::quiet_NaN());
    }

    std::size_t col = 0;
    for (const auto& [name, ids] : groups) {
        hm.columns.push_back(name);
        for (int day = 0; day < days; ++day) {
            running_stats merged;
            const label_set* labels = nullptr;
            for (series_id id : ids) {
                if (const running_stats* agg = store.daily(id, day)) {
                    merged.merge(*agg);
                    labels = &store.labels_of(id);
                }
            }
            if (!merged.empty() && labels != nullptr) {
                hm.cells[static_cast<std::size_t>(day)][col] =
                    transform(merged, *labels);
            }
        }
        ++col;
    }

    // sort columns most free -> least free (descending column mean)
    std::vector<std::size_t> order(hm.columns.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<double> means(hm.columns.size());
    for (std::size_t i = 0; i < means.size(); ++i) means[i] = hm.column_mean(i);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const double ma = std::isnan(means[a])
                              ? -std::numeric_limits<double>::infinity()
                              : means[a];
        const double mb = std::isnan(means[b])
                              ? -std::numeric_limits<double>::infinity()
                              : means[b];
        return ma > mb;
    });

    heatmap sorted;
    sorted.days = hm.days;
    sorted.columns.reserve(hm.columns.size());
    sorted.cells.assign(static_cast<std::size_t>(days), {});
    for (std::size_t i = 0; i < order.size(); ++i) {
        sorted.columns.push_back(hm.columns[order[i]]);
    }
    for (int day = 0; day < days; ++day) {
        auto& row = sorted.cells[static_cast<std::size_t>(day)];
        row.reserve(order.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            row.push_back(hm.cells[static_cast<std::size_t>(day)][order[i]]);
        }
    }
    return sorted;
}

double free_percent_from_util(const running_stats& day, const label_set&) {
    return clamp_percent(100.0 - day.mean());
}

}  // namespace sci
