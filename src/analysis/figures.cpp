#include "analysis/figures.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>

#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace sci {

namespace {

using label_filter = std::vector<std::pair<std::string, std::string>>;

label_filter dc_filter(const fleet& f, dc_id dc) {
    return {{"dc", f.get(dc).name}};
}

}  // namespace

// ---------------------------------------------------------------------------
// heatmaps
// ---------------------------------------------------------------------------

heatmap fig5_free_cpu_per_node(const metric_store& store, const fleet& f,
                               dc_id dc) {
    const label_filter filter = dc_filter(f, dc);
    return build_daily_heatmap(store, metric_names::host_cpu_core_utilization,
                               filter, "node", free_percent_from_util);
}

heatmap fig6_free_cpu_per_bb(const metric_store& store, const fleet& f,
                             dc_id dc) {
    const label_filter filter = dc_filter(f, dc);
    return build_daily_heatmap(store, metric_names::host_cpu_core_utilization,
                               filter, "bb", free_percent_from_util);
}

heatmap fig7_free_cpu_intra_bb(const metric_store& store, const fleet& f,
                               bb_id bb) {
    const label_filter filter = {{"bb", f.get(bb).name}};
    return build_daily_heatmap(store, metric_names::host_cpu_core_utilization,
                               filter, "node", free_percent_from_util);
}

bb_id most_imbalanced_bb(const metric_store& store, const fleet& f, dc_id dc,
                         int min_nodes) {
    // group node CPU series of this DC by building block
    std::map<std::string, std::vector<series_id>> by_bb;
    const label_filter filter = dc_filter(f, dc);
    for (series_id id :
         store.select(metric_names::host_cpu_core_utilization, filter)) {
        const auto bb_name = store.labels_of(id).get("bb");
        if (bb_name.has_value()) by_bb[std::string(*bb_name)].push_back(id);
    }

    std::string best_name;
    double best_spread = -1.0;
    for (const auto& [name, ids] : by_bb) {
        if (static_cast<int>(ids.size()) < min_nodes) continue;
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (series_id id : ids) {
            const running_stats agg = store.window_aggregate(id);
            if (agg.empty()) continue;
            lo = std::min(lo, agg.mean());
            hi = std::max(hi, agg.mean());
        }
        const double spread = hi - lo;
        if (spread > best_spread) {
            best_spread = spread;
            best_name = name;
        }
    }
    for (const building_block& bb : f.bbs()) {
        if (bb.name == best_name) return bb.id;
    }
    throw not_found_error("most_imbalanced_bb: no eligible building block");
}

heatmap fig10_free_memory_per_node(const metric_store& store, const fleet& f,
                                   dc_id dc) {
    const label_filter filter = dc_filter(f, dc);
    return build_daily_heatmap(store, metric_names::host_memory_usage, filter,
                               "node", free_percent_from_util);
}

namespace {

double free_net_percent(const running_stats& day, const label_set&) {
    return clamp_percent(100.0 * (1.0 - day.mean() / node_nic_capacity_kbps));
}

}  // namespace

heatmap fig11_free_net_tx(const metric_store& store, const fleet& f, dc_id dc) {
    const label_filter filter = dc_filter(f, dc);
    return build_daily_heatmap(store, metric_names::host_network_tx, filter,
                               "node", free_net_percent);
}

heatmap fig12_free_net_rx(const metric_store& store, const fleet& f, dc_id dc) {
    const label_filter filter = dc_filter(f, dc);
    return build_daily_heatmap(store, metric_names::host_network_rx, filter,
                               "node", free_net_percent);
}

heatmap fig13_free_storage(const metric_store& store, const fleet& f, dc_id dc) {
    // storage metric is absolute GiB used; capacity differs per node
    auto capacity_by_node = std::make_shared<std::unordered_map<std::string, double>>();
    for (const compute_node& node : f.nodes()) {
        (*capacity_by_node)[node.name] = f.node_profile(node.id).storage_gib;
    }
    const cell_transform transform = [capacity_by_node](const running_stats& day,
                                                        const label_set& labels) {
        const auto node = labels.get("node");
        if (!node.has_value()) return std::numeric_limits<double>::quiet_NaN();
        const auto it = capacity_by_node->find(std::string(*node));
        if (it == capacity_by_node->end() || it->second <= 0.0) {
            return std::numeric_limits<double>::quiet_NaN();
        }
        return clamp_percent(100.0 * (1.0 - day.mean() / it->second));
    };
    const label_filter filter = dc_filter(f, dc);
    return build_daily_heatmap(store, metric_names::host_diskspace_usage,
                               filter, "node", transform);
}

// ---------------------------------------------------------------------------
// ready time / contention
// ---------------------------------------------------------------------------

std::vector<ready_time_series> fig8_top_ready_nodes(const metric_store& store,
                                                    int top_k) {
    expects(top_k > 0, "fig8_top_ready_nodes: top_k must be positive");
    struct candidate {
        series_id id;
        std::string node;
        double total = 0.0;
    };
    std::vector<candidate> candidates;
    for (series_id id : store.select(metric_names::host_cpu_ready)) {
        const running_stats agg = store.window_aggregate(id);
        if (agg.empty()) continue;
        const auto node = store.labels_of(id).get("node");
        if (!node.has_value()) continue;
        candidates.push_back(candidate{id, std::string(*node), agg.sum()});
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const candidate& a, const candidate& b) {
                         return a.total > b.total;
                     });
    if (candidates.size() > static_cast<std::size_t>(top_k)) {
        candidates.resize(static_cast<std::size_t>(top_k));
    }

    const int hours = store.config().days * 24;
    std::vector<ready_time_series> out;
    out.reserve(candidates.size());
    for (const candidate& c : candidates) {
        ready_time_series series;
        series.node = c.node;
        series.total_ready_ms = c.total;
        series.hourly_ms.reserve(static_cast<std::size_t>(hours));
        for (int h = 0; h < hours; ++h) {
            const running_stats* agg = store.hourly(c.id, h);
            const double v =
                agg == nullptr ? std::numeric_limits<double>::quiet_NaN()
                               : agg->mean();
            series.hourly_ms.push_back(v);
            if (agg != nullptr) {
                series.peak_ready_ms = std::max(series.peak_ready_ms, agg->mean());
            }
        }
        out.push_back(std::move(series));
    }
    return out;
}

std::vector<contention_day> fig9_contention_by_day(const metric_store& store) {
    const std::vector<series_id> series =
        store.select(metric_names::host_cpu_contention);
    std::vector<contention_day> out;
    out.reserve(static_cast<std::size_t>(store.config().days));
    for (int day = 0; day < store.config().days; ++day) {
        std::vector<double> node_means;
        double max_pct = 0.0;
        for (series_id id : series) {
            const running_stats* agg = store.daily(id, day);
            if (agg == nullptr) continue;
            node_means.push_back(agg->mean());
            max_pct = std::max(max_pct, agg->max());
        }
        contention_day row;
        row.day = day;
        if (!node_means.empty()) {
            running_stats s;
            for (double v : node_means) s.add(v);
            row.mean_pct = s.mean();
            row.p95_pct = exact_quantile(node_means, 0.95);
            row.max_pct = max_pct;
        }
        out.push_back(row);
    }
    return out;
}

// ---------------------------------------------------------------------------
// workload composition
// ---------------------------------------------------------------------------

double vm_utilization_cdf::cdf(double x) const {
    return empirical_cdf(sorted_means, x);
}

namespace {

vm_utilization_cdf utilization_cdf_for(const metric_store& store,
                                       std::string_view metric) {
    vm_utilization_cdf out;
    for (series_id id : store.select(metric)) {
        const running_stats agg = store.window_aggregate(id);
        if (agg.empty()) continue;
        out.sorted_means.push_back(agg.mean());
    }
    std::sort(out.sorted_means.begin(), out.sorted_means.end());
    out.classes.vm_count = out.sorted_means.size();
    if (!out.sorted_means.empty()) {
        const double n = static_cast<double>(out.sorted_means.size());
        const double under = out.cdf(0.70);
        const double up_to_optimal = out.cdf(0.85);
        out.classes.under_pct = 100.0 * under;
        out.classes.optimal_pct = 100.0 * (up_to_optimal - under);
        out.classes.over_pct = 100.0 * (1.0 - up_to_optimal);
        (void)n;
    }
    return out;
}

}  // namespace

vm_utilization_cdf fig14a_cpu_utilization(const metric_store& store) {
    return utilization_cdf_for(store, metric_names::vm_cpu_usage_ratio);
}

vm_utilization_cdf fig14b_memory_utilization(const metric_store& store) {
    return utilization_cdf_for(store, metric_names::vm_memory_consumed_ratio);
}

namespace {

/// Average over the window's days of the number of alive VMs that fall
/// into each of four classes, as selected by `class_of` (0..3).
template <class ClassOf>
std::array<double, 4> average_class_counts(const vm_registry& vms,
                                           const ClassOf& class_of) {
    std::array<double, 4> totals{};
    for (int day = 0; day < observation_days; ++day) {
        const sim_time midday = days(day) + hours(12);
        for (const vm_record& rec : vms.all()) {
            if (rec.state == vm_state::error || rec.state == vm_state::pending) {
                continue;
            }
            if (!rec.alive_at(midday)) continue;
            totals[class_of(rec)] += 1.0;
        }
    }
    for (double& t : totals) t /= static_cast<double>(observation_days);
    return totals;
}

}  // namespace

std::vector<size_class_row> table1_vcpu_classes(const vm_registry& vms,
                                                const flavor_catalog& catalog) {
    const auto counts = average_class_counts(vms, [&](const vm_record& rec) {
        return static_cast<std::size_t>(
            catalog.get(rec.flavor).cpu_class());
    });
    return {
        {"Small", "vCPU <= 4", counts[0]},
        {"Medium", "4 < vCPU <= 16", counts[1]},
        {"Large", "16 < vCPU <= 64", counts[2]},
        {"Extra Large", "vCPU > 64", counts[3]},
    };
}

std::vector<size_class_row> table2_ram_classes(const vm_registry& vms,
                                               const flavor_catalog& catalog) {
    const auto counts = average_class_counts(vms, [&](const vm_record& rec) {
        return static_cast<std::size_t>(
            catalog.get(rec.flavor).memory_class());
    });
    return {
        {"Small", "RAM <= 2 GiB", counts[0]},
        {"Medium", "2 < RAM <= 64 GiB", counts[1]},
        {"Large", "64 < RAM <= 128 GiB", counts[2]},
        {"Extra Large", "RAM > 128 GiB", counts[3]},
    };
}

// ---------------------------------------------------------------------------
// lifetimes
// ---------------------------------------------------------------------------

std::vector<lifetime_row> fig15_lifetime_per_flavor(
    const vm_registry& vms, const flavor_catalog& catalog,
    std::size_t min_instances) {
    std::unordered_map<std::int32_t, std::vector<double>> lifetimes_by_flavor;
    for (const vm_record& rec : vms.all()) {
        if (rec.state == vm_state::error || rec.state == vm_state::pending) {
            continue;
        }
        const double lifetime_days =
            static_cast<double>(rec.lifetime(observation_window)) / 86400.0;
        lifetimes_by_flavor[rec.flavor.value()].push_back(lifetime_days);
    }

    std::vector<lifetime_row> rows;
    for (auto& [flavor_value, lifetimes] : lifetimes_by_flavor) {
        if (lifetimes.size() < min_instances) continue;
        const flavor& f = catalog.get(flavor_id(flavor_value));
        std::sort(lifetimes.begin(), lifetimes.end());
        running_stats s;
        for (double v : lifetimes) s.add(v);
        lifetime_row row;
        row.flavor_name = f.name;
        row.vcpus = f.vcpus;
        row.ram_mib = f.ram_mib;
        row.vcpu_class_name = std::string(to_string(f.cpu_class()));
        row.ram_class_name = std::string(to_string(f.memory_class()));
        row.instances = lifetimes.size();
        row.mean_days = s.mean();
        row.median_days = exact_quantile(lifetimes, 0.5);
        row.min_days = s.min();
        row.max_days = s.max();
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(), [](const lifetime_row& a,
                                           const lifetime_row& b) {
        if (a.vcpus != b.vcpus) return a.vcpus < b.vcpus;
        if (a.ram_mib != b.ram_mib) return a.ram_mib < b.ram_mib;
        return a.flavor_name < b.flavor_name;
    });
    return rows;
}

// ---------------------------------------------------------------------------
// imbalance
// ---------------------------------------------------------------------------

imbalance_summary intra_bb_imbalance(const metric_store& store, const fleet& f) {
    (void)f;
    // group node CPU utilization series by building block
    std::map<std::string, std::vector<series_id>> by_bb;
    for (series_id id : store.select(metric_names::host_cpu_core_utilization)) {
        const auto bb = store.labels_of(id).get("bb");
        if (bb.has_value()) by_bb[std::string(*bb)].push_back(id);
    }

    imbalance_summary out;
    running_stats stddevs;
    for (const auto& [name, ids] : by_bb) {
        if (ids.size() < 2) continue;
        for (int day = 0; day < store.config().days; ++day) {
            running_stats day_utils;
            double lo = std::numeric_limits<double>::infinity();
            double hi = -std::numeric_limits<double>::infinity();
            for (series_id id : ids) {
                const running_stats* agg = store.daily(id, day);
                if (agg == nullptr) continue;
                day_utils.add(agg->mean());
                lo = std::min(lo, agg->mean());
                hi = std::max(hi, agg->mean());
                out.max_node_util_pct = std::max(out.max_node_util_pct, agg->max());
            }
            if (day_utils.count() >= 2) {
                stddevs.add(day_utils.stddev());
                out.max_intra_bb_spread_pct =
                    std::max(out.max_intra_bb_spread_pct, hi - lo);
            }
        }
    }
    out.mean_intra_bb_stddev_pct = stddevs.mean();
    return out;
}

}  // namespace sci
