#pragma once

// Daily heatmaps (Figures 5–7, 10–13): rows are days of the observation
// window, columns are entities (nodes or building blocks) sorted from most
// free (left) to least free (right); missing cells (hosts added/removed
// mid-window) are NaN and render white/blank.

#include <cmath>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/stats.hpp"
#include "telemetry/store.hpp"

namespace sci {

struct heatmap {
    std::vector<std::string> columns;  ///< entity names, most→least free
    int days = 0;
    /// cells[day][column]; NaN marks missing data.
    std::vector<std::vector<double>> cells;

    double cell(int day, std::size_t column) const { return cells[static_cast<std::size_t>(day)][column]; }
    static bool missing(double v) { return std::isnan(v); }

    /// Mean over present cells of a column.
    double column_mean(std::size_t column) const;
    /// Min / max over all present cells.
    double min_value() const;
    double max_value() const;
    /// Fraction of cells that are missing.
    double missing_fraction() const;
};

/// Maps one day-aggregate (plus the series labels, e.g. to look up a
/// node's capacity) to the plotted cell value.
using cell_transform =
    std::function<double(const running_stats& day, const label_set& labels)>;

/// Build a daily heatmap from every series of `metric` matching
/// `label_eq`.  Series sharing the same value of `column_label` are merged
/// (e.g. column_label="bb" merges all nodes of a building block for
/// Figure 6).  Columns are sorted by descending column mean.
heatmap build_daily_heatmap(
    const metric_store& store, std::string_view metric,
    std::span<const std::pair<std::string, std::string>> label_eq,
    std::string_view column_label, const cell_transform& transform);

/// Convenience transform: value is already a utilization percentage;
/// plot free % = 100 - mean.
double free_percent_from_util(const running_stats& day, const label_set&);

}  // namespace sci
