#include "analysis/render.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "simcore/error.hpp"

namespace sci {

std::string render_heatmap_ascii(const heatmap& hm, const render_options& options) {
    expects(options.max_columns > 0, "render_heatmap_ascii: max_columns > 0");
    expects(!options.ramp.empty(), "render_heatmap_ascii: empty ramp");
    if (hm.columns.empty() || hm.days == 0) return "(empty heatmap)\n";

    const std::size_t cols = hm.columns.size();
    const auto out_cols =
        std::min<std::size_t>(cols, static_cast<std::size_t>(options.max_columns));

    std::string out;
    out.reserve(static_cast<std::size_t>(hm.days) * (out_cols + 8));
    for (int day = 0; day < hm.days; ++day) {
        char daybuf[16];
        std::snprintf(daybuf, sizeof daybuf, "d%02d ", day);
        out += daybuf;
        for (std::size_t oc = 0; oc < out_cols; ++oc) {
            // downsample: average the source columns mapping to this cell
            const std::size_t lo = oc * cols / out_cols;
            const std::size_t hi = std::max(lo + 1, (oc + 1) * cols / out_cols);
            double sum = 0.0;
            int n = 0;
            for (std::size_t c = lo; c < hi; ++c) {
                const double v = hm.cell(day, c);
                if (!heatmap::missing(v)) {
                    sum += v;
                    ++n;
                }
            }
            if (n == 0) {
                out += '?';
                continue;
            }
            const double v = std::clamp(sum / n, 0.0, 100.0);
            const auto idx = static_cast<std::size_t>(
                v / 100.0 * static_cast<double>(options.ramp.size() - 1) + 0.5);
            out += options.ramp[std::min(idx, options.ramp.size() - 1)];
        }
        out += '\n';
    }
    return out;
}

void write_heatmap_csv(std::ostream& os, const heatmap& hm) {
    os << "day";
    for (const std::string& c : hm.columns) os << "," << c;
    os << "\n";
    for (int day = 0; day < hm.days; ++day) {
        os << day;
        for (std::size_t c = 0; c < hm.columns.size(); ++c) {
            const double v = hm.cell(day, c);
            os << ",";
            if (!heatmap::missing(v)) os << v;
        }
        os << "\n";
    }
}

void write_cdf_csv(std::ostream& os, const vm_utilization_cdf& cdf,
                   int grid_points) {
    expects(grid_points >= 2, "write_cdf_csv: need >= 2 grid points");
    os << "utilization,cdf\n";
    for (int i = 0; i < grid_points; ++i) {
        const double x =
            static_cast<double>(i) / static_cast<double>(grid_points - 1);
        os << x << "," << cdf.cdf(x) << "\n";
    }
}

void write_ready_series_csv(std::ostream& os,
                            std::span<const ready_time_series> series) {
    os << "hour";
    for (const ready_time_series& s : series) os << "," << s.node;
    os << "\n";
    if (series.empty()) return;
    const std::size_t hours = series.front().hourly_ms.size();
    for (std::size_t h = 0; h < hours; ++h) {
        os << h;
        for (const ready_time_series& s : series) {
            os << ",";
            if (h < s.hourly_ms.size() && !std::isnan(s.hourly_ms[h])) {
                os << s.hourly_ms[h];
            }
        }
        os << "\n";
    }
}

table_printer::table_printer(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    expects(!headers_.empty(), "table_printer: need at least one column");
}

void table_printer::add_row(std::vector<std::string> cells) {
    expects(cells.size() == headers_.size(),
            "table_printer::add_row: cell count mismatch");
    rows_.push_back(std::move(cells));
}

std::string table_printer::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }
    std::ostringstream os;
    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << "| " << row[i];
            os << std::string(widths[i] - row[i].size() + 1, ' ');
        }
        os << "|\n";
    };
    emit(headers_);
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        os << "|" << std::string(widths[i] + 2, '-');
    }
    os << "|\n";
    for (const auto& row : rows_) emit(row);
    return os.str();
}

std::string format_double(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string format_count(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
}

}  // namespace sci
