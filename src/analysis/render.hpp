#pragma once

// Rendering: ASCII previews for the terminal (benches print these) and CSV
// export so the data behind every figure can be plotted externally.

#include <iosfwd>
#include <string>

#include "analysis/figures.hpp"
#include "analysis/heatmap.hpp"

namespace sci {

struct render_options {
    /// Maximum columns in an ASCII heatmap; wider maps are downsampled.
    int max_columns = 96;
    /// Shade ramp from low to high value.
    std::string ramp = " .:-=+*#%@";
};

/// ASCII heatmap: one row per day, columns as in the heatmap (downsampled
/// if needed); '?' marks missing cells.  Values are mapped onto the ramp
/// over [0, 100].
std::string render_heatmap_ascii(const heatmap& hm,
                                 const render_options& options = {});

/// CSV of a heatmap: header = column names, one row per day.
void write_heatmap_csv(std::ostream& os, const heatmap& hm);

/// CSV of a CDF: columns utilization,cdf.
void write_cdf_csv(std::ostream& os, const vm_utilization_cdf& cdf,
                   int grid_points = 101);

/// CSV of the Fig. 8 hourly ready-time series (one column per node).
void write_ready_series_csv(std::ostream& os,
                            std::span<const ready_time_series> series);

/// Simple fixed-width table printer used by the bench binaries.
class table_printer {
public:
    explicit table_printer(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);
    std::string to_string() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
std::string format_double(double v, int precision = 1);
std::string format_count(double v);

}  // namespace sci
