#pragma once

// Overcommit advisor — the paper's §7 guidance made executable:
// "the overcommit factor should be reconsidered ... A more dynamic and
// workload-based approach to determine the overcommit factor and related
// configuration might help to mitigate these problems."
//
// For every building block the advisor looks at the observed node CPU
// utilization (p95 over node-days) and the contention envelope, and
// recommends a vCPU:pCPU allocation ratio that would drive utilization
// towards the target without contention.

#include <string>
#include <vector>

#include "infra/fleet.hpp"
#include "sched/placement.hpp"
#include "telemetry/store.hpp"

namespace sci {

struct overcommit_recommendation {
    bb_id bb;
    std::string bb_name;
    bb_purpose purpose = bb_purpose::general;
    double current_ratio = 0.0;
    /// p95 over node-day mean CPU utilization within the BB (percent).
    double observed_p95_util_pct = 0.0;
    /// Worst observed node contention within the BB (percent).
    double observed_max_contention_pct = 0.0;
    double recommended_ratio = 0.0;
};

struct advisor_config {
    /// Utilization the recommendation steers towards.
    double target_util_pct = 70.0;
    /// Never recommend ratios outside [min_ratio, max_ratio].
    double min_ratio = 1.0;
    double max_ratio = 8.0;
    /// If max contention exceeds this, cap the recommendation at the
    /// current ratio (never recommend raising overcommit on a hot BB).
    double contention_guard_pct = 10.0;
};

/// Recommend per-BB CPU allocation ratios from the observed telemetry.
std::vector<overcommit_recommendation> recommend_cpu_overcommit(
    const metric_store& store, const fleet& f,
    const placement_service& placement, const advisor_config& config = {});

}  // namespace sci
