#include "analysis/svg.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "simcore/error.hpp"

namespace sci {

namespace {

std::string hex_color(double r, double g, double b) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "#%02x%02x%02x",
                  static_cast<unsigned>(std::clamp(r, 0.0, 1.0) * 255.0 + 0.5),
                  static_cast<unsigned>(std::clamp(g, 0.0, 1.0) * 255.0 + 0.5),
                  static_cast<unsigned>(std::clamp(b, 0.0, 1.0) * 255.0 + 0.5));
    return buf;
}

std::string escape_xml(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += c;
        }
    }
    return out;
}

void open_svg(std::ostream& os, const svg_options& options) {
    os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
       << "\" height=\"" << options.height << "\" viewBox=\"0 0 "
       << options.width << " " << options.height << "\">\n";
    os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
    if (!options.title.empty()) {
        os << "<text x=\"" << options.width / 2
           << "\" y=\"20\" text-anchor=\"middle\" font-family=\"sans-serif\" "
              "font-size=\"14\" font-weight=\"bold\">"
           << escape_xml(options.title) << "</text>\n";
    }
}

void axis_labels(std::ostream& os, const svg_options& options) {
    if (!options.x_label.empty()) {
        os << "<text x=\"" << options.width / 2 << "\" y=\""
           << options.height - 6
           << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
              "font-size=\"11\">"
           << escape_xml(options.x_label) << "</text>\n";
    }
    if (!options.y_label.empty()) {
        os << "<text x=\"14\" y=\"" << options.height / 2
           << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
              "font-size=\"11\" transform=\"rotate(-90 14 "
           << options.height / 2 << ")\">" << escape_xml(options.y_label)
           << "</text>\n";
    }
}

struct plot_area {
    double x0, y0, x1, y1;  // top-left, bottom-right
    double width() const { return x1 - x0; }
    double height() const { return y1 - y0; }
};

plot_area default_area(const svg_options& options) {
    return {56.0, 32.0, options.width - 16.0, options.height - 36.0};
}

}  // namespace

std::string viridis_color(double t) {
    t = std::clamp(t, 0.0, 1.0);
    // 5-stop approximation of the viridis colormap
    static constexpr std::array<std::array<double, 3>, 5> stops{{
        {0.267, 0.005, 0.329},  // dark purple
        {0.229, 0.322, 0.546},  // blue
        {0.127, 0.566, 0.551},  // teal
        {0.369, 0.789, 0.383},  // green
        {0.993, 0.906, 0.144},  // yellow
    }};
    const double pos = t * (stops.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, stops.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return hex_color(stops[lo][0] + frac * (stops[hi][0] - stops[lo][0]),
                     stops[lo][1] + frac * (stops[hi][1] - stops[lo][1]),
                     stops[lo][2] + frac * (stops[hi][2] - stops[lo][2]));
}

std::string series_color(std::size_t i) {
    static constexpr std::array<const char*, 10> palette{
        "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
        "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac"};
    return palette[i % palette.size()];
}

void write_heatmap_svg(std::ostream& os, const heatmap& hm,
                       const svg_options& options) {
    open_svg(os, options);
    const plot_area area = default_area(options);
    if (!hm.columns.empty() && hm.days > 0) {
        const double cell_w = area.width() / static_cast<double>(hm.columns.size());
        const double cell_h = area.height() / static_cast<double>(hm.days);
        for (int day = 0; day < hm.days; ++day) {
            for (std::size_t c = 0; c < hm.columns.size(); ++c) {
                const double v = hm.cell(day, c);
                if (heatmap::missing(v)) continue;  // white background
                os << "<rect x=\"" << area.x0 + cell_w * static_cast<double>(c)
                   << "\" y=\"" << area.y0 + cell_h * day << "\" width=\""
                   << cell_w + 0.5 << "\" height=\"" << cell_h + 0.5
                   << "\" fill=\"" << viridis_color(v / 100.0) << "\"/>\n";
            }
        }
        // day ticks every 5 days
        for (int day = 0; day < hm.days; day += 5) {
            os << "<text x=\"" << area.x0 - 6 << "\" y=\""
               << area.y0 + cell_h * (day + 0.7)
               << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
                  "font-size=\"10\">d"
               << day << "</text>\n";
        }
    }
    os << "<rect x=\"" << area.x0 << "\" y=\"" << area.y0 << "\" width=\""
       << area.width() << "\" height=\"" << area.height()
       << "\" fill=\"none\" stroke=\"#444\"/>\n";
    axis_labels(os, options);
    os << "</svg>\n";
}

void write_line_chart_svg(std::ostream& os,
                          const std::vector<svg_series>& series,
                          const svg_options& options) {
    open_svg(os, options);
    const plot_area area = default_area(options);

    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    std::size_t steps = 0;
    for (const svg_series& s : series) {
        steps = std::max(steps, s.values.size());
        for (double v : s.values) {
            if (std::isnan(v)) continue;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    if (steps >= 2 && hi > lo) {
        lo = std::min(lo, 0.0);
        const auto x_of = [&](std::size_t i) {
            return area.x0 + area.width() * static_cast<double>(i) /
                                 static_cast<double>(steps - 1);
        };
        const auto y_of = [&](double v) {
            return area.y1 - area.height() * (v - lo) / (hi - lo);
        };
        // y grid: 4 lines + labels
        for (int g = 0; g <= 4; ++g) {
            const double v = lo + (hi - lo) * g / 4.0;
            const double y = y_of(v);
            os << "<line x1=\"" << area.x0 << "\" y1=\"" << y << "\" x2=\""
               << area.x1 << "\" y2=\"" << y
               << "\" stroke=\"#ddd\" stroke-width=\"1\"/>\n";
            char label[32];
            std::snprintf(label, sizeof label, "%.1f", v);
            os << "<text x=\"" << area.x0 - 6 << "\" y=\"" << y + 3
               << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
                  "font-size=\"10\">"
               << label << "</text>\n";
        }
        for (std::size_t si = 0; si < series.size(); ++si) {
            const svg_series& s = series[si];
            os << "<polyline fill=\"none\" stroke=\"" << series_color(si)
               << "\" stroke-width=\"1.5\" points=\"";
            bool in_segment = false;
            for (std::size_t i = 0; i < s.values.size(); ++i) {
                if (std::isnan(s.values[i])) {
                    if (in_segment) {
                        os << "\"/>\n<polyline fill=\"none\" stroke=\""
                           << series_color(si)
                           << "\" stroke-width=\"1.5\" points=\"";
                        in_segment = false;
                    }
                    continue;
                }
                os << x_of(i) << "," << y_of(s.values[i]) << " ";
                in_segment = true;
            }
            os << "\"/>\n";
            // legend
            const double ly = area.y0 + 14.0 * static_cast<double>(si);
            os << "<rect x=\"" << area.x1 - 150 << "\" y=\"" << ly
               << "\" width=\"10\" height=\"3\" fill=\"" << series_color(si)
               << "\"/>\n";
            os << "<text x=\"" << area.x1 - 136 << "\" y=\"" << ly + 5
               << "\" font-family=\"sans-serif\" font-size=\"10\">"
               << escape_xml(s.label) << "</text>\n";
        }
    }
    os << "<rect x=\"" << area.x0 << "\" y=\"" << area.y0 << "\" width=\""
       << area.width() << "\" height=\"" << area.height()
       << "\" fill=\"none\" stroke=\"#444\"/>\n";
    axis_labels(os, options);
    os << "</svg>\n";
}

void write_cdf_svg(std::ostream& os, const vm_utilization_cdf& cdf,
                   const svg_options& options) {
    open_svg(os, options);
    const plot_area area = default_area(options);
    const auto x_of = [&](double u) { return area.x0 + area.width() * u; };
    const auto y_of = [&](double p) { return area.y1 - area.height() * p; };

    // classification thresholds of Section 5.5
    for (double threshold : {0.70, 0.85}) {
        os << "<line x1=\"" << x_of(threshold) << "\" y1=\"" << area.y0
           << "\" x2=\"" << x_of(threshold) << "\" y2=\"" << area.y1
           << "\" stroke=\"#c44\" stroke-dasharray=\"4 3\"/>\n";
        os << "<text x=\"" << x_of(threshold) << "\" y=\"" << area.y0 - 4
           << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
              "font-size=\"10\" fill=\"#c44\">"
           << static_cast<int>(threshold * 100) << "%</text>\n";
    }
    os << "<polyline fill=\"none\" stroke=\"#4e79a7\" stroke-width=\"2\" "
          "points=\"";
    for (int i = 0; i <= 200; ++i) {
        const double u = static_cast<double>(i) / 200.0;
        os << x_of(u) << "," << y_of(cdf.cdf(u)) << " ";
    }
    os << "\"/>\n";
    // axes ticks
    for (int g = 0; g <= 4; ++g) {
        const double frac = g / 4.0;
        char label[16];
        std::snprintf(label, sizeof label, "%.2f", frac);
        os << "<text x=\"" << x_of(frac) << "\" y=\"" << area.y1 + 14
           << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
              "font-size=\"10\">"
           << label << "</text>\n";
        os << "<text x=\"" << area.x0 - 6 << "\" y=\"" << y_of(frac) + 3
           << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
              "font-size=\"10\">"
           << label << "</text>\n";
    }
    os << "<rect x=\"" << area.x0 << "\" y=\"" << area.y0 << "\" width=\""
       << area.width() << "\" height=\"" << area.height()
       << "\" fill=\"none\" stroke=\"#444\"/>\n";
    axis_labels(os, options);
    os << "</svg>\n";
}

}  // namespace sci
