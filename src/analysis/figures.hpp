#pragma once

// Figure/table builders: one function per paper artifact, consuming only
// the telemetry store + infrastructure metadata (the same inputs the
// paper's analysis pipeline had).

#include <string>
#include <vector>

#include "analysis/heatmap.hpp"
#include "infra/fleet.hpp"
#include "infra/vm.hpp"
#include "telemetry/store.hpp"

namespace sci {

// ---------------------------------------------------------------------------
// Heatmaps (Figures 5–7, 10–13)
// ---------------------------------------------------------------------------

/// Fig. 5: daily avg % free CPU per node within one data center.
heatmap fig5_free_cpu_per_node(const metric_store& store, const fleet& f,
                               dc_id dc);

/// Fig. 6: daily avg % free CPU per building block within one data center.
heatmap fig6_free_cpu_per_bb(const metric_store& store, const fleet& f,
                             dc_id dc);

/// Fig. 7: daily avg % free CPU per node within one building block.
heatmap fig7_free_cpu_intra_bb(const metric_store& store, const fleet& f,
                               bb_id bb);

/// Pick the building block with the largest intra-BB CPU imbalance — the
/// kind of BB Figure 7 showcases.  Requires >= min_nodes nodes.
bb_id most_imbalanced_bb(const metric_store& store, const fleet& f, dc_id dc,
                         int min_nodes = 4);

/// Fig. 10: daily avg % free memory per node within one data center.
heatmap fig10_free_memory_per_node(const metric_store& store, const fleet& f,
                                   dc_id dc);

/// Fig. 11 / 12: daily avg % free network TX / RX bandwidth per node.
heatmap fig11_free_net_tx(const metric_store& store, const fleet& f, dc_id dc);
heatmap fig12_free_net_rx(const metric_store& store, const fleet& f, dc_id dc);

/// Fig. 13: daily avg % free local storage per node.
heatmap fig13_free_storage(const metric_store& store, const fleet& f, dc_id dc);

// ---------------------------------------------------------------------------
// CPU ready time and contention (Figures 8, 9)
// ---------------------------------------------------------------------------

/// One node's hourly ready-time series (mean ms per scrape within the hour).
struct ready_time_series {
    std::string node;
    double total_ready_ms = 0.0;      ///< window sum (ranking key)
    double peak_ready_ms = 0.0;       ///< highest hourly mean
    std::vector<double> hourly_ms;    ///< days*24 entries; NaN = no data
};

/// Fig. 8: the top-k nodes by aggregated CPU ready time, region-wide.
std::vector<ready_time_series> fig8_top_ready_nodes(const metric_store& store,
                                                    int top_k = 10);

/// Fig. 9: daily distribution of CPU contention over all nodes.
struct contention_day {
    int day = 0;
    double mean_pct = 0.0;  ///< mean over node-daily means
    double p95_pct = 0.0;   ///< 95th percentile over node-daily means
    double max_pct = 0.0;   ///< max over node-daily maxima
};

std::vector<contention_day> fig9_contention_by_day(const metric_store& store);

// ---------------------------------------------------------------------------
// Workload composition (Figure 14, Tables 1–2)
// ---------------------------------------------------------------------------

/// Utilization classes of Section 5.5.
struct utilization_classification {
    double under_pct = 0.0;    ///< share of VMs with mean util < 70%
    double optimal_pct = 0.0;  ///< 70–85%
    double over_pct = 0.0;     ///< > 85%
    std::size_t vm_count = 0;
};

/// Fig. 14 data: sorted per-VM window-mean utilization ratios (CDF input)
/// plus the class shares.
struct vm_utilization_cdf {
    std::vector<double> sorted_means;  ///< ascending, in [0, 1]
    utilization_classification classes;

    /// CDF value at x: share of VMs with mean utilization <= x.
    double cdf(double x) const;
};

vm_utilization_cdf fig14a_cpu_utilization(const metric_store& store);
vm_utilization_cdf fig14b_memory_utilization(const metric_store& store);

/// Tables 1 and 2: average VM counts per size class over the window.
struct size_class_row {
    std::string category;
    std::string bounds;
    double average_vms = 0.0;
};

std::vector<size_class_row> table1_vcpu_classes(const vm_registry& vms,
                                                const flavor_catalog& catalog);
std::vector<size_class_row> table2_ram_classes(const vm_registry& vms,
                                               const flavor_catalog& catalog);

// ---------------------------------------------------------------------------
// Lifetimes (Figure 15)
// ---------------------------------------------------------------------------

struct lifetime_row {
    std::string flavor_name;
    core_count vcpus = 0;
    mebibytes ram_mib = 0;
    std::string vcpu_class_name;
    std::string ram_class_name;
    std::size_t instances = 0;
    double mean_days = 0.0;
    double median_days = 0.0;
    double min_days = 0.0;
    double max_days = 0.0;
};

/// Fig. 15: lifetime stats per flavor with >= min_instances instances,
/// grouped (sorted) by vCPU then RAM class.  Still-running VMs contribute
/// their age at window end (the paper's retrospective collection).
std::vector<lifetime_row> fig15_lifetime_per_flavor(
    const vm_registry& vms, const flavor_catalog& catalog,
    std::size_t min_instances = 30);

// ---------------------------------------------------------------------------
// Imbalance / fragmentation metrics (ablation benches)
// ---------------------------------------------------------------------------

struct imbalance_summary {
    double mean_intra_bb_stddev_pct = 0.0;  ///< avg over BBs of node-util stddev
    double max_intra_bb_spread_pct = 0.0;   ///< max over BBs of (max-min) node util
    double max_node_util_pct = 0.0;         ///< hottest node-day anywhere
};

/// Intra-BB CPU imbalance over the window, from node telemetry.
imbalance_summary intra_bb_imbalance(const metric_store& store, const fleet& f);

}  // namespace sci
