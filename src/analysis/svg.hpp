#pragma once

// SVG figure rendering (no external dependencies): regenerates the
// paper's figures as standalone .svg files — heatmaps in the viridis-like
// palette of Figures 5-7/10-13, line charts for Figures 8-9, CDF plots
// for Figure 14.

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/figures.hpp"
#include "analysis/heatmap.hpp"

namespace sci {

struct svg_options {
    int width = 960;
    int height = 480;
    std::string title;
    std::string x_label;
    std::string y_label;
};

/// Heatmap figure: one row per day, one column per entity, viridis-like
/// color scale over [0, 100] (% free), white cells for missing data.
void write_heatmap_svg(std::ostream& os, const heatmap& hm,
                       const svg_options& options = {});

/// One line series for the chart writers.
struct svg_series {
    std::string label;
    std::vector<double> values;  ///< NaN breaks the line
};

/// Line chart (Figures 8, 9): x = index (hour/day), y = value.
void write_line_chart_svg(std::ostream& os,
                          const std::vector<svg_series>& series,
                          const svg_options& options = {});

/// CDF plot (Figure 14): x in [0, 1] utilization, y in [0, 1] CDF, with the
/// paper's 70% / 85% classification thresholds marked.
void write_cdf_svg(std::ostream& os, const vm_utilization_cdf& cdf,
                   const svg_options& options = {});

/// Viridis-like color for t in [0, 1] as "#rrggbb".
std::string viridis_color(double t);

/// Categorical palette color for index i.
std::string series_color(std::size_t i);

}  // namespace sci
