#pragma once

// The Placement API (Figure 2, step 5): authoritative inventory and
// allocation records per resource provider.  In this deployment each
// building block (vSphere cluster) is one resource provider.
//
// claim() is atomic at the provider level: it re-checks capacity under the
// allocation ratios and either records the allocation or throws
// capacity_error — modelling the race the Nova retry loop exists for.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "infra/flavor.hpp"
#include "infra/ids.hpp"
#include "simcore/units.hpp"

namespace sci {

/// What a provider offers (physical capacity + overcommit ratios).
struct provider_inventory {
    core_count total_pcpus = 0;
    mebibytes total_ram_mib = 0;
    gibibytes total_disk_gib = 0.0;
    double cpu_allocation_ratio = 1.0;
    double ram_allocation_ratio = 1.0;
};

/// What is currently allocated from a provider.
struct provider_usage {
    core_count vcpus_used = 0;
    mebibytes ram_used_mib = 0;
    gibibytes disk_used_gib = 0.0;
    int instances = 0;
};

class placement_service {
public:
    /// Register a building block as a resource provider.
    void register_provider(bb_id bb, provider_inventory inventory);

    bool has_provider(bb_id bb) const;
    const provider_inventory& inventory(bb_id bb) const;
    const provider_usage& usage(bb_id bb) const;

    /// Would the flavor fit right now (under the allocation ratios)?
    bool can_fit(bb_id bb, const flavor& f) const;

    /// Record an allocation for a VM.  Throws capacity_error when the
    /// provider no longer fits the flavor, not_found_error for unknown
    /// providers, precondition_error if the VM already holds an allocation.
    void claim(vm_id vm, bb_id bb, const flavor& f);

    /// Release a VM's allocation.  Throws if the VM holds none.
    void release(vm_id vm, const flavor& f);

    /// Re-record a reservation that was just release()d, skipping the
    /// capacity check.  Rollback paths (failed resize, failed move) restore
    /// exactly what they released, so they cannot create *new* overcommit —
    /// but the provider may legitimately sit above a capacity that shrank
    /// under live usage (update_inventory with a lower allocation ratio),
    /// and the ordinary claim() would refuse the restore.
    void reclaim(vm_id vm, bb_id bb, const flavor& f);

    /// Move a VM's allocation between providers (cross-BB migration).
    void move(vm_id vm, bb_id to, const flavor& f);

    /// Provider currently holding the VM's allocation, if any.
    std::optional<bb_id> allocation_of(vm_id vm) const;

    /// All registered providers (deterministic registration order).
    const std::vector<bb_id>& providers() const { return order_; }

    std::size_t allocation_count() const { return allocations_.size(); }

    /// Monotonic mutation counter, bumped by every claim/release (and so
    /// twice by move).  Lets callers cache derived views of the usage
    /// table and refresh only when something actually changed.
    std::uint64_t version() const { return version_; }

    /// Monotonic counter bumped only by release() (and therefore by
    /// move()).  While it is unchanged, usage has grown monotonically —
    /// the precondition under which speculative filter+weigh results can
    /// be committed exactly (filter_scheduler::commit_speculation).  Every
    /// batch producer — churn arrivals, HA recovery drains, initial
    /// placement — samples it when its batch is speculated and drops the
    /// batch the moment a deletion/evacuation/crash/resize/cross-BB move
    /// shrinks any provider.
    std::uint64_t shrink_version() const { return shrink_version_; }

    /// Observer invoked after every release() (and so during move()):
    /// capacity just came back, so queued admission requests may now fit.
    /// The backpressure layer uses this to arm its drain event.  At most
    /// one listener; pass nullptr to clear.
    void set_release_listener(std::function<void()> fn) {
        release_listener_ = std::move(fn);
    }

    // --- snapshot / fork support ------------------------------------------
    /// Every allocation as (vm, bb) rows sorted by vm id — the canonical
    /// serialized form (the live map's iteration order is not).
    std::vector<std::pair<vm_id, bb_id>> allocation_table() const;

    /// Overwrite one provider's usage with checkpointed values.  Usage
    /// doubles accumulate over the run, so they must round-trip bitwise —
    /// recomputing from allocations would drift.
    void restore_usage(bb_id bb, const provider_usage& usage);

    /// Replace the allocation table wholesale (rows as produced by
    /// allocation_table); usage is restored separately via restore_usage.
    void restore_allocations(const std::vector<std::pair<vm_id, bb_id>>& rows);

    void restore_versions(std::uint64_t version, std::uint64_t shrink_version);

    /// Replace a provider's inventory in place (fork policy knob: e.g. the
    /// overcommit-sweep ratio).  Usage and allocations are untouched and
    /// the version counters do not move — callers holding cached host
    /// views must invalidate them explicitly.
    void update_inventory(bb_id bb, const provider_inventory& inventory);

private:
    struct provider_record {
        provider_inventory inventory;
        provider_usage usage;
    };

    provider_record& record(bb_id bb);
    const provider_record& record(bb_id bb) const;

    std::unordered_map<bb_id, provider_record> providers_;
    std::vector<bb_id> order_;
    std::unordered_map<vm_id, bb_id> allocations_;
    std::uint64_t version_ = 0;
    std::uint64_t shrink_version_ = 0;
    std::function<void()> release_listener_;
};

}  // namespace sci
