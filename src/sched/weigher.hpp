#pragma once

// The Nova weigher pipeline (Figure 3, second stage): surviving hosts get
// a score; the scheduler ranks them.  As in Nova, each weigher produces a
// raw value per host which is min-max normalized over the candidate set,
// multiplied by the weigher's multiplier, and summed:
//
//     weight(h) = Σ_w  multiplier_w · norm_w(raw_w(h))
//
// A *positive* RAM multiplier prefers hosts with more free memory
// (spreading); a *negative* one prefers fuller hosts (bin packing — the
// policy SAP applies to S/4HANA per Section 3.2).

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "sched/filter.hpp"
#include "sched/host_state.hpp"

namespace sci {

class host_weigher {
public:
    virtual ~host_weigher() = default;
    virtual std::string_view name() const = 0;
    /// Raw (un-normalized) value; higher means more preferred at
    /// multiplier +1.
    virtual double raw(const host_state& host, const request_context& ctx) const = 0;
};

/// CPUWeigher: free vCPU capacity.
class cpu_weigher final : public host_weigher {
public:
    std::string_view name() const override { return "CPUWeigher"; }
    double raw(const host_state& host, const request_context&) const override {
        return host.free_vcpus();
    }
};

/// RAMWeigher: free memory.
class ram_weigher final : public host_weigher {
public:
    std::string_view name() const override { return "RAMWeigher"; }
    double raw(const host_state& host, const request_context&) const override {
        return host.free_ram_mib();
    }
};

/// DiskWeigher: free local storage.
class disk_weigher final : public host_weigher {
public:
    std::string_view name() const override { return "DiskWeigher"; }
    double raw(const host_state& host, const request_context&) const override {
        return host.free_disk_gib();
    }
};

/// NumInstancesWeigher: fewer instances preferred (at positive multiplier).
class num_instances_weigher final : public host_weigher {
public:
    std::string_view name() const override { return "NumInstancesWeigher"; }
    double raw(const host_state& host, const request_context&) const override {
        return -static_cast<double>(host.instances);
    }
};

/// Contention weigher (Section 7 guidance): prefer hosts with low observed
/// CPU contention.  Only meaningful when the engine feeds telemetry into
/// host_state.
class contention_weigher final : public host_weigher {
public:
    std::string_view name() const override { return "ContentionWeigher"; }
    double raw(const host_state& host, const request_context&) const override {
        return -host.avg_cpu_contention_pct;
    }
};

struct weighted_weigher {
    std::unique_ptr<host_weigher> weigher;
    double multiplier = 1.0;
};

/// Normalized total score per candidate (same order as `hosts`).
std::vector<double> score_hosts(std::span<const host_state> hosts,
                                const request_context& ctx,
                                std::span<const weighted_weigher> weighers);

/// Zero-copy variant: weighs through host pointers (no candidate copy)
/// and writes into caller-provided buffers — `totals` is resized and
/// overwritten, `raws` is per-weigher scratch.  Arithmetic order is
/// identical to score_hosts, so results are bitwise equal.
void score_hosts_into(std::span<const host_state* const> hosts,
                      const request_context& ctx,
                      std::span<const weighted_weigher> weighers,
                      std::vector<double>& totals, std::vector<double>& raws);

/// Default spreading pipeline (general purpose): CPU + RAM positive.
std::vector<weighted_weigher> make_spread_weighers();

/// Packing pipeline (S/4HANA / HANA): RAM negative — fill hosts up.
std::vector<weighted_weigher> make_pack_weighers();

}  // namespace sci
