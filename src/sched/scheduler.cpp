#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "simcore/error.hpp"

namespace sci {

filter_scheduler::filter_scheduler(
    std::vector<std::unique_ptr<host_filter>> filters,
    std::vector<weighted_weigher> spread_weighers,
    std::vector<weighted_weigher> pack_weighers)
    : filters_(std::move(filters)),
      spread_weighers_(std::move(spread_weighers)),
      pack_weighers_(std::move(pack_weighers)) {}

std::span<const bb_id> filter_scheduler::rank_survivors(
    std::size_t max_candidates, sched_scratch& scratch) const {
    auto& order = scratch.order;
    order.resize(scratch.survivors.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (scratch.scores[a] != scratch.scores[b]) {
                             return scratch.scores[a] > scratch.scores[b];
                         }
                         // determinism
                         return scratch.survivors[a]->bb < scratch.survivors[b]->bb;
                     });
    const std::size_t n = std::min(max_candidates, order.size());
    for (std::size_t i = 0; i < n; ++i) {
        scratch.candidates.push_back(scratch.survivors[order[i]]->bb);
    }
    return scratch.candidates;
}

std::span<const bb_id> filter_scheduler::select_destinations(
    const request_context& ctx, std::span<const host_state> hosts,
    std::size_t max_candidates, sched_scratch& scratch,
    filter_trace* trace) const {
    expects(max_candidates > 0, "select_destinations: need max_candidates >= 1");

    // --- filter stage ----------------------------------------------------
    auto& survivors = scratch.survivors;
    survivors.clear();
    survivors.reserve(hosts.size());
    for (const host_state& h : hosts) survivors.push_back(&h);

    for (const auto& filter : filters_) {
        const std::size_t before = survivors.size();
        std::erase_if(survivors, [&](const host_state* h) {
            return !filter->passes(*h, ctx);
        });
        if (trace != nullptr) {
            trace->eliminated.emplace_back(filter->name(),
                                           before - survivors.size());
        }
        if (survivors.empty()) break;
    }
    if (trace != nullptr) trace->survivors = survivors.size();
    scratch.candidates.clear();
    if (survivors.empty()) return {};

    // --- weighing stage --------------------------------------------------
    score_hosts_into(survivors, ctx, weighers_for(ctx.request.policy),
                     scratch.scores, scratch.raws);
    return rank_survivors(max_candidates, scratch);
}

std::vector<bb_id> filter_scheduler::select_destinations(
    const request_context& ctx, std::span<const host_state> hosts,
    std::size_t max_candidates, filter_trace* trace) const {
    sched_scratch scratch;
    const std::span<const bb_id> out =
        select_destinations(ctx, hosts, max_candidates, scratch, trace);
    return {out.begin(), out.end()};
}

void filter_scheduler::speculate(const request_context& ctx,
                                 std::span<const host_state> snapshot,
                                 host_speculation& out) const {
    out.reset();
    // Per-host filter chain with short-circuit: the surviving *set* is the
    // same as the sequential erase_if chain (filters are pure predicates).
    for (std::uint32_t i = 0; i < snapshot.size(); ++i) {
        bool pass = true;
        for (const auto& filter : filters_) {
            if (!filter->passes(snapshot[i], ctx)) {
                pass = false;
                break;
            }
        }
        if (pass) out.survivors.push_back(i);
    }
    const std::span<const weighted_weigher> weighers =
        weighers_for(ctx.request.policy);
    out.weigher_count = static_cast<std::uint32_t>(weighers.size());
    out.raws.reserve(weighers.size() * out.survivors.size());
    for (const weighted_weigher& ww : weighers) {
        for (const std::uint32_t idx : out.survivors) {
            out.raws.push_back(ww.weigher->raw(snapshot[idx], ctx));
        }
    }
    out.valid = true;
}

std::span<const bb_id> filter_scheduler::commit_speculation(
    const request_context& ctx, std::span<const host_state> hosts,
    const host_speculation& spec, std::span<const char> dirty,
    std::size_t max_candidates, sched_scratch& scratch) const {
    expects(max_candidates > 0, "commit_speculation: need max_candidates >= 1");
    const std::span<const weighted_weigher> weighers =
        weighers_for(ctx.request.policy);
    expects(spec.valid && spec.weigher_count == weighers.size(),
            "commit_speculation: speculation does not match the request");
    expects(dirty.size() == hosts.size(),
            "commit_speculation: dirty mask size mismatch");

    // --- exact revalidation ----------------------------------------------
    // Usage only grew since the snapshot, so every filter is fail-stable: a
    // host rejected at snapshot time cannot pass now and the surviving set
    // can only shrink.  Clean hosts carry bitwise-identical usage, so only
    // dirty survivors need the filter chain re-run.
    auto& survivors = scratch.survivors;
    auto& host_idx = scratch.survivor_idx;
    auto& spec_row = scratch.spec_row;
    survivors.clear();
    host_idx.clear();
    spec_row.clear();
    for (std::uint32_t row = 0; row < spec.survivors.size(); ++row) {
        const std::uint32_t idx = spec.survivors[row];
        const host_state& h = hosts[idx];
        if (dirty[idx] != 0) {
            bool pass = true;
            for (const auto& filter : filters_) {
                if (!filter->passes(h, ctx)) {
                    pass = false;
                    break;
                }
            }
            if (!pass) continue;
        }
        survivors.push_back(&h);
        host_idx.push_back(idx);
        spec_row.push_back(row);
    }
    scratch.candidates.clear();
    if (survivors.empty()) return {};

    // --- weighing over the corrected set ---------------------------------
    // Same arithmetic order as score_hosts_into; clean survivors reuse
    // their snapshot raws verbatim, dirty ones re-weigh the live view.
    const std::size_t n = survivors.size();
    const std::size_t spec_n = spec.survivors.size();
    auto& totals = scratch.scores;
    auto& raws = scratch.raws;
    totals.assign(n, 0.0);
    raws.resize(n);
    for (std::size_t w = 0; w < weighers.size(); ++w) {
        const weighted_weigher& ww = weighers[w];
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < n; ++i) {
            raws[i] = dirty[host_idx[i]] != 0
                          ? ww.weigher->raw(*survivors[i], ctx)
                          : spec.raws[w * spec_n + spec_row[i]];
            lo = std::min(lo, raws[i]);
            hi = std::max(hi, raws[i]);
        }
        const double range = hi - lo;
        for (std::size_t i = 0; i < n; ++i) {
            const double norm = range > 0.0 ? (raws[i] - lo) / range : 0.0;
            totals[i] += ww.multiplier * norm;
        }
    }
    return rank_survivors(max_candidates, scratch);
}

filter_scheduler make_default_scheduler() {
    return filter_scheduler(make_default_filters(), make_spread_weighers(),
                            make_pack_weighers());
}

}  // namespace sci
