#include "sched/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "simcore/error.hpp"

namespace sci {

filter_scheduler::filter_scheduler(
    std::vector<std::unique_ptr<host_filter>> filters,
    std::vector<weighted_weigher> spread_weighers,
    std::vector<weighted_weigher> pack_weighers)
    : filters_(std::move(filters)),
      spread_weighers_(std::move(spread_weighers)),
      pack_weighers_(std::move(pack_weighers)) {}

std::vector<bb_id> filter_scheduler::select_destinations(
    const request_context& ctx, std::span<const host_state> hosts,
    std::size_t max_candidates, filter_trace* trace) const {
    expects(max_candidates > 0, "select_destinations: need max_candidates >= 1");

    // --- filter stage ----------------------------------------------------
    std::vector<const host_state*> survivors;
    survivors.reserve(hosts.size());
    for (const host_state& h : hosts) survivors.push_back(&h);

    for (const auto& filter : filters_) {
        const std::size_t before = survivors.size();
        std::erase_if(survivors, [&](const host_state* h) {
            return !filter->passes(*h, ctx);
        });
        if (trace != nullptr) {
            trace->eliminated.emplace_back(filter->name(),
                                           before - survivors.size());
        }
        if (survivors.empty()) break;
    }
    if (trace != nullptr) trace->survivors = survivors.size();
    if (survivors.empty()) return {};

    // --- weighing stage ----------------------------------------------------
    std::vector<host_state> candidate_states;
    candidate_states.reserve(survivors.size());
    for (const host_state* h : survivors) candidate_states.push_back(*h);

    const auto& weighers = ctx.request.policy == placement_policy::pack
                               ? pack_weighers_
                               : spread_weighers_;
    const std::vector<double> scores =
        score_hosts(candidate_states, ctx, weighers);

    std::vector<std::size_t> order(survivors.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (scores[a] != scores[b]) return scores[a] > scores[b];
        return candidate_states[a].bb < candidate_states[b].bb;  // determinism
    });

    std::vector<bb_id> out;
    out.reserve(std::min(max_candidates, order.size()));
    for (std::size_t i = 0; i < order.size() && out.size() < max_candidates; ++i) {
        out.push_back(candidate_states[order[i]].bb);
    }
    return out;
}

filter_scheduler make_default_scheduler() {
    return filter_scheduler(make_default_filters(), make_spread_weighers(),
                            make_pack_weighers());
}

}  // namespace sci
