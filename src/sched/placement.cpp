#include "sched/placement.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace sci {

void placement_service::register_provider(bb_id bb, provider_inventory inventory) {
    expects(bb.valid(), "placement_service::register_provider: invalid bb");
    expects(inventory.total_pcpus > 0 && inventory.total_ram_mib > 0,
            "placement_service::register_provider: empty inventory");
    expects(inventory.cpu_allocation_ratio > 0.0 &&
                inventory.ram_allocation_ratio > 0.0,
            "placement_service::register_provider: ratios must be positive");
    const auto [it, inserted] =
        providers_.emplace(bb, provider_record{inventory, {}});
    (void)it;
    expects(inserted, "placement_service::register_provider: duplicate provider");
    order_.push_back(bb);
}

bool placement_service::has_provider(bb_id bb) const {
    return providers_.contains(bb);
}

placement_service::provider_record& placement_service::record(bb_id bb) {
    const auto it = providers_.find(bb);
    if (it == providers_.end()) {
        throw not_found_error("placement_service: unknown provider");
    }
    return it->second;
}

const placement_service::provider_record& placement_service::record(bb_id bb) const {
    const auto it = providers_.find(bb);
    if (it == providers_.end()) {
        throw not_found_error("placement_service: unknown provider");
    }
    return it->second;
}

const provider_inventory& placement_service::inventory(bb_id bb) const {
    return record(bb).inventory;
}

const provider_usage& placement_service::usage(bb_id bb) const {
    return record(bb).usage;
}

bool placement_service::can_fit(bb_id bb, const flavor& f) const {
    const provider_record& r = record(bb);
    const double cpu_cap = static_cast<double>(r.inventory.total_pcpus) *
                           r.inventory.cpu_allocation_ratio;
    const double ram_cap = static_cast<double>(r.inventory.total_ram_mib) *
                           r.inventory.ram_allocation_ratio;
    return static_cast<double>(r.usage.vcpus_used + f.vcpus) <= cpu_cap &&
           static_cast<double>(r.usage.ram_used_mib + f.ram_mib) <= ram_cap &&
           r.usage.disk_used_gib + f.disk_gib <= r.inventory.total_disk_gib;
}

void placement_service::claim(vm_id vm, bb_id bb, const flavor& f) {
    expects(vm.valid(), "placement_service::claim: invalid vm");
    expects(!allocations_.contains(vm),
            "placement_service::claim: vm already allocated");
    if (!can_fit(bb, f)) {
        throw capacity_error("placement_service::claim: provider full");
    }
    reclaim(vm, bb, f);
}

void placement_service::reclaim(vm_id vm, bb_id bb, const flavor& f) {
    expects(vm.valid(), "placement_service::reclaim: invalid vm");
    expects(!allocations_.contains(vm),
            "placement_service::reclaim: vm already allocated");
    provider_record& r = record(bb);
    r.usage.vcpus_used += f.vcpus;
    r.usage.ram_used_mib += f.ram_mib;
    r.usage.disk_used_gib += f.disk_gib;
    r.usage.instances += 1;
    allocations_.emplace(vm, bb);
    ++version_;
}

void placement_service::release(vm_id vm, const flavor& f) {
    const auto it = allocations_.find(vm);
    expects(it != allocations_.end(),
            "placement_service::release: vm holds no allocation");
    provider_record& r = record(it->second);
    r.usage.vcpus_used -= f.vcpus;
    r.usage.ram_used_mib -= f.ram_mib;
    r.usage.disk_used_gib -= f.disk_gib;
    r.usage.instances -= 1;
    ensures(r.usage.vcpus_used >= 0 && r.usage.ram_used_mib >= 0 &&
                r.usage.instances >= 0,
            "placement_service::release: usage went negative");
    allocations_.erase(it);
    ++version_;
    ++shrink_version_;
    if (release_listener_) release_listener_();
}

void placement_service::move(vm_id vm, bb_id to, const flavor& f) {
    const auto it = allocations_.find(vm);
    expects(it != allocations_.end(), "placement_service::move: vm not allocated");
    const bb_id from = it->second;
    if (from == to) return;
    release(vm, f);
    try {
        claim(vm, to, f);
    } catch (const capacity_error&) {
        // unchecked: the source may sit above a shrunk capacity, and the
        // rollback must restore the reservation regardless
        reclaim(vm, from, f);
        throw;
    }
}

std::vector<std::pair<vm_id, bb_id>> placement_service::allocation_table() const {
    std::vector<std::pair<vm_id, bb_id>> rows(allocations_.begin(),
                                              allocations_.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return rows;
}

void placement_service::restore_usage(bb_id bb, const provider_usage& usage) {
    record(bb).usage = usage;
}

void placement_service::restore_allocations(
    const std::vector<std::pair<vm_id, bb_id>>& rows) {
    allocations_.clear();
    for (const auto& [vm, bb] : rows) {
        expects(providers_.contains(bb),
                "placement_service::restore_allocations: unknown provider");
        const bool inserted = allocations_.emplace(vm, bb).second;
        expects(inserted,
                "placement_service::restore_allocations: duplicate vm row");
    }
}

void placement_service::restore_versions(std::uint64_t version,
                                         std::uint64_t shrink_version) {
    version_ = version;
    shrink_version_ = shrink_version;
}

void placement_service::update_inventory(bb_id bb,
                                         const provider_inventory& inventory) {
    expects(inventory.cpu_allocation_ratio > 0.0 &&
                inventory.ram_allocation_ratio > 0.0,
            "placement_service::update_inventory: ratios must be positive");
    record(bb).inventory = inventory;
}

std::optional<bb_id> placement_service::allocation_of(vm_id vm) const {
    const auto it = allocations_.find(vm);
    if (it == allocations_.end()) return std::nullopt;
    return it->second;
}

}  // namespace sci
