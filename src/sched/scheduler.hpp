#pragma once

// The filter scheduler (Figure 3): filters eliminate unsuitable hosts,
// weighers rank the survivors, and the scheduler returns the ranked
// candidate list.  Stateless with respect to allocations — the conductor
// claims against the placement API and retries on races.
//
// Two execution modes share the same arithmetic:
//
//   * The zero-copy fast path weighs through `const host_state*` into
//     caller-provided scratch buffers (sched_scratch) — no per-request
//     allocation, no wholesale host_state copy.
//   * The speculative path splits one decision in two: speculate() runs
//     filter + raw-weigh against an immutable host snapshot (safe from a
//     worker thread) and commit_speculation() later corrects the result
//     against the live view, revalidating only hosts whose usage changed
//     since the snapshot.  Because provider usage only grows between
//     snapshot and commit (the initial-placement invariant), the
//     corrected ranking is bitwise identical to a fresh
//     select_destinations at commit time.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sched/filter.hpp"
#include "sched/weigher.hpp"

namespace sci {

/// Per-filter elimination counters for one scheduling decision — useful
/// for diagnosing NoValidHost outcomes.
struct filter_trace {
    std::vector<std::pair<std::string_view, std::size_t>> eliminated;
    std::size_t survivors = 0;
};

/// Reusable buffers for the zero-copy scheduling fast path.  One instance
/// per thread; the zero-copy select_destinations/commit_speculation fill
/// `candidates` and return a span into it (valid until the next call on
/// the same scratch).
struct sched_scratch {
    std::vector<const host_state*> survivors;
    std::vector<std::uint32_t> survivor_idx;  ///< index into the host view
    std::vector<std::uint32_t> spec_row;      ///< row in the speculation
    std::vector<double> scores;
    std::vector<double> raws;
    std::vector<std::size_t> order;
    std::vector<bb_id> candidates;
};

/// One request's speculative filter+weigh result against a host snapshot:
/// the surviving host indices plus the raw (un-normalized) weigher matrix.
/// No ranking is stored — min-max normalization spans the surviving set,
/// so any commit between snapshot and claim can reshuffle it; the commit
/// pass re-normalizes after exact revalidation instead.
struct host_speculation {
    bool valid = false;
    std::uint32_t weigher_count = 0;
    std::vector<std::uint32_t> survivors;  ///< indices into the snapshot
    std::vector<double> raws;  ///< weigher-major: [w * survivors.size() + row]

    void reset() {
        valid = false;
        weigher_count = 0;
        survivors.clear();
        raws.clear();
    }
};

class filter_scheduler {
public:
    filter_scheduler(std::vector<std::unique_ptr<host_filter>> filters,
                     std::vector<weighted_weigher> spread_weighers,
                     std::vector<weighted_weigher> pack_weighers);

    /// Rank all eligible hosts for the request, best first — zero-copy:
    /// all working state lives in `scratch`, and the returned span points
    /// into it.  Empty result means NoValidHost.  `trace` (optional)
    /// receives per-filter stats.
    std::span<const bb_id> select_destinations(const request_context& ctx,
                                               std::span<const host_state> hosts,
                                               std::size_t max_candidates,
                                               sched_scratch& scratch,
                                               filter_trace* trace = nullptr) const;

    /// Allocating convenience wrapper around the zero-copy overload.
    std::vector<bb_id> select_destinations(const request_context& ctx,
                                           std::span<const host_state> hosts,
                                           std::size_t max_candidates,
                                           filter_trace* trace = nullptr) const;

    /// Filter + raw-weigh `ctx` against an immutable `snapshot` into
    /// `out`.  Touches only immutable scheduler state, so concurrent
    /// calls from worker threads are safe.
    void speculate(const request_context& ctx,
                   std::span<const host_state> snapshot,
                   host_speculation& out) const;

    /// Correct a speculation against the live `hosts` view and return the
    /// ranked candidates.  `dirty[i]` marks hosts claimed against since
    /// the snapshot; only those are re-filtered and re-weighed — clean
    /// hosts reuse their snapshot raws verbatim.  Precondition (holds
    /// during initial placement): usage only grew since the snapshot, so
    /// the surviving set can only shrink.  Under it the result is bitwise
    /// identical to select_destinations on `hosts`.
    std::span<const bb_id> commit_speculation(const request_context& ctx,
                                              std::span<const host_state> hosts,
                                              const host_speculation& spec,
                                              std::span<const char> dirty,
                                              std::size_t max_candidates,
                                              sched_scratch& scratch) const;

    /// Weigher pipeline the policy selects.
    std::span<const weighted_weigher> weighers_for(placement_policy policy) const {
        return policy == placement_policy::pack ? pack_weighers_ : spread_weighers_;
    }

private:
    /// Rank scratch.survivors by scratch.scores into scratch.candidates.
    std::span<const bb_id> rank_survivors(std::size_t max_candidates,
                                          sched_scratch& scratch) const;

    std::vector<std::unique_ptr<host_filter>> filters_;
    std::vector<weighted_weigher> spread_weighers_;
    std::vector<weighted_weigher> pack_weighers_;
};

/// Scheduler with the default SAP-like configuration.
filter_scheduler make_default_scheduler();

}  // namespace sci
