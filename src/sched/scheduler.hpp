#pragma once

// The filter scheduler (Figure 3): filters eliminate unsuitable hosts,
// weighers rank the survivors, and the scheduler returns the ranked
// candidate list.  Stateless with respect to allocations — the conductor
// claims against the placement API and retries on races.

#include <memory>
#include <span>
#include <vector>

#include "sched/filter.hpp"
#include "sched/weigher.hpp"

namespace sci {

/// Per-filter elimination counters for one scheduling decision — useful
/// for diagnosing NoValidHost outcomes.
struct filter_trace {
    std::vector<std::pair<std::string_view, std::size_t>> eliminated;
    std::size_t survivors = 0;
};

class filter_scheduler {
public:
    filter_scheduler(std::vector<std::unique_ptr<host_filter>> filters,
                     std::vector<weighted_weigher> spread_weighers,
                     std::vector<weighted_weigher> pack_weighers);

    /// Rank all eligible hosts for the request, best first.  Empty result
    /// means NoValidHost.  `trace` (optional) receives per-filter stats.
    std::vector<bb_id> select_destinations(const request_context& ctx,
                                           std::span<const host_state> hosts,
                                           std::size_t max_candidates,
                                           filter_trace* trace = nullptr) const;

private:
    std::vector<std::unique_ptr<host_filter>> filters_;
    std::vector<weighted_weigher> spread_weighers_;
    std::vector<weighted_weigher> pack_weighers_;
};

/// Scheduler with the default SAP-like configuration.
filter_scheduler make_default_scheduler();

}  // namespace sci
