#include "sched/server_group.hpp"

#include "simcore/error.hpp"

namespace sci {

std::string_view to_string(group_policy p) {
    switch (p) {
        case group_policy::affinity: return "affinity";
        case group_policy::anti_affinity: return "anti-affinity";
        case group_policy::soft_anti_affinity: return "soft-anti-affinity";
    }
    return "unknown";
}

group_id server_group_registry::create(std::string name, group_policy policy) {
    expects(!name.empty(), "server_group_registry::create: empty name");
    const group_id id(static_cast<std::int32_t>(groups_.size()));
    groups_.push_back(group_record{std::move(name), policy, {}});
    return id;
}

const server_group_registry::group_record& server_group_registry::record(
    group_id group) const {
    expects(group.valid() &&
                static_cast<std::size_t>(group.value()) < groups_.size(),
            "server_group_registry: unknown group");
    return groups_[static_cast<std::size_t>(group.value())];
}

void server_group_registry::add_member(group_id group, vm_id vm) {
    expects(vm.valid(), "server_group_registry::add_member: invalid vm");
    expects(!membership_.contains(vm),
            "server_group_registry::add_member: vm already in a group");
    record(group);  // validates
    groups_[static_cast<std::size_t>(group.value())].members.push_back(vm);
    membership_.emplace(vm, group);
}

void server_group_registry::remove_member(vm_id vm) {
    const auto it = membership_.find(vm);
    expects(it != membership_.end(),
            "server_group_registry::remove_member: vm not in any group");
    auto& members =
        groups_[static_cast<std::size_t>(it->second.value())].members;
    std::erase(members, vm);
    membership_.erase(it);
}

group_policy server_group_registry::policy_of(group_id group) const {
    return record(group).policy;
}

const std::string& server_group_registry::name_of(group_id group) const {
    return record(group).name;
}

const std::vector<vm_id>& server_group_registry::members(group_id group) const {
    return record(group).members;
}

std::optional<group_id> server_group_registry::group_of(vm_id vm) const {
    const auto it = membership_.find(vm);
    if (it == membership_.end()) return std::nullopt;
    return it->second;
}

server_group_filter::server_group_filter(const server_group_registry& groups,
                                         const placement_service& placement)
    : groups_(groups), placement_(placement) {}

bool server_group_filter::passes(const host_state& host,
                                 const request_context& ctx) const {
    if (!ctx.request.group.has_value()) return true;
    const group_id group = *ctx.request.group;
    const group_policy policy = groups_.policy_of(group);
    if (policy == group_policy::soft_anti_affinity) return true;

    bool any_member_placed = false;
    bool member_on_host = false;
    for (vm_id member : groups_.members(group)) {
        if (member == ctx.request.vm) continue;
        const auto bb = placement_.allocation_of(member);
        if (!bb.has_value()) continue;
        any_member_placed = true;
        if (*bb == host.bb) member_on_host = true;
    }
    if (policy == group_policy::anti_affinity) return !member_on_host;
    // affinity: first member goes anywhere; later members must co-locate
    return !any_member_placed || member_on_host;
}

server_group_weigher::server_group_weigher(const server_group_registry& groups,
                                           const placement_service& placement)
    : groups_(groups), placement_(placement) {}

double server_group_weigher::raw(const host_state& host,
                                 const request_context& ctx) const {
    if (!ctx.request.group.has_value()) return 0.0;
    int members_here = 0;
    for (vm_id member : groups_.members(*ctx.request.group)) {
        if (member == ctx.request.vm) continue;
        if (placement_.allocation_of(member) == std::optional<bb_id>(host.bb)) {
            ++members_here;
        }
    }
    return -static_cast<double>(members_here);  // fewer members preferred
}

}  // namespace sci
