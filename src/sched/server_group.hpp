#pragma once

// Server groups: affinity / anti-affinity scheduling.
//
// Nova server groups let tenants pin related instances together
// (affinity) or apart (anti-affinity).  Anti-affinity is the standard HA
// pattern for the redundant S/4HANA application servers the paper's
// infrastructure hosts (Section 2.1 "ensure high-availability scenarios"):
// replicas must not share a failure domain, here a building block.

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "infra/ids.hpp"
#include "sched/filter.hpp"
#include "sched/placement.hpp"
#include "sched/weigher.hpp"

namespace sci {

enum class group_policy {
    affinity,           ///< members must share a host
    anti_affinity,      ///< members must not share a host (hard)
    soft_anti_affinity, ///< spread best-effort (weigher, not filter)
};

std::string_view to_string(group_policy p);

/// Registry of server groups and their membership.
class server_group_registry {
public:
    group_id create(std::string name, group_policy policy);

    void add_member(group_id group, vm_id vm);
    void remove_member(vm_id vm);

    group_policy policy_of(group_id group) const;
    const std::string& name_of(group_id group) const;
    const std::vector<vm_id>& members(group_id group) const;
    std::optional<group_id> group_of(vm_id vm) const;
    std::size_t size() const { return groups_.size(); }

private:
    struct group_record {
        std::string name;
        group_policy policy;
        std::vector<vm_id> members;
    };

    const group_record& record(group_id group) const;

    std::vector<group_record> groups_;
    std::unordered_map<vm_id, group_id> membership_;
};

/// ServerGroupAffinityFilter / ServerGroupAntiAffinityFilter equivalent.
/// Reads the requesting VM's group from the registry; hosts violating the
/// group policy are rejected.  Soft anti-affinity is not enforced here
/// (use server_group_weigher).
class server_group_filter final : public host_filter {
public:
    server_group_filter(const server_group_registry& groups,
                        const placement_service& placement);

    std::string_view name() const override { return "ServerGroupFilter"; }
    bool passes(const host_state& host, const request_context& ctx) const override;

private:
    const server_group_registry& groups_;
    const placement_service& placement_;
};

/// ServerGroupSoftAntiAffinityWeigher equivalent: prefer hosts with fewer
/// members of the requesting VM's group.
class server_group_weigher final : public host_weigher {
public:
    server_group_weigher(const server_group_registry& groups,
                         const placement_service& placement);

    std::string_view name() const override { return "ServerGroupWeigher"; }
    double raw(const host_state& host, const request_context& ctx) const override;

private:
    const server_group_registry& groups_;
    const placement_service& placement_;
};

}  // namespace sci
