#pragma once

// The Nova conductor (Figure 2, step 2): orchestrates one placement —
// builds the scheduler's host view from fleet + placement data, asks the
// scheduler for ranked candidates, claims greedily with retries (the
// paper: "Nova implements a greedy approach with retries reapplying
// filters and weighers, which yields multiple suitable candidates").
//
// The host view is maintained incrementally: topology/capacity fields are
// built once (the fleet and provider inventories are fixed after setup),
// and the usage fields refresh only when the placement service's version
// counter moved since the last request — the per-request full rebuild of
// the old code is gone from the hot path.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "infra/fleet.hpp"
#include "infra/flavor.hpp"
#include "sched/placement.hpp"
#include "sched/scheduler.hpp"

namespace sci {

struct placement_outcome {
    bool success = false;
    bb_id bb;          ///< chosen building block when success
    int attempts = 0;  ///< claim attempts (1 = first candidate worked)
};

/// Per-provider allocation ratios; defaults applied per BB purpose.
struct allocation_ratios {
    double cpu = 1.0;
    double ram = 1.0;
};

/// Allocation ratios used in the SAP-like deployment (calibration.hpp).
allocation_ratios default_ratios_for(bb_purpose purpose);

class conductor {
public:
    conductor(const fleet& fleet, const flavor_catalog& catalog,
              placement_service& placement, filter_scheduler scheduler);

    /// Schedule and claim one VM.  Does not mutate the vm_registry; the
    /// caller applies the outcome (and assigns a node via DRS).
    ///
    /// `spec` (optional) is this request's speculative filter+weigh
    /// result against the batch's snapshot, and `base_counts` the claim
    /// counters (snapshot_claim_counts) taken when that snapshot was: the
    /// conductor diffs the live counters against the base to find
    /// providers claimed since, and commits the speculation through
    /// filter_scheduler::commit_speculation, whose corrected candidate
    /// list serves as round 0 of the retry loop — exact, so the claim
    /// sequence (including injected claim-fault draws) is bitwise what
    /// the pristine path would produce.  When round 0 yields no placement
    /// (counted as a speculation miss) the loop continues into round 1
    /// with a fresh selection, exactly like the pristine loop.
    placement_outcome schedule_and_claim(
        const schedule_request& request, const host_speculation* spec = nullptr,
        std::span<const std::uint64_t> base_counts = {});

    /// Optional telemetry feed: average CPU contention per BB, consumed by
    /// contention-aware filters/weighers.
    void set_contention_feed(std::function<double(bb_id)> feed) {
        contention_feed_ = std::move(feed);
    }

    /// Optional fault hook (sci::fault): called before each placement
    /// claim with (vm, candidate, attempt); returning true makes the
    /// claim transiently fail — the lost claim race / RPC timeout the
    /// paper's "greedy approach with retries" exists to absorb — and the
    /// conductor moves on to the next alternate.
    void set_claim_fault(std::function<bool(vm_id, bb_id, int)> fault) {
        claim_fault_ = std::move(fault);
    }

    /// Current scheduler view of every registered provider, freshly built
    /// (snapshot semantics — the caller owns the copy).
    std::vector<host_state> build_host_states() const;

    /// Incrementally maintained live host view (see file comment).  The
    /// reference stays valid and index-aligned with spec dirty masks
    /// until providers are (re)registered.  With a contention feed
    /// installed the telemetry fields are re-pulled on every call, since
    /// the feed is not versioned — matching the old rebuild-per-request
    /// behaviour exactly.
    const std::vector<host_state>& host_states();

    /// The scheduler pipeline (immutable — safe to share with workers
    /// running filter_scheduler::speculate off-thread).
    const filter_scheduler& scheduler() const { return scheduler_; }

    // --- speculative placement batches ------------------------------------
    /// Copy the per-provider claim counters into `out` (refreshing the
    /// host view first so the counter vector is sized).  A batch owner
    /// snapshots these alongside host_states(); passing the snapshot back
    /// to schedule_and_claim identifies exactly the providers claimed
    /// since.  Counters are maintained unconditionally, so any number of
    /// batches — churn arrivals, HA recovery, initial placement — can be
    /// open against snapshots taken at different times.
    void snapshot_claim_counts(std::vector<std::uint64_t>& out);

    /// Cumulative counters.
    std::uint64_t scheduled_count() const { return scheduled_; }
    std::uint64_t no_valid_host_count() const { return no_valid_host_; }
    std::uint64_t retry_count() const { return retries_; }
    std::uint64_t transient_claim_failure_count() const {
        return transient_claim_failures_;
    }
    /// Placements committed straight from a speculation.
    std::uint64_t speculative_placement_count() const {
        return speculative_placements_;
    }
    /// Speculations whose corrected candidates were all gone at commit
    /// time; the request went through the full retry loop instead.
    std::uint64_t speculation_miss_count() const { return speculation_misses_; }

    // --- snapshot / fork support ------------------------------------------
    /// Overwrite the cumulative counters with checkpointed values.
    void restore_counters(std::uint64_t scheduled, std::uint64_t no_valid_host,
                          std::uint64_t retries,
                          std::uint64_t transient_claim_failures,
                          std::uint64_t speculative_placements,
                          std::uint64_t speculation_misses);

    /// Overwrite the per-provider claim counters (index-aligned with
    /// placement().providers()); builds the host view first so the
    /// counter vector is sized.
    void restore_claim_counts(const std::vector<std::uint64_t>& counts);

    /// Drop the cached host view so the next request rebuilds it from the
    /// live inventories (a fork policy knob changed provider capacity).
    /// Claim counters survive — the rebuild resizes without clearing.
    void invalidate_host_view();

private:
    void refresh_host_states();
    void mark_claimed(bb_id bb);

    const fleet& fleet_;
    const flavor_catalog& catalog_;
    placement_service& placement_;
    filter_scheduler scheduler_;
    std::function<double(bb_id)> contention_feed_;
    std::function<bool(vm_id, bb_id, int)> claim_fault_;

    // incremental host view: usage structs live in the placement service's
    // pointer-stable map (providers are never erased), so cached pointers
    // refresh the mutable fields in place
    std::vector<host_state> states_;
    std::vector<const provider_usage*> usage_refs_;
    std::uint64_t states_version_ = 0;

    // speculative-batch bookkeeping: claims per provider since construction
    // (always maintained — cheap — so concurrent open batches each diff
    // against their own snapshot), plus the per-request dirty scratch mask
    std::vector<std::uint64_t> claim_counts_;  ///< per provider index
    std::vector<char> dirty_scratch_;          ///< per provider index
    std::vector<std::uint32_t> provider_pos_;  ///< bb id value -> index

    sched_scratch scratch_;  ///< serial claim path working buffers

    std::uint64_t scheduled_ = 0;
    std::uint64_t no_valid_host_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t transient_claim_failures_ = 0;
    std::uint64_t speculative_placements_ = 0;
    std::uint64_t speculation_misses_ = 0;
};

}  // namespace sci
