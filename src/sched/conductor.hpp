#pragma once

// The Nova conductor (Figure 2, step 2): orchestrates one placement —
// builds the scheduler's host view from fleet + placement data, asks the
// scheduler for ranked candidates, claims greedily with retries (the
// paper: "Nova implements a greedy approach with retries reapplying
// filters and weighers, which yields multiple suitable candidates").

#include <functional>
#include <vector>

#include "infra/fleet.hpp"
#include "infra/flavor.hpp"
#include "sched/placement.hpp"
#include "sched/scheduler.hpp"

namespace sci {

struct placement_outcome {
    bool success = false;
    bb_id bb;          ///< chosen building block when success
    int attempts = 0;  ///< claim attempts (1 = first candidate worked)
};

/// Per-provider allocation ratios; defaults applied per BB purpose.
struct allocation_ratios {
    double cpu = 1.0;
    double ram = 1.0;
};

/// Allocation ratios used in the SAP-like deployment (calibration.hpp).
allocation_ratios default_ratios_for(bb_purpose purpose);

class conductor {
public:
    conductor(const fleet& fleet, const flavor_catalog& catalog,
              placement_service& placement, filter_scheduler scheduler);

    /// Schedule and claim one VM.  Does not mutate the vm_registry; the
    /// caller applies the outcome (and assigns a node via DRS).
    placement_outcome schedule_and_claim(const schedule_request& request);

    /// Optional telemetry feed: average CPU contention per BB, consumed by
    /// contention-aware filters/weighers.
    void set_contention_feed(std::function<double(bb_id)> feed) {
        contention_feed_ = std::move(feed);
    }

    /// Optional fault hook (sci::fault): called before each placement
    /// claim with (vm, candidate, attempt); returning true makes the
    /// claim transiently fail — the lost claim race / RPC timeout the
    /// paper's "greedy approach with retries" exists to absorb — and the
    /// conductor moves on to the next alternate.
    void set_claim_fault(std::function<bool(vm_id, bb_id, int)> fault) {
        claim_fault_ = std::move(fault);
    }

    /// Current scheduler view of every registered provider.
    std::vector<host_state> build_host_states() const;

    /// Cumulative counters.
    std::uint64_t scheduled_count() const { return scheduled_; }
    std::uint64_t no_valid_host_count() const { return no_valid_host_; }
    std::uint64_t retry_count() const { return retries_; }
    std::uint64_t transient_claim_failure_count() const {
        return transient_claim_failures_;
    }

private:
    const fleet& fleet_;
    const flavor_catalog& catalog_;
    placement_service& placement_;
    filter_scheduler scheduler_;
    std::function<double(bb_id)> contention_feed_;
    std::function<bool(vm_id, bb_id, int)> claim_fault_;

    std::uint64_t scheduled_ = 0;
    std::uint64_t no_valid_host_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t transient_claim_failures_ = 0;
};

}  // namespace sci
