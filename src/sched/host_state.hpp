#pragma once

// The scheduler's view of one compute host.
//
// In this deployment a Nova "compute host" is a whole vSphere cluster
// (building block); the scheduler never sees individual ESXi nodes
// (Section 3.1) — that abstraction is the root of the intra-BB imbalance
// the paper measures, and exactly what the holistic-scheduler ablation
// removes.

#include "infra/fleet.hpp"
#include "infra/ids.hpp"
#include "simcore/units.hpp"

namespace sci {

struct host_state {
    bb_id bb;
    az_id az;
    dc_id dc;
    bb_purpose purpose = bb_purpose::general;
    int node_count = 0;

    // capacity (physical) and allocation ratios (overcommit)
    core_count total_pcpus = 0;
    mebibytes total_ram_mib = 0;
    gibibytes total_disk_gib = 0.0;
    double cpu_allocation_ratio = 1.0;
    double ram_allocation_ratio = 1.0;

    // current reservations
    core_count vcpus_used = 0;
    mebibytes ram_used_mib = 0;
    gibibytes disk_used_gib = 0.0;
    int instances = 0;

    // optional live telemetry (contention-aware scheduling, Section 7)
    double avg_cpu_contention_pct = 0.0;

    /// vCPU capacity under the allocation ratio.
    double vcpu_capacity() const {
        return static_cast<double>(total_pcpus) * cpu_allocation_ratio;
    }
    double free_vcpus() const {
        return vcpu_capacity() - static_cast<double>(vcpus_used);
    }
    double ram_capacity_mib() const {
        return static_cast<double>(total_ram_mib) * ram_allocation_ratio;
    }
    double free_ram_mib() const {
        return ram_capacity_mib() - static_cast<double>(ram_used_mib);
    }
    double free_disk_gib() const { return total_disk_gib - disk_used_gib; }
};

}  // namespace sci
