#include "sched/weigher.hpp"

#include <algorithm>
#include <limits>

#include "simcore/error.hpp"

namespace sci {

void score_hosts_into(std::span<const host_state* const> hosts,
                      const request_context& ctx,
                      std::span<const weighted_weigher> weighers,
                      std::vector<double>& totals, std::vector<double>& raws) {
    totals.assign(hosts.size(), 0.0);
    raws.resize(hosts.size());
    for (const weighted_weigher& ww : weighers) {
        expects(ww.weigher != nullptr, "score_hosts: null weigher");
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < hosts.size(); ++i) {
            raws[i] = ww.weigher->raw(*hosts[i], ctx);
            lo = std::min(lo, raws[i]);
            hi = std::max(hi, raws[i]);
        }
        const double range = hi - lo;
        for (std::size_t i = 0; i < hosts.size(); ++i) {
            // Nova semantics: if all hosts tie, the weigher contributes 0.
            const double norm = range > 0.0 ? (raws[i] - lo) / range : 0.0;
            totals[i] += ww.multiplier * norm;
        }
    }
}

std::vector<double> score_hosts(std::span<const host_state> hosts,
                                const request_context& ctx,
                                std::span<const weighted_weigher> weighers) {
    std::vector<const host_state*> ptrs;
    ptrs.reserve(hosts.size());
    for (const host_state& h : hosts) ptrs.push_back(&h);
    std::vector<double> totals;
    std::vector<double> raws;
    score_hosts_into(ptrs, ctx, weighers, totals, raws);
    return totals;
}

std::vector<weighted_weigher> make_spread_weighers() {
    std::vector<weighted_weigher> ws;
    ws.push_back({std::make_unique<cpu_weigher>(), 1.0});
    ws.push_back({std::make_unique<ram_weigher>(), 1.0});
    ws.push_back({std::make_unique<num_instances_weigher>(), 0.25});
    return ws;
}

std::vector<weighted_weigher> make_pack_weighers() {
    std::vector<weighted_weigher> ws;
    // negative multipliers: prefer the *fullest* host that still fits,
    // maximizing the number of placeable VMs per flavor (Section 3.2)
    ws.push_back({std::make_unique<ram_weigher>(), -1.0});
    ws.push_back({std::make_unique<cpu_weigher>(), -0.25});
    return ws;
}

}  // namespace sci
