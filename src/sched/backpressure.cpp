#include "sched/backpressure.hpp"

#include <algorithm>
#include <cassert>

namespace sci {

std::string_view to_string(backpressure_mode m) {
    switch (m) {
        case backpressure_mode::degrade: return "degrade";
        case backpressure_mode::queue: return "queue";
        case backpressure_mode::shed: return "shed";
    }
    return "?";
}

std::optional<backpressure_mode> backpressure_mode_from(std::string_view token) {
    for (auto m : {backpressure_mode::degrade, backpressure_mode::queue,
                   backpressure_mode::shed}) {
        if (token == to_string(m)) return m;
    }
    return std::nullopt;
}

std::string_view to_string(bp_regime r) {
    switch (r) {
        case bp_regime::queuing: return "queuing";
        case bp_regime::shedding: return "shedding";
    }
    return "?";
}

backpressure_controller::backpressure_controller(backpressure_config config)
    : config_(config) {
    assert(config_.active());
    assert(config_.queue_capacity > 0);
    assert(config_.queue_deadline > 0);
}

void backpressure_controller::erase(std::size_t i) {
    assert(i < queue_.size());
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
}

backpressure_controller::admit_result backpressure_controller::admit(
    bp_queued_request request) {
    admit_result out;
    if (queue_.size() < config_.queue_capacity) {
        queue_.push_back(request);
        out.result = admit_result::outcome::queued;
        return out;
    }
    if (config_.mode == backpressure_mode::shed) {
        // Evict the lowest-priority entry, breaking ties toward the
        // latest-enqueued one (it has waited least), but only for a
        // strictly higher-priority newcomer.
        std::size_t victim = queue_.size();
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            if (victim == queue_.size() ||
                queue_[i].priority <= queue_[victim].priority) {
                victim = i;
            }
        }
        if (queue_[victim].priority < request.priority) {
            out.evicted = queue_[victim];
            erase(victim);
            queue_.push_back(request);
            out.result = admit_result::outcome::queued;
            return out;
        }
    }
    out.result = admit_result::outcome::shed_queue_full;
    return out;
}

bool backpressure_controller::cancel(vm_id vm) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [vm](const bp_queued_request& r) { return r.vm == vm; });
    if (it == queue_.end()) return false;
    queue_.erase(it);
    return true;
}

std::vector<bp_queued_request> backpressure_controller::expire(sim_time t) {
    std::vector<bp_queued_request> expired;
    // Deadline = enqueue time + the constant queue_deadline, so FIFO
    // order is deadline order and expiry is a prefix of the queue.
    while (!queue_.empty() && queue_.front().deadline <= t) {
        expired.push_back(queue_.front());
        queue_.pop_front();
    }
    return expired;
}

bool backpressure_controller::update_regime(sim_time t) {
    bp_regime next = regime_;
    if (regime_ == bp_regime::queuing) {
        if (queue_.size() >= config_.queue_capacity) next = bp_regime::shedding;
    } else {
        if (queue_.size() <= config_.queue_capacity / 2) next = bp_regime::queuing;
    }
    if (next == regime_) return false;
    regime_ = next;
    transitions_.push_back(t);
    return true;
}

std::vector<bp_queued_request> backpressure_controller::queue_table() const {
    return {queue_.begin(), queue_.end()};
}

void backpressure_controller::restore_state(
    const std::vector<bp_queued_request>& queue, bp_regime regime,
    std::vector<sim_time> transitions) {
    queue_.assign(queue.begin(), queue.end());
    regime_ = regime;
    transitions_ = std::move(transitions);
}

}  // namespace sci
