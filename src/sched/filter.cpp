#include "sched/filter.hpp"

#include "simcore/error.hpp"

namespace sci {

bool compute_filter::passes(const host_state& host,
                            const request_context& ctx) const {
    const flavor& f = ctx.requested_flavor;
    return host.free_vcpus() >= static_cast<double>(f.vcpus) &&
           host.free_ram_mib() >= static_cast<double>(f.ram_mib);
}

bool availability_zone_filter::passes(const host_state& host,
                                      const request_context& ctx) const {
    return !ctx.request.az.has_value() || host.az == *ctx.request.az;
}

bool datacenter_filter::passes(const host_state& host,
                               const request_context& ctx) const {
    return !ctx.request.dc.has_value() || host.dc == *ctx.request.dc;
}

bool disk_filter::passes(const host_state& host,
                         const request_context& ctx) const {
    return host.free_disk_gib() >= ctx.requested_flavor.disk_gib;
}

bool bb_purpose_filter::passes(const host_state& host,
                               const request_context& ctx) const {
    const flavor& f = ctx.requested_flavor;
    // >= 3 TB flavors may only land on dedicated XL building blocks, and
    // those BBs accept nothing else (Section 3.1).
    if (host.purpose == bb_purpose::reserve) return false;  // failover reserve
    if (f.requires_dedicated_bb()) return host.purpose == bb_purpose::dedicated_xl;
    if (host.purpose == bb_purpose::dedicated_xl) return false;
    if (host.purpose == bb_purpose::gpu) return false;  // no GPU flavors here
    if (f.wclass == workload_class::hana_db) return host.purpose == bb_purpose::hana;
    // application servers and general purpose share the general BB pool
    return host.purpose == bb_purpose::general;
}

num_instances_filter::num_instances_filter(int max_instances)
    : max_instances_(max_instances) {
    expects(max_instances > 0, "num_instances_filter: limit must be positive");
}

bool num_instances_filter::passes(const host_state& host,
                                  const request_context&) const {
    return host.instances < max_instances_;
}

contention_filter::contention_filter(double max_contention_pct)
    : max_contention_pct_(max_contention_pct) {
    expects(max_contention_pct >= 0.0,
            "contention_filter: threshold must be non-negative");
}

bool contention_filter::passes(const host_state& host,
                               const request_context&) const {
    return host.avg_cpu_contention_pct <= max_contention_pct_;
}

std::vector<std::unique_ptr<host_filter>> make_default_filters() {
    std::vector<std::unique_ptr<host_filter>> filters;
    filters.push_back(std::make_unique<datacenter_filter>());
    filters.push_back(std::make_unique<availability_zone_filter>());
    filters.push_back(std::make_unique<bb_purpose_filter>());
    filters.push_back(std::make_unique<compute_filter>());
    filters.push_back(std::make_unique<disk_filter>());
    return filters;
}

}  // namespace sci
