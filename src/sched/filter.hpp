#pragma once

// The Nova filter pipeline (Figure 3, first stage): each filter eliminates
// hosts that cannot satisfy the request.  Filters are stateless and
// composable; the scheduler runs them in order and keeps survivors.

#include <memory>
#include <string_view>
#include <vector>

#include "infra/flavor.hpp"
#include "sched/host_state.hpp"
#include "sched/request.hpp"

namespace sci {

/// Context handed to filters/weighers: the request plus resolved flavor.
struct request_context {
    const schedule_request& request;
    const flavor& requested_flavor;
};

class host_filter {
public:
    virtual ~host_filter() = default;
    virtual std::string_view name() const = 0;
    virtual bool passes(const host_state& host, const request_context& ctx) const = 0;
};

/// ComputeFilter: enough free vCPU and memory under the allocation ratios.
class compute_filter final : public host_filter {
public:
    std::string_view name() const override { return "ComputeFilter"; }
    bool passes(const host_state& host, const request_context& ctx) const override;
};

/// AvailabilityZoneFilter: request's AZ constraint, if any.
class availability_zone_filter final : public host_filter {
public:
    std::string_view name() const override { return "AvailabilityZoneFilter"; }
    bool passes(const host_state& host, const request_context& ctx) const override;
};

/// Single-DC scheduling domain (Section 3.1): the request's DC, if any.
class datacenter_filter final : public host_filter {
public:
    std::string_view name() const override { return "DatacenterFilter"; }
    bool passes(const host_state& host, const request_context& ctx) const override;
};

/// DiskFilter: enough free local datastore capacity.
class disk_filter final : public host_filter {
public:
    std::string_view name() const override { return "DiskFilter"; }
    bool passes(const host_state& host, const request_context& ctx) const override;
};

/// AggregateInstanceExtraSpecsFilter equivalent: building-block purpose
/// must match the flavor (>= 3 TB flavors need dedicated_xl BBs; HANA DB
/// flavors go to hana BBs; general purpose must not land on reserved BBs).
/// Section 3.1 "Support of high user demands".
class bb_purpose_filter final : public host_filter {
public:
    std::string_view name() const override { return "BBPurposeFilter"; }
    bool passes(const host_state& host, const request_context& ctx) const override;
};

/// NumInstancesFilter: cap on instances per compute host.
class num_instances_filter final : public host_filter {
public:
    explicit num_instances_filter(int max_instances);
    std::string_view name() const override { return "NumInstancesFilter"; }
    bool passes(const host_state& host, const request_context& ctx) const override;

private:
    int max_instances_;
};

/// Contention guard (paper Section 7, "contention-aware algorithms"):
/// reject hosts whose observed CPU contention exceeds a threshold.
class contention_filter final : public host_filter {
public:
    explicit contention_filter(double max_contention_pct);
    std::string_view name() const override { return "ContentionFilter"; }
    bool passes(const host_state& host, const request_context& ctx) const override;

private:
    double max_contention_pct_;
};

/// The default SAP-like pipeline: DC + AZ + purpose + compute + disk.
std::vector<std::unique_ptr<host_filter>> make_default_filters();

}  // namespace sci
