#include "sched/conductor.hpp"

#include "simcore/error.hpp"
#include "workload/calibration.hpp"

namespace sci {

allocation_ratios default_ratios_for(bb_purpose purpose) {
    namespace cal = calibration;
    switch (purpose) {
        case bb_purpose::hana:
        case bb_purpose::dedicated_xl:
            return {cal::hana_cpu_allocation_ratio, cal::hana_ram_allocation_ratio};
        case bb_purpose::general:
        case bb_purpose::gpu:
        case bb_purpose::reserve:
            return {cal::gp_cpu_allocation_ratio, cal::gp_ram_allocation_ratio};
    }
    return {1.0, 1.0};
}

conductor::conductor(const fleet& fleet, const flavor_catalog& catalog,
                     placement_service& placement, filter_scheduler scheduler)
    : fleet_(fleet),
      catalog_(catalog),
      placement_(placement),
      scheduler_(std::move(scheduler)) {}

std::vector<host_state> conductor::build_host_states() const {
    std::vector<host_state> states;
    states.reserve(placement_.providers().size());
    for (bb_id bb : placement_.providers()) {
        const building_block& block = fleet_.get(bb);
        const datacenter& dc = fleet_.get(block.dc);
        const provider_inventory& inv = placement_.inventory(bb);
        const provider_usage& use = placement_.usage(bb);
        host_state s;
        s.bb = bb;
        s.dc = block.dc;
        s.az = dc.az;
        s.purpose = block.purpose;
        s.node_count = static_cast<int>(block.nodes.size());
        s.total_pcpus = inv.total_pcpus;
        s.total_ram_mib = inv.total_ram_mib;
        s.total_disk_gib = inv.total_disk_gib;
        s.cpu_allocation_ratio = inv.cpu_allocation_ratio;
        s.ram_allocation_ratio = inv.ram_allocation_ratio;
        s.vcpus_used = use.vcpus_used;
        s.ram_used_mib = use.ram_used_mib;
        s.disk_used_gib = use.disk_used_gib;
        s.instances = use.instances;
        if (contention_feed_) s.avg_cpu_contention_pct = contention_feed_(bb);
        states.push_back(s);
    }
    return states;
}

placement_outcome conductor::schedule_and_claim(const schedule_request& request) {
    const flavor& f = catalog_.get(request.flavor);
    const request_context ctx{request, f};
    placement_outcome outcome;

    for (int round = 0; round <= request.max_retries; ++round) {
        const std::vector<host_state> hosts = build_host_states();
        // a handful of alternates per round, like Nova's alternate list
        const std::vector<bb_id> candidates =
            scheduler_.select_destinations(ctx, hosts, 5);
        if (candidates.empty()) break;

        for (bb_id candidate : candidates) {
            ++outcome.attempts;
            if (claim_fault_ &&
                claim_fault_(request.vm, candidate, outcome.attempts)) {
                ++transient_claim_failures_;
                continue;  // injected claim race: try the next alternate
            }
            try {
                placement_.claim(request.vm, candidate, f);
                outcome.success = true;
                outcome.bb = candidate;
                ++scheduled_;
                retries_ += static_cast<std::uint64_t>(outcome.attempts - 1);
                return outcome;
            } catch (const capacity_error&) {
                continue;  // race lost: try the next alternate
            }
        }
    }
    ++no_valid_host_;
    return outcome;
}

}  // namespace sci
