#include "sched/conductor.hpp"

#include <algorithm>

#include "simcore/error.hpp"
#include "workload/calibration.hpp"

namespace sci {

allocation_ratios default_ratios_for(bb_purpose purpose) {
    namespace cal = calibration;
    switch (purpose) {
        case bb_purpose::hana:
        case bb_purpose::dedicated_xl:
            return {cal::hana_cpu_allocation_ratio, cal::hana_ram_allocation_ratio};
        case bb_purpose::general:
        case bb_purpose::gpu:
        case bb_purpose::reserve:
            return {cal::gp_cpu_allocation_ratio, cal::gp_ram_allocation_ratio};
    }
    return {1.0, 1.0};
}

conductor::conductor(const fleet& fleet, const flavor_catalog& catalog,
                     placement_service& placement, filter_scheduler scheduler)
    : fleet_(fleet),
      catalog_(catalog),
      placement_(placement),
      scheduler_(std::move(scheduler)) {}

std::vector<host_state> conductor::build_host_states() const {
    std::vector<host_state> states;
    states.reserve(placement_.providers().size());
    for (bb_id bb : placement_.providers()) {
        const building_block& block = fleet_.get(bb);
        const datacenter& dc = fleet_.get(block.dc);
        const provider_inventory& inv = placement_.inventory(bb);
        const provider_usage& use = placement_.usage(bb);
        host_state s;
        s.bb = bb;
        s.dc = block.dc;
        s.az = dc.az;
        s.purpose = block.purpose;
        s.node_count = static_cast<int>(block.nodes.size());
        s.total_pcpus = inv.total_pcpus;
        s.total_ram_mib = inv.total_ram_mib;
        s.total_disk_gib = inv.total_disk_gib;
        s.cpu_allocation_ratio = inv.cpu_allocation_ratio;
        s.ram_allocation_ratio = inv.ram_allocation_ratio;
        s.vcpus_used = use.vcpus_used;
        s.ram_used_mib = use.ram_used_mib;
        s.disk_used_gib = use.disk_used_gib;
        s.instances = use.instances;
        if (contention_feed_) s.avg_cpu_contention_pct = contention_feed_(bb);
        states.push_back(s);
    }
    return states;
}

const std::vector<host_state>& conductor::host_states() {
    refresh_host_states();
    return states_;
}

void conductor::refresh_host_states() {
    const std::vector<bb_id>& providers = placement_.providers();
    if (states_.size() != providers.size()) {
        // first call (or providers registered since): full build, caching
        // the pointer-stable usage records for the incremental refreshes
        states_ = build_host_states();
        usage_refs_.clear();
        usage_refs_.reserve(providers.size());
        provider_pos_.clear();
        for (std::uint32_t i = 0; i < providers.size(); ++i) {
            usage_refs_.push_back(&placement_.usage(providers[i]));
            const auto value = static_cast<std::size_t>(providers[i].value());
            if (provider_pos_.size() <= value) provider_pos_.resize(value + 1);
            provider_pos_[value] = i;
        }
        states_version_ = placement_.version();
        // claim counters and the dirty scratch follow the provider set;
        // providers are append-only, so existing counters keep their value
        claim_counts_.resize(providers.size(), 0);
        dirty_scratch_.resize(providers.size(), 0);
        return;
    }
    // Usage unchanged and no (unversioned) telemetry feed: view is current.
    if (!contention_feed_ && states_version_ == placement_.version()) return;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const provider_usage& use = *usage_refs_[i];
        host_state& s = states_[i];
        s.vcpus_used = use.vcpus_used;
        s.ram_used_mib = use.ram_used_mib;
        s.disk_used_gib = use.disk_used_gib;
        s.instances = use.instances;
        if (contention_feed_) s.avg_cpu_contention_pct = contention_feed_(s.bb);
    }
    states_version_ = placement_.version();
}

void conductor::snapshot_claim_counts(std::vector<std::uint64_t>& out) {
    refresh_host_states();  // also (re)builds provider_pos_ + claim_counts_
    out.assign(claim_counts_.begin(), claim_counts_.end());
}

void conductor::restore_counters(std::uint64_t scheduled,
                                 std::uint64_t no_valid_host,
                                 std::uint64_t retries,
                                 std::uint64_t transient_claim_failures,
                                 std::uint64_t speculative_placements,
                                 std::uint64_t speculation_misses) {
    scheduled_ = scheduled;
    no_valid_host_ = no_valid_host;
    retries_ = retries;
    transient_claim_failures_ = transient_claim_failures;
    speculative_placements_ = speculative_placements;
    speculation_misses_ = speculation_misses;
}

void conductor::restore_claim_counts(const std::vector<std::uint64_t>& counts) {
    refresh_host_states();  // sizes claim_counts_ to the provider set
    expects(counts.size() == claim_counts_.size(),
            "conductor::restore_claim_counts: provider count mismatch");
    claim_counts_ = counts;
}

void conductor::invalidate_host_view() {
    states_.clear();
    usage_refs_.clear();
    states_version_ = 0;
}

void conductor::mark_claimed(bb_id bb) {
    if (claim_counts_.empty()) return;  // no host view built yet
    ++claim_counts_[provider_pos_[static_cast<std::size_t>(bb.value())]];
}

placement_outcome conductor::schedule_and_claim(
    const schedule_request& request, const host_speculation* spec,
    std::span<const std::uint64_t> base_counts) {
    const flavor& f = catalog_.get(request.flavor);
    const request_context ctx{request, f};
    placement_outcome outcome;

    // A valid speculation replaces round 0's filter+weigh: the corrected
    // candidate list is bitwise what select_destinations would return
    // (the caller guarantees monotone usage since the snapshot), so the
    // claim/fault sequence — including injected-fault RNG draws — matches
    // the pristine loop exactly.  On a miss the loop simply continues
    // into round 1 with a fresh selection, again exactly like the
    // pristine loop; nothing is replayed or double-counted.
    const bool use_spec = spec != nullptr && spec->valid &&
                          base_counts.size() == claim_counts_.size() &&
                          !base_counts.empty();
    if (use_spec) {
        // dirty = providers claimed since the caller's snapshot; usage on
        // clean providers is bitwise what the snapshot saw (any shrink
        // invalidates the whole batch before the caller gets here)
        for (std::size_t i = 0; i < claim_counts_.size(); ++i) {
            dirty_scratch_[i] = claim_counts_[i] != base_counts[i] ? 1 : 0;
        }
    }
    for (int round = 0; round <= request.max_retries; ++round) {
        const std::vector<host_state>& hosts = host_states();
        const bool from_spec = round == 0 && use_spec;
        // a handful of alternates per round, like Nova's alternate list
        const std::span<const bb_id> candidates =
            from_spec ? scheduler_.commit_speculation(
                            ctx, hosts, *spec, dirty_scratch_, 5, scratch_)
                      : scheduler_.select_destinations(ctx, hosts, 5, scratch_);
        if (candidates.empty()) {
            if (from_spec) ++speculation_misses_;
            break;
        }

        for (bb_id candidate : candidates) {
            ++outcome.attempts;
            if (claim_fault_ &&
                claim_fault_(request.vm, candidate, outcome.attempts)) {
                ++transient_claim_failures_;
                continue;  // injected claim race: try the next alternate
            }
            try {
                placement_.claim(request.vm, candidate, f);
                mark_claimed(candidate);
                outcome.success = true;
                outcome.bb = candidate;
                ++scheduled_;
                retries_ += static_cast<std::uint64_t>(outcome.attempts - 1);
                if (from_spec) ++speculative_placements_;
                return outcome;
            } catch (const capacity_error&) {
                continue;  // race lost: try the next alternate
            }
        }
        // the speculated alternates are exhausted: later rounds re-select
        // against the live view, exactly as the pristine loop would
        if (from_spec) ++speculation_misses_;
    }
    ++no_valid_host_;
    return outcome;
}

}  // namespace sci
