#pragma once

// Backpressure layer (ROADMAP direction 4): overload as a first-class
// regime of the conductor + placement service instead of a scatter of
// per-path patches.
//
// When admission fails, a request enters one of three explicit modes:
//
//   degrade  immediate NoValidHost — exactly today's behavior.  The
//            all-zero config is fully inert: no controller is built, no
//            events fire, runs reproduce byte-for-byte.
//   queue    the request waits in a bounded deadline queue; the engine
//            drains it at capacity-release events (deletions, crash
//            repairs, migrations).  An entry whose deadline passes is
//            shed with an explicit reason.
//   shed     like queue, but when the queue is full a strictly
//            higher-priority newcomer (HA restarts over pack over
//            spread) evicts the lowest-priority latest-enqueued entry
//            instead of being rejected itself.
//
// Ground rules (Continuity RFC 0001/0002): bounded queue cost (the
// deque never exceeds queue_capacity), stable regime transitions (the
// queuing/shedding control state is re-evaluated only at scrape
// barriers, with enter-at-full / exit-at-half hysteresis — so
// consecutive transitions are always at least one sampling interval
// apart), and no silent blackholes — every request that ever entered
// the conductor terminates in exactly one of {placed,
// schedule_fail-with-reason, shed-with-reason}, enforced by the
// no_blackhole invariant checker (src/harness/invariants.hpp).

#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>
#include <vector>

#include "infra/ids.hpp"
#include "simcore/time.hpp"

namespace sci {

enum class backpressure_mode : std::uint8_t {
    degrade,  ///< immediate NoValidHost (pre-backpressure behavior)
    queue,    ///< bounded deadline queue drained at capacity releases
    shed,     ///< queue + priority eviction when full
};

std::string_view to_string(backpressure_mode m);
std::optional<backpressure_mode> backpressure_mode_from(std::string_view token);

struct backpressure_config {
    backpressure_mode mode = backpressure_mode::degrade;
    /// Hard bound on queued requests (must be > 0 when mode != degrade).
    std::uint32_t queue_capacity = 0;
    /// Time a request may wait before it is shed (deadline = enqueue
    /// time + queue_deadline; must be > 0 when mode != degrade).
    sim_duration queue_deadline = 0;

    bool active() const { return mode != backpressure_mode::degrade; }
};

/// What kind of request is waiting (decides the lifecycle event recorded
/// when it finally places).
enum class bp_request_kind : std::uint8_t {
    create,      ///< churn arrival that hit NoValidHost
    ha_restart,  ///< HA victim whose restart-attempt budget ran out
};

/// One queued admission request.  Deadlines are enqueue time plus the
/// configured queue_deadline, so FIFO order is deadline order and
/// expiry pops from the front.
struct bp_queued_request {
    vm_id vm;
    bp_request_kind kind = bp_request_kind::create;
    /// Shed-mode eviction priority: ha_restart (2) > pack (1) > spread (0).
    std::int32_t priority = 0;
    sim_time enqueued_at = 0;
    sim_time deadline = 0;
    /// Planned deletion of a churn arrival (the event is only scheduled
    /// once the VM places); no_deletion when none.
    sim_time deleted_at = no_deletion;

    static constexpr sim_time no_deletion = -1;
};

/// Scrape-sampled control state of the queue (telemetry + the
/// backpressure_stability invariant; admission itself is size-driven).
enum class bp_regime : std::uint8_t { queuing, shedding };

std::string_view to_string(bp_regime r);

class backpressure_controller {
public:
    explicit backpressure_controller(backpressure_config config);

    const backpressure_config& config() const { return config_; }
    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }
    const bp_queued_request& at(std::size_t i) const { return queue_[i]; }
    void erase(std::size_t i);

    /// Outcome of one admission attempt on the full path.
    struct admit_result {
        enum class outcome : std::uint8_t {
            queued,           ///< request now waits in the queue
            shed_queue_full,  ///< queue full, request rejected outright
        };
        outcome result = outcome::queued;
        /// Shed-mode priority eviction: the entry the newcomer displaced
        /// (the caller must terminate it with a shed event).
        std::optional<bp_queued_request> evicted;
    };

    /// Admit one request.  Never grows the queue past queue_capacity.
    admit_result admit(bp_queued_request request);

    /// Drop the queued entry of `vm` (owner deleted the VM while it was
    /// waiting).  Returns false when nothing was queued for it.
    bool cancel(vm_id vm);

    /// Pop every entry whose deadline has passed, in deadline (= FIFO)
    /// order.  The caller sheds or cancels each one.
    std::vector<bp_queued_request> expire(sim_time t);

    /// Re-evaluate the queuing/shedding regime at a scrape barrier:
    /// enter shedding at size >= capacity, leave at size <= capacity/2
    /// (hysteresis), keep the state in between.  Returns true when the
    /// regime flipped (the transition instant is recorded).  Calling
    /// this only at scrape barriers is what makes transitions stable:
    /// two flips can never be closer than one sampling interval.
    bool update_regime(sim_time t);

    bp_regime regime() const { return regime_; }
    /// Instants of every regime flip, in time order.
    const std::vector<sim_time>& transitions() const { return transitions_; }

    // --- snapshot support -------------------------------------------------
    /// Queued entries front to back — already the canonical order.
    std::vector<bp_queued_request> queue_table() const;
    void restore_state(const std::vector<bp_queued_request>& queue,
                       bp_regime regime, std::vector<sim_time> transitions);

private:
    backpressure_config config_;
    std::deque<bp_queued_request> queue_;
    bp_regime regime_ = bp_regime::queuing;
    std::vector<sim_time> transitions_;
};

}  // namespace sci
