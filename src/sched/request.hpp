#pragma once

// A scheduling request: what the Nova API hands to the scheduler when a
// user asks for a VM (Figure 2, steps 1–4).

#include <optional>

#include "infra/flavor.hpp"
#include "infra/ids.hpp"

namespace sci {

/// Placement policy applied to a request.  The paper (Section 3.2): the
/// default strategy load-balances general-purpose workloads, whereas SAP
/// S/4HANA workloads are explicitly bin-packed to maximize memory
/// utilization.
enum class placement_policy {
    spread,  ///< prefer emptier hosts (load balance)
    pack,    ///< prefer fuller hosts (bin packing)
};

struct schedule_request {
    vm_id vm;
    flavor_id flavor;
    project_id project;
    /// Optional AZ constraint (AvailabilityZoneFilter).
    std::optional<az_id> az;
    /// Optional DC constraint: the paper treats a single DC as the
    /// placement and scheduling domain (Section 3.1).
    std::optional<dc_id> dc;
    placement_policy policy = placement_policy::spread;
    /// Optional server group (affinity / anti-affinity, see
    /// sched/server_group.hpp).
    std::optional<group_id> group;
    /// Maximum scheduler retries after failed claims (greedy retry loop).
    int max_retries = 3;
};

}  // namespace sci
