#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "analysis/figures.hpp"
#include "analysis/render.hpp"
#include "simcore/stats.hpp"

namespace sci {

namespace {

void heatmap_section(std::ostream& os, const report_options& options,
                     const char* id, const char* paper_claim,
                     const heatmap& hm) {
    os << "### " << id << "\n\n*Paper:* " << paper_claim << "\n\n";
    os << "- columns: " << hm.columns.size() << ", days: " << hm.days << "\n";
    if (!hm.columns.empty()) {
        os << "- most-free column mean: " << format_double(hm.column_mean(0))
           << "% free; least-free: "
           << format_double(hm.column_mean(hm.columns.size() - 1))
           << "% free\n";
        os << "- cell range: " << format_double(hm.min_value()) << "% to "
           << format_double(hm.max_value()) << "% free; missing cells: "
           << format_double(hm.missing_fraction() * 100.0) << "%\n";
    }
    if (options.include_heatmaps) {
        os << "\n```\n" << render_heatmap_ascii(hm) << "```\n";
    }
    os << "\n";
}

}  // namespace

void write_markdown_report(std::ostream& os, sim_engine& engine,
                           const report_options& options) {
    const fleet& f = engine.infrastructure();
    const metric_store& store = engine.store();
    const dc_id dc = f.dcs().front().id;

    os << "# " << options.title << "\n\n";
    os << "Fleet: " << f.node_count() << " nodes in " << f.bb_count()
       << " building blocks across " << f.dc_count() << " DCs; "
       << engine.vms().size() << " VM records; seed "
       << engine.config().scenario.seed << ", scale "
       << engine.config().scenario.scale << ".\n\n";

    const run_stats& stats = engine.stats();
    os << "Run: " << stats.placements << " placements ("
       << stats.placement_failures << " NoValidHost), " << stats.deletions
       << " deletions, " << stats.drs_migrations << " DRS migrations, "
       << stats.evacuations << " evacuations, " << stats.cross_bb_moves
       << " cross-BB moves, " << stats.scrapes << " scrapes.\n\n";

    // --- heatmaps --------------------------------------------------------
    heatmap_section(os, options, "Figure 5 — % free CPU per node (one DC)",
                    "nodes range from <20% to >90% free on the same day; "
                    "imbalance persists across the window",
                    fig5_free_cpu_per_node(store, f, dc));
    heatmap_section(os, options, "Figure 6 — % free CPU per building block",
                    "heavily and lightly utilized BBs clearly separated",
                    fig6_free_cpu_per_bb(store, f, dc));
    const bb_id hot_bb = most_imbalanced_bb(store, f, dc);
    heatmap_section(os, options, "Figure 7 — % free CPU per node, one BB",
                    "intra-BB imbalance with max node utilization up to 99%",
                    fig7_free_cpu_intra_bb(store, f, hot_bb));
    heatmap_section(os, options, "Figure 10 — % free memory per node",
                    "bimodal: many nodes almost full, many mostly free",
                    fig10_free_memory_per_node(store, f, dc));
    heatmap_section(os, options, "Figure 11 — % free network TX per node",
                    "well below the 200 Gbps NIC capacity",
                    fig11_free_net_tx(store, f, dc));
    heatmap_section(os, options, "Figure 12 — % free network RX per node",
                    "well below the 200 Gbps NIC capacity",
                    fig12_free_net_rx(store, f, dc));
    heatmap_section(os, options, "Figure 13 — % free storage per node",
                    "18% of hosts >90% free, 7% using more than 30%",
                    fig13_free_storage(store, f, dc));

    // --- ready time / contention -----------------------------------------
    os << "### Figure 8 — CPU ready time, top-10 nodes\n\n"
       << "*Paper:* spikes through the month (up to ~30 min), several nodes "
          "beyond the 30 s baseline, weekday effect.\n\n";
    os << "| node | total ready (min) | peak hourly mean (s) |\n"
       << "|---|---|---|\n";
    for (const ready_time_series& s : fig8_top_ready_nodes(store, 10)) {
        os << "| " << s.node << " | "
           << format_double(s.total_ready_ms / 60000.0) << " | "
           << format_double(s.peak_ready_ms / 1000.0) << " |\n";
    }
    os << "\n";

    os << "### Figure 9 — CPU contention over all nodes\n\n"
       << "*Paper:* daily mean and p95 < 5%; max per node 10-30% with "
          "several nodes exceeding 40%; persistent.\n\n";
    double worst_mean = 0.0, worst_p95 = 0.0, worst_max = 0.0;
    for (const contention_day& d : fig9_contention_by_day(store)) {
        worst_mean = std::max(worst_mean, d.mean_pct);
        worst_p95 = std::max(worst_p95, d.p95_pct);
        worst_max = std::max(worst_max, d.max_pct);
    }
    os << "Measured: worst daily mean " << format_double(worst_mean)
       << "%, worst p95 " << format_double(worst_p95) << "%, worst node max "
       << format_double(worst_max) << "%.\n\n";

    // --- workload composition ---------------------------------------------
    const vm_utilization_cdf cpu = fig14a_cpu_utilization(store);
    const vm_utilization_cdf mem = fig14b_memory_utilization(store);
    os << "### Figure 14 — VM utilization CDFs\n\n"
       << "*Paper:* CPU >80% of VMs under 70%; memory ~38% under / ~10% "
          "optimal / ~52% over.\n\n";
    os << "| resource | under (<70%) | optimal (70-85%) | over (>85%) |\n"
       << "|---|---|---|---|\n";
    os << "| CPU | " << format_double(cpu.classes.under_pct) << "% | "
       << format_double(cpu.classes.optimal_pct) << "% | "
       << format_double(cpu.classes.over_pct) << "% |\n";
    os << "| memory | " << format_double(mem.classes.under_pct) << "% | "
       << format_double(mem.classes.optimal_pct) << "% | "
       << format_double(mem.classes.over_pct) << "% |\n\n";

    os << "### Tables 1-2 — VM size classes (average over window)\n\n";
    os << "| class | bounds | measured avg VMs |\n|---|---|---|\n";
    for (const size_class_row& row :
         table1_vcpu_classes(engine.vms(), engine.catalog())) {
        os << "| " << row.category << " | " << row.bounds << " | "
           << format_count(row.average_vms) << " |\n";
    }
    for (const size_class_row& row :
         table2_ram_classes(engine.vms(), engine.catalog())) {
        os << "| " << row.category << " | " << row.bounds << " | "
           << format_count(row.average_vms) << " |\n";
    }
    os << "\n";

    os << "### Figure 15 — VM lifetime per flavor (>= 30 instances)\n\n"
       << "*Paper:* minutes to multiple years; no consistent size-lifetime "
          "correlation.\n\n";
    os << "| flavor | n | median | mean | min | max |\n|---|---|---|---|---|---|\n";
    for (const lifetime_row& row :
         fig15_lifetime_per_flavor(engine.vms(), engine.catalog(), 30)) {
        const auto d = [](double days_value) {
            return format_duration(
                static_cast<sim_duration>(days_value * 86400.0));
        };
        os << "| " << row.flavor_name << " | " << row.instances << " | "
           << d(row.median_days) << " | " << d(row.mean_days) << " | "
           << d(row.min_days) << " | " << d(row.max_days) << " |\n";
    }
    os << "\n";

    // --- events ------------------------------------------------------------
    const event_log& log = engine.events();
    os << "### Scheduling events (Section 4 dataset contents)\n\n"
       << "creates " << log.count(lifecycle_event_kind::create) << ", deletes "
       << log.count(lifecycle_event_kind::remove) << ", migrations "
       << log.count(lifecycle_event_kind::migrate) << ", evacuations "
       << log.count(lifecycle_event_kind::evacuate) << ", NoValidHost "
       << log.count(lifecycle_event_kind::schedule_fail) << "; estimated "
       << format_double(stats.migration_seconds, 0)
       << " s total migration time, worst downtime "
       << format_double(stats.max_migration_downtime_ms, 1) << " ms.\n\n"
       << "Scheduler: " << stats.scheduler_retries
       << " claim retries; speculative initial placement committed "
       << stats.speculative_placements << " VMs from worker speculation with "
       << stats.speculation_misses
       << " misses re-placed through the serial retry loop.\n"
       << "Churn batching: " << stats.window_batches << " in-window batches"
       << " speculated " << stats.window_speculations << " arrivals, committed "
       << stats.window_speculative_placements << " speculatively ("
       << stats.window_speculation_misses << " misses, "
       << stats.window_speculation_invalidated
       << " invalidated by usage shrinks or telemetry refreshes).\n"
       << "Rebalance batching: " << stats.rebalance_target_speculations
       << " cross-BB targets speculated (" << stats.rebalance_targets_used
       << " consumed, " << stats.rebalance_target_invalidated
       << " re-speculated after mid-batch commits).\n";

    // --- availability (only when fault injection is configured) ------------
    if (engine.config().fault.enabled()) {
        const ha_controller& ha = *engine.ha();
        os << "\n### Availability (sci::fault injection)\n\n"
           << "Injected " << stats.host_crashes << " host crashes killing "
           << stats.crash_victims << " VMs; HA restarted " << stats.ha_restarts
           << " (" << stats.ha_restart_failures << " failed attempts, "
           << ha.abandoned_vms() << " abandoned, " << ha.cancelled_vms()
           << " deleted while down); " << stats.maintenance_evacuations
           << " maintenance evacuations.\n\n"
           << "Recovery batching: " << stats.recovery_batches
           << " victim batches speculated " << stats.recovery_speculations
           << " restarts, committed " << stats.recovery_speculative_placements
           << " speculatively (" << stats.recovery_speculation_misses
           << " misses, " << stats.recovery_speculation_invalidated
           << " invalidated by usage shrinks, "
           << stats.recovery_speculation_cancelled
           << " cancelled while down).\n\n";
        const std::span<const double> downtime = ha.downtime_samples();
        if (!downtime.empty()) {
            std::vector<double> sorted(downtime.begin(), downtime.end());
            std::sort(sorted.begin(), sorted.end());
            os << "| metric | value |\n|---|---|\n"
               << "| restarted VMs | " << sorted.size() << " |\n"
               << "| MTTR | " << format_double(ha.mttr(), 1) << " s |\n"
               << "| downtime p50 | " << format_double(exact_quantile(sorted, 0.50), 1)
               << " s |\n"
               << "| downtime p95 | " << format_double(exact_quantile(sorted, 0.95), 1)
               << " s |\n"
               << "| downtime max | " << format_double(sorted.back(), 1)
               << " s |\n\n";
        }
        os << "Scheduler pressure: " << stats.placement_failures
           << " NoValidHost, " << engine.transient_claim_failures()
           << " transient claim failures absorbed by retries; "
           << stats.migration_aborts << " migrations aborted mid-copy wasting "
           << format_double(stats.wasted_migration_seconds, 0)
           << " s of pre-copy work.\n";
    }
}

std::string markdown_report(sim_engine& engine, const report_options& options) {
    std::ostringstream os;
    write_markdown_report(os, engine, options);
    return os.str();
}

}  // namespace sci
