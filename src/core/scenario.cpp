#include "core/scenario.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>

#include "simcore/error.hpp"
#include "simcore/rng.hpp"
#include "workload/calibration.hpp"

namespace sci {

namespace cal = calibration;

namespace {

/// Split a node budget into building blocks of a purpose, with sizes drawn
/// from a clamped lognormal (the paper: BB sizes range from 2 to 128).
void build_bbs(fleet& f, dc_id dc, bb_purpose purpose, int node_budget,
               double size_mu, double size_sigma, int size_cap,
               const hardware_profile& profile, rng_stream& rng,
               int& name_counter) {
    int remaining = node_budget;
    int created = 0;
    while (remaining >= cal::bb_min_nodes) {
        int size = static_cast<int>(std::lround(rng.lognormal(size_mu, size_sigma)));
        size = std::clamp(size, cal::bb_min_nodes, std::min(size_cap, remaining));
        const std::string name = f.get(dc).name + "-" +
                                 std::string(to_string(purpose)) + "-bb" +
                                 std::to_string(name_counter++);
        f.add_bb(dc, name, purpose, profile, size);
        remaining -= size;
        ++created;
    }
    // fold leftover single node into the last BB of this purpose, if any
    if (remaining > 0 && created > 0) {
        const auto& bbs = f.get(dc).bbs;
        for (auto it = bbs.rbegin(); it != bbs.rend(); ++it) {
            if (f.get(*it).purpose == purpose) {
                for (int i = 0; i < remaining; ++i) f.add_node(*it);
                break;
            }
        }
    }
}

/// Populate one data center's building blocks from a hypervisor budget.
void build_dc(fleet& f, dc_id dc, int hypervisors, rng_stream& rng,
              const scenario_config& config) {
    const int xl_nodes = std::max(
        0, static_cast<int>(std::lround(static_cast<double>(hypervisors) *
                                        config.dedicated_xl_node_fraction)));
    const int hana_nodes = std::max(
        0, static_cast<int>(std::lround(static_cast<double>(hypervisors) *
                                        config.hana_node_fraction)));
    const int reserve_nodes = std::max(
        0, static_cast<int>(std::lround(static_cast<double>(hypervisors) *
                                        config.reserve_node_fraction)));
    const int general_nodes =
        std::max(0, hypervisors - xl_nodes - hana_nodes - reserve_nodes);

    // general purpose: medium-large BBs, two hardware generations
    const int gen_a = general_nodes / 2;
    const int gen_b = general_nodes - gen_a;
    int general_counter = 0;
    int hana_counter = 0;
    int xl_counter = 0;
    build_bbs(f, dc, bb_purpose::general, gen_a, /*mu=*/3.1, /*sigma=*/0.5,
              cal::bb_max_nodes, profiles::general_purpose(), rng,
              general_counter);
    build_bbs(f, dc, bb_purpose::general, gen_b, 3.1, 0.5, cal::bb_max_nodes,
              profiles::general_purpose_large(), rng, general_counter);
    // hana: smaller clusters of large-memory hosts
    build_bbs(f, dc, bb_purpose::hana, hana_nodes, 2.3, 0.5, 32,
              profiles::hana_large_memory(), rng, hana_counter);
    // dedicated XL: few small clusters of very large hosts
    build_bbs(f, dc, bb_purpose::dedicated_xl, xl_nodes, 1.6, 0.4, 8,
              profiles::hana_extra_large_memory(), rng, xl_counter);
    // failover / scalability reserve (monitored, never scheduled)
    int reserve_counter = 0;
    build_bbs(f, dc, bb_purpose::reserve, reserve_nodes, 2.3, 0.4, 32,
              profiles::general_purpose(), rng, reserve_counter);
}

}  // namespace

scenario make_regional_scenario(const scenario_config& config) {
    expects(config.scale > 0.0, "make_regional_scenario: scale must be positive");
    fleet f;
    rng_stream rng(config.seed, "scenario");

    const region_id region = f.add_region("region-9");
    // the studied region (Table 5, region 9): DC A 751 nodes, DC B 1072
    const az_id az_a = f.add_az(region, "az-a");
    const az_id az_b = f.add_az(region, "az-b");
    const dc_id dc_a = f.add_dc(az_a, "dc-a");
    const dc_id dc_b = f.add_dc(az_b, "dc-b");

    const auto scaled = [&](int n) {
        return std::max(cal::bb_min_nodes,
                        static_cast<int>(std::lround(n * config.scale)));
    };
    build_dc(f, dc_a, scaled(751), rng, config);
    build_dc(f, dc_b, scaled(1072), rng, config);

    flavor_catalog catalog;
    flavor_mix mix = flavor_mix::standard(catalog);
    const int population = std::max(
        1, static_cast<int>(std::lround(cal::regional_vms * config.scale)));
    return scenario(std::move(f), std::move(catalog), std::move(mix), region,
                    population);
}

std::span<const dc_spec> table5_datacenters() {
    // Exact rows of Table 5 (Appendix D).
    static constexpr std::array<dc_spec, 29> rows{{
        {1, "A", 167, 4985},   {1, "B", 65, 375},     {2, "A", 244, 7913},
        {2, "B", 112, 1284},   {3, "A", 202, 4475},   {3, "B", 89, 1353},
        {4, "A", 191, 3977},   {5, "A", 42, 395},     {6, "A", 150, 5016},
        {7, "A", 63, 1096},    {8, "A", 227, 5595},   {8, "B", 270, 4206},
        {8, "D", 966, 34392},  {9, "A", 751, 19464},  {9, "B", 1072, 27652},
        {10, "A", 65, 1186},   {10, "B", 152, 5713},  {11, "A", 60, 2877},
        {12, "A", 62, 1996},   {12, "B", 43, 362},    {13, "A", 274, 7432},
        {13, "B", 99, 1149},   {13, "D", 239, 3881},  {14, "A", 330, 3809},
        {14, "B", 307, 5125},  {15, "A", 209, 5442},  {16, "A", 40, 504},
        {16, "B", 28, 156},    {16, "D", 22, 78},
    }};
    return rows;
}

scenario make_global_scenario(std::uint64_t seed) {
    fleet f;
    rng_stream rng(seed, "global-scenario");
    scenario_config config;

    int current_region = -1;
    region_id region;
    int total_vms = 0;
    for (const dc_spec& spec : table5_datacenters()) {
        if (spec.region_id != current_region) {
            current_region = spec.region_id;
            region = f.add_region("region-" + std::to_string(spec.region_id));
        }
        const az_id az = f.add_az(
            region, "region-" + std::to_string(spec.region_id) + "-az-" +
                        spec.dc_name);
        const dc_id dc =
            f.add_dc(az, "region-" + std::to_string(spec.region_id) + "-dc-" +
                             spec.dc_name);
        build_dc(f, dc, spec.hypervisors, rng, config);
        total_vms += spec.vms;
    }

    flavor_catalog catalog;
    flavor_mix mix = flavor_mix::standard(catalog);
    return scenario(std::move(f), std::move(catalog), std::move(mix),
                    region_id(0), total_vms);
}

}  // namespace sci
