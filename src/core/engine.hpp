#pragma once

// The simulation engine: reproduces the measured system end to end.
//
//   workload generator ──► Nova conductor/scheduler ──► building block
//                                  │                        │
//                                  ▼                        ▼
//                           placement API             DRS cluster (nodes)
//                                                           │
//   contention model ◄── per-VM demand at scrape time ◄─────┘
//        │
//        ▼
//   exporters ──► metric_store (Prometheus/Thanos equivalent)
//
// run() places the initial population (pre-window history), then plays the
// 30-day observation window: scrape events feed the exporters, DRS passes
// rebalance clusters, churn events create/delete VMs, maintenance events
// commission/decommission nodes (the heatmaps' white cells).

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/scenario.hpp"
#include "drs/drs.hpp"
#include "drs/migration.hpp"
#include "fault/fault.hpp"
#include "fault/ha.hpp"
#include "hypervisor/node_runtime.hpp"
#include "infra/event_log.hpp"
#include "infra/vm.hpp"
#include "rebalancer/cross_bb.hpp"
#include "sched/backpressure.hpp"
#include "sched/conductor.hpp"
#include "simcore/event_heap.hpp"
#include "simcore/rng.hpp"
#include "simcore/thread_pool.hpp"
#include "telemetry/store.hpp"
#include "workload/behavior.hpp"
#include "workload/population.hpp"

namespace sci {

namespace snapshot {
struct engine_access;  // checkpoint/restore implementation (src/snapshot)
}

/// One pending simulation event, as data.  The engine's event loop is an
/// event_heap<engine_event>: every schedule site enqueues one of these
/// instead of a closure, and sim_engine::dispatch interprets it — which
/// is what makes the complete pending-event set serializable for
/// checkpoint/restore.  `id` carries the target node or VM where the
/// action needs one; `fault` carries the compiled fault event for
/// action::fault.
struct engine_event {
    enum class action : std::uint8_t {
        commission_node,    ///< id = node: set_accepting(true)
        decommission_node,  ///< id = node
        delete_vm,          ///< id = vm
        drain_arrivals,     ///< pinned-slot churn drain
        scrape,             ///< self-rescheduling telemetry scrape
        drs_pass,           ///< self-rescheduling DRS balancing pass
        cross_bb_pass,      ///< self-rescheduling cross-BB rebalance
        resize_vm,          ///< id = vm
        fault,              ///< apply `fault`
        drain_ha_restarts,  ///< drain the due HA victim group
        drain_backpressure, ///< pinned-slot backpressure-queue drain
    };
    action act = action::scrape;
    std::int32_t id = -1;
    fault_event fault{};
};

struct engine_config {
    scenario_config scenario;
    /// Scrape cadence (the paper's telemetry: 30–300 s; default 300 s).
    sim_duration sampling_interval = 300;
    /// DRS balancing pass cadence.
    sim_duration drs_interval = 3600;
    drs_config drs;
    store_config store;
    population_config population;  ///< initial_population overridden by scenario

    // --- policy switches (ablations of DESIGN.md §3) ---------------------
    /// Feed observed BB contention into the scheduler (Section 7 guidance).
    bool contention_aware = false;
    double contention_filter_threshold_pct = 15.0;
    /// Holistic single-layer scheduler: place directly onto nodes,
    /// collapsing the Nova→BB + DRS→node split (Section 7 guidance).
    bool holistic = false;
    /// Lifetime-aware placement: pack short-lived VMs (< 7 days), spread
    /// long-lived ones (Section 7 "workload lifetime ... fragmentation").
    bool lifetime_aware = false;
    /// Fraction of nodes undergoing commission/decommission in-window.
    double node_churn_fraction = 0.03;
    /// Fraction of the population that resizes (grow or shrink to the
    /// neighbouring flavor) per day — the "resize" events of Section 4.
    /// Kept rare: resizes move VMs across the Table 1/2 size classes, and
    /// the published class mix is stable.
    double daily_resize_fraction = 0.0005;
    /// Override the general-purpose vCPU:pCPU allocation ratio (ablation:
    /// overcommit sweep, Section 7 "the overcommit factor should be
    /// reconsidered").
    std::optional<double> gp_cpu_allocation_ratio_override;
    /// Cross-building-block rebalancing pass cadence; 0 disables it (the
    /// paper's "external rebalancers", Section 3.1 / Section 7 guidance).
    sim_duration cross_bb_interval = 0;
    cross_bb_config cross_bb;
    /// Cost model applied to every DRS / cross-BB migration.
    migration_cost_config migration_cost;
    /// Worker threads for the scrape pipeline and the DRS balancing
    /// fan-out.  nullopt reads the SCI_THREADS environment variable; 0
    /// evaluates serially.  Output is bit-identical at any thread count:
    /// demand is sharded by a fixed shard count and reduced in shard
    /// order, all store appends stay serial in VM/node order (see
    /// sim_engine::scrape), and DRS results commit serially in cluster
    /// order (see sim_engine::drs_pass).
    std::optional<unsigned> threads;
    /// Deterministic fault injection (sci::fault).  The default (all
    /// rates zero) is fully inert: no schedule is compiled, no RNG
    /// streams are opened, and runs reproduce byte-for-byte.
    fault_config fault;
    /// Conductor backpressure (sci::backpressure_controller).  The default
    /// (`degrade`, zero capacity/deadline) is fully inert: no controller is
    /// built, no events fire, and runs reproduce byte-for-byte.
    backpressure_config backpressure;
};

/// Aggregate counters of one simulation run.
struct run_stats {
    std::uint64_t placements = 0;
    std::uint64_t placement_failures = 0;
    std::uint64_t scheduler_retries = 0;
    std::uint64_t drs_migrations = 0;
    std::uint64_t evacuations = 0;
    /// Placements where the BB had aggregate space but no single node fit
    /// under the ratios — intra-BB fragmentation made visible.
    std::uint64_t forced_fits = 0;
    /// Holistic placements where a node accepted the VM but the provider
    /// claim found the BB full (crash-shrunken inventory): degraded to
    /// NoValidHost instead of aborting.  Subset of placement_failures.
    std::uint64_t holistic_claim_rejections = 0;
    std::uint64_t deletions = 0;
    std::uint64_t scrapes = 0;
    /// Cross-building-block rebalancer moves (0 unless enabled).
    std::uint64_t cross_bb_moves = 0;
    /// Successful flavor resizes (and attempts the fleet rejected).
    std::uint64_t resizes = 0;
    std::uint64_t resize_failures = 0;
    /// Total estimated wall-clock spent in live migrations (seconds).
    double migration_seconds = 0.0;
    /// Worst estimated stop-and-copy downtime of any migration (ms).
    double max_migration_downtime_ms = 0.0;

    // --- speculative initial placement -----------------------------------
    // The batched pipeline runs at every thread count (inline when
    // serial), so these counters — which appear in the report — are
    // identical at any SCI_THREADS.
    /// Initial placements committed straight from a worker's speculative
    /// filter+weigh result (exactly revalidated at commit).
    std::uint64_t speculative_placements = 0;
    /// Speculations fully invalidated by earlier commits in their batch;
    /// the VM was re-placed through the serial retry loop.
    std::uint64_t speculation_misses = 0;
    /// Wall-clock of place_initial_population (host timing for benches —
    /// NOT part of the deterministic output, excluded from comparisons).
    double initial_placement_wall_ms = 0.0;

    // --- batched churn-arrival placement ----------------------------------
    // In-window arrivals are grouped per scrape interval and driven
    // through the same speculate/commit pipeline (inline when serial), so
    // every counter here is identical at any SCI_THREADS.
    std::uint64_t window_batches = 0;       ///< speculation batches launched
    std::uint64_t window_speculations = 0;  ///< arrivals speculated in-window
    /// Arrivals committed straight from a window speculation.
    std::uint64_t window_speculative_placements = 0;
    /// Window speculations whose corrected candidates were exhausted at
    /// commit; the arrival continued through the ordinary retry rounds.
    std::uint64_t window_speculation_misses = 0;
    /// Speculations dropped before commit because provider usage shrank
    /// (deletion / evacuation / crash / resize) or the contention feed
    /// moved since the batch snapshot; the tail of the batch re-speculates.
    std::uint64_t window_speculation_invalidated = 0;
    /// Wall-clock spent draining churn arrivals (host timing for benches —
    /// NOT part of the deterministic output, excluded from comparisons).
    double churn_placement_wall_ms = 0.0;

    // --- batched HA recovery placement ------------------------------------
    // After a crash the detection epoch's victim queue is re-placed as a
    // batch through the same speculate/commit pipeline (inline when
    // serial); all zero when faults are off or the run is holistic.
    std::uint64_t recovery_batches = 0;      ///< speculation batches launched
    std::uint64_t recovery_speculations = 0; ///< victims speculated
    /// Victims committed straight from a recovery speculation.
    std::uint64_t recovery_speculative_placements = 0;
    /// Recovery speculations whose corrected candidates were exhausted at
    /// commit; the victim continued through the ordinary retry rounds.
    std::uint64_t recovery_speculation_misses = 0;
    /// Speculations dropped because usage shrank (another crash, deletion,
    /// evacuation, resize) or the contention feed moved since the batch
    /// snapshot; the tail of the victim queue re-speculates.
    std::uint64_t recovery_speculation_invalidated = 0;
    /// Speculated victims deleted by their owner before the restart fired.
    std::uint64_t recovery_speculation_cancelled = 0;
    /// Wall-clock spent draining HA restarts (host timing for benches —
    /// NOT part of the deterministic output, excluded from comparisons).
    double recovery_placement_wall_ms = 0.0;

    // --- batched cross-BB target speculation -------------------------------
    // A rebalance pass's planned moves have their destination nodes
    // speculated as a batch against each target cluster's usage version;
    // commits consume a target only while its cluster is unchanged, else
    // the tail re-speculates.  Identical at any SCI_THREADS.
    std::uint64_t rebalance_target_speculations = 0;
    /// Targets consumed at commit straight from the batch.
    std::uint64_t rebalance_targets_used = 0;
    /// Targets dropped by a tail re-speculation after an earlier commit
    /// (or abort rollback) moved usage under the batch.
    std::uint64_t rebalance_target_invalidated = 0;

    // --- fault injection & HA recovery (all zero when faults are off) ----
    std::uint64_t az_outages = 0;       ///< AZ-level correlated outages fired
    std::uint64_t host_crashes = 0;     ///< injected hypervisor failures
    std::uint64_t crash_victims = 0;    ///< VMs killed by host crashes
    std::uint64_t ha_restarts = 0;      ///< victims re-placed by HA
    std::uint64_t ha_restart_failures = 0;  ///< failed restart attempts
    std::uint64_t migration_aborts = 0;     ///< DRS/cross-BB aborts
    std::uint64_t maintenance_evacuations = 0;  ///< unplanned maintenance moves
    /// Pre-copy work thrown away by aborted migrations (seconds).
    double wasted_migration_seconds = 0.0;

    // --- conductor backpressure (all zero when mode == degrade) -----------
    // The no_blackhole invariant closes this ledger: bp_enqueued ==
    // bp_queue_placed + bp_shed_deadline + bp_shed_evicted + bp_cancelled
    // + still-queued at evaluation time.
    std::uint64_t bp_enqueued = 0;        ///< requests that entered the queue
    std::uint64_t bp_queue_placed = 0;    ///< queued requests later placed
    std::uint64_t bp_shed_deadline = 0;   ///< shed: queue deadline expired
    std::uint64_t bp_shed_queue_full = 0; ///< shed at admit: queue was full
    std::uint64_t bp_shed_evicted = 0;    ///< shed: displaced by higher priority
    std::uint64_t bp_cancelled = 0;       ///< owner deleted a queued request
    std::uint64_t bp_regime_transitions = 0;  ///< queuing<->shedding flips
    std::uint64_t bp_peak_queue_len = 0;  ///< high-water mark of the queue
    /// HA victims abandoned after max_restart_attempts in degrade mode
    /// (recorded as shed/ha_attempts_exhausted — never silent; under
    /// queue/shed modes the victim is re-queued instead).
    std::uint64_t ha_give_ups = 0;
};

/// Optional in-run observation hooks for the invariants harness
/// (sci::harness).  Both unset by default — the engine then behaves
/// exactly as before; in particular the DRS imbalance figures are only
/// computed when a probe asks for them.  Probes observe, they must not
/// mutate: they fire from the serial event loop and both the demand
/// oracle and the imbalance walk are pure, so installing a probe never
/// perturbs the simulation's RNG draws or its deterministic output.
struct engine_probes {
    /// After a scrape's samples were appended, at the scrape instant.
    std::function<void(sim_time)> after_scrape;
    /// Around every DRS balancing pass: fleet-mean cluster imbalance under
    /// the pass's demand snapshot, before planning and after the serial
    /// commits (abort rollbacks included).
    std::function<void(sim_time, double before, double after)> drs_imbalance;
};

class sim_engine {
public:
    /// Build engine with a freshly constructed regional scenario.
    explicit sim_engine(engine_config config);

    /// Build engine over a caller-provided scenario.
    sim_engine(engine_config config, scenario sc);

    /// Place the initial population and play the full observation window.
    void run();

    /// Play only until `until` (for incremental inspection in tests).
    void setup();
    void run_until(sim_time until);

    const metric_store& store() const { return store_; }
    const vm_registry& vms() const { return vms_; }
    const fleet& infrastructure() const { return scenario_.infrastructure; }
    const flavor_catalog& catalog() const { return scenario_.catalog; }
    const scenario& scn() const { return scenario_; }
    const run_stats& stats() const { return stats_; }
    const engine_config& config() const { return config_; }
    const std::vector<drs_cluster>& clusters() const { return clusters_; }
    const placement_service& placement() const { return placement_; }
    const event_log& events() const { return events_; }

    /// Install invariant probes; call before setup()/run().
    void set_probes(engine_probes probes) { probes_ = std::move(probes); }

    /// Whether a node is currently out of service (crashed, in
    /// maintenance, or lost to an AZ outage).  False before setup().
    bool node_is_down(node_id node) const {
        const auto idx = static_cast<std::size_t>(node.value());
        return idx < node_down_.size() && node_down_[idx] != 0;
    }

    /// HA recovery controller; null unless config().fault.enabled().
    const ha_controller* ha() const { return ha_.get(); }
    /// Backpressure controller; null unless config().backpressure.active().
    const backpressure_controller* backpressure() const { return bp_.get(); }
    /// Injected claim races absorbed by the conductor's retry loop.
    std::uint64_t transient_claim_failures() const;
    /// VMs currently active (incrementally maintained; equals the
    /// registry's count_in_state(vm_state::active)).
    std::size_t active_vm_count() const { return active_slots_.size(); }

    /// Stream sealed raw-sample days through `sink` while the simulation
    /// runs: whenever a scrape crosses a day boundary the completed day is
    /// sealed (handed to the sink and freed), and run() seals the final
    /// day on exit.  Keeps raw residency O(compaction horizon) instead of
    /// O(window).  Off by default — without a sink the store behaves
    /// exactly as before (raw stays resident until export).
    void enable_raw_streaming(metric_store::raw_sink sink);

    /// Behavior of a VM (sampled lazily, cached).
    const vm_behavior& behavior_of(vm_id vm);

    /// Instantaneous CPU demand (cores) of a VM at time t.
    double vm_cpu_demand_cores(vm_id vm, sim_time t);

    /// Resolved scrape worker count (config override, else SCI_THREADS).
    unsigned worker_threads() const;

    /// Run all sharded stages on an externally owned pool instead of
    /// creating a private one (multi-region: N engines share one pool, so
    /// region-level tasks and intra-region shards never oversubscribe).
    /// Must be called before setup(); the pool must outlive the engine.
    /// Output is unaffected — sharding is fixed-count by contract.
    void set_shared_pool(thread_pool* pool);

    /// Arrival-time span of one speculated churn batch (diagnostics: lets
    /// tests prove batches straddled deletion / fault events in-window).
    struct churn_batch_span {
        sim_time first, last;
        std::uint32_t size;
    };
    const std::vector<churn_batch_span>& churn_batches() const {
        return churn_batch_spans_;
    }

    /// Victim-due-time span of one speculated HA recovery batch (first =
    /// the drain that opened the batch, last = the due time of the last
    /// victim group it covered — diagnostics: lets tests prove a batch
    /// straddled a second crash event).
    const std::vector<churn_batch_span>& recovery_batches() const {
        return recovery_batch_spans_;
    }

    /// True once setup() ran (or the engine was restored from a snapshot).
    bool is_setup() const { return setup_done_; }

    // --- post-restore fork mutators (sci::snapshot ablation arms) --------
    // Both flip pure *policy* knobs after a snapshot restore: the event
    // stream (pass cadence, sequence numbers) is untouched, so forked
    // arms stay event-for-event comparable with the base run.

    /// Toggle automatic DRS balancing on every cluster.  The balancing
    /// events keep firing either way (plan_rebalance checks the flag), so
    /// flipping it never changes the event/sequence stream.
    void set_drs_enabled(bool enabled);

    /// Rewrite the general-purpose vCPU:pCPU allocation ratio in place:
    /// provider inventories, cluster admission ratios, and the config
    /// field the report echoes.  The scheduler's cached host view is
    /// invalidated so the next decision sees the new capacity.
    void set_gp_cpu_allocation_ratio(double ratio);

private:
    friend struct snapshot::engine_access;

    /// Interpret one typed event at its fire time.
    void dispatch(const engine_event& event, sim_time t);

    /// One node's mid-window commission/decommission draw.  The plan is a
    /// pure function of (seed, fleet size), so a snapshot restore can
    /// re-apply the fleet mutations without replaying the RNG into any
    /// shared stream.
    struct node_churn_action {
        node_id node;
        bool commission;
        sim_time at;
    };
    std::vector<node_churn_action> plan_node_churn() const;

    void setup_providers();
    void setup_node_churn();
    void build_population();
    void setup_scrape_pipeline();
    void place_initial_population();
    void schedule_window_events();
    void drain_arrivals(sim_time t);
    void speculate_arrival_batch(sim_time t);

    /// quiet_fail: on admission failure leave the VM's state untouched and
    /// record no schedule_fail event or failure counter — the caller (the
    /// backpressure layer) owns the request's terminal outcome.  Retry
    /// counters still accumulate.
    bool place_vm(vm_id vm, sim_time when,
                  lifecycle_event_kind kind = lifecycle_event_kind::create,
                  const host_speculation* spec = nullptr,
                  std::span<const std::uint64_t> spec_counts = {},
                  bool quiet_fail = false);
    bool place_vm_holistic(vm_id vm, sim_time when, lifecycle_event_kind kind,
                           bool quiet_fail = false);
    void delete_vm(vm_id vm, sim_time when);
    void scrape(sim_time t);
    void drs_pass(sim_time t);
    void cross_bb_pass(sim_time t);
    void decommission_node(node_id node, sim_time t);
    /// Re-place every resident of `node` within its cluster, recording
    /// events of `kind`.  Returns the number of VMs moved (or terminated
    /// when the cluster was fully out of service).
    std::size_t evacuate_node(node_id node, sim_time t,
                              lifecycle_event_kind kind);
    void schedule_resizes();
    void resize_vm(vm_id vm, sim_time t);
    migration_estimate estimate_vm_migration(vm_id vm, sim_time t);
    void account_migration(vm_id vm, sim_time t);
    void open_vm_series(const vm_record& rec);

    // --- fault injection & HA recovery -----------------------------------
    void setup_faults();
    void apply_fault(const fault_event& event, sim_time t);
    void crash_node(node_id node, sim_time t);
    /// Crash every in-service host of one AZ in a single detection epoch.
    void begin_az_outage(az_id az, sim_time t);
    /// Return the zone's outage-downed hosts to service.
    void end_az_outage(az_id az, sim_time t);
    /// Queue one detection epoch's victims (in event-time order) for a
    /// batched restart at `due`, scheduling its drain event.
    void enqueue_ha_group(sim_time due, std::vector<vm_id> victims);
    /// Drain exactly one due victim group through the speculate/commit
    /// pipeline; failed victims re-enter as one retry group at t+backoff.
    void drain_ha_restarts(sim_time t);
    /// Open a recovery speculation batch over the pending victim queue,
    /// starting at victims[from] of the group being drained.
    void speculate_recovery_batch(sim_time t,
                                  const std::vector<vm_id>& victims,
                                  std::size_t from);
    /// Draw the next migration-abort decision (false when aborts are off).
    bool migration_aborted();
    /// Speculate destination nodes for planned cross-BB moves [from, n).
    void speculate_cross_bb_targets(const std::vector<cross_bb_move>& moves,
                                    std::size_t from);

    // --- conductor backpressure -------------------------------------------
    void setup_backpressure();
    /// Route one failed admission through the active controller: queue it,
    /// or shed it (and possibly a displaced lower-priority entry) with an
    /// explicit reason.  Only called when bp_ is non-null.
    void bp_admit(vm_id vm, sim_time t, bp_request_kind kind,
                  sim_time deleted_at);
    /// Terminate one queue entry with a shed event of `reason`.
    void bp_shed(const bp_queued_request& req, sim_time t,
                 schedule_fail_reason reason);
    /// Shed (or retire, when the owner's planned deletion already passed)
    /// every queue entry whose deadline has expired.
    void bp_expire_overdue(sim_time t);
    /// Drain the queue at a capacity-release instant: expire overdue
    /// entries, then retry the rest in FIFO order (quiet failures keep
    /// entries queued).
    void drain_backpressure(sim_time t);
    /// Schedule the pinned drain event for the current instant if capacity
    /// was released by the event just dispatched.
    void maybe_arm_bp_drain(sim_time t);

    // --- SoA active-VM slot table ----------------------------------------
    // Hot-path state of every *currently active* VM lives in parallel
    // columns indexed by a dense slot id; freed slots are recycled through
    // a LIFO free-list, so the columns stay O(peak-active) while the
    // registry keeps every VM ever created (the Figure 15 history).
    // active_insert fills a slot from the finished vm_record (placed_bb /
    // placed_node / created_at must be final) and active_erase returns it
    // to the free-list; slot_move / slot_reflavor keep the columns current
    // at the remaining lifecycle touch points (DRS and cross-BB moves,
    // evacuation re-places, resizes).
    void active_insert(vm_id vm);
    void active_erase(vm_id vm);
    /// Slot of an active VM; no_slot when the VM is not active.
    std::uint32_t slot_of(vm_id vm) const {
        const auto idx = static_cast<std::size_t>(vm.value());
        return idx < vm_slot_.size() ? vm_slot_[idx] : no_slot;
    }
    /// Update the host column after a migration / evacuation re-place.
    void slot_move(vm_id vm, node_id node);
    /// Re-hoist the flavor column and resample the behavior column after
    /// a resize (sample() is pure in (vm, flavor, project)).
    void slot_reflavor(const vm_record& rec);

    placement_policy policy_for(vm_id vm, const flavor& f) const;
    drs_cluster& cluster_of(bb_id bb);
    double bb_contention(bb_id bb) const;

    engine_config config_;
    scenario scenario_;
    vm_registry vms_;
    behavior_model behaviors_;
    lifetime_model lifetimes_;
    placement_service placement_;
    std::unique_ptr<conductor> conductor_;
    std::vector<drs_cluster> clusters_;  ///< indexed by bb id value
    metric_store store_;
    event_heap<engine_event> queue_;
    population population_plan_;
    run_stats stats_;
    event_log events_;
    bool setup_done_ = false;
    /// When set, scrape() seals completed raw days through this sink.
    metric_store::raw_sink raw_stream_sink_;

    // --- SoA slot columns (see active_insert above) -----------------------
    // vm_slot_ is the only per-VM-ever array (4 B each); every other
    // column is slot-indexed and bounded by the peak concurrently-active
    // population.  The scrape hot loop streams these columns in
    // active_slots_ order (ascending vm id — the exact order the old
    // per-record walk produced, so shard float sums are unchanged).
    static constexpr std::uint32_t no_slot = 0xffffffffu;
    std::vector<std::uint32_t> vm_slot_;      ///< vm id value -> slot
    std::vector<std::uint32_t> free_slots_;   ///< recycled slots (LIFO)
    std::vector<vm_id> slot_vm_;              ///< owning vm
    std::vector<std::uint32_t> slot_node_;    ///< placed node id value
    std::vector<const flavor*> slot_flavor_;  ///< hoisted catalog entry
    std::vector<sim_time> slot_created_;      ///< creation time
    std::vector<series_id> slot_cpu_series_;
    std::vector<series_id> slot_mem_series_;
    std::vector<vm_behavior> slot_behavior_;  ///< sampled eagerly on fill
    /// Slots of active VMs ordered by ascending vm id (the canonical
    /// scrape/append order).
    std::vector<std::uint32_t> active_slots_;
    /// behavior_of() result for VMs without a slot (deleted / pending);
    /// only reached from serial contexts — parallel stages read slot
    /// columns or slots directly.
    vm_behavior fallback_behavior_;

    struct node_series {
        series_id cpu_util, contention, ready, mem, tx, rx, disk;
    };
    std::vector<node_series> node_series_;
    struct bb_series {
        series_id vcpus, vcpus_used, mem, mem_used;
    };
    std::vector<bb_series> bb_series_;
    series_id instances_series_;
    std::vector<double> bb_contention_ewma_;  ///< per bb id value
    std::vector<node_demand> demand_scratch_;  ///< per node id value

    // --- parallel scrape pipeline ---------------------------------------
    // Demand is evaluated in scrape_shard_count fixed shards of the active
    // VM list regardless of worker count, and shard partials are reduced
    // in shard order — so the floating-point grouping (and therefore every
    // emitted sample) is bit-identical whether 0, 1 or N workers run.
    static constexpr unsigned scrape_shard_count = 16;

    /// Run fn over [0, count) — sharded across the pool, or inline when
    /// the engine is configured serial.
    void run_sharded(std::size_t count, const thread_pool::range_fn& fn);

    struct scrape_node {
        const node_runtime* nr;
        const compute_node* meta;
        std::uint32_t node_idx;     ///< node id value
        std::uint32_t cluster_idx;  ///< ordinal into clusters_
    };

    std::unique_ptr<thread_pool> pool_;  ///< null when running serial
    thread_pool* shared_pool_ = nullptr;  ///< non-owning; wins over pool_
    std::vector<double> scrape_cpu_col_;        ///< per active VM
    std::vector<double> scrape_mem_col_;        ///< per active VM
    /// One scrape's samples in canonical order, handed to the store's
    /// sharded batch append (stage 3).
    std::vector<metric_store::sample_event> scrape_batch_;
    /// Per fixed shard: one node_demand per node id value.
    std::vector<std::vector<node_demand>> shard_demand_;
    std::vector<scrape_node> scrape_nodes_;     ///< cluster-major, built once
    std::vector<node_snapshot> node_snap_buf_;  ///< per scrape_nodes_ entry
    std::vector<char> node_avail_buf_;          ///< per scrape_nodes_ entry

    // --- speculative initial placement ------------------------------------
    // The creation-ordered plan is consumed in fixed-size batches: workers
    // run filter + raw-weigh for every VM of a batch against an immutable
    // snapshot of the conductor's host view (filter_scheduler::speculate),
    // then a serial commit pass walks the batch in creation order and
    // commits each speculation exactly (commit_speculation revalidates
    // only providers claimed since the snapshot).  Placements are
    // byte-identical to the old serial loop at any worker count.
    static constexpr std::size_t placement_batch_size = 256;
    std::vector<host_speculation> spec_slots_;     ///< per VM in batch
    std::vector<schedule_request> spec_requests_;  ///< per VM in batch
    std::vector<host_state> spec_snapshot_;        ///< immutable per batch
    /// Conductor claim counters at the batch snapshot (initial + churn
    /// batches — never open at the same time, so they share the buffer;
    /// the HA pipeline has its own, since an HA drain can fire while a
    /// churn batch is still open).
    std::vector<std::uint64_t> spec_claim_counts_;

    // --- batched churn-arrival placement ----------------------------------
    // In-window arrivals are pre-sorted by creation time and drained by
    // ONE self-rescheduling event pinned to a reserved heap sequence slot
    // (event_queue::schedule_at_pinned), so the tie order at equal
    // timestamps is exactly the per-arrival schedule it replaces while the
    // heap carries O(1) arrival entries instead of one per arrival.  Each
    // drain extends the same speculate/commit pipeline into the event
    // loop: the arrivals of the current scrape interval (capped at
    // placement_batch_size) speculate against an immutable snapshot on
    // the pool, then commit serially in event-time order.  A shrink
    // (deletion / evacuation / crash / resize / cross-BB move) or a
    // contention-feed move breaks the monotone-usage precondition of
    // commit_speculation, so the uncommitted tail is dropped and
    // re-speculated on the spot against the live view.
    struct churn_arrival {
        vm_id vm;
        sim_time created_at;
        std::optional<sim_time> deleted_at;
    };
    std::vector<churn_arrival> arrivals_;    ///< stable-sorted by created_at
    std::size_t arrival_cursor_ = 0;         ///< next arrival to commit
    std::uint64_t arrival_drain_seq_ = 0;    ///< pinned heap sequence slot
    bool window_spec_active_ = false;        ///< a batch awaits commit
    std::size_t spec_begin_ = 0;             ///< batch range in arrivals_
    std::size_t spec_end_ = 0;
    std::uint64_t spec_shrink_version_ = 0;  ///< shrink counter at snapshot
    std::uint64_t spec_scrapes_ = 0;         ///< scrape count at snapshot
    std::vector<churn_batch_span> churn_batch_spans_;

    // --- parallel DRS fan-out ---------------------------------------------
    // Clusters rebalance independently (each touches only its own nodes;
    // the demand/flavor oracles are pure per VM and a VM resides in
    // exactly one cluster), so the balancing pass fans clusters across
    // the pool and commits results — events, stats, abort rollbacks —
    // serially in cluster order, keeping runs bit-identical at any
    // worker count.
    std::vector<std::vector<drs_migration>> drs_moved_buf_;  ///< per cluster

    // --- batched HA recovery placement -------------------------------------
    // One crash's victims form a group due after the detection delay; the
    // group is drained by ONE event (scheduled where the per-victim restart
    // closures used to be, so the heap tie order is exactly what the old
    // per-victim events produced) and re-placed through the same
    // speculate/commit pipeline.  Speculation batches may span groups up
    // to the scrape-interval horizon, so a batch can stay open across
    // events — a second crash (a usage shrink) invalidates its tail, which
    // re-speculates on the spot.  Victims whose restart fails re-enter as
    // ONE retry group at t + backoff, preserving the per-victim
    // retry/backoff/attempt-budget semantics bit for bit.
    struct ha_group {
        sim_time due;
        std::vector<vm_id> victims;  ///< event-time (= vm id) order
    };
    std::deque<ha_group> ha_groups_;  ///< sorted by due, FIFO within ties
    bool ha_spec_active_ = false;
    std::vector<vm_id> ha_spec_vms_;  ///< speculated victims, queue order
    std::size_t ha_spec_cursor_ = 0;  ///< next slot to consume
    std::uint64_t ha_spec_shrink_version_ = 0;
    std::uint64_t ha_spec_scrapes_ = 0;
    std::vector<host_speculation> ha_spec_slots_;
    std::vector<schedule_request> ha_spec_requests_;
    std::vector<std::uint64_t> ha_spec_claim_counts_;
    std::vector<churn_batch_span> recovery_batch_spans_;

    // --- batched cross-BB target speculation --------------------------------
    // Destination nodes of a planned pass, each stamped with the target
    // cluster's usage version at speculation time; a commit consumes the
    // target only while the version still matches (then the recompute the
    // old serial loop did is provably identical), else the tail
    // re-speculates against the live clusters.
    struct bb_target_spec {
        std::optional<node_id> node;
        std::uint64_t version = 0;
    };
    std::vector<bb_target_spec> cross_bb_targets_;

    engine_probes probes_;  ///< invariant observation hooks (optional)

    // --- fault injection state (engaged only when fault.enabled()) ------
    std::unique_ptr<ha_controller> ha_;        ///< null when faults are off
    std::vector<char> node_down_;              ///< crashed / in maintenance
    /// Down specifically because of an AZ outage: the outage-end event
    /// repairs exactly these (individually crashed hosts keep their own
    /// repair clock).
    std::vector<char> node_az_down_;
    std::vector<double> node_cpu_factor_;      ///< degraded-capacity factor
    std::optional<rng_stream> mig_abort_rng_;  ///< serial event-loop draws
    std::optional<rng_stream> claim_fault_rng_;

    // --- conductor backpressure (engaged only when backpressure.active()) -
    std::unique_ptr<backpressure_controller> bp_;  ///< null in degrade mode
    std::uint64_t bp_drain_seq_ = 0;  ///< pinned heap sequence slot
    /// A capacity release happened during the current dispatch (set by the
    /// placement release listener and the repair paths); cleared when the
    /// drain event is armed at dispatch end.  Transient within one event —
    /// never set at a heap barrier, so snapshots need not carry it.
    bool bp_drain_wanted_ = false;
    bool bp_drain_armed_ = false;  ///< a drain event is live in the heap
    /// Guards against the drain's own quiet placement attempts re-arming
    /// the drain at the same instant (a failed node-claim path releases the
    /// provider reservation it just took, firing the release listener).
    bool bp_draining_ = false;
};

}  // namespace sci
